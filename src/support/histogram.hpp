/**
 * @file
 * Distribution-collection helpers.
 *
 * Histogram      — exact counts for small non-negative integer samples with a
 *                  configurable overflow bucket (value-lifetime and
 *                  degree-of-sharing distributions, paper Section 2.3).
 * Log2Histogram  — power-of-two bucketed counts for wide-range samples.
 * RunningStats   — streaming mean / variance / min / max (Welford).
 */

#ifndef PARAGRAPH_SUPPORT_HISTOGRAM_HPP
#define PARAGRAPH_SUPPORT_HISTOGRAM_HPP

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace paragraph {

/** Exact histogram over [0, maxValue], with an overflow bucket. */
class Histogram
{
  public:
    /** @param max_value largest sample tracked exactly. */
    explicit Histogram(uint64_t max_value = 1024)
        : counts_(max_value + 1, 0) {}

    /** Record one sample. */
    void
    add(uint64_t sample)
    {
        if (sample < counts_.size())
            ++counts_[sample];
        else
            ++overflow_;
        ++total_;
        sum_ += sample;
        if (sample > maxSample_)
            maxSample_ = sample;
    }

    /** Count recorded for exact value @p v (0 when out of range). */
    uint64_t
    count(uint64_t v) const
    {
        return v < counts_.size() ? counts_[v] : 0;
    }

    /** Samples larger than the exact range. */
    uint64_t overflowCount() const { return overflow_; }

    /** Total samples recorded. */
    uint64_t totalCount() const { return total_; }

    /** Mean of all samples (0 when empty). */
    double
    mean() const
    {
        return total_ ? static_cast<double>(sum_) / total_ : 0.0;
    }

    /** Largest sample seen. */
    uint64_t maxSample() const { return maxSample_; }

    /**
     * Smallest value v such that at least @p fraction of samples are <= v.
     * Overflowed samples count as maxSample(). @p fraction in (0, 1].
     */
    uint64_t percentile(double fraction) const;

    /** Number of exact buckets. */
    size_t exactRange() const { return counts_.size(); }

    /**
     * Fold @p other into this histogram, bin by bin. Exact when the exact
     * ranges match (the only way it is used); samples beyond this
     * histogram's range land in the overflow bucket.
     */
    void merge(const Histogram &other);

  private:
    std::vector<uint64_t> counts_;
    uint64_t overflow_ = 0;
    uint64_t total_ = 0;
    uint64_t sum_ = 0;
    uint64_t maxSample_ = 0;
};

/** Histogram with power-of-two buckets: [0], [1], [2,3], [4,7], ... */
class Log2Histogram
{
  public:
    static constexpr size_t numBuckets = 65;

    /** Record one sample. */
    void
    add(uint64_t sample)
    {
        ++counts_[bucketFor(sample)];
        ++total_;
        sum_ += sample;
    }

    /** Bucket index for a sample (0 -> 0, otherwise 1 + floor(log2 s)). */
    static size_t
    bucketFor(uint64_t sample)
    {
        if (sample == 0)
            return 0;
        return 1 + static_cast<size_t>(63 - __builtin_clzll(sample));
    }

    /** Lower bound of bucket @p b. */
    static uint64_t
    bucketLow(size_t b)
    {
        return b == 0 ? 0 : (1ULL << (b - 1));
    }

    /** Count in bucket @p b. */
    uint64_t count(size_t b) const { return counts_[b]; }

    /** Total samples recorded. */
    uint64_t totalCount() const { return total_; }

    /** Mean of all samples. */
    double
    mean() const
    {
        return total_ ? static_cast<double>(sum_) / total_ : 0.0;
    }

    /** Index of the highest non-empty bucket (+1), 0 when empty. */
    size_t highestUsedBucket() const;

  private:
    uint64_t counts_[numBuckets] = {};
    uint64_t total_ = 0;
    uint64_t sum_ = 0;
};

/** Streaming mean/variance/min/max accumulator (Welford's algorithm). */
class RunningStats
{
  public:
    /** Record one sample. */
    void
    add(double x)
    {
        ++n_;
        double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        if (x < min_)
            min_ = x;
        if (x > max_)
            max_ = x;
    }

    uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Population variance. */
    double
    variance() const
    {
        return n_ ? m2_ / static_cast<double>(n_) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace paragraph

#endif // PARAGRAPH_SUPPORT_HISTOGRAM_HPP
