/**
 * @file
 * BucketedProfile: the parallelism-profile distribution of paper Section 3.2.
 *
 * "The parallelism profile distribution is updated by incrementing a
 * distribution entry indexed by Ldest. When the range of Ldest becomes too
 * large to represent each possible value in a distribution, a range of Ldest
 * values is mapped to each distribution entry, and in the final output, the
 * average number of operations per level within the range is computed."
 *
 * The profile keeps a fixed number of bins; whenever a sample exceeds the
 * representable range the bin width doubles and adjacent bins are folded
 * together, so memory stays constant over arbitrarily deep DDGs.
 */

#ifndef PARAGRAPH_SUPPORT_BUCKETED_PROFILE_HPP
#define PARAGRAPH_SUPPORT_BUCKETED_PROFILE_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace paragraph {

class BucketedProfile
{
  public:
    /** One output point: ops-per-level averaged over [firstLevel, lastLevel]. */
    struct Point
    {
        uint64_t firstLevel;
        uint64_t lastLevel;
        double opsPerLevel;
    };

    /** @param num_bins number of distribution entries kept (power of two). */
    explicit BucketedProfile(size_t num_bins = 4096);

    /**
     * Record @p count operations placed at DDG level @p level. Inline: this
     * runs once per placed operation on the analyzer hot path, and the
     * power-of-two bucket width reduces the bin index to a shift.
     */
    void
    add(uint64_t level, uint64_t count = 1)
    {
        while ((level >> bucketShift_) >= bins_.size())
            fold();
        bins_[level >> bucketShift_] += count;
        totalOps_ += count;
        if (level > maxLevel_) // maxLevel_ starts at 0, the smallest level
            maxLevel_ = level;
        any_ = true;
    }

    /** Total operations recorded. */
    uint64_t totalOps() const { return totalOps_; }

    /** Deepest level that received an operation (0 when empty). */
    uint64_t maxLevel() const { return maxLevel_; }

    /** Current number of levels folded into one bin. */
    uint64_t bucketWidth() const { return 1ULL << bucketShift_; }

    /** Number of bins configured. */
    size_t numBins() const { return bins_.size(); }

    /** Raw count in bin @p idx. */
    uint64_t binCount(size_t idx) const { return bins_[idx]; }

    /** True when no samples have been recorded. */
    bool empty() const { return totalOps_ == 0; }

    /**
     * Render the profile as (level range, average ops/level) points,
     * covering levels [0, maxLevel()]. Empty when no samples recorded.
     */
    std::vector<Point> series() const;

    /**
     * Peak of the series(): the largest average ops/level over any bin.
     * This is the "burst height" visible in the paper's Figure 7 plots.
     */
    double peakOpsPerLevel() const;

    /** Merge another profile into this one (levels are aligned at 0). */
    void merge(const BucketedProfile &other);

    /**
     * Fold @p other into this profile with every level shifted up by
     * @p offset (the shard stitch: segment-relative levels re-based to
     * absolute). totalOps() and maxLevel() are combined exactly; each
     * source bin's mass lands at its first shifted level, so the in-bin
     * distribution is approximate at the source's bucket resolution.
     */
    void mergeShifted(const BucketedProfile &other, uint64_t offset);

  private:
    std::vector<uint64_t> bins_;
    uint32_t bucketShift_ = 0; ///< log2 of the bucket width
    uint64_t totalOps_ = 0;
    uint64_t maxLevel_ = 0;
    bool any_ = false;

    void fold();
};

} // namespace paragraph

#endif // PARAGRAPH_SUPPORT_BUCKETED_PROFILE_HPP
