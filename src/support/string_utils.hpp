/**
 * @file
 * Small string helpers shared by the assembler, MiniC lexer, and reports.
 */

#ifndef PARAGRAPH_SUPPORT_STRING_UTILS_HPP
#define PARAGRAPH_SUPPORT_STRING_UTILS_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace paragraph {

/** Strip leading and trailing whitespace. */
std::string_view trim(std::string_view s);

/** Split @p s on @p sep, trimming each piece; empty pieces are kept. */
std::vector<std::string> splitAndTrim(std::string_view s, char sep);

/** True when @p s starts with @p prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** Parse a signed integer (decimal, or hex with 0x prefix).
 *  @return true on success. */
bool parseInt(std::string_view s, int64_t &out);

/** Parse a floating-point literal. @return true on success. */
bool parseDouble(std::string_view s, double &out);

/** printf-style formatting into a std::string. */
std::string strFormat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace paragraph

#endif // PARAGRAPH_SUPPORT_STRING_UTILS_HPP
