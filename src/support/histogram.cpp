#include "support/histogram.hpp"

namespace paragraph {

uint64_t
Histogram::percentile(double fraction) const
{
    if (total_ == 0)
        return 0;
    if (fraction > 1.0)
        fraction = 1.0;
    uint64_t target =
        static_cast<uint64_t>(std::ceil(fraction * static_cast<double>(total_)));
    if (target == 0)
        target = 1;
    uint64_t running = 0;
    for (size_t v = 0; v < counts_.size(); ++v) {
        running += counts_[v];
        if (running >= target)
            return v;
    }
    return maxSample_;
}

void
Histogram::merge(const Histogram &other)
{
    for (size_t v = 0; v < other.counts_.size(); ++v) {
        uint64_t c = other.counts_[v];
        if (c == 0)
            continue;
        if (v < counts_.size())
            counts_[v] += c;
        else
            overflow_ += c;
    }
    overflow_ += other.overflow_;
    total_ += other.total_;
    sum_ += other.sum_;
    if (other.maxSample_ > maxSample_)
        maxSample_ = other.maxSample_;
}

size_t
Log2Histogram::highestUsedBucket() const
{
    for (size_t b = numBuckets; b > 0; --b) {
        if (counts_[b - 1] != 0)
            return b;
    }
    return 0;
}

} // namespace paragraph
