#include "support/failpoint.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

#include "support/prng.hpp"
#include "support/string_utils.hpp"

namespace paragraph {
namespace failpoint {

namespace {

enum class Policy { Once, After, Prob };

struct Site
{
    Policy policy = Policy::Once;
    uint64_t threshold = 0; ///< evaluations to pass before firing
    double probability = 0; ///< Policy::Prob only
    Prng rng{0};            ///< per-site stream (Policy::Prob)
    uint64_t evals = 0;
    uint64_t fires = 0;
    bool exhausted = false; ///< a fired `once` site never fires again
};

struct Registry
{
    std::mutex mutex;
    std::map<std::string, Site> sites;
    std::atomic<size_t> configured{0};
    std::atomic<uint64_t> totalFires{0};
    uint64_t seed = 0x9e3779b97f4a7c15ULL;
    std::once_flag envOnce;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

/** FNV-1a, so each site gets its own deterministic PRNG stream. */
uint64_t
siteHash(const std::string &name)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : name)
        h = (h ^ static_cast<uint8_t>(c)) * 0x100000001b3ULL;
    return h;
}

/** Parse "policy" into @p site; false with @p error on a bad spec. */
bool
parsePolicy(const std::string &name, const std::string &policy, Site &site,
            std::string &error)
{
    int64_t n = 0;
    if (policy == "once") {
        site.policy = Policy::Once;
        site.threshold = 0;
    } else if (startsWith(policy, "once:") &&
               parseInt(policy.substr(5), n) && n >= 0) {
        site.policy = Policy::Once;
        site.threshold = static_cast<uint64_t>(n);
    } else if (startsWith(policy, "after:") &&
               parseInt(policy.substr(6), n) && n >= 0) {
        site.policy = Policy::After;
        site.threshold = static_cast<uint64_t>(n);
    } else if (startsWith(policy, "prob:")) {
        char *end = nullptr;
        double p = std::strtod(policy.c_str() + 5, &end);
        if (!end || *end != '\0' || !(p > 0.0) || p > 1.0) {
            error = "failpoint " + name + ": probability must be in (0, 1]";
            return false;
        }
        site.policy = Policy::Prob;
        site.probability = p;
    } else {
        error = "failpoint " + name + ": unknown policy '" + policy +
                "' (expected off, once[:N], after:N, or prob:P)";
        return false;
    }
    return true;
}

/** Parsed form of one "site=policy" spec; policy absent means `off`. */
struct ParsedSpec
{
    std::string name;
    bool off = false;
    Site site;
};

bool
parseSpec(const std::string &spec, ParsedSpec &out, std::string &error)
{
    size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0) {
        error = "failpoint spec '" + spec + "' is not site=policy";
        return false;
    }
    out.name = spec.substr(0, eq);
    std::string policy = spec.substr(eq + 1);
    if (policy == "off") {
        out.off = true;
        return true;
    }
    return parsePolicy(out.name, policy, out.site, error);
}

void
applyLocked(Registry &r, const ParsedSpec &spec)
{
    if (spec.off) {
        if (r.sites.erase(spec.name))
            r.configured.store(r.sites.size(), std::memory_order_relaxed);
        return;
    }
    Site site = spec.site;
    site.rng = Prng(r.seed ^ siteHash(spec.name));
    r.sites[spec.name] = site;
    r.configured.store(r.sites.size(), std::memory_order_relaxed);
}

void
loadEnvLocked(Registry &r)
{
    if (const char *seedEnv = std::getenv("PARAGRAPH_FAILPOINT_SEED")) {
        int64_t n = 0;
        if (parseInt(seedEnv, n) && n >= 0)
            r.seed = static_cast<uint64_t>(n);
    }
    const char *specs = std::getenv("PARAGRAPH_FAILPOINTS");
    if (!specs || !*specs)
        return;
    for (const std::string &spec : splitAndTrim(specs, ';')) {
        if (spec.empty())
            continue;
        ParsedSpec parsed;
        std::string error;
        if (parseSpec(spec, parsed, error)) {
            applyLocked(r, parsed);
        } else {
            // Environment parsing cannot return an error to anyone; an
            // unusable spec must not silently disarm a chaos run.
            std::fprintf(stderr, "paragraph: PARAGRAPH_FAILPOINTS: %s\n",
                         error.c_str());
        }
    }
}

void
ensureEnvLoaded(Registry &r)
{
    std::call_once(r.envOnce, [&r] {
        std::lock_guard<std::mutex> lock(r.mutex);
        loadEnvLocked(r);
    });
}

} // namespace

bool
shouldFire(const char *siteName)
{
    Registry &r = registry();
    ensureEnvLoaded(r);
    if (r.configured.load(std::memory_order_relaxed) == 0)
        return false;

    std::lock_guard<std::mutex> lock(r.mutex);
    auto it = r.sites.find(siteName);
    if (it == r.sites.end())
        return false;
    Site &site = it->second;
    uint64_t index = site.evals++;
    if (site.exhausted)
        return false;

    bool fire = false;
    switch (site.policy) {
      case Policy::Once:
        fire = index >= site.threshold;
        if (fire)
            site.exhausted = true;
        break;
      case Policy::After:
        fire = index >= site.threshold;
        break;
      case Policy::Prob:
        fire = site.rng.nextDouble() < site.probability;
        break;
    }
    if (fire) {
        ++site.fires;
        r.totalFires.fetch_add(1, std::memory_order_relaxed);
    }
    return fire;
}

bool
configure(const std::string &spec, std::string &error)
{
    Registry &r = registry();
    ensureEnvLoaded(r);
    ParsedSpec parsed;
    if (!parseSpec(spec, parsed, error))
        return false;
    std::lock_guard<std::mutex> lock(r.mutex);
    applyLocked(r, parsed);
    return true;
}

bool
configureList(const std::string &specs, std::string &error)
{
    Registry &r = registry();
    ensureEnvLoaded(r);
    std::vector<ParsedSpec> parsed;
    for (const std::string &spec : splitAndTrim(specs, ';')) {
        if (spec.empty())
            continue;
        ParsedSpec p;
        if (!parseSpec(spec, p, error))
            return false; // nothing applied: all-or-nothing
        parsed.push_back(std::move(p));
    }
    std::lock_guard<std::mutex> lock(r.mutex);
    for (const ParsedSpec &p : parsed)
        applyLocked(r, p);
    return true;
}

void
reset()
{
    Registry &r = registry();
    ensureEnvLoaded(r); // so a reset() sticks even before first evaluation
    std::lock_guard<std::mutex> lock(r.mutex);
    r.sites.clear();
    r.configured.store(0, std::memory_order_relaxed);
    r.totalFires.store(0, std::memory_order_relaxed);
}

void
setSeed(uint64_t seed)
{
    Registry &r = registry();
    ensureEnvLoaded(r);
    std::lock_guard<std::mutex> lock(r.mutex);
    r.seed = seed;
}

size_t
activeSites()
{
    Registry &r = registry();
    ensureEnvLoaded(r);
    std::lock_guard<std::mutex> lock(r.mutex);
    size_t active = 0;
    for (const auto &kv : r.sites)
        active += kv.second.exhausted ? 0 : 1;
    return active;
}

uint64_t
totalFires()
{
    Registry &r = registry();
    return r.totalFires.load(std::memory_order_relaxed);
}

std::string
describe()
{
    Registry &r = registry();
    ensureEnvLoaded(r);
    std::lock_guard<std::mutex> lock(r.mutex);
    std::string out;
    for (const auto &kv : r.sites) {
        const Site &site = kv.second;
        if (!out.empty())
            out += ';';
        out += kv.first;
        out += '=';
        switch (site.policy) {
          case Policy::Once:
            out += site.threshold ? "once:" + std::to_string(site.threshold)
                                  : std::string("once");
            break;
          case Policy::After:
            out += "after:" + std::to_string(site.threshold);
            break;
          case Policy::Prob:
            out += "prob:" + strFormat("%g", site.probability);
            break;
        }
        out += ':' + std::to_string(site.evals) + '/' +
               std::to_string(site.fires);
    }
    return out;
}

} // namespace failpoint
} // namespace paragraph
