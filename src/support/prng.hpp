/**
 * @file
 * SplitMix64-based deterministic pseudo-random number generator.
 *
 * Workload input generators need reproducible randomness independent of the
 * platform's std::mt19937 distributions, so experiment rows are bit-stable
 * across runs and machines.
 */

#ifndef PARAGRAPH_SUPPORT_PRNG_HPP
#define PARAGRAPH_SUPPORT_PRNG_HPP

#include <cstdint>

namespace paragraph {

class Prng
{
  public:
    explicit Prng(uint64_t seed = 0x243f6a8885a308d3ULL) : state_(seed) {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound) — bound must be nonzero. */
    uint64_t
    nextBelow(uint64_t bound)
    {
        // Multiply-shift rejection-free mapping; slight bias is irrelevant
        // for workload generation and keeps the generator branch-free.
        return static_cast<uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    nextInRange(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(
            nextBelow(static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    uint64_t state_;
};

} // namespace paragraph

#endif // PARAGRAPH_SUPPORT_PRNG_HPP
