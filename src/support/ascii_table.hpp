/**
 * @file
 * AsciiTable: aligned plain-text table rendering for benchmark reports.
 *
 * Every table/figure harness in bench/ prints its results through this class
 * so outputs line up with the paper's tables.
 */

#ifndef PARAGRAPH_SUPPORT_ASCII_TABLE_HPP
#define PARAGRAPH_SUPPORT_ASCII_TABLE_HPP

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace paragraph {

class AsciiTable
{
  public:
    enum class Align { Left, Right };

    /** Define one column; call once per column before adding rows. */
    void addColumn(const std::string &header, Align align = Align::Right);

    /** Begin a new row; subsequent cell() calls fill it left to right. */
    void beginRow();

    /** Append a preformatted cell to the current row. */
    void cell(const std::string &text);

    /** Append an integer cell with thousands separators. */
    void cell(uint64_t value);
    void cell(int64_t value);
    void cell(int value) { cell(static_cast<int64_t>(value)); }

    /** Append a floating-point cell with @p precision decimals. */
    void cell(double value, int precision = 2);

    /** Number of data rows added so far. */
    size_t numRows() const { return rows_.size(); }

    /** Render the table (headers, rule, rows) to @p os. */
    void print(std::ostream &os) const;

    /** Render to a string (test-friendly). */
    std::string toString() const;

    /** Format an integer with thousands separators, e.g. 23,302. */
    static std::string withCommas(uint64_t value);

    /** Format a double with separators in the integer part, e.g. 23,302.60. */
    static std::string withCommas(double value, int precision);

  private:
    struct Column
    {
        std::string header;
        Align align;
    };

    std::vector<Column> columns_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace paragraph

#endif // PARAGRAPH_SUPPORT_ASCII_TABLE_HPP
