/**
 * @file
 * Deterministic fault injection: named failpoint sites for error-path
 * testing.
 *
 * Every I/O and scheduling layer that can fail in production registers a
 * *site* — a string like "store.append.torn" evaluated through the
 * PARA_FAILPOINT(site) macro at the exact place the native failure would be
 * detected. A site that "fires" makes the caller take its real error branch
 * (short read, failed fwrite, dropped connection, ...), so the chaos tests
 * exercise the same recovery code a real fault would, not a parallel
 * simulation of it.
 *
 * Sites are inert until configured. Control is either programmatic
 * (failpoint::configure) or via the PARAGRAPH_FAILPOINTS environment
 * variable, parsed on first evaluation:
 *
 *     PARAGRAPH_FAILPOINTS="store.append.fail=prob:0.01;trace.decode.block=once"
 *     PARAGRAPH_FAILPOINT_SEED=42
 *
 * Policies:
 *     off        never fire (remove the site's configuration)
 *     once       fire on the first evaluation, then never again
 *     once:N     pass N evaluations, fire the next one, then never again
 *     after:N    pass N evaluations, then fire on every one after that
 *     prob:P     fire each evaluation with probability P (0 < P <= 1),
 *                drawn from a per-site SplitMix64 stream seeded by the
 *                global seed and the site name — the schedule is a pure
 *                function of (seed, site, evaluation index), so seeded
 *                chaos runs replay exactly
 *
 * The whole subsystem compiles out when the PARAGRAPH_FAILPOINTS macro is
 * not defined (CMake option PARAGRAPH_FAILPOINTS=OFF): PARA_FAILPOINT
 * becomes the constant false and every call site folds to its normal path.
 * When compiled in but unconfigured, the cost per evaluation is one relaxed
 * atomic load.
 */

#ifndef PARAGRAPH_SUPPORT_FAILPOINT_HPP
#define PARAGRAPH_SUPPORT_FAILPOINT_HPP

#include <cstdint>
#include <string>

namespace paragraph {
namespace failpoint {

/**
 * True if the named site fires on this evaluation. Prefer the
 * PARA_FAILPOINT macro, which compiles to `false` when failpoints are
 * compiled out.
 */
bool shouldFire(const char *site);

/**
 * Configure one site from "site=policy" (or clear it with "site=off").
 * @return false with @p error set on a malformed spec.
 */
bool configure(const std::string &spec, std::string &error);

/**
 * Configure a ';'-separated list of "site=policy" specs atomically: either
 * every spec applies or none does. An empty list is a no-op.
 */
bool configureList(const std::string &specs, std::string &error);

/** Remove every configured site and reset all counters. */
void reset();

/** Reseed the per-site PRNG streams (applies to sites configured after). */
void setSeed(uint64_t seed);

/** Number of sites currently armed (configured and still able to fire). */
size_t activeSites();

/** Total fires across all sites since the last reset(). */
uint64_t totalFires();

/**
 * Human/machine-readable state: ';'-separated
 * "site=policy:evals/fires" for every configured site, sorted by name.
 * Empty string when nothing is configured.
 */
std::string describe();

} // namespace failpoint
} // namespace paragraph

#ifdef PARAGRAPH_FAILPOINTS
/** Evaluate the named failpoint site; true = simulate the failure. */
#define PARA_FAILPOINT(site) (::paragraph::failpoint::shouldFire(site))
#else
#define PARA_FAILPOINT(site) false
#endif

#endif // PARAGRAPH_SUPPORT_FAILPOINT_HPP
