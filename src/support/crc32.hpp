/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), header-only.
 *
 * Used by the v2 trace file format to checksum the header and the record
 * payload so a flipped byte in a multi-gigabyte capture is a diagnosed
 * error rather than silent analysis corruption. Incremental form matches
 * zlib's crc32(): crc32Update(crc32Update(0, a, la), b, lb) equals
 * crc32Of(ab) for the concatenation.
 */

#ifndef PARAGRAPH_SUPPORT_CRC32_HPP
#define PARAGRAPH_SUPPORT_CRC32_HPP

#include <cstddef>
#include <cstdint>

namespace paragraph {

namespace detail {

struct Crc32Table
{
    uint32_t byteCrc[256];

    constexpr Crc32Table() : byteCrc{}
    {
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
            byteCrc[i] = c;
        }
    }
};

inline constexpr Crc32Table crc32Table{};

} // namespace detail

/** Extend @p crc (a previous crc32 result, or 0) over @p len bytes. */
inline uint32_t
crc32Update(uint32_t crc, const void *data, size_t len)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    crc = ~crc;
    while (len--)
        crc = detail::crc32Table.byteCrc[(crc ^ *p++) & 0xffu] ^ (crc >> 8);
    return ~crc;
}

/** CRC-32 of one buffer. */
inline uint32_t
crc32Of(const void *data, size_t len)
{
    return crc32Update(0, data, len);
}

} // namespace paragraph

#endif // PARAGRAPH_SUPPORT_CRC32_HPP
