#include "support/bucketed_profile.hpp"

#include "support/panic.hpp"

namespace paragraph {

BucketedProfile::BucketedProfile(size_t num_bins)
{
    PARA_ASSERT(num_bins >= 2 && (num_bins & (num_bins - 1)) == 0,
                "num_bins must be a power of two >= 2");
    bins_.assign(num_bins, 0);
}

void
BucketedProfile::fold()
{
    size_t n = bins_.size();
    for (size_t i = 0; i < n / 2; ++i)
        bins_[i] = bins_[2 * i] + bins_[2 * i + 1];
    for (size_t i = n / 2; i < n; ++i)
        bins_[i] = 0;
    ++bucketShift_;
}

std::vector<BucketedProfile::Point>
BucketedProfile::series() const
{
    std::vector<Point> out;
    if (!any_)
        return out;
    size_t last_bin = static_cast<size_t>(maxLevel_ >> bucketShift_);
    out.reserve(last_bin + 1);
    for (size_t i = 0; i <= last_bin; ++i) {
        uint64_t first = static_cast<uint64_t>(i) << bucketShift_;
        uint64_t last = first + bucketWidth() - 1;
        if (last > maxLevel_)
            last = maxLevel_;
        uint64_t levels = last - first + 1;
        out.push_back(Point{first, last,
                            static_cast<double>(bins_[i]) /
                                static_cast<double>(levels)});
    }
    return out;
}

double
BucketedProfile::peakOpsPerLevel() const
{
    double peak = 0.0;
    for (const Point &p : series()) {
        if (p.opsPerLevel > peak)
            peak = p.opsPerLevel;
    }
    return peak;
}

void
BucketedProfile::merge(const BucketedProfile &other)
{
    for (const Point &p : other.series()) {
        // Re-add each level range's mass at its first level; precise enough
        // for aggregate statistics and keeps widths independent.
        uint64_t mass = static_cast<uint64_t>(
            p.opsPerLevel * static_cast<double>(p.lastLevel - p.firstLevel + 1)
            + 0.5);
        if (mass > 0)
            add(p.firstLevel, mass);
    }
}

void
BucketedProfile::mergeShifted(const BucketedProfile &other, uint64_t offset)
{
    if (!other.any_)
        return;
    size_t last_bin = static_cast<size_t>(other.maxLevel_ >>
                                          other.bucketShift_);
    for (size_t i = 0; i <= last_bin; ++i) {
        uint64_t c = other.bins_[i];
        if (c > 0)
            add((static_cast<uint64_t>(i) << other.bucketShift_) + offset, c);
    }
    // add() saw only bin-start levels; the true deepest level is exact.
    // Keep the bin array covering it so series() stays in range.
    uint64_t deepest = other.maxLevel_ + offset;
    while ((deepest >> bucketShift_) >= bins_.size())
        fold();
    if (deepest > maxLevel_)
        maxLevel_ = deepest;
}

} // namespace paragraph
