#include "support/json_line.hpp"

#include <cctype>
#include <cstdlib>

namespace paragraph {

bool
JsonLineParser::parse()
{
    skipWs();
    if (!eat('{'))
        return false;
    skipWs();
    if (eat('}')) {
        skipWs();
        return p_ == s_.size();
    }
    for (;;) {
        std::string key;
        if (!parseString(key))
            return false;
        skipWs();
        if (!eat(':'))
            return false;
        skipWs();
        if (!parseValue(key))
            return false;
        skipWs();
        if (eat('}'))
            break;
        if (!eat(','))
            return false;
        skipWs();
    }
    skipWs();
    return p_ == s_.size();
}

const std::string *
JsonLineParser::str(const char *key) const
{
    auto it = strs_.find(key);
    return it == strs_.end() ? nullptr : &it->second;
}

bool
JsonLineParser::num(const char *key, uint64_t &out) const
{
    auto it = nums_.find(key);
    if (it == nums_.end())
        return false;
    out = it->second;
    return true;
}

bool
JsonLineParser::boolean(const char *key, bool &out) const
{
    auto it = bools_.find(key);
    if (it == bools_.end())
        return false;
    out = it->second;
    return true;
}

const std::vector<std::string> *
JsonLineParser::strList(const char *key) const
{
    auto it = strLists_.find(key);
    return it == strLists_.end() ? nullptr : &it->second;
}

const std::vector<uint64_t> *
JsonLineParser::numList(const char *key) const
{
    auto it = numLists_.find(key);
    return it == numLists_.end() ? nullptr : &it->second;
}

void
JsonLineParser::skipWs()
{
    while (p_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[p_])))
        ++p_;
}

bool
JsonLineParser::eat(char c)
{
    if (p_ < s_.size() && s_[p_] == c) {
        ++p_;
        return true;
    }
    return false;
}

bool
JsonLineParser::parseString(std::string &out)
{
    if (!eat('"'))
        return false;
    out.clear();
    while (p_ < s_.size()) {
        char c = s_[p_++];
        if (c == '"')
            return true;
        if (c != '\\') {
            out += c;
            continue;
        }
        if (p_ >= s_.size())
            return false;
        char e = s_[p_++];
        switch (e) {
          case '"':  out += '"'; break;
          case '\\': out += '\\'; break;
          case '/':  out += '/'; break;
          case 'n':  out += '\n'; break;
          case 't':  out += '\t'; break;
          case 'r':  out += '\r'; break;
          case 'u': {
            if (p_ + 4 > s_.size())
                return false;
            unsigned v = 0;
            for (int i = 0; i < 4; ++i) {
                char h = s_[p_++];
                v <<= 4;
                if (h >= '0' && h <= '9')
                    v |= static_cast<unsigned>(h - '0');
                else if (h >= 'a' && h <= 'f')
                    v |= static_cast<unsigned>(h - 'a' + 10);
                else if (h >= 'A' && h <= 'F')
                    v |= static_cast<unsigned>(h - 'A' + 10);
                else
                    return false;
            }
            if (v > 0xff) // the writers only escape control bytes
                return false;
            out += static_cast<char>(v);
            break;
          }
          default:
            return false;
        }
    }
    return false; // unterminated
}

bool
JsonLineParser::parseNumber(uint64_t &out)
{
    size_t start = p_;
    while (p_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[p_])))
        ++p_;
    if (p_ == start)
        return false;
    out = std::strtoull(s_.substr(start, p_ - start).c_str(), nullptr, 10);
    return true;
}

bool
JsonLineParser::parseValue(const std::string &key)
{
    if (p_ < s_.size() && s_[p_] == '"') {
        std::string v;
        if (!parseString(v))
            return false;
        strs_[key] = std::move(v);
        return true;
    }
    if (s_.compare(p_, 4, "true") == 0) {
        p_ += 4;
        bools_[key] = true;
        return true;
    }
    if (s_.compare(p_, 5, "false") == 0) {
        p_ += 5;
        bools_[key] = false;
        return true;
    }
    if (p_ < s_.size() && s_[p_] == '[') {
        ++p_;
        skipWs();
        std::vector<std::string> strItems;
        std::vector<uint64_t> numItems;
        if (eat(']')) { // an empty array registers under both types
            strLists_[key] = std::move(strItems);
            numLists_[key] = std::move(numItems);
            return true;
        }
        // A flat array must be homogeneous: all strings or all integers.
        bool stringArray = s_[p_] == '"';
        for (;;) {
            if (stringArray) {
                std::string v;
                if (!parseString(v))
                    return false;
                strItems.push_back(std::move(v));
            } else {
                uint64_t v = 0;
                if (!parseNumber(v))
                    return false;
                numItems.push_back(v);
            }
            skipWs();
            if (eat(']'))
                break;
            if (!eat(','))
                return false;
            skipWs();
        }
        if (stringArray)
            strLists_[key] = std::move(strItems);
        else
            numLists_[key] = std::move(numItems);
        return true;
    }
    uint64_t v = 0;
    if (!parseNumber(v))
        return false;
    nums_[key] = v;
    return true;
}

} // namespace paragraph
