/**
 * @file
 * IntervalProfile: concurrently-live intervals per level (the waiting-token
 * / storage-requirement profile of paper Section 2.3).
 *
 * "We can also obtain the distribution of value lifetimes from the DDG. The
 * value lifetimes are useful in determining the amount of temporary storage
 * required to exploit the parallelism in the DDG." Culler and Arvind's
 * dataflow studies plot exactly this: how many tokens are waiting at each
 * step of the abstract machine.
 *
 * Every value contributes the interval [creation level, last-access level].
 * Like BucketedProfile, the structure keeps a fixed number of bins and
 * doubles the bin width when a level exceeds the representable range, so
 * memory stays constant over arbitrarily deep DDGs. Per-bucket live counts
 * are exact at bucket boundaries and interpolated within buckets.
 */

#ifndef PARAGRAPH_SUPPORT_INTERVAL_PROFILE_HPP
#define PARAGRAPH_SUPPORT_INTERVAL_PROFILE_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace paragraph {

class IntervalProfile
{
  public:
    struct Point
    {
        uint64_t firstLevel;
        uint64_t lastLevel;
        double liveValues; ///< average values live across this level range
    };

    /** @param num_bins number of distribution entries (power of two). */
    explicit IntervalProfile(size_t num_bins = 4096);

    /** Record a value live from @p start_level to @p end_level inclusive. */
    void add(uint64_t start_level, uint64_t end_level);

    /** Number of intervals recorded. */
    uint64_t intervals() const { return intervals_; }

    /** Deepest level any interval touches. */
    uint64_t maxLevel() const { return maxLevel_; }

    /** Current levels-per-bin. */
    uint64_t bucketWidth() const { return bucketWidth_; }

    bool empty() const { return intervals_ == 0; }

    /** Live-count series over [0, maxLevel()]. */
    std::vector<Point> series() const;

    /**
     * Largest boundary-exact live count: the storage high-water mark of an
     * abstract machine executing the DDG (within one bucket's resolution).
     */
    double peakLive() const;

    /** Mean live count over the whole level range. */
    double meanLive() const;

  private:
    std::vector<uint64_t> starts_; ///< intervals beginning in each bucket
    std::vector<uint64_t> ends_;   ///< intervals ending in each bucket
    std::vector<uint64_t> edgeMass_; ///< in-bucket levels of edge overlaps
    uint64_t totalLiveLevels_ = 0;   ///< exact sum of interval lengths
    uint64_t bucketWidth_ = 1;
    uint64_t intervals_ = 0;
    uint64_t maxLevel_ = 0;
    bool any_ = false;

    void fold();
};

} // namespace paragraph

#endif // PARAGRAPH_SUPPORT_INTERVAL_PROFILE_HPP
