/**
 * @file
 * IntervalProfile: concurrently-live intervals per level (the waiting-token
 * / storage-requirement profile of paper Section 2.3).
 *
 * "We can also obtain the distribution of value lifetimes from the DDG. The
 * value lifetimes are useful in determining the amount of temporary storage
 * required to exploit the parallelism in the DDG." Culler and Arvind's
 * dataflow studies plot exactly this: how many tokens are waiting at each
 * step of the abstract machine.
 *
 * Every value contributes the interval [creation level, last-access level].
 * Like BucketedProfile, the structure keeps a fixed number of bins and
 * doubles the bin width when a level exceeds the representable range, so
 * memory stays constant over arbitrarily deep DDGs. Per-bucket live counts
 * are exact at bucket boundaries and interpolated within buckets.
 */

#ifndef PARAGRAPH_SUPPORT_INTERVAL_PROFILE_HPP
#define PARAGRAPH_SUPPORT_INTERVAL_PROFILE_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace paragraph {

class IntervalProfile
{
  public:
    struct Point
    {
        uint64_t firstLevel;
        uint64_t lastLevel;
        double liveValues; ///< average values live across this level range
    };

    /** @param num_bins number of distribution entries (power of two). */
    explicit IntervalProfile(size_t num_bins = 4096);

    /**
     * Record a value live from @p start_level to @p end_level inclusive.
     * Inline: this runs once per retired value on the analyzer hot path,
     * and the power-of-two bucket width reduces bin indexing to shifts.
     */
    void
    add(uint64_t start_level, uint64_t end_level)
    {
        if (end_level < start_level)
            end_level = start_level;
        while ((end_level >> bucketShift_) >= bins_.size())
            fold();
        size_t sb = static_cast<size_t>(start_level >> bucketShift_);
        size_t eb = static_cast<size_t>(end_level >> bucketShift_);
        // Record the edge buckets' exact overlap; buckets strictly between
        // the edges are fully covered and handled by the start/end prefix
        // counts. Most lifetimes are short, so sb and eb usually name the
        // same bucket — and a bucket's three counters share a cache line.
        Bin &start_bin = bins_[sb];
        ++start_bin.starts;
        if (eb == sb) {
            ++start_bin.ends;
            start_bin.edgeMass += end_level - start_level + 1;
        } else {
            uint64_t sb_end =
                ((static_cast<uint64_t>(sb) + 1) << bucketShift_) - 1;
            start_bin.edgeMass += sb_end - start_level + 1;
            Bin &end_bin = bins_[eb];
            ++end_bin.ends;
            end_bin.edgeMass +=
                end_level - (static_cast<uint64_t>(eb) << bucketShift_) + 1;
        }
        totalLiveLevels_ += end_level - start_level + 1;
        ++intervals_;
        if (end_level > maxLevel_) // maxLevel_ starts at 0, the minimum
            maxLevel_ = end_level;
        any_ = true;
    }

    /** Number of intervals recorded. */
    uint64_t intervals() const { return intervals_; }

    /** Deepest level any interval touches. */
    uint64_t maxLevel() const { return maxLevel_; }

    /** Current levels-per-bin. */
    uint64_t bucketWidth() const { return 1ULL << bucketShift_; }

    bool empty() const { return intervals_ == 0; }

    /** Live-count series over [0, maxLevel()]. */
    std::vector<Point> series() const;

    /**
     * Largest boundary-exact live count: the storage high-water mark of an
     * abstract machine executing the DDG (within one bucket's resolution).
     */
    double peakLive() const;

    /** Mean live count over the whole level range. */
    double meanLive() const;

    /** Exact sum of interval lengths (levels-lived across all values). */
    uint64_t totalLiveLevels() const { return totalLiveLevels_; }

    /**
     * Fold @p other into this profile with every level shifted up by
     * @p offset (the shard stitch). intervals(), totalLiveLevels() and
     * maxLevel() are combined exactly; per-bucket starts/ends/edge mass
     * are re-attributed at the source's bucket resolution (starts at the
     * bucket's first shifted level, ends at its last), so the rendered
     * series is approximate within one source bucket.
     */
    void mergeShifted(const IntervalProfile &other, uint64_t offset);

  private:
    /** Per-bucket counters, kept together for cache locality on add(). */
    struct Bin
    {
        uint64_t starts = 0;   ///< intervals beginning in this bucket
        uint64_t ends = 0;     ///< intervals ending in this bucket
        uint64_t edgeMass = 0; ///< in-bucket levels of edge overlaps
    };

    std::vector<Bin> bins_;
    uint64_t totalLiveLevels_ = 0;   ///< exact sum of interval lengths
    uint32_t bucketShift_ = 0;       ///< log2 of the bucket width
    uint64_t intervals_ = 0;
    uint64_t maxLevel_ = 0;
    bool any_ = false;

    void fold();
};

} // namespace paragraph

#endif // PARAGRAPH_SUPPORT_INTERVAL_PROFILE_HPP
