#include "support/string_utils.hpp"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace paragraph {

std::string_view
trim(std::string_view s)
{
    size_t b = 0;
    while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    size_t e = s.size();
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string>
splitAndTrim(std::string_view s, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        size_t pos = s.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(trim(s.substr(start)));
            break;
        }
        out.emplace_back(trim(s.substr(start, pos - start)));
        start = pos + 1;
    }
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool
parseInt(std::string_view s, int64_t &out)
{
    s = trim(s);
    if (s.empty())
        return false;
    std::string buf(s);
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(buf.c_str(), &end, 0);
    if (errno != 0 || end != buf.c_str() + buf.size())
        return false;
    out = v;
    return true;
}

bool
parseDouble(std::string_view s, double &out)
{
    s = trim(s);
    if (s.empty())
        return false;
    std::string buf(s);
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(buf.c_str(), &end);
    if (errno != 0 || end != buf.c_str() + buf.size())
        return false;
    out = v;
    return true;
}

std::string
strFormat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (len < 0) {
        va_end(copy);
        return fmt;
    }
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, copy);
    va_end(copy);
    return std::string(buf.data(), static_cast<size_t>(len));
}

} // namespace paragraph
