/**
 * @file
 * JsonLineParser: a strict scanner for one line of flat JSON.
 *
 * Shared by the sweep journal, the paragraph-serve result store, and the
 * serve wire protocol — all of which exchange newline-delimited JSON
 * objects whose values are strings, unsigned integers, booleans, or flat
 * arrays of strings/integers. The parser is deliberately strict about that
 * subset (no nesting, no floats, no trailing bytes): any line damaged by a
 * crash or a torn write fails to parse as a whole and is skipped by its
 * loader, instead of yielding garbage field values.
 */

#ifndef PARAGRAPH_SUPPORT_JSON_LINE_HPP
#define PARAGRAPH_SUPPORT_JSON_LINE_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace paragraph {

class JsonLineParser
{
  public:
    explicit JsonLineParser(const std::string &line) : s_(line) {}

    /** Scan the whole line; false on any syntax violation or trailing
     *  bytes. Field values are available through the accessors after a
     *  successful parse. */
    bool parse();

    /** String field, or nullptr if absent / not a string. */
    const std::string *str(const char *key) const;

    /** Unsigned integer field; false if absent / not an integer. */
    bool num(const char *key, uint64_t &out) const;

    /** Boolean field; false if absent / not a boolean. */
    bool boolean(const char *key, bool &out) const;

    /** Array-of-strings field, or nullptr. */
    const std::vector<std::string> *strList(const char *key) const;

    /** Array-of-integers field, or nullptr. */
    const std::vector<uint64_t> *numList(const char *key) const;

  private:
    const std::string &s_;
    size_t p_ = 0;
    std::map<std::string, std::string> strs_;
    std::map<std::string, uint64_t> nums_;
    std::map<std::string, bool> bools_;
    std::map<std::string, std::vector<std::string>> strLists_;
    std::map<std::string, std::vector<uint64_t>> numLists_;

    void skipWs();
    bool eat(char c);
    bool parseString(std::string &out);
    bool parseNumber(uint64_t &out);
    bool parseValue(const std::string &key);
};

} // namespace paragraph

#endif // PARAGRAPH_SUPPORT_JSON_LINE_HPP
