#include "support/ascii_table.hpp"

#include <cstdio>
#include <sstream>

#include "support/panic.hpp"

namespace paragraph {

void
AsciiTable::addColumn(const std::string &header, Align align)
{
    PARA_ASSERT(rows_.empty(), "define all columns before adding rows");
    columns_.push_back(Column{header, align});
}

void
AsciiTable::beginRow()
{
    if (!rows_.empty()) {
        PARA_ASSERT(rows_.back().size() == columns_.size(),
                    "previous row incomplete");
    }
    rows_.emplace_back();
}

void
AsciiTable::cell(const std::string &text)
{
    PARA_ASSERT(!rows_.empty(), "beginRow() before cell()");
    PARA_ASSERT(rows_.back().size() < columns_.size(), "too many cells");
    rows_.back().push_back(text);
}

void
AsciiTable::cell(uint64_t value)
{
    cell(withCommas(value));
}

void
AsciiTable::cell(int64_t value)
{
    if (value < 0)
        cell("-" + withCommas(static_cast<uint64_t>(-value)));
    else
        cell(withCommas(static_cast<uint64_t>(value)));
}

void
AsciiTable::cell(double value, int precision)
{
    cell(withCommas(value, precision));
}

std::string
AsciiTable::withCommas(uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3);
    size_t lead = digits.size() % 3;
    if (lead == 0)
        lead = 3;
    for (size_t i = 0; i < digits.size(); ++i) {
        if (i != 0 && (i - lead) % 3 == 0 && i >= lead)
            out.push_back(',');
        out.push_back(digits[i]);
    }
    return out;
}

std::string
AsciiTable::withCommas(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value < 0 ? -value : value);
    std::string s(buf);
    size_t dot = s.find('.');
    std::string int_part = dot == std::string::npos ? s : s.substr(0, dot);
    std::string frac_part = dot == std::string::npos ? "" : s.substr(dot);
    uint64_t iv = 0;
    for (char c : int_part)
        iv = iv * 10 + static_cast<uint64_t>(c - '0');
    std::string out = withCommas(iv) + frac_part;
    if (value < 0)
        out.insert(out.begin(), '-');
    return out;
}

void
AsciiTable::print(std::ostream &os) const
{
    std::vector<size_t> widths(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c)
        widths[c] = columns_[c].header.size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (row[c].size() > widths[c])
                widths[c] = row[c].size();
        }
    }

    auto emit = [&](const std::string &text, size_t c) {
        size_t pad = widths[c] - text.size();
        if (columns_[c].align == Align::Right)
            os << std::string(pad, ' ') << text;
        else
            os << text << std::string(pad, ' ');
    };

    for (size_t c = 0; c < columns_.size(); ++c) {
        if (c)
            os << "  ";
        emit(columns_[c].header, c);
    }
    os << '\n';
    size_t total = 0;
    for (size_t c = 0; c < columns_.size(); ++c)
        total += widths[c] + (c ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << "  ";
            emit(row[c], c);
        }
        os << '\n';
    }
}

std::string
AsciiTable::toString() const
{
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

} // namespace paragraph
