#include "support/interval_profile.hpp"

#include "support/panic.hpp"

namespace paragraph {

IntervalProfile::IntervalProfile(size_t num_bins)
{
    PARA_ASSERT(num_bins >= 2 && (num_bins & (num_bins - 1)) == 0,
                "num_bins must be a power of two >= 2");
    starts_.assign(num_bins, 0);
    ends_.assign(num_bins, 0);
    edgeMass_.assign(num_bins, 0);
}

void
IntervalProfile::add(uint64_t start_level, uint64_t end_level)
{
    if (end_level < start_level)
        end_level = start_level;
    while (end_level >= bucketWidth_ * starts_.size())
        fold();
    size_t sb = static_cast<size_t>(start_level / bucketWidth_);
    size_t eb = static_cast<size_t>(end_level / bucketWidth_);
    ++starts_[sb];
    ++ends_[eb];
    // Record the edge buckets' exact overlap; buckets strictly between the
    // edges are fully covered and handled by the start/end prefix counts.
    uint64_t sb_end = (static_cast<uint64_t>(sb) + 1) * bucketWidth_ - 1;
    if (eb == sb) {
        edgeMass_[sb] += end_level - start_level + 1;
    } else {
        edgeMass_[sb] += sb_end - start_level + 1;
        edgeMass_[eb] +=
            end_level - static_cast<uint64_t>(eb) * bucketWidth_ + 1;
    }
    totalLiveLevels_ += end_level - start_level + 1;
    ++intervals_;
    if (!any_ || end_level > maxLevel_)
        maxLevel_ = end_level;
    any_ = true;
}

void
IntervalProfile::fold()
{
    size_t n = starts_.size();
    for (size_t i = 0; i < n / 2; ++i) {
        starts_[i] = starts_[2 * i] + starts_[2 * i + 1];
        ends_[i] = ends_[2 * i] + ends_[2 * i + 1];
        edgeMass_[i] = edgeMass_[2 * i] + edgeMass_[2 * i + 1];
    }
    for (size_t i = n / 2; i < n; ++i) {
        starts_[i] = 0;
        ends_[i] = 0;
        edgeMass_[i] = 0;
    }
    bucketWidth_ *= 2;
}

std::vector<IntervalProfile::Point>
IntervalProfile::series() const
{
    std::vector<Point> out;
    if (!any_)
        return out;
    size_t last_bin = static_cast<size_t>(maxLevel_ / bucketWidth_);
    out.reserve(last_bin + 1);
    // full_cover(b): intervals that started before b and end after it;
    // intervals whose start or end falls inside b contribute their exact
    // in-bucket overlap via edgeMass_. (Exact, except that the overlap of
    // edges recorded before a fold keeps the pre-fold bucket boundaries.)
    double started_before = 0.0;
    double ended_through = 0.0;
    double width = static_cast<double>(bucketWidth_);
    for (size_t b = 0; b <= last_bin; ++b) {
        double full_cover =
            started_before - (ended_through + static_cast<double>(ends_[b]));
        if (full_cover < 0)
            full_cover = 0;
        double avg = full_cover +
                     static_cast<double>(edgeMass_[b]) / width;
        uint64_t first = static_cast<uint64_t>(b) * bucketWidth_;
        uint64_t last = first + bucketWidth_ - 1;
        if (last > maxLevel_)
            last = maxLevel_;
        out.push_back(Point{first, last, avg});
        started_before += static_cast<double>(starts_[b]);
        ended_through += static_cast<double>(ends_[b]);
    }
    return out;
}

double
IntervalProfile::peakLive() const
{
    double peak = 0.0;
    double entering = 0.0;
    if (!any_)
        return 0.0;
    size_t last_bin = static_cast<size_t>(maxLevel_ / bucketWidth_);
    for (size_t b = 0; b <= last_bin; ++b) {
        // Upper bound within the bucket: everything entering plus all new
        // starts, before any ends are applied.
        double high = entering + static_cast<double>(starts_[b]);
        if (high > peak)
            peak = high;
        entering += static_cast<double>(starts_[b]) -
                    static_cast<double>(ends_[b]);
    }
    return peak;
}

double
IntervalProfile::meanLive() const
{
    if (!any_)
        return 0.0;
    return static_cast<double>(totalLiveLevels_) /
           static_cast<double>(maxLevel_ + 1);
}

} // namespace paragraph
