#include "support/interval_profile.hpp"

#include "support/panic.hpp"

namespace paragraph {

IntervalProfile::IntervalProfile(size_t num_bins)
{
    PARA_ASSERT(num_bins >= 2 && (num_bins & (num_bins - 1)) == 0,
                "num_bins must be a power of two >= 2");
    bins_.assign(num_bins, Bin{});
}

void
IntervalProfile::fold()
{
    size_t n = bins_.size();
    for (size_t i = 0; i < n / 2; ++i) {
        bins_[i].starts = bins_[2 * i].starts + bins_[2 * i + 1].starts;
        bins_[i].ends = bins_[2 * i].ends + bins_[2 * i + 1].ends;
        bins_[i].edgeMass =
            bins_[2 * i].edgeMass + bins_[2 * i + 1].edgeMass;
    }
    for (size_t i = n / 2; i < n; ++i)
        bins_[i] = Bin{};
    ++bucketShift_;
}

std::vector<IntervalProfile::Point>
IntervalProfile::series() const
{
    std::vector<Point> out;
    if (!any_)
        return out;
    size_t last_bin = static_cast<size_t>(maxLevel_ >> bucketShift_);
    out.reserve(last_bin + 1);
    // full_cover(b): intervals that started before b and end after it;
    // intervals whose start or end falls inside b contribute their exact
    // in-bucket overlap via the edge mass. (Exact, except that the overlap of
    // edges recorded before a fold keeps the pre-fold bucket boundaries.)
    double started_before = 0.0;
    double ended_through = 0.0;
    double width = static_cast<double>(bucketWidth());
    for (size_t b = 0; b <= last_bin; ++b) {
        double full_cover =
            started_before - (ended_through + static_cast<double>(bins_[b].ends));
        if (full_cover < 0)
            full_cover = 0;
        double avg = full_cover +
                     static_cast<double>(bins_[b].edgeMass) / width;
        uint64_t first = static_cast<uint64_t>(b) << bucketShift_;
        uint64_t last = first + bucketWidth() - 1;
        if (last > maxLevel_)
            last = maxLevel_;
        out.push_back(Point{first, last, avg});
        started_before += static_cast<double>(bins_[b].starts);
        ended_through += static_cast<double>(bins_[b].ends);
    }
    return out;
}

double
IntervalProfile::peakLive() const
{
    double peak = 0.0;
    double entering = 0.0;
    if (!any_)
        return 0.0;
    size_t last_bin = static_cast<size_t>(maxLevel_ >> bucketShift_);
    for (size_t b = 0; b <= last_bin; ++b) {
        // Upper bound within the bucket: everything entering plus all new
        // starts, before any ends are applied.
        double high = entering + static_cast<double>(bins_[b].starts);
        if (high > peak)
            peak = high;
        entering += static_cast<double>(bins_[b].starts) -
                    static_cast<double>(bins_[b].ends);
    }
    return peak;
}

double
IntervalProfile::meanLive() const
{
    if (!any_)
        return 0.0;
    return static_cast<double>(totalLiveLevels_) /
           static_cast<double>(maxLevel_ + 1);
}

void
IntervalProfile::mergeShifted(const IntervalProfile &other, uint64_t offset)
{
    if (!other.any_)
        return;
    uint64_t deepest = other.maxLevel_ + offset;
    while ((deepest >> bucketShift_) >= bins_.size())
        fold();
    size_t last_bin = static_cast<size_t>(other.maxLevel_ >>
                                          other.bucketShift_);
    for (size_t b = 0; b <= last_bin; ++b) {
        const Bin &src = other.bins_[b];
        if (src.starts == 0 && src.ends == 0 && src.edgeMass == 0)
            continue;
        uint64_t lo =
            (static_cast<uint64_t>(b) << other.bucketShift_) + offset;
        uint64_t hi = lo + other.bucketWidth() - 1;
        if (hi > deepest)
            hi = deepest;
        // Starts at the source bucket's first level, ends at its last:
        // every interval keeps start bucket <= end bucket, so the series
        // prefix sums stay consistent.
        bins_[lo >> bucketShift_].starts += src.starts;
        bins_[hi >> bucketShift_].ends += src.ends;
        bins_[lo >> bucketShift_].edgeMass += src.edgeMass;
    }
    intervals_ += other.intervals_;
    totalLiveLevels_ += other.totalLiveLevels_;
    if (deepest > maxLevel_)
        maxLevel_ = deepest;
    any_ = true;
}

} // namespace paragraph
