/**
 * @file
 * Error-reporting primitives in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated (a bug in this library);
 *            aborts so a debugger/core dump can pinpoint it.
 * fatal()  — the *user* asked for something impossible (bad config, bad
 *            input file); exits with status 1.
 * warn()   — something is suspicious but execution can continue.
 */

#ifndef PARAGRAPH_SUPPORT_PANIC_HPP
#define PARAGRAPH_SUPPORT_PANIC_HPP

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace paragraph {

/** Exception thrown by fatal() so callers (and tests) can intercept it. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);

std::string formatMessage(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

} // namespace paragraph

/** Abort with a message: library invariant violated. */
#define PARA_PANIC(...)                                                      \
    ::paragraph::detail::panicImpl(__FILE__, __LINE__,                       \
        ::paragraph::detail::formatMessage(__VA_ARGS__))

/** Raise FatalError: user-caused, unrecoverable condition. */
#define PARA_FATAL(...)                                                      \
    ::paragraph::detail::fatalImpl(__FILE__, __LINE__,                       \
        ::paragraph::detail::formatMessage(__VA_ARGS__))

/** Print a warning and continue. */
#define PARA_WARN(...)                                                       \
    ::paragraph::detail::warnImpl(__FILE__, __LINE__,                        \
        ::paragraph::detail::formatMessage(__VA_ARGS__))

/** Always-on assertion that panics (even in release builds). */
#define PARA_ASSERT(cond, ...)                                               \
    do {                                                                     \
        if (!(cond)) {                                                       \
            PARA_PANIC("assertion failed: %s", #cond);                       \
        }                                                                    \
    } while (0)

#endif // PARAGRAPH_SUPPORT_PANIC_HPP
