/**
 * @file
 * PARAGRAPH_TEST_SEED: one documented environment override for every seeded
 * random source in the test and fuzzing infrastructure.
 *
 * Randomized tests and the trace fuzzer are deterministic by construction
 * (support/prng.hpp), but each picks its own base seed. When CI surfaces a
 * failure under some seed, the whole run must be reproducible locally with
 * a single command:
 *
 *     PARAGRAPH_TEST_SEED=<N> ctest ...        # or paragraph-fuzz --seed=N
 *
 * testSeed(fallback) returns @p fallback when the variable is unset (the
 * default, bit-stable behaviour), and otherwise mixes the environment seed
 * with @p fallback so call sites that use several distinct base seeds stay
 * distinct while still being driven by the one override.
 */

#ifndef PARAGRAPH_SUPPORT_TEST_SEED_HPP
#define PARAGRAPH_SUPPORT_TEST_SEED_HPP

#include <cstdint>
#include <cstdlib>

namespace paragraph {

/** The raw PARAGRAPH_TEST_SEED value; @return false when unset/unparsable. */
inline bool
testSeedOverride(uint64_t &out)
{
    const char *env = std::getenv("PARAGRAPH_TEST_SEED");
    if (!env || !*env)
        return false;
    char *end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 0);
    if (!end || *end != '\0')
        return false;
    out = v;
    return true;
}

/**
 * @p fallback, unless PARAGRAPH_TEST_SEED is set — then a SplitMix64 mix of
 * the override with @p fallback (so distinct fallbacks map to distinct but
 * still override-determined seeds).
 */
inline uint64_t
testSeed(uint64_t fallback)
{
    uint64_t env = 0;
    if (!testSeedOverride(env))
        return fallback;
    uint64_t z = env ^ (fallback + 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace paragraph

#endif // PARAGRAPH_SUPPORT_TEST_SEED_HPP
