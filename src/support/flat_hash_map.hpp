/**
 * @file
 * FlatHashMap: an open-addressing, robin-hood hash map.
 *
 * The paper notes that Paragraph's live well used "a very space efficient
 * hash table ... to minimize the per value memory overhead" (Section 3.2) —
 * the live well of a 100M-instruction trace holds millions of live values.
 * This map stores keys and values inline in a single flat array (no per-node
 * allocation, no pointers), uses robin-hood displacement to keep probe
 * sequences short at high load factors, and supports erase via backward
 * shifting so no tombstones accumulate.
 *
 * Requirements: Key must be trivially copyable and equality comparable.
 * One key value must be reserved as the "empty" sentinel (default: all-ones).
 */

#ifndef PARAGRAPH_SUPPORT_FLAT_HASH_MAP_HPP
#define PARAGRAPH_SUPPORT_FLAT_HASH_MAP_HPP

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <utility>
#include <vector>

#include "support/panic.hpp"

namespace paragraph {

/** Mixes a 64-bit key into a well-distributed hash (splitmix64 finalizer). */
inline uint64_t
mixHash64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * Open-addressing robin-hood hash map with inline storage.
 *
 * @tparam Key      trivially copyable key type convertible to uint64_t hash
 * @tparam Value    mapped type (trivially copyable recommended)
 * @tparam EmptyKey sentinel key denoting an empty slot; must never be
 *                  inserted by the user
 */
template <typename Key, typename Value, Key EmptyKey = static_cast<Key>(~0ULL)>
class FlatHashMap
{
  public:
    struct Slot
    {
        Key key;
        Value value;
    };

    FlatHashMap() { rehash(initialCapacity); }

    /** Preallocate capacity for at least @p n elements. */
    explicit FlatHashMap(size_t n)
    {
        size_t cap = initialCapacity;
        while (cap * maxLoadNum < n * maxLoadDen)
            cap <<= 1;
        rehash(cap);
    }

    /** Number of live entries. */
    size_t size() const { return size_; }

    /** True when no entries are stored. */
    bool empty() const { return size_ == 0; }

    /** Current slot-array capacity (power of two). */
    size_t capacity() const { return slots_.size(); }

    /** Largest size() ever observed (live-well occupancy statistics). */
    size_t peakSize() const { return peakSize_; }

    /** Remove all entries, keeping the current capacity. */
    void
    clear()
    {
        for (auto &s : slots_)
            s.key = EmptyKey;
        size_ = 0;
    }

    /**
     * Find the value stored under @p key.
     * @return pointer to the mapped value, or nullptr when absent.
     */
    Value *
    find(Key key)
    {
        PARA_ASSERT(key != EmptyKey);
        size_t mask = slots_.size() - 1;
        size_t idx = indexFor(key);
        size_t dist = 0;
        while (true) {
            Slot &s = slots_[idx];
            if (s.key == key)
                return &s.value;
            if (s.key == EmptyKey || dist > probeDistance(s.key, idx))
                return nullptr;
            idx = (idx + 1) & mask;
            ++dist;
        }
    }

    const Value *
    find(Key key) const
    {
        return const_cast<FlatHashMap *>(this)->find(key);
    }

    /** True when @p key is present. */
    bool contains(Key key) const { return find(key) != nullptr; }

    /**
     * Hint that @p key will be probed soon: pull its home slot towards the
     * cache. The table is large and probed at random, so a lookup is
     * usually a cache miss; issuing the prefetch a few records ahead of the
     * probe hides that latency.
     */
    void
    prefetch(Key key) const
    {
        __builtin_prefetch(&slots_[indexFor(key)]);
    }

    /**
     * Find the value stored under @p key, inserting a copy of @p def when
     * absent — one probe sequence for find-or-create, instead of a find
     * followed by an insert that re-walks the same slots.
     *
     * @return the mapped value and whether it was freshly inserted.
     *
     * The returned pointer is invalidated by any later mutation that moves
     * slots; watch epoch() to detect that cheaply (see below).
     */
    std::pair<Value *, bool>
    findOrInsert(Key key, const Value &def)
    {
        PARA_ASSERT(key != EmptyKey);
        while (true) {
            size_t mask = slots_.size() - 1;
            size_t idx = indexFor(key);
            size_t dist = 0;
            while (true) {
                Slot &s = slots_[idx];
                if (s.key == key)
                    return {&s.value, false};
                if (s.key == EmptyKey || dist > probeDistance(s.key, idx))
                    break;
                idx = (idx + 1) & mask;
                ++dist;
            }
            // Absent: the probe stopped exactly where robin-hood insertion
            // wants the key. Grow first if the load factor demands it (then
            // re-probe in the bigger table), otherwise insert in place.
            if ((size_ + 1) * maxLoadDen > slots_.size() * maxLoadNum) {
                rehash(slots_.size() * 2);
                continue;
            }
            ++size_;
            if (size_ > peakSize_)
                peakSize_ = size_;
            return {&emplaceAt(idx, dist, Slot{key, def}), true};
        }
    }

    /**
     * Insert @p value under @p key, or overwrite an existing mapping.
     * @return reference to the stored value.
     */
    Value &
    insertOrAssign(Key key, const Value &value)
    {
        auto [slot, fresh] = findOrInsert(key, value);
        if (!fresh)
            *slot = value;
        return *slot;
    }

    /**
     * Fetch the value for @p key, default-constructing it when absent.
     */
    Value &
    operator[](Key key)
    {
        return *findOrInsert(key, Value{}).first;
    }

    /**
     * Mutation counter for pointer revalidation: advances whenever stored
     * entries may have moved (rehash, robin-hood displacement during an
     * insert, backward-shift during an erase). A caller holding pointers
     * from find()/findOrInsert() may keep using them as long as epoch() is
     * unchanged; after it changes, re-find by key.
     */
    uint64_t epoch() const { return epoch_; }

    /**
     * Erase the mapping for @p key using backward-shift deletion.
     * @return true when an entry was removed.
     */
    bool
    erase(Key key)
    {
        PARA_ASSERT(key != EmptyKey);
        size_t mask = slots_.size() - 1;
        size_t idx = indexFor(key);
        size_t dist = 0;
        while (true) {
            Slot &s = slots_[idx];
            if (s.key == key)
                break;
            if (s.key == EmptyKey || dist > probeDistance(s.key, idx))
                return false;
            idx = (idx + 1) & mask;
            ++dist;
        }
        removeAt(idx);
        return true;
    }

    /**
     * Erase the entry holding @p value — a pointer obtained from find() /
     * findOrInsert() at the current epoch(). Skips the probe sequence a
     * keyed erase would re-walk.
     */
    void
    eraseFound(Value *value)
    {
        Slot *slot = reinterpret_cast<Slot *>(
            reinterpret_cast<char *>(value) - offsetof(Slot, value));
        PARA_ASSERT(slot >= slots_.data() &&
                        slot < slots_.data() + slots_.size(),
                    "eraseFound pointer outside the table");
        removeAt(static_cast<size_t>(slot - slots_.data()));
    }

    /**
     * Invoke @p fn(key, value&) on every live entry (unspecified order).
     */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (auto &s : slots_) {
            if (s.key != EmptyKey)
                fn(s.key, s.value);
        }
    }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &s : slots_) {
            if (s.key != EmptyKey)
                fn(s.key, s.value);
        }
    }

    /** Approximate heap bytes held by the slot array. */
    size_t memoryBytes() const { return slots_.size() * sizeof(Slot); }

  private:
    static constexpr size_t initialCapacity = 16;
    // Grow when size > 7/8 of capacity.
    static constexpr size_t maxLoadNum = 7;
    static constexpr size_t maxLoadDen = 8;

    std::vector<Slot> slots_;
    size_t size_ = 0;
    size_t peakSize_ = 0;
    uint64_t epoch_ = 0;

    /** Backward-shift deletion of the entry at slot @p hole. */
    void
    removeAt(size_t hole)
    {
        size_t mask = slots_.size() - 1;
        size_t next = (hole + 1) & mask;
        while (slots_[next].key != EmptyKey &&
               probeDistance(slots_[next].key, next) > 0) {
            slots_[hole] = slots_[next];
            hole = next;
            next = (next + 1) & mask;
            ++epoch_; // an entry moved; held pointers are stale
        }
        slots_[hole].key = EmptyKey;
        --size_;
    }

    size_t
    indexFor(Key key) const
    {
        return static_cast<size_t>(mixHash64(static_cast<uint64_t>(key))) &
               (slots_.size() - 1);
    }

    size_t
    probeDistance(Key key, size_t current_idx) const
    {
        size_t mask = slots_.size() - 1;
        return (current_idx + slots_.size() - indexFor(key)) & mask;
    }

    void
    rehash(size_t new_cap)
    {
        ++epoch_; // every entry moves
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(new_cap, Slot{EmptyKey, Value{}});
        for (auto &s : old) {
            if (s.key != EmptyKey)
                insertFresh(s.key, s.value);
        }
    }

    /** Robin-hood insert of a key known to be absent. */
    Value &
    insertFresh(Key key, Value value)
    {
        return emplaceAt(indexFor(key), 0, Slot{key, value});
    }

    /**
     * Continue a robin-hood walk: place @p incoming at or after slot @p idx
     * (its current probe distance is @p dist), displacing richer occupants.
     * @return reference to where incoming's value landed.
     */
    Value &
    emplaceAt(size_t idx, size_t dist, Slot incoming)
    {
        size_t mask = slots_.size() - 1;
        Value *result = nullptr;
        while (true) {
            Slot &s = slots_[idx];
            if (s.key == EmptyKey) {
                s = incoming;
                return result ? *result : s.value;
            }
            size_t existing_dist = probeDistance(s.key, idx);
            if (existing_dist < dist) {
                std::swap(incoming, s);
                if (!result)
                    result = &s.value;
                dist = existing_dist;
                ++epoch_; // the displaced occupant will move
            }
            idx = (idx + 1) & mask;
            ++dist;
        }
    }
};

} // namespace paragraph

#endif // PARAGRAPH_SUPPORT_FLAT_HASH_MAP_HPP
