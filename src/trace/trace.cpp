#include "trace/record.hpp"

#include <sstream>

#include "isa/registers.hpp"
#include "support/string_utils.hpp"
#include "trace/stats.hpp"

namespace paragraph {
namespace trace {

const char *
segmentName(Segment seg)
{
    switch (seg) {
      case Segment::None:  return "none";
      case Segment::Data:  return "data";
      case Segment::Heap:  return "heap";
      case Segment::Stack: return "stack";
      default:             return "?";
    }
}

namespace {

std::string
operandToString(const Operand &op)
{
    switch (op.kind) {
      case Operand::Kind::IntReg:
        return isa::intRegName(static_cast<uint8_t>(op.id));
      case Operand::Kind::FpReg:
        return isa::fpRegName(static_cast<uint8_t>(op.id));
      case Operand::Kind::Mem:
        return strFormat("%s[0x%llx]", segmentName(op.seg),
                         static_cast<unsigned long long>(op.id));
      default:
        return "-";
    }
}

} // namespace

std::string
toString(const TraceRecord &rec)
{
    std::ostringstream oss;
    oss << isa::opClassName(rec.cls) << " ";
    if (rec.dest.valid())
        oss << operandToString(rec.dest) << " <-";
    for (int i = 0; i < rec.numSrcs; ++i)
        oss << " " << operandToString(rec.srcs[i]);
    if (rec.isSysCall)
        oss << " [syscall]";
    if (!rec.createsValue)
        oss << " [no-value]";
    return oss.str();
}

void
TraceStats::add(const TraceRecord &rec)
{
    ++totalInstructions;
    ++byClass[static_cast<size_t>(rec.cls)];
    if (rec.createsValue)
        ++valueCreating;
    if (rec.cls == isa::OpClass::Control)
        ++controlInstructions;
    if (rec.isSysCall)
        ++sysCalls;
    if (rec.cls == isa::OpClass::Load)
        ++loads;
    if (rec.cls == isa::OpClass::Store)
        ++stores;

    auto count_mem = [this](const Operand &op) {
        if (!op.isMem())
            return;
        if (op.seg == Segment::Stack)
            ++stackAccesses;
        else
            ++dataAccesses;
    };
    for (int i = 0; i < rec.numSrcs; ++i)
        count_mem(rec.srcs[i]);
    count_mem(rec.dest);
}

TraceStats
TraceStats::collect(TraceSource &src)
{
    TraceStats stats;
    TraceRecord rec;
    while (src.next(rec))
        stats.add(rec);
    return stats;
}

double
TraceStats::fpFraction() const
{
    if (totalInstructions == 0)
        return 0.0;
    uint64_t fp = byClass[static_cast<size_t>(isa::OpClass::FpAddSub)] +
                  byClass[static_cast<size_t>(isa::OpClass::FpMul)] +
                  byClass[static_cast<size_t>(isa::OpClass::FpDiv)];
    return static_cast<double>(fp) / static_cast<double>(totalInstructions);
}

double
TraceStats::instructionsPerSysCall() const
{
    if (sysCalls == 0)
        return 0.0;
    return static_cast<double>(totalInstructions) /
           static_cast<double>(sysCalls);
}

} // namespace trace
} // namespace paragraph
