#include "trace/mmap_io.hpp"

#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "support/crc32.hpp"
#include "support/failpoint.hpp"
#include "support/panic.hpp"
#include "trace/bulk_unpack.hpp"

namespace paragraph {
namespace trace {

namespace {

uint64_t
recordOffset(uint64_t index)
{
    return sizeof(TraceFileHeader) + index * sizeof(PackedRecord);
}

[[noreturn]] void
throwTruncated(const std::string &path, uint64_t index)
{
    PARA_FATAL("trace file truncated: %s (record %llu at offset %llu)",
               path.c_str(), static_cast<unsigned long long>(index),
               static_cast<unsigned long long>(recordOffset(index)));
}

} // namespace

MmapTraceFile::MmapTraceFile(const std::string &path)
{
    open(path, /*throwOnMapFailure=*/true);
}

std::shared_ptr<MmapTraceFile>
MmapTraceFile::tryOpen(const std::string &path)
{
    // Probe readability first so a genuinely missing file throws the
    // reader's "cannot open" error instead of silently falling back.
    std::shared_ptr<MmapTraceFile> file(new MmapTraceFile());
    if (!file->open(path, /*throwOnMapFailure=*/false))
        return nullptr;
    return file;
}

bool
MmapTraceFile::open(const std::string &path, bool throwOnMapFailure)
{
    path_ = path;
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        PARA_FATAL("cannot open trace file: %s", path.c_str());

    struct stat st;
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        PARA_FATAL("cannot open trace file: %s", path.c_str());
    }
    size_t size = static_cast<size_t>(st.st_size);
    if (size < sizeof(TraceFileHeader)) {
        ::close(fd);
        PARA_FATAL("trace file too short: %s", path.c_str());
    }

    void *map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd); // the mapping keeps its own reference to the file
    if (PARA_FAILPOINT("trace.mmap.map") && map != MAP_FAILED) {
        // Simulated ENOMEM: release the real mapping and take the same
        // branch a genuine mmap failure would.
        ::munmap(map, size);
        map = MAP_FAILED;
    }
    if (map == MAP_FAILED) {
        if (throwOnMapFailure)
            PARA_FATAL("cannot mmap trace file: %s", path.c_str());
        return false;
    }
    map_ = map;
    mapSize_ = size;

    TraceFileHeader hdr;
    std::memcpy(&hdr, map_, sizeof(hdr));
    if (hdr.magic != traceFileMagic)
        PARA_FATAL("bad trace file magic in %s", path.c_str());
    if (hdr.version < 1 || hdr.version > traceFileVersion)
        PARA_FATAL("unsupported trace file version %u in %s", hdr.version,
                   path.c_str());
    if (hdr.version >= 2) {
        uint32_t expect = traceHeaderCrc(hdr);
        if (hdr.headerCrc != expect) {
            PARA_FATAL("trace file header checksum mismatch in %s "
                       "(stored %08x, computed %08x); header is corrupt",
                       path.c_str(), hdr.headerCrc, expect);
        }
    } else {
        PARA_WARN("trace file %s is format v1: no checksums, integrity "
                  "cannot be verified",
                  path.c_str());
    }
    version_ = hdr.version;
    count_ = hdr.count;
    payloadCrc_ = hdr.payloadCrc;
    payload_ = static_cast<const uint8_t *>(map_) + sizeof(TraceFileHeader);
    uint64_t backed = (size - sizeof(TraceFileHeader)) / sizeof(PackedRecord);
    avail_ = backed < count_ ? backed : count_;
    return true;
}

MmapTraceFile::~MmapTraceFile()
{
    if (map_)
        ::munmap(map_, mapSize_);
}

const PackedRecord *
MmapTraceFile::packed(uint64_t index) const
{
    PARA_ASSERT(index < avail_, "packed record index out of range");
    return reinterpret_cast<const PackedRecord *>(
        payload_ + index * sizeof(PackedRecord));
}

void
MmapTraceFile::decode(uint64_t first, size_t n, TraceRecord *out) const
{
    if (n == 0)
        return;
    if (first + n > avail_)
        throwTruncated(path_, avail_);
    unpackRecords(reinterpret_cast<const PackedRecord *>(
                      payload_ + first * sizeof(PackedRecord)),
                  out, n, path_, first);
}

uint32_t
MmapTraceFile::crcRange(uint64_t first, uint64_t n, uint32_t crc) const
{
    PARA_ASSERT(first + n <= avail_, "crc range out of bounds");
    return crc32Update(crc, payload_ + first * sizeof(PackedRecord),
                       n * sizeof(PackedRecord));
}

void
MmapTraceFile::verifyPayload() const
{
    if (version_ < 2)
        return;
    if (avail_ < count_)
        throwTruncated(path_, avail_);
    uint32_t crc = crcRange(0, count_, 0);
    if (PARA_FAILPOINT("trace.mmap.crc"))
        crc ^= 1; // simulated flipped payload bit
    if (crc != payloadCrc_) {
        PARA_FATAL("trace file payload checksum mismatch in %s "
                   "(stored %08x, computed %08x over %llu records); "
                   "trace is corrupt",
                   path_.c_str(), payloadCrc_, crc,
                   static_cast<unsigned long long>(count_));
    }
}

bool
MmapTraceSource::next(TraceRecord &rec)
{
    return nextBatch(&rec, 1) == 1;
}

size_t
MmapTraceSource::nextBatch(TraceRecord *out, size_t max)
{
    uint64_t count = file_->recordCount();
    if (pos_ >= count || max == 0)
        return 0;
    uint64_t remaining = count - pos_;
    size_t n = remaining < max ? static_cast<size_t>(remaining) : max;
    // Past-the-bytes reads throw the reader's truncation error from decode.
    file_->decode(pos_, n, out);
    if (file_->formatVersion() >= 2)
        runningCrc_ = file_->crcRange(pos_, n, runningCrc_);
    pos_ += n;
    if (file_->formatVersion() >= 2 && pos_ == count &&
        runningCrc_ != file_->storedPayloadCrc()) {
        PARA_FATAL("trace file payload checksum mismatch in %s "
                   "(stored %08x, computed %08x over %llu records); "
                   "trace is corrupt",
                   file_->path().c_str(), file_->storedPayloadCrc(),
                   runningCrc_, static_cast<unsigned long long>(count));
    }
    return n;
}

void
MmapTraceSource::reset()
{
    pos_ = 0;
    runningCrc_ = 0;
}

} // namespace trace
} // namespace paragraph
