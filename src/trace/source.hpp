/**
 * @file
 * TraceSource: the pull interface Paragraph consumes traces through.
 *
 * Traces in the paper are up to 100M instructions; storing them is optional.
 * A TraceSource streams records one at a time and can be reset so parameter
 * sweeps (e.g. Figure 8's window-size study, one full re-analysis per point)
 * can replay the identical trace.
 */

#ifndef PARAGRAPH_TRACE_SOURCE_HPP
#define PARAGRAPH_TRACE_SOURCE_HPP

#include <cstddef>
#include <string>

#include "trace/record.hpp"

namespace paragraph {
namespace trace {

class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next record.
     * @return false at end of trace (@p rec is then unspecified).
     */
    virtual bool next(TraceRecord &rec) = 0;

    /**
     * Produce up to @p max records into @p out.
     *
     * The default forwards to next(); in-memory sources override this with
     * a bulk copy so consumers pay one virtual call per block instead of
     * one per record.
     *
     * @return number of records produced; 0 only at end of trace.
     */
    virtual size_t
    nextBatch(TraceRecord *out, size_t max)
    {
        size_t n = 0;
        while (n < max && next(out[n]))
            ++n;
        return n;
    }

    /** Restart the trace from the beginning (must be deterministic). */
    virtual void reset() = 0;

    /** Identifying name for reports. */
    virtual std::string name() const { return "trace"; }
};

} // namespace trace
} // namespace paragraph

#endif // PARAGRAPH_TRACE_SOURCE_HPP
