/**
 * @file
 * TraceSource: the pull interface Paragraph consumes traces through.
 *
 * Traces in the paper are up to 100M instructions; storing them is optional.
 * A TraceSource streams records one at a time and can be reset so parameter
 * sweeps (e.g. Figure 8's window-size study, one full re-analysis per point)
 * can replay the identical trace.
 */

#ifndef PARAGRAPH_TRACE_SOURCE_HPP
#define PARAGRAPH_TRACE_SOURCE_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "trace/record.hpp"

namespace paragraph {
namespace trace {

class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next record.
     * @return false at end of trace (@p rec is then unspecified).
     */
    virtual bool next(TraceRecord &rec) = 0;

    /**
     * Produce up to @p max records into @p out.
     *
     * The default forwards to next(); in-memory sources override this with
     * a bulk copy so consumers pay one virtual call per block instead of
     * one per record.
     *
     * @return number of records produced; 0 only at end of trace.
     */
    virtual size_t
    nextBatch(TraceRecord *out, size_t max)
    {
        size_t n = 0;
        while (n < max && next(out[n]))
            ++n;
        return n;
    }

    /** Restart the trace from the beginning (must be deterministic). */
    virtual void reset() = 0;

    /** Identifying name for reports. */
    virtual std::string name() const { return "trace"; }
};

/**
 * Caps an owned source at a fixed record count.
 *
 * Streaming consumers that bypass an in-memory capture still need the
 * capture-time record cap (TraceRepository::Options::maxRecords) applied,
 * or a capped and an uncapped run of the same file would disagree. The
 * wrapper ends the trace after @p maxRecords records; reset() restarts
 * both the inner source and the count.
 */
class LimitedSource : public TraceSource
{
  public:
    LimitedSource(std::unique_ptr<TraceSource> inner, uint64_t maxRecords)
        : inner_(std::move(inner)), maxRecords_(maxRecords) {}

    bool
    next(TraceRecord &rec) override
    {
        if (produced_ >= maxRecords_)
            return false;
        if (!inner_->next(rec))
            return false;
        ++produced_;
        return true;
    }

    size_t
    nextBatch(TraceRecord *out, size_t max) override
    {
        uint64_t remaining = maxRecords_ - produced_;
        if (produced_ >= maxRecords_)
            return 0;
        if (remaining < max)
            max = static_cast<size_t>(remaining);
        size_t n = inner_->nextBatch(out, max);
        produced_ += n;
        return n;
    }

    void
    reset() override
    {
        inner_->reset();
        produced_ = 0;
    }

    std::string name() const override { return inner_->name(); }

  private:
    std::unique_ptr<TraceSource> inner_;
    uint64_t maxRecords_;
    uint64_t produced_ = 0;
};

} // namespace trace
} // namespace paragraph

#endif // PARAGRAPH_TRACE_SOURCE_HPP
