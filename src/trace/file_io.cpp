#include "trace/file_io.hpp"

#include <cstring>

#include "support/panic.hpp"

namespace paragraph {
namespace trace {

namespace {

struct FileHeader
{
    uint32_t magic;
    uint32_t version;
    uint64_t count;
    uint64_t reserved;
};

Operand
unpackOperand(uint8_t kind_seg, uint64_t id)
{
    Operand op;
    op.kind = static_cast<Operand::Kind>(kind_seg & 0x0f);
    op.seg = static_cast<Segment>(kind_seg >> 4);
    op.id = id;
    return op;
}

uint8_t
packOperandKind(const Operand &op)
{
    return static_cast<uint8_t>(static_cast<uint8_t>(op.kind) |
                                (static_cast<uint8_t>(op.seg) << 4));
}

} // namespace

PackedRecord
packRecord(const TraceRecord &rec)
{
    PackedRecord p = {};
    p.cls = static_cast<uint8_t>(rec.cls);
    p.flags = static_cast<uint8_t>((rec.createsValue ? 1 : 0) |
                                   (rec.isSysCall ? 2 : 0) |
                                   (rec.isCondBranch ? 4 : 0) |
                                   (rec.branchTaken ? 8 : 0));
    p.numSrcs = rec.numSrcs;
    p.lastUseMask = rec.lastUseMask;
    for (int i = 0; i < maxSrcs; ++i) {
        p.operandKinds[i] = packOperandKind(rec.srcs[i]);
        p.operandIds[i] = rec.srcs[i].id;
    }
    p.operandKinds[3] = packOperandKind(rec.dest);
    p.operandIds[3] = rec.dest.id;
    p.pc = rec.pc;
    return p;
}

TraceRecord
unpackRecord(const PackedRecord &p)
{
    TraceRecord rec;
    rec.cls = static_cast<isa::OpClass>(p.cls);
    rec.createsValue = (p.flags & 1) != 0;
    rec.isSysCall = (p.flags & 2) != 0;
    rec.isCondBranch = (p.flags & 4) != 0;
    rec.branchTaken = (p.flags & 8) != 0;
    rec.numSrcs = p.numSrcs;
    rec.lastUseMask = p.lastUseMask;
    for (int i = 0; i < maxSrcs; ++i)
        rec.srcs[i] = unpackOperand(p.operandKinds[i], p.operandIds[i]);
    rec.dest = unpackOperand(p.operandKinds[3], p.operandIds[3]);
    rec.pc = p.pc;
    return rec;
}

TraceFileWriter::TraceFileWriter(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        PARA_FATAL("cannot open trace file for writing: %s", path.c_str());
    writeHeader();
}

TraceFileWriter::~TraceFileWriter()
{
    close();
}

void
TraceFileWriter::writeHeader()
{
    FileHeader hdr{traceFileMagic, traceFileVersion, count_, 0};
    if (std::fseek(file_, 0, SEEK_SET) != 0 ||
        std::fwrite(&hdr, sizeof(hdr), 1, file_) != 1) {
        PARA_FATAL("trace file header write failed");
    }
}

void
TraceFileWriter::write(const TraceRecord &rec)
{
    PARA_ASSERT(file_, "write after close");
    PackedRecord p = packRecord(rec);
    if (std::fwrite(&p, sizeof(p), 1, file_) != 1)
        PARA_FATAL("trace file record write failed");
    ++count_;
}

uint64_t
TraceFileWriter::writeAll(TraceSource &src)
{
    TraceRecord rec;
    uint64_t n = 0;
    while (src.next(rec)) {
        write(rec);
        ++n;
    }
    return n;
}

void
TraceFileWriter::close()
{
    if (!file_)
        return;
    writeHeader();
    std::fclose(file_);
    file_ = nullptr;
}

TraceFileReader::TraceFileReader(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        PARA_FATAL("cannot open trace file: %s", path.c_str());
    FileHeader hdr;
    if (std::fread(&hdr, sizeof(hdr), 1, file_) != 1) {
        std::fclose(file_);
        file_ = nullptr;
        PARA_FATAL("trace file too short: %s", path.c_str());
    }
    if (hdr.magic != traceFileMagic) {
        std::fclose(file_);
        file_ = nullptr;
        PARA_FATAL("bad trace file magic in %s", path.c_str());
    }
    if (hdr.version != traceFileVersion) {
        std::fclose(file_);
        file_ = nullptr;
        PARA_FATAL("unsupported trace file version %u in %s", hdr.version,
                   path.c_str());
    }
    count_ = hdr.count;
}

TraceFileReader::~TraceFileReader()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceFileReader::next(TraceRecord &rec)
{
    if (pos_ >= count_)
        return false;
    PackedRecord p;
    if (std::fread(&p, sizeof(p), 1, file_) != 1)
        PARA_FATAL("trace file truncated: %s", path_.c_str());
    rec = unpackRecord(p);
    ++pos_;
    return true;
}

void
TraceFileReader::reset()
{
    PARA_ASSERT(file_, "reset on closed reader");
    if (std::fseek(file_, sizeof(FileHeader), SEEK_SET) != 0)
        PARA_FATAL("trace file seek failed: %s", path_.c_str());
    pos_ = 0;
}

} // namespace trace
} // namespace paragraph
