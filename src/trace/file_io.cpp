#include "trace/file_io.hpp"

#include <cstddef>
#include <cstring>

#include "support/crc32.hpp"
#include "support/failpoint.hpp"
#include "support/panic.hpp"

namespace paragraph {
namespace trace {

namespace {

Operand
unpackOperand(uint8_t kind_seg, uint64_t id)
{
    Operand op;
    op.kind = static_cast<Operand::Kind>(kind_seg & 0x0f);
    op.seg = static_cast<Segment>(kind_seg >> 4);
    op.id = id;
    return op;
}

uint8_t
packOperandKind(const Operand &op)
{
    return static_cast<uint8_t>(static_cast<uint8_t>(op.kind) |
                                (static_cast<uint8_t>(op.seg) << 4));
}

void
validateOperandByte(uint8_t kind_seg, const char *which)
{
    uint8_t kind = kind_seg & 0x0f;
    uint8_t seg = kind_seg >> 4;
    if (kind > static_cast<uint8_t>(Operand::Kind::Mem))
        PARA_FATAL("bad %s operand kind %u", which, kind);
    if (seg > static_cast<uint8_t>(Segment::Stack))
        PARA_FATAL("bad %s operand segment %u", which, seg);
}

/** Byte offset of record @p index in a trace file. */
uint64_t
recordOffset(uint64_t index)
{
    return sizeof(TraceFileHeader) + index * sizeof(PackedRecord);
}

} // namespace

uint32_t
traceHeaderCrc(const TraceFileHeader &hdr)
{
    return crc32Of(&hdr, offsetof(TraceFileHeader, headerCrc));
}

PackedRecord
packRecord(const TraceRecord &rec)
{
    PackedRecord p = {};
    p.cls = static_cast<uint8_t>(rec.cls);
    p.flags = static_cast<uint8_t>((rec.createsValue ? 1 : 0) |
                                   (rec.isSysCall ? 2 : 0) |
                                   (rec.isCondBranch ? 4 : 0) |
                                   (rec.branchTaken ? 8 : 0));
    p.numSrcs = rec.numSrcs;
    p.lastUseMask = rec.lastUseMask;
    for (int i = 0; i < maxSrcs; ++i) {
        p.operandKinds[i] = packOperandKind(rec.srcs[i]);
        p.operandIds[i] = rec.srcs[i].id;
    }
    p.operandKinds[3] = packOperandKind(rec.dest);
    p.operandIds[3] = rec.dest.id;
    p.pc = rec.pc;
    return p;
}

TraceRecord
unpackRecord(const PackedRecord &p)
{
    // Range-check every field that selects into an enum or array before
    // trusting it: a flipped on-disk byte must become a diagnosed error,
    // not an out-of-bounds latency lookup or a phantom operand class.
    if (p.cls >= static_cast<uint8_t>(isa::OpClass::NumClasses))
        PARA_FATAL("bad operation class %u", p.cls);
    if (p.flags & ~0x0fu)
        PARA_FATAL("bad flag bits 0x%02x", p.flags);
    if (p.numSrcs > maxSrcs)
        PARA_FATAL("bad source count %u", p.numSrcs);
    if (p.lastUseMask & ~0x07u)
        PARA_FATAL("bad last-use mask 0x%02x", p.lastUseMask);
    for (int i = 0; i < maxSrcs; ++i)
        validateOperandByte(p.operandKinds[i], "source");
    validateOperandByte(p.operandKinds[3], "destination");

    TraceRecord rec;
    rec.cls = static_cast<isa::OpClass>(p.cls);
    rec.createsValue = (p.flags & 1) != 0;
    rec.isSysCall = (p.flags & 2) != 0;
    rec.isCondBranch = (p.flags & 4) != 0;
    rec.branchTaken = (p.flags & 8) != 0;
    rec.numSrcs = p.numSrcs;
    rec.lastUseMask = p.lastUseMask;
    for (int i = 0; i < maxSrcs; ++i)
        rec.srcs[i] = unpackOperand(p.operandKinds[i], p.operandIds[i]);
    rec.dest = unpackOperand(p.operandKinds[3], p.operandIds[3]);
    rec.pc = p.pc;
    return rec;
}

TraceFileWriter::TraceFileWriter(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        PARA_FATAL("cannot open trace file for writing: %s", path.c_str());
    writeHeader();
}

TraceFileWriter::~TraceFileWriter()
{
    closeFile(false);
}

void
TraceFileWriter::writeHeader()
{
    TraceFileHeader hdr{traceFileMagic, traceFileVersion, count_,
                        payloadCrc_, 0};
    hdr.headerCrc = traceHeaderCrc(hdr);
    if (std::fseek(file_, 0, SEEK_SET) != 0 ||
        std::fwrite(&hdr, sizeof(hdr), 1, file_) != 1) {
        PARA_FATAL("trace file header write failed: %s", path_.c_str());
    }
}

void
TraceFileWriter::write(const TraceRecord &rec)
{
    PARA_ASSERT(file_, "write after close");
    PackedRecord p = packRecord(rec);
    if (PARA_FAILPOINT("trace.file.write") ||
        std::fwrite(&p, sizeof(p), 1, file_) != 1)
        PARA_FATAL("trace file record write failed: %s", path_.c_str());
    payloadCrc_ = crc32Update(payloadCrc_, &p, sizeof(p));
    ++count_;
}

uint64_t
TraceFileWriter::writeAll(TraceSource &src)
{
    TraceRecord rec;
    uint64_t n = 0;
    while (src.next(rec)) {
        write(rec);
        ++n;
    }
    return n;
}

void
TraceFileWriter::close()
{
    closeFile(true);
}

void
TraceFileWriter::closeFile(bool throwOnError)
{
    if (!file_)
        return;
    std::FILE *f = file_;
    file_ = nullptr;

    // Finalize the header, then check the flush and close results: buffered
    // stdio reports a full disk only here, and dropping that would leave a
    // silently short or checksum-less trace on disk.
    const char *err = nullptr;
    TraceFileHeader hdr{traceFileMagic, traceFileVersion, count_,
                        payloadCrc_, 0};
    hdr.headerCrc = traceHeaderCrc(hdr);
    if (std::fseek(f, 0, SEEK_SET) != 0 ||
        std::fwrite(&hdr, sizeof(hdr), 1, f) != 1) {
        err = "trace file header write failed";
    }
    if (!err && std::fflush(f) != 0)
        err = "trace file flush failed";
    if (std::fclose(f) != 0 && !err)
        err = "trace file close failed";
    if (err) {
        if (throwOnError)
            PARA_FATAL("%s: %s", err, path_.c_str());
        PARA_WARN("%s: %s (in destructor; trace is incomplete)", err,
                  path_.c_str());
    }
}

TraceFileReader::TraceFileReader(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        PARA_FATAL("cannot open trace file: %s", path.c_str());
    TraceFileHeader hdr;
    if (std::fread(&hdr, sizeof(hdr), 1, file_) != 1) {
        std::fclose(file_);
        file_ = nullptr;
        PARA_FATAL("trace file too short: %s", path.c_str());
    }
    if (hdr.magic != traceFileMagic) {
        std::fclose(file_);
        file_ = nullptr;
        PARA_FATAL("bad trace file magic in %s", path.c_str());
    }
    if (hdr.version < 1 || hdr.version > traceFileVersion) {
        std::fclose(file_);
        file_ = nullptr;
        PARA_FATAL("unsupported trace file version %u in %s", hdr.version,
                   path.c_str());
    }
    if (hdr.version >= 2) {
        uint32_t expect = traceHeaderCrc(hdr);
        if (hdr.headerCrc != expect) {
            std::fclose(file_);
            file_ = nullptr;
            PARA_FATAL("trace file header checksum mismatch in %s "
                       "(stored %08x, computed %08x); header is corrupt",
                       path.c_str(), hdr.headerCrc, expect);
        }
    } else {
        PARA_WARN("trace file %s is format v1: no checksums, integrity "
                  "cannot be verified",
                  path.c_str());
    }
    version_ = hdr.version;
    count_ = hdr.count;
    expectedPayloadCrc_ = hdr.payloadCrc;
}

TraceFileReader::~TraceFileReader()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceFileReader::next(TraceRecord &rec)
{
    if (pos_ >= count_)
        return false;
    PackedRecord p;
    if (PARA_FAILPOINT("trace.file.read") ||
        std::fread(&p, sizeof(p), 1, file_) != 1) {
        PARA_FATAL("trace file truncated: %s (record %llu at offset %llu)",
                   path_.c_str(), static_cast<unsigned long long>(pos_),
                   static_cast<unsigned long long>(recordOffset(pos_)));
    }
    try {
        rec = unpackRecord(p);
    } catch (const FatalError &e) {
        PARA_FATAL("%s: %s (record %llu at offset %llu)", path_.c_str(),
                   e.what(), static_cast<unsigned long long>(pos_),
                   static_cast<unsigned long long>(recordOffset(pos_)));
    }
    if (version_ >= 2)
        runningCrc_ = crc32Update(runningCrc_, &p, sizeof(p));
    ++pos_;
    if (version_ >= 2 && pos_ == count_ &&
        runningCrc_ != expectedPayloadCrc_) {
        PARA_FATAL("trace file payload checksum mismatch in %s "
                   "(stored %08x, computed %08x over %llu records); "
                   "trace is corrupt",
                   path_.c_str(), expectedPayloadCrc_, runningCrc_,
                   static_cast<unsigned long long>(count_));
    }
    return true;
}

void
TraceFileReader::reset()
{
    PARA_ASSERT(file_, "reset on closed reader");
    if (std::fseek(file_, sizeof(TraceFileHeader), SEEK_SET) != 0)
        PARA_FATAL("trace file seek failed: %s", path_.c_str());
    pos_ = 0;
    runningCrc_ = 0;
}

uint32_t
traceBufferCrc(const TraceBuffer &buffer)
{
    uint32_t crc = 0;
    for (const TraceRecord &rec : buffer.records()) {
        PackedRecord p = packRecord(rec);
        crc = crc32Update(crc, &p, sizeof(p));
    }
    return crc;
}

} // namespace trace
} // namespace paragraph
