#include "trace/block_pipeline.hpp"

namespace paragraph {
namespace trace {

BlockPipeline::BlockPipeline(TraceSource &src, Options opt)
    : src_(src), opt_(opt)
{
    if (opt_.blockRecords == 0)
        opt_.blockRecords = 1;
    // Both blocks are allocated before the thread starts, so the producer
    // only ever writes record payloads — no allocation races with next().
    slots_[0].buf.resize(opt_.blockRecords);
    slots_[1].buf.resize(opt_.blockRecords);
    producer_ = std::thread([this] { produce(); });
}

BlockPipeline::~BlockPipeline()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    producer_.join();
}

void
BlockPipeline::produce()
{
    uint64_t produced = 0;
    size_t idx = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [&] { return stop_ || !slots_[idx].full; });
            if (stop_)
                return;
        }
        // Never request past the cap: a bounded pipeline must not drain a
        // shared source further than record-at-a-time consumption would.
        size_t want = opt_.blockRecords;
        if (opt_.maxRecords) {
            uint64_t remaining = opt_.maxRecords - produced;
            if (remaining < want)
                want = static_cast<size_t>(remaining);
        }
        size_t n = 0;
        if (want > 0) {
            try {
                n = src_.nextBatch(slots_[idx].buf.data(), want);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mutex_);
                error_ = std::current_exception();
                eof_ = true;
                cv_.notify_all();
                return;
            }
        }
        produced += n;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (stop_)
                return;
            if (n == 0) {
                eof_ = true;
                cv_.notify_all();
                return;
            }
            slots_[idx].count = n;
            slots_[idx].full = true;
            if (opt_.maxRecords && produced >= opt_.maxRecords)
                eof_ = true;
            cv_.notify_all();
            if (eof_)
                return;
        }
        idx ^= 1;
    }
}

size_t
BlockPipeline::next(const TraceRecord **records)
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (outstanding_) {
        // Release the block handed out by the previous call; the producer
        // may refill it now.
        slots_[consumeIdx_].full = false;
        consumeIdx_ ^= 1;
        outstanding_ = false;
        cv_.notify_all();
    }
    cv_.wait(lock, [&] {
        return slots_[consumeIdx_].full || eof_ || error_;
    });
    if (slots_[consumeIdx_].full) {
        // Drain remaining full blocks even after eof/error was flagged.
        outstanding_ = true;
        *records = slots_[consumeIdx_].buf.data();
        return slots_[consumeIdx_].count;
    }
    if (error_) {
        std::exception_ptr e = error_;
        error_ = nullptr;
        std::rethrow_exception(e);
    }
    return 0;
}

} // namespace trace
} // namespace paragraph
