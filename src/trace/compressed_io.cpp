#include "trace/compressed_io.hpp"

#include <memory>

#include "support/panic.hpp"
#include "trace/file_io.hpp"
#include "trace/mmap_io.hpp"

namespace paragraph {
namespace trace {

namespace {

struct FileHeader
{
    uint32_t magic;
    uint32_t version;
    uint64_t count;
    uint64_t reserved;
};

// Operand tag values.
constexpr uint8_t tagIntReg = 0;
constexpr uint8_t tagFpReg = 1;
constexpr uint8_t tagMemData = 2;
constexpr uint8_t tagMemHeap = 3;
constexpr uint8_t tagMemStack = 4;

uint64_t
zigzag(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^
           static_cast<uint64_t>(v >> 63);
}

int64_t
unzigzag(uint64_t v)
{
    return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

} // namespace

// --- Writer ----------------------------------------------------------------

CompressedTraceWriter::CompressedTraceWriter(const std::string &path)
    : path_(path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        PARA_FATAL("cannot open trace file for writing: %s", path.c_str());
    writeHeader();
}

CompressedTraceWriter::~CompressedTraceWriter()
{
    closeFile(false);
}

void
CompressedTraceWriter::writeHeader()
{
    FileHeader hdr{compressedTraceMagic, compressedTraceVersion, count_, 0};
    if (std::fseek(file_, 0, SEEK_SET) != 0 ||
        std::fwrite(&hdr, sizeof(hdr), 1, file_) != 1) {
        PARA_FATAL("trace file header write failed: %s", path_.c_str());
    }
}

void
CompressedTraceWriter::putByte(uint8_t b)
{
    if (std::fputc(b, file_) == EOF)
        PARA_FATAL("trace file write failed");
    ++bytes_;
}

void
CompressedTraceWriter::putVarint(uint64_t v)
{
    while (v >= 0x80) {
        putByte(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    putByte(static_cast<uint8_t>(v));
}

void
CompressedTraceWriter::putSignedVarint(int64_t v)
{
    putVarint(zigzag(v));
}

void
CompressedTraceWriter::putOperand(const Operand &op)
{
    switch (op.kind) {
      case Operand::Kind::IntReg:
        putByte(tagIntReg);
        putByte(static_cast<uint8_t>(op.id));
        return;
      case Operand::Kind::FpReg:
        putByte(tagFpReg);
        putByte(static_cast<uint8_t>(op.id));
        return;
      case Operand::Kind::Mem: {
        uint8_t tag = op.seg == Segment::Heap    ? tagMemHeap
                      : op.seg == Segment::Stack ? tagMemStack
                                                 : tagMemData;
        putByte(tag);
        putSignedVarint(static_cast<int64_t>(op.id) -
                        static_cast<int64_t>(lastMemAddr_));
        lastMemAddr_ = op.id;
        return;
      }
      default:
        PARA_PANIC("cannot encode an invalid operand");
    }
}

void
CompressedTraceWriter::write(const TraceRecord &rec)
{
    PARA_ASSERT(file_, "write after close");
    uint8_t head = static_cast<uint8_t>(
        (static_cast<uint8_t>(rec.cls) & 0x0f) |
        (rec.createsValue ? 0x10 : 0) | (rec.isSysCall ? 0x20 : 0) |
        (rec.isCondBranch ? 0x40 : 0) | (rec.branchTaken ? 0x80 : 0));
    bool pc_plus_one = rec.pc == lastPc_ + 1;
    uint8_t dest_kind =
        !rec.dest.valid()                           ? 0
        : rec.dest.kind == Operand::Kind::IntReg    ? 1
        : rec.dest.kind == Operand::Kind::FpReg     ? 2
                                                    : 3;
    uint8_t ops = static_cast<uint8_t>(
        (rec.numSrcs & 0x03) | ((rec.lastUseMask & 0x07) << 2) |
        (dest_kind << 5) | (pc_plus_one ? 0x80 : 0));
    putByte(head);
    putByte(ops);
    if (!pc_plus_one) {
        putSignedVarint(static_cast<int64_t>(rec.pc) -
                        static_cast<int64_t>(lastPc_));
    }
    lastPc_ = rec.pc;
    for (int s = 0; s < rec.numSrcs; ++s)
        putOperand(rec.srcs[s]);
    if (dest_kind == 1 || dest_kind == 2) {
        putByte(static_cast<uint8_t>(rec.dest.id));
    } else if (dest_kind == 3) {
        putOperand(rec.dest);
    }
    ++count_;
}

uint64_t
CompressedTraceWriter::writeAll(TraceSource &src)
{
    TraceRecord rec;
    uint64_t n = 0;
    while (src.next(rec)) {
        write(rec);
        ++n;
    }
    return n;
}

void
CompressedTraceWriter::close()
{
    closeFile(true);
}

void
CompressedTraceWriter::closeFile(bool throwOnError)
{
    if (!file_)
        return;
    std::FILE *f = file_;
    file_ = nullptr;

    FileHeader hdr{compressedTraceMagic, compressedTraceVersion, count_, 0};
    const char *err = nullptr;
    if (std::fseek(f, 0, SEEK_SET) != 0 ||
        std::fwrite(&hdr, sizeof(hdr), 1, f) != 1) {
        err = "trace file header write failed";
    }
    if (!err && std::fflush(f) != 0)
        err = "trace file flush failed";
    if (std::fclose(f) != 0 && !err)
        err = "trace file close failed";
    if (err) {
        if (throwOnError)
            PARA_FATAL("%s: %s", err, path_.c_str());
        PARA_WARN("%s: %s (in destructor; trace is incomplete)", err,
                  path_.c_str());
    }
}

// --- Reader ----------------------------------------------------------------

CompressedTraceReader::CompressedTraceReader(const std::string &path)
    : path_(path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        PARA_FATAL("cannot open trace file: %s", path.c_str());
    FileHeader hdr;
    if (std::fread(&hdr, sizeof(hdr), 1, file_) != 1) {
        std::fclose(file_);
        file_ = nullptr;
        PARA_FATAL("trace file too short: %s", path.c_str());
    }
    if (hdr.magic != compressedTraceMagic) {
        std::fclose(file_);
        file_ = nullptr;
        PARA_FATAL("bad compressed-trace magic in %s", path.c_str());
    }
    if (hdr.version != compressedTraceVersion) {
        std::fclose(file_);
        file_ = nullptr;
        PARA_FATAL("unsupported compressed-trace version %u in %s",
                   hdr.version, path.c_str());
    }
    count_ = hdr.count;
}

CompressedTraceReader::~CompressedTraceReader()
{
    if (file_)
        std::fclose(file_);
}

uint8_t
CompressedTraceReader::getByte()
{
    int c = std::fgetc(file_);
    if (c == EOF) {
        PARA_FATAL("trace file truncated: %s (record %llu at offset %llu)",
                   path_.c_str(), static_cast<unsigned long long>(pos_),
                   static_cast<unsigned long long>(std::ftell(file_)));
    }
    return static_cast<uint8_t>(c);
}

uint64_t
CompressedTraceReader::getVarint()
{
    uint64_t v = 0;
    int shift = 0;
    while (true) {
        uint8_t b = getByte();
        v |= static_cast<uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            return v;
        shift += 7;
        if (shift > 63) {
            PARA_FATAL("malformed varint in %s (record %llu at offset %llu)",
                       path_.c_str(), static_cast<unsigned long long>(pos_),
                       static_cast<unsigned long long>(std::ftell(file_)));
        }
    }
}

int64_t
CompressedTraceReader::getSignedVarint()
{
    return unzigzag(getVarint());
}

Operand
CompressedTraceReader::getOperand()
{
    uint8_t tag = getByte();
    switch (tag) {
      case tagIntReg:
        return Operand::intReg(getByte());
      case tagFpReg:
        return Operand::fpReg(getByte());
      case tagMemData:
      case tagMemHeap:
      case tagMemStack: {
        uint64_t addr = static_cast<uint64_t>(
            static_cast<int64_t>(lastMemAddr_) + getSignedVarint());
        lastMemAddr_ = addr;
        Segment seg = tag == tagMemHeap    ? Segment::Heap
                      : tag == tagMemStack ? Segment::Stack
                                           : Segment::Data;
        return Operand::mem(addr, seg);
      }
      default:
        PARA_FATAL("bad operand tag %u in %s (record %llu at offset %llu)",
                   tag, path_.c_str(), static_cast<unsigned long long>(pos_),
                   static_cast<unsigned long long>(std::ftell(file_) - 1));
    }
}

bool
CompressedTraceReader::next(TraceRecord &rec)
{
    if (pos_ >= count_)
        return false;
    rec = TraceRecord{};
    uint8_t head = getByte();
    if ((head & 0x0f) >= static_cast<uint8_t>(isa::OpClass::NumClasses)) {
        PARA_FATAL(
            "bad operation class %u in %s (record %llu at offset %llu)",
            head & 0x0f, path_.c_str(),
            static_cast<unsigned long long>(pos_),
            static_cast<unsigned long long>(std::ftell(file_) - 1));
    }
    rec.cls = static_cast<isa::OpClass>(head & 0x0f);
    rec.createsValue = (head & 0x10) != 0;
    rec.isSysCall = (head & 0x20) != 0;
    rec.isCondBranch = (head & 0x40) != 0;
    rec.branchTaken = (head & 0x80) != 0;

    uint8_t ops = getByte();
    uint8_t nsrcs = ops & 0x03;
    rec.lastUseMask = (ops >> 2) & 0x07;
    uint8_t dest_kind = (ops >> 5) & 0x03;
    if (ops & 0x80) {
        rec.pc = lastPc_ + 1;
    } else {
        rec.pc = static_cast<uint64_t>(static_cast<int64_t>(lastPc_) +
                                       getSignedVarint());
    }
    lastPc_ = rec.pc;

    for (uint8_t s = 0; s < nsrcs; ++s)
        rec.addSrc(getOperand());
    switch (dest_kind) {
      case 1:
        rec.dest = Operand::intReg(getByte());
        break;
      case 2:
        rec.dest = Operand::fpReg(getByte());
        break;
      case 3:
        rec.dest = getOperand();
        break;
      default:
        break;
    }
    ++pos_;
    return true;
}

void
CompressedTraceReader::reset()
{
    PARA_ASSERT(file_, "reset on closed reader");
    if (std::fseek(file_, sizeof(FileHeader), SEEK_SET) != 0)
        PARA_FATAL("trace file seek failed: %s", path_.c_str());
    pos_ = 0;
    lastPc_ = 0;
    lastMemAddr_ = 0;
}

// --- Format dispatch ---------------------------------------------------------

std::unique_ptr<TraceSource>
openTraceFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        PARA_FATAL("cannot open trace file: %s", path.c_str());
    uint32_t magic = 0;
    size_t got = std::fread(&magic, sizeof(magic), 1, f);
    std::fclose(f);
    if (got != 1)
        PARA_FATAL("trace file too short: %s", path.c_str());
    if (magic == compressedTraceMagic)
        return std::make_unique<CompressedTraceReader>(path);
    if (magic == traceFileMagic) {
        // Prefer the mapped reader (zero read syscalls, bulk SIMD unpack,
        // page-cache sharing across consumers); validation failures throw
        // the same errors either way. Fall back to stdio only when the
        // platform refuses the mapping.
        if (auto mapped = MmapTraceFile::tryOpen(path))
            return std::make_unique<MmapTraceSource>(std::move(mapped));
        return std::make_unique<TraceFileReader>(path);
    }
    PARA_FATAL("unrecognized trace file format: %s", path.c_str());
}

} // namespace trace
} // namespace paragraph
