#include "trace/shared_decode.hpp"

#include <algorithm>
#include <new>
#include <utility>

#include "support/failpoint.hpp"
#include "support/panic.hpp"

namespace paragraph {
namespace trace {

SharedDecodePool::SharedDecodePool(std::shared_ptr<const MmapTraceFile> file,
                                   Options opt)
    : file_(std::move(file)), opt_(opt)
{
    PARA_ASSERT(opt_.blockRecords > 0, "zero block size");
    count_ = file_->recordCount();
    if (opt_.maxRecords != 0 && opt_.maxRecords < count_)
        count_ = opt_.maxRecords;
    if (opt_.verifyPayload)
        file_->verifyPayload();
}

size_t
SharedDecodePool::blockCount() const
{
    return static_cast<size_t>((count_ + opt_.blockRecords - 1) /
                               opt_.blockRecords);
}

std::shared_ptr<const DecodedBlock>
SharedDecodePool::block(size_t index)
{
    PARA_ASSERT(index < blockCount(), "block index out of range");
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        auto it = cache_.find(index);
        if (it != cache_.end()) {
            it->second.lastUse = ++useCounter_;
            return it->second.block;
        }
        if (inProgress_.count(index) == 0)
            break;
        cv_.wait(lock);
    }

    // First consumer to reach this block decodes it for everyone.
    inProgress_.insert(index);
    lock.unlock();

    auto blk = std::make_shared<DecodedBlock>();
    blk->firstRecord = static_cast<uint64_t>(index) * opt_.blockRecords;
    size_t n = static_cast<size_t>(
        std::min<uint64_t>(opt_.blockRecords, count_ - blk->firstRecord));
    blk->records.resize(n);
    try {
        if (PARA_FAILPOINT("trace.decode.block"))
            throw std::bad_alloc(); // simulated decode-time ENOMEM
        file_->decode(blk->firstRecord, n, blk->records.data());
    } catch (...) {
        lock.lock();
        inProgress_.erase(index);
        cv_.notify_all();
        throw;
    }

    lock.lock();
    inProgress_.erase(index);
    CacheEntry entry;
    entry.block = blk;
    entry.lastUse = ++useCounter_;
    cache_.emplace(index, std::move(entry));
    ++blocksDecoded_;
    evictLocked();
    cv_.notify_all();
    return blk;
}

void
SharedDecodePool::evictLocked()
{
    while (cache_.size() > opt_.maxCachedBlocks) {
        auto victim = cache_.end();
        for (auto it = cache_.begin(); it != cache_.end(); ++it) {
            // use_count 1 == only the cache holds it; consumers keep their
            // own shared_ptr, so an in-use block is never dropped from
            // under a reader — it just leaves the cache and dies when the
            // last reader releases it.
            if (it->second.block.use_count() > 1)
                continue;
            if (victim == cache_.end() ||
                it->second.lastUse < victim->second.lastUse)
                victim = it;
        }
        if (victim == cache_.end())
            return; // everything still referenced; allow the overshoot
        cache_.erase(victim);
    }
}

size_t
SharedDecodePool::cachedBlocks() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cache_.size();
}

size_t
SharedDecodePool::cachedBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t bytes = 0;
    for (const auto &kv : cache_)
        bytes += kv.second.block->records.size() * sizeof(TraceRecord);
    return bytes;
}

uint64_t
SharedDecodePool::blocksDecoded() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return blocksDecoded_;
}

void
SharedDecodePool::trim()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = cache_.begin(); it != cache_.end();) {
        if (it->second.block.use_count() > 1)
            ++it;
        else
            it = cache_.erase(it);
    }
}

size_t
SharedDecodeCursor::next(const TraceRecord **records)
{
    current_.reset(); // release the previous block before taking the next
    if (nextBlock_ >= pool_->blockCount()) {
        *records = nullptr;
        return 0;
    }
    current_ = pool_->block(nextBlock_++);
    *records = current_->records.data();
    return current_->records.size();
}

void
SharedDecodeCursor::reset()
{
    current_.reset();
    nextBlock_ = 0;
}

} // namespace trace
} // namespace paragraph
