/**
 * @file
 * Binary trace file format (reader/writer).
 *
 * Layout: a 24-byte header (magic "PTRC", version, record count, checksums)
 * followed by fixed-size little-endian records. The format exists so traces
 * can be captured once (e.g. from a slow source) and re-analyzed offline,
 * the same role Pixie output files played for Paragraph.
 *
 * Format v2 hardens ingestion against on-disk corruption: the header
 * carries a CRC-32 of itself plus a CRC-32 of the whole record payload
 * (verified when the stream is read to the end), and every record's
 * class/operand-kind/segment/source-count fields are range-checked as it
 * is unpacked — a flipped byte in a multi-GB capture becomes a FatalError
 * naming the record index and byte offset, never silent corruption. v1
 * files (checksum words zero) still read, with a warning that integrity
 * cannot be verified.
 */

#ifndef PARAGRAPH_TRACE_FILE_IO_HPP
#define PARAGRAPH_TRACE_FILE_IO_HPP

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "trace/buffer.hpp"
#include "trace/record.hpp"
#include "trace/source.hpp"

namespace paragraph {
namespace trace {

/** On-disk encoding of one record (packed, little-endian). */
struct PackedRecord
{
    uint8_t cls;
    uint8_t flags; ///< bit0 createsValue, bit1 isSysCall
    uint8_t numSrcs;
    uint8_t lastUseMask;
    uint8_t operandKinds[4]; ///< kind | (segment << 4); [3] is dest
    uint64_t operandIds[4];  ///< [3] is dest
    uint64_t pc;
};

constexpr uint32_t traceFileMagic = 0x43525450; // "PTRC"
constexpr uint32_t traceFileVersion = 2;

/**
 * On-disk file header (24 bytes, little-endian). v1 wrote zeros in the
 * two checksum words (then a single reserved field); v2 fills them in.
 */
struct TraceFileHeader
{
    uint32_t magic;
    uint32_t version;
    uint64_t count;
    uint32_t payloadCrc; ///< v2: CRC-32 of all record bytes, in file order
    uint32_t headerCrc;  ///< v2: CRC-32 of the 20 bytes preceding this field
};

static_assert(sizeof(TraceFileHeader) == 24, "header layout is on disk");

/** CRC-32 of a header's first 20 bytes (everything before headerCrc). */
uint32_t traceHeaderCrc(const TraceFileHeader &hdr);

/** Streaming trace file writer. */
class TraceFileWriter
{
  public:
    /** Open @p path for writing; throws FatalError on failure. */
    explicit TraceFileWriter(const std::string &path);
    ~TraceFileWriter();

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    /** Append one record. */
    void write(const TraceRecord &rec);

    /** Drain @p src into the file; returns records written. */
    uint64_t writeAll(TraceSource &src);

    /**
     * Finalize the header (count + checksums), flush, and close; throws
     * FatalError if any of those fail, so a full disk can never produce a
     * silently short trace. The destructor also closes but only warns on
     * failure (destructors must not throw).
     */
    void close();

    uint64_t recordsWritten() const { return count_; }

  private:
    std::string path_;
    std::FILE *file_ = nullptr;
    uint64_t count_ = 0;
    uint32_t payloadCrc_ = 0;

    void writeHeader();
    void closeFile(bool throwOnError);
};

/** Replayable trace file reader. */
class TraceFileReader : public TraceSource
{
  public:
    /**
     * Open @p path; throws FatalError on bad magic, unsupported version,
     * a v2 header whose checksum does not match, or truncation. Every
     * record-level FatalError names the record index and byte offset.
     */
    explicit TraceFileReader(const std::string &path);
    ~TraceFileReader() override;

    TraceFileReader(const TraceFileReader &) = delete;
    TraceFileReader &operator=(const TraceFileReader &) = delete;

    bool next(TraceRecord &rec) override;
    void reset() override;
    std::string name() const override { return path_; }

    /** Total records in the file. */
    uint64_t recordCount() const { return count_; }

    /** Format version read from the header (1 = no checksums). */
    uint32_t formatVersion() const { return version_; }

  private:
    std::string path_;
    std::FILE *file_ = nullptr;
    uint64_t count_ = 0;
    uint64_t pos_ = 0;
    uint32_t version_ = traceFileVersion;
    uint32_t expectedPayloadCrc_ = 0;
    uint32_t runningCrc_ = 0;
};

/** Pack / unpack between the in-memory and on-disk record forms.
 *  unpackRecord range-checks the operation class, flag bits, source count,
 *  operand kinds, and segments, throwing FatalError on any violation. */
PackedRecord packRecord(const TraceRecord &rec);
TraceRecord unpackRecord(const PackedRecord &packed);

/**
 * CRC-32 of @p buffer's records in their packed on-disk form — the same
 * value a TraceFileWriter draining the buffer would put in the header's
 * payloadCrc field. This is the trace half of the (trace CRC-32, config
 * key) content address the paragraph-serve result cache is keyed by: it
 * identifies the analyzed records themselves, independent of whether they
 * came from a file, a simulation, or a bundled workload.
 */
uint32_t traceBufferCrc(const TraceBuffer &buffer);

} // namespace trace
} // namespace paragraph

#endif // PARAGRAPH_TRACE_FILE_IO_HPP
