/**
 * @file
 * Binary trace file format (reader/writer).
 *
 * Layout: a 24-byte header (magic "PTRC", version, record count) followed by
 * fixed-size little-endian records. The format exists so traces can be
 * captured once (e.g. from a slow source) and re-analyzed offline, the same
 * role Pixie output files played for Paragraph.
 */

#ifndef PARAGRAPH_TRACE_FILE_IO_HPP
#define PARAGRAPH_TRACE_FILE_IO_HPP

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "trace/buffer.hpp"
#include "trace/record.hpp"
#include "trace/source.hpp"

namespace paragraph {
namespace trace {

/** On-disk encoding of one record (packed, little-endian). */
struct PackedRecord
{
    uint8_t cls;
    uint8_t flags; ///< bit0 createsValue, bit1 isSysCall
    uint8_t numSrcs;
    uint8_t lastUseMask;
    uint8_t operandKinds[4]; ///< kind | (segment << 4); [3] is dest
    uint64_t operandIds[4];  ///< [3] is dest
    uint64_t pc;
};

constexpr uint32_t traceFileMagic = 0x43525450; // "PTRC"
constexpr uint32_t traceFileVersion = 1;

/** Streaming trace file writer. */
class TraceFileWriter
{
  public:
    /** Open @p path for writing; throws FatalError on failure. */
    explicit TraceFileWriter(const std::string &path);
    ~TraceFileWriter();

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    /** Append one record. */
    void write(const TraceRecord &rec);

    /** Drain @p src into the file; returns records written. */
    uint64_t writeAll(TraceSource &src);

    /** Finalize the header and close (also done by the destructor). */
    void close();

    uint64_t recordsWritten() const { return count_; }

  private:
    std::FILE *file_ = nullptr;
    uint64_t count_ = 0;

    void writeHeader();
};

/** Replayable trace file reader. */
class TraceFileReader : public TraceSource
{
  public:
    /** Open @p path; throws FatalError on bad magic/version/truncation. */
    explicit TraceFileReader(const std::string &path);
    ~TraceFileReader() override;

    TraceFileReader(const TraceFileReader &) = delete;
    TraceFileReader &operator=(const TraceFileReader &) = delete;

    bool next(TraceRecord &rec) override;
    void reset() override;
    std::string name() const override { return path_; }

    /** Total records in the file. */
    uint64_t recordCount() const { return count_; }

  private:
    std::string path_;
    std::FILE *file_ = nullptr;
    uint64_t count_ = 0;
    uint64_t pos_ = 0;
};

/** Pack / unpack between the in-memory and on-disk record forms. */
PackedRecord packRecord(const TraceRecord &rec);
TraceRecord unpackRecord(const PackedRecord &packed);

} // namespace trace
} // namespace paragraph

#endif // PARAGRAPH_TRACE_FILE_IO_HPP
