/**
 * @file
 * BlockSource: the block-granular pull interface fused consumers share.
 *
 * BlockPipeline's next(const TraceRecord **) protocol turned out to be the
 * natural feeding contract for block-major analysis; the shared decode pool
 * serves the same protocol from refcounted cached blocks. This interface
 * lets core::analyzeManyGuarded feed engines from either without caring
 * which is behind it.
 */

#ifndef PARAGRAPH_TRACE_BLOCK_SOURCE_HPP
#define PARAGRAPH_TRACE_BLOCK_SOURCE_HPP

#include <cstddef>

#include "trace/record.hpp"

namespace paragraph {
namespace trace {

class BlockSource
{
  public:
    virtual ~BlockSource() = default;

    /**
     * Produce the next block of records.
     *
     * @param records receives a pointer valid until the next call (or until
     *        the source is destroyed). @return the block's record count;
     *        0 at end of trace. May throw decode errors.
     */
    virtual size_t next(const TraceRecord **records) = 0;
};

} // namespace trace
} // namespace paragraph

#endif // PARAGRAPH_TRACE_BLOCK_SOURCE_HPP
