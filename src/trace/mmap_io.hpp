/**
 * @file
 * Memory-mapped `.ptrc` trace access: random-access decode, zero read syscalls.
 *
 * TraceFileReader pulls records through buffered stdio — fine for one
 * sequential pass, but a fused sweep group or a sharded single-trace run
 * wants many readers over the same bytes. MmapTraceFile maps the file once
 * and validates the header exactly like TraceFileReader (same order, same
 * FatalError texts, same v1 warning), then serves bounds-checked random
 * access to the packed records; decode goes through the bulk SIMD unpack.
 * The kernel page cache shares the mapped bytes across every pool, cursor,
 * and process touching the trace.
 *
 * MmapTraceSource is the sequential TraceSource view used by streamed solo
 * cells: byte-for-byte the same observable behavior as TraceFileReader,
 * including the payload-CRC check firing only when the stream is read to
 * its end (a capped read never reaches it, exactly as before).
 */

#ifndef PARAGRAPH_TRACE_MMAP_IO_HPP
#define PARAGRAPH_TRACE_MMAP_IO_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "trace/file_io.hpp"
#include "trace/record.hpp"
#include "trace/source.hpp"

namespace paragraph {
namespace trace {

class MmapTraceFile
{
  public:
    /**
     * Map @p path read-only and validate its header; throws FatalError for
     * the same conditions, in the same order, with the same messages as
     * TraceFileReader (missing file, short file, bad magic, bad version,
     * v2 header-CRC mismatch) and warns identically on v1 files.
     */
    explicit MmapTraceFile(const std::string &path);
    ~MmapTraceFile();

    MmapTraceFile(const MmapTraceFile &) = delete;
    MmapTraceFile &operator=(const MmapTraceFile &) = delete;

    /**
     * Map @p path if the platform allows it; returns nullptr when the file
     * exists but cannot be mapped (so callers fall back to stdio), and
     * throws FatalError for validation failures exactly like the
     * throwing constructor.
     */
    static std::shared_ptr<MmapTraceFile> tryOpen(const std::string &path);

    /** Records promised by the header. */
    uint64_t recordCount() const { return count_; }

    /** Records actually backed by file bytes (less when truncated). */
    uint64_t availableRecords() const { return avail_; }

    uint32_t formatVersion() const { return version_; }
    const std::string &path() const { return path_; }

    /** Raw mapped record; @p index must be < availableRecords(). */
    const PackedRecord *packed(uint64_t index) const;

    /**
     * Decode records [@p first, @p first + @p n) into @p out.
     *
     * Throws the reader-identical truncation FatalError if the range runs
     * past the mapped bytes, and reader-identical located errors for any
     * corrupt record (via the bulk unpack).
     */
    void decode(uint64_t first, size_t n, TraceRecord *out) const;

    /**
     * CRC-32 the whole payload against the header's stored value (v2).
     * Throws the reader's payload-mismatch FatalError on disagreement;
     * no-op for v1 files. One linear pass over the mapped bytes.
     */
    void verifyPayload() const;

    /** Fold records [@p first, @p first + @p n) into a running CRC-32. */
    uint32_t crcRange(uint64_t first, uint64_t n, uint32_t crc) const;

    uint32_t storedPayloadCrc() const { return payloadCrc_; }

  private:
    MmapTraceFile() = default;

    /** Shared open path; @p throwOnMapFailure selects ctor vs tryOpen. */
    bool open(const std::string &path, bool throwOnMapFailure);

    std::string path_;
    void *map_ = nullptr;
    size_t mapSize_ = 0;
    const uint8_t *payload_ = nullptr;
    uint64_t count_ = 0;
    uint64_t avail_ = 0;
    uint32_t version_ = traceFileVersion;
    uint32_t payloadCrc_ = 0;
};

/** Sequential TraceSource over a mapped trace (reader-equivalent). */
class MmapTraceSource : public TraceSource
{
  public:
    explicit MmapTraceSource(std::shared_ptr<const MmapTraceFile> file)
        : file_(std::move(file))
    {
    }

    bool next(TraceRecord &rec) override;
    size_t nextBatch(TraceRecord *out, size_t max) override;
    void reset() override;
    std::string name() const override { return file_->path(); }

    const MmapTraceFile &file() const { return *file_; }

  private:
    std::shared_ptr<const MmapTraceFile> file_;
    uint64_t pos_ = 0;
    uint32_t runningCrc_ = 0;
};

} // namespace trace
} // namespace paragraph

#endif // PARAGRAPH_TRACE_MMAP_IO_HPP
