/**
 * @file
 * TraceStats: first-order metrics of a trace (operation frequencies).
 *
 * These are the "simple first-order metrics" the paper contrasts DDG
 * analysis against; they also feed the Table 2 benchmark-inventory report
 * (instruction counts, syscall counts, per-class mix).
 */

#ifndef PARAGRAPH_TRACE_STATS_HPP
#define PARAGRAPH_TRACE_STATS_HPP

#include <array>
#include <cstdint>

#include "trace/record.hpp"
#include "trace/source.hpp"

namespace paragraph {
namespace trace {

struct TraceStats
{
    uint64_t totalInstructions = 0;
    uint64_t valueCreating = 0; ///< records placed in the DDG
    uint64_t controlInstructions = 0;
    uint64_t sysCalls = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t stackAccesses = 0;
    uint64_t dataAccesses = 0; ///< data + heap (non-stack)
    std::array<uint64_t, isa::numOpClasses> byClass = {};

    /** Accumulate one record. */
    void add(const TraceRecord &rec);

    /** Accumulate an entire source (drains it; caller resets if needed). */
    static TraceStats collect(TraceSource &src);

    /** Fraction of instructions that are FP operations. */
    double fpFraction() const;

    /** Mean instructions between system calls (0 when no syscalls). */
    double instructionsPerSysCall() const;
};

} // namespace trace
} // namespace paragraph

#endif // PARAGRAPH_TRACE_STATS_HPP
