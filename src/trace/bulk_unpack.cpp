#include "trace/bulk_unpack.hpp"

#include <cstring>

#include "isa/op_class.hpp"
#include "support/panic.hpp"

#if defined(PARAGRAPH_SIMD) && defined(__SSE2__)
#include <emmintrin.h>
#define PARAGRAPH_BULK_SSE2 1
#elif defined(PARAGRAPH_SIMD) && defined(__ARM_NEON)
#include <arm_neon.h>
#define PARAGRAPH_BULK_NEON 1
#endif

namespace paragraph {
namespace trace {

namespace {

constexpr uint8_t kClsMax =
    static_cast<uint8_t>(isa::OpClass::NumClasses) - 1;

// The eight leading bytes of a PackedRecord hold every range-checked field:
//   [0] cls            valid iff cls <= kClsMax
//   [1] flags          valid iff (flags & 0xf0) == 0
//   [2] numSrcs        valid iff numSrcs <= maxSrcs (3)
//   [3] lastUseMask    valid iff (lastUseMask & 0xf8) == 0
//   [4..7] kind|seg<<4 valid iff kind <= Mem (3) and seg <= Stack (3),
//                      i.e. (byte & 0xcc) == 0
// Two byte-parallel tests cover all six checks: an AND-mask that must come
// out zero, and a per-byte unsigned ceiling.
constexpr uint64_t kAndMask = 0xccccccccf800f000ull;

inline bool
validHead(uint64_t head)
{
    if (head & kAndMask)
        return false;
    if (static_cast<uint8_t>(head) > kClsMax)
        return false;
    return static_cast<uint8_t>(head >> 16) <= maxSrcs;
}

inline uint64_t
loadHead(const PackedRecord &p)
{
    uint64_t head;
    std::memcpy(&head, &p, sizeof(head));
    return head;
}

Operand
unpackOperandUnchecked(uint8_t kind_seg, uint64_t id)
{
    Operand op;
    op.kind = static_cast<Operand::Kind>(kind_seg & 0x0f);
    op.seg = static_cast<Segment>(kind_seg >> 4);
    op.id = id;
    return op;
}

/** unpackRecord minus the range checks; caller must have validated. */
inline TraceRecord
unpackRecordUnchecked(const PackedRecord &p)
{
    TraceRecord rec;
    rec.cls = static_cast<isa::OpClass>(p.cls);
    rec.createsValue = (p.flags & 1) != 0;
    rec.isSysCall = (p.flags & 2) != 0;
    rec.isCondBranch = (p.flags & 4) != 0;
    rec.branchTaken = (p.flags & 8) != 0;
    rec.numSrcs = p.numSrcs;
    rec.lastUseMask = p.lastUseMask;
    for (int i = 0; i < maxSrcs; ++i)
        rec.srcs[i] = unpackOperandUnchecked(p.operandKinds[i],
                                             p.operandIds[i]);
    rec.dest = unpackOperandUnchecked(p.operandKinds[3], p.operandIds[3]);
    rec.pc = p.pc;
    return rec;
}

/** Byte offset of record @p index in a trace file. */
uint64_t
recordOffset(uint64_t index)
{
    return sizeof(TraceFileHeader) + index * sizeof(PackedRecord);
}

} // namespace

bool
packedRecordsValid(const PackedRecord *in, size_t n)
{
    size_t i = 0;

#if defined(PARAGRAPH_BULK_SSE2)
    // Two records per 128-bit lane: the validated head bytes of records
    // i and i+1 are packed side by side, then both tests run byte-parallel.
    const __m128i mask = _mm_set1_epi64x(static_cast<long long>(kAndMask));
    const __m128i zero = _mm_setzero_si128();
    const __m128i lim = _mm_setr_epi8(
        static_cast<char>(kClsMax), static_cast<char>(0xff), maxSrcs,
        static_cast<char>(0xff), static_cast<char>(0xff),
        static_cast<char>(0xff), static_cast<char>(0xff),
        static_cast<char>(0xff), static_cast<char>(kClsMax),
        static_cast<char>(0xff), maxSrcs, static_cast<char>(0xff),
        static_cast<char>(0xff), static_cast<char>(0xff),
        static_cast<char>(0xff), static_cast<char>(0xff));
    for (; i + 2 <= n; i += 2) {
        __m128i lo = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(in + i));
        __m128i hi = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(in + i + 1));
        __m128i v = _mm_unpacklo_epi64(lo, hi);
        __m128i ok = _mm_and_si128(
            _mm_cmpeq_epi8(_mm_and_si128(v, mask), zero),
            _mm_cmpeq_epi8(_mm_max_epu8(v, lim), lim));
        if (_mm_movemask_epi8(ok) != 0xffff)
            return false;
    }
#elif defined(PARAGRAPH_BULK_NEON)
    const uint8x8_t maskBytes = vcreate_u8(kAndMask);
    const uint8x16_t mask = vcombine_u8(maskBytes, maskBytes);
    const uint8x8_t limBytes =
        vcreate_u8(0xffffffffff03ff00ull | kClsMax |
                   (static_cast<uint64_t>(maxSrcs) << 16));
    const uint8x16_t lim = vcombine_u8(limBytes, limBytes);
    for (; i + 2 <= n; i += 2) {
        uint8x16_t v = vcombine_u8(
            vld1_u8(reinterpret_cast<const uint8_t *>(in + i)),
            vld1_u8(reinterpret_cast<const uint8_t *>(in + i + 1)));
        uint8x16_t ok =
            vandq_u8(vceqq_u8(vandq_u8(v, mask), vdupq_n_u8(0)),
                     vceqq_u8(vmaxq_u8(v, lim), lim));
        if (vminvq_u8(ok) != 0xff)
            return false;
    }
#endif

    for (; i < n; ++i) {
        if (!validHead(loadHead(in[i])))
            return false;
    }
    return true;
}

void
unpackRecords(const PackedRecord *in, TraceRecord *out, size_t n,
              const std::string &path, uint64_t firstIndex)
{
    if (packedRecordsValid(in, n)) {
        for (size_t i = 0; i < n; ++i)
            out[i] = unpackRecordUnchecked(in[i]);
        return;
    }
    // Some record in the block is bad: re-run the scalar checked unpack so
    // the error carries the same located diagnostic TraceFileReader gives.
    for (size_t i = 0; i < n; ++i) {
        try {
            out[i] = unpackRecord(in[i]);
        } catch (const FatalError &e) {
            uint64_t index = firstIndex + i;
            PARA_FATAL("%s: %s (record %llu at offset %llu)", path.c_str(),
                       e.what(), static_cast<unsigned long long>(index),
                       static_cast<unsigned long long>(recordOffset(index)));
        }
    }
}

} // namespace trace
} // namespace paragraph
