/**
 * @file
 * BlockPipeline: double-buffered background block producer for a TraceSource.
 *
 * Trace decode is now a measurable serial fraction of a sweep cell —
 * `.ptrz` varint/zigzag decoding costs about as much as the analysis that
 * consumes it. The pipeline overlaps the two: a producer thread drains the
 * source into one block while the consumer (one or many fused analysis
 * engines) walks the other, so a decode-bound pass and an analysis-bound
 * pass each hide most of the other's latency.
 *
 * The protocol is strict double buffering. next() returns a pointer into
 * an internal block that stays valid until the following next() call; the
 * producer never refills a block the consumer still holds. Exceptions
 * thrown by the source (e.g. a corrupt `.ptrz` record) are captured on the
 * producer thread and rethrown from next() on the consumer thread.
 *
 * A bounded pipeline (Options::maxRecords) never drains the source past
 * its cap — required when several consumers share one replayable source.
 */

#ifndef PARAGRAPH_TRACE_BLOCK_PIPELINE_HPP
#define PARAGRAPH_TRACE_BLOCK_PIPELINE_HPP

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "trace/block_source.hpp"
#include "trace/record.hpp"
#include "trace/source.hpp"

namespace paragraph {
namespace trace {

class BlockPipeline : public BlockSource
{
  public:
    struct Options
    {
        /** Records per block (two blocks are allocated up front). */
        size_t blockRecords = 65536;

        /** Stop after this many records total; 0 = drain the source. */
        uint64_t maxRecords = 0;
    };

    explicit BlockPipeline(TraceSource &src) : BlockPipeline(src, Options{}) {}
    BlockPipeline(TraceSource &src, Options opt);

    /** Stops the producer and joins it; safe mid-trace. */
    ~BlockPipeline() override;

    BlockPipeline(const BlockPipeline &) = delete;
    BlockPipeline &operator=(const BlockPipeline &) = delete;

    /**
     * Block until the next block is decoded and return its length.
     *
     * @param records receives a pointer to the block's records, valid until
     *        the next call. @return 0 at end of trace. Rethrows any
     *        exception the producer hit while reading the source.
     */
    size_t next(const TraceRecord **records) override;

  private:
    struct Slot
    {
        std::vector<TraceRecord> buf;
        size_t count = 0;
        bool full = false;
    };

    TraceSource &src_;
    Options opt_;

    std::mutex mutex_;
    std::condition_variable cv_;
    Slot slots_[2];
    bool eof_ = false;
    bool stop_ = false;
    std::exception_ptr error_;

    size_t consumeIdx_ = 0;  ///< slot the consumer takes next
    bool outstanding_ = false; ///< consumer still holds consumeIdx_

    std::thread producer_;

    void produce();
};

} // namespace trace
} // namespace paragraph

#endif // PARAGRAPH_TRACE_BLOCK_PIPELINE_HPP
