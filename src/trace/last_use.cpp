#include "trace/last_use.hpp"

#include "support/flat_hash_map.hpp"
#include "trace/record.hpp"

namespace paragraph {
namespace trace {

uint64_t
annotateLastUses(TraceBuffer &buffer)
{
    // seen[L] == true means: walking backward, we already passed a read of
    // the value that is live in L at this point of the forward trace.
    FlatHashMap<uint64_t, uint8_t> seen;
    uint64_t marked = 0;

    auto &records = buffer.records();
    for (size_t i = records.size(); i-- > 0;) {
        TraceRecord &rec = records[i];
        rec.lastUseMask = 0;

        // The write happens after this instruction's reads, so process it
        // first when moving backward: reads found earlier in the trace
        // belong to the previous value in this location.
        if (rec.createsValue && rec.dest.valid())
            seen.erase(locationKey(rec.dest));

        for (int s = 0; s < rec.numSrcs; ++s) {
            uint64_t key = locationKey(rec.srcs[s]);
            uint8_t *flag = seen.find(key);
            if (!flag) {
                rec.lastUseMask |= static_cast<uint8_t>(1u << s);
                seen.insertOrAssign(key, 1);
                ++marked;
            }
        }
    }
    return marked;
}

} // namespace trace
} // namespace paragraph
