/**
 * @file
 * TraceBuffer: an in-memory trace with a replayable TraceSource view.
 *
 * Used by unit tests (hand-built traces), by the two-pass last-use
 * annotator (which requires the whole trace, paper Section 3.2 method 1),
 * and for capturing simulator output once and re-analyzing it many times.
 */

#ifndef PARAGRAPH_TRACE_BUFFER_HPP
#define PARAGRAPH_TRACE_BUFFER_HPP

#include <algorithm>
#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "trace/record.hpp"
#include "trace/source.hpp"

namespace paragraph {
namespace trace {

class TraceBuffer
{
  public:
    TraceBuffer() = default;

    explicit TraceBuffer(std::vector<TraceRecord> records)
        : records_(std::move(records)) {}

    /** Append one record. */
    void push(const TraceRecord &rec) { records_.push_back(rec); }

    /** Number of records stored. */
    size_t size() const { return records_.size(); }

    bool empty() const { return records_.empty(); }

    /** Record at index @p i. */
    const TraceRecord &operator[](size_t i) const { return records_[i]; }
    TraceRecord &operator[](size_t i) { return records_[i]; }

    std::vector<TraceRecord> &records() { return records_; }
    const std::vector<TraceRecord> &records() const { return records_; }

    /**
     * Capture records of @p src (drains it from its current point).
     * @param max_records stop after this many records; 0 = whole trace.
     */
    void
    capture(TraceSource &src, size_t max_records = 0)
    {
        TraceRecord rec;
        while ((max_records == 0 || records_.size() < max_records) &&
               src.next(rec))
            records_.push_back(rec);
    }

  private:
    std::vector<TraceRecord> records_;
};

/** Replayable TraceSource over a TraceBuffer (non-owning). */
class BufferSource : public TraceSource
{
  public:
    explicit BufferSource(const TraceBuffer &buffer,
                          std::string name = "buffer")
        : buffer_(&buffer), name_(std::move(name)) {}

    bool
    next(TraceRecord &rec) override
    {
        if (pos_ >= buffer_->size())
            return false;
        rec = (*buffer_)[pos_++];
        return true;
    }

    size_t
    nextBatch(TraceRecord *out, size_t max) override
    {
        size_t n = std::min(max, buffer_->size() - pos_);
        std::copy_n(buffer_->records().data() + pos_, n, out);
        pos_ += n;
        return n;
    }

    void reset() override { pos_ = 0; }

    std::string name() const override { return name_; }

  private:
    const TraceBuffer *buffer_;
    std::string name_;
    size_t pos_ = 0;
};

/**
 * Replayable TraceSource that co-owns an immutable TraceBuffer.
 *
 * This is the hand-out type of engine::TraceRepository: one capture is
 * shared read-only by any number of concurrently-replaying sources (each
 * keeps only its own cursor), and the buffer stays alive as long as any
 * source still references it.
 */
class SharedBufferSource : public TraceSource
{
  public:
    explicit SharedBufferSource(std::shared_ptr<const TraceBuffer> buffer,
                                std::string name = "buffer")
        : buffer_(std::move(buffer)), name_(std::move(name)) {}

    bool
    next(TraceRecord &rec) override
    {
        if (pos_ >= buffer_->size())
            return false;
        rec = (*buffer_)[pos_++];
        return true;
    }

    size_t
    nextBatch(TraceRecord *out, size_t max) override
    {
        size_t n = std::min(max, buffer_->size() - pos_);
        std::copy_n(buffer_->records().data() + pos_, n, out);
        pos_ += n;
        return n;
    }

    void reset() override { pos_ = 0; }

    std::string name() const override { return name_; }

    /** The shared capture this source replays. */
    const std::shared_ptr<const TraceBuffer> &buffer() const
    {
        return buffer_;
    }

  private:
    std::shared_ptr<const TraceBuffer> buffer_;
    std::string name_;
    size_t pos_ = 0;
};

} // namespace trace
} // namespace paragraph

#endif // PARAGRAPH_TRACE_BUFFER_HPP
