/**
 * @file
 * Bulk PackedRecord validation + unpack for block decoders.
 *
 * unpackRecord() range-checks one record at a time; at streaming rates the
 * per-record branches dominate the decode loop and defeat vectorization.
 * The bulk path splits the work: a SIMD scan proves every record in a block
 * passes the same field checks (the eight leading bytes of a PackedRecord
 * carry every range-checked field), then an unchecked transform loop the
 * compiler can vectorize produces the TraceRecords. If the scan finds any
 * bad byte the block is re-run through the scalar checked path so the
 * FatalError names the exact record and byte offset, identical to
 * TraceFileReader's diagnostics.
 *
 * SSE2 / NEON variants are selected under the PARAGRAPH_SIMD build option;
 * without it (or on other architectures) a scalar 64-bit scan runs the same
 * checks. Output is byte-identical across all variants — the equivalence
 * and corruption suites hold every path to TraceFileReader's behavior.
 */

#ifndef PARAGRAPH_TRACE_BULK_UNPACK_HPP
#define PARAGRAPH_TRACE_BULK_UNPACK_HPP

#include <cstddef>
#include <cstdint>
#include <string>

#include "trace/file_io.hpp"
#include "trace/record.hpp"

namespace paragraph {
namespace trace {

/**
 * True iff all @p n packed records pass unpackRecord's range checks
 * (operation class, flag bits, source count, last-use mask, operand
 * kinds and segments). SIMD-accelerated when built with PARAGRAPH_SIMD.
 */
bool packedRecordsValid(const PackedRecord *in, size_t n);

/**
 * Unpack @p n packed records into @p out.
 *
 * On any invalid record throws FatalError formatted exactly like
 * TraceFileReader: "<path>: bad ... (record <index> at offset <offset>)",
 * where the index counts from @p firstIndex within the named file.
 */
void unpackRecords(const PackedRecord *in, TraceRecord *out, size_t n,
                   const std::string &path, uint64_t firstIndex);

} // namespace trace
} // namespace paragraph

#endif // PARAGRAPH_TRACE_BULK_UNPACK_HPP
