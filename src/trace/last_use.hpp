/**
 * @file
 * LastUseAnnotator: the paper's two-pass deadness method (Section 3.2).
 *
 * "Process the trace in two passes, first in the reverse direction and then
 * in the forward direction. If the instructions are processed in reverse,
 * the first occurrence of a value is its last use, and value lifetime
 * information can be easily inserted into the trace for use on a second,
 * forward pass."
 *
 * The annotator performs the reverse pass over a stored TraceBuffer, setting
 * each record's lastUseMask bit for every source operand that is the final
 * read of the value live in that location. The live well can then evict an
 * entry the moment its last reader is processed, instead of waiting for the
 * location to be overwritten (the one-pass method), shrinking peak
 * occupancy — the effect the ablation bench measures.
 */

#ifndef PARAGRAPH_TRACE_LAST_USE_HPP
#define PARAGRAPH_TRACE_LAST_USE_HPP

#include <cstdint>

#include "trace/buffer.hpp"

namespace paragraph {
namespace trace {

/**
 * Annotate @p buffer in place.
 * @return number of source operands marked as last uses.
 */
uint64_t annotateLastUses(TraceBuffer &buffer);

} // namespace trace
} // namespace paragraph

#endif // PARAGRAPH_TRACE_LAST_USE_HPP
