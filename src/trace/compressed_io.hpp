/**
 * @file
 * Compressed binary trace format (version 2).
 *
 * The fixed-size format of file_io.hpp costs 48 bytes per record; real
 * trace files of 100M instructions (the paper's scale) would be ~5 GB.
 * This format exploits trace structure the way Pixie-era tools did:
 *
 *  - one tag byte packs the operation class and all flags;
 *  - a second byte packs operand counts, the last-use mask, and the
 *    destination kind;
 *  - program counters are delta-encoded (the common +1 case costs 0 bytes);
 *  - memory addresses are zigzag-delta encoded against the previous memory
 *    address (spatial locality makes most deltas 1-2 bytes);
 *  - registers cost one byte.
 *
 * Typical traces compress to ~4-7 bytes/record (see the ablation bench).
 */

#ifndef PARAGRAPH_TRACE_COMPRESSED_IO_HPP
#define PARAGRAPH_TRACE_COMPRESSED_IO_HPP

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "trace/record.hpp"
#include "trace/source.hpp"

namespace paragraph {
namespace trace {

constexpr uint32_t compressedTraceMagic = 0x5a525450; // "PTRZ"
constexpr uint32_t compressedTraceVersion = 2;

/** Streaming compressed trace writer. */
class CompressedTraceWriter
{
  public:
    explicit CompressedTraceWriter(const std::string &path);
    ~CompressedTraceWriter();

    CompressedTraceWriter(const CompressedTraceWriter &) = delete;
    CompressedTraceWriter &operator=(const CompressedTraceWriter &) = delete;

    void write(const TraceRecord &rec);
    uint64_t writeAll(TraceSource &src);

    /**
     * Finalize the header, flush, and close; throws FatalError if any of
     * those fail so a full disk never yields a silently short trace. The
     * destructor closes too but only warns on failure.
     */
    void close();

    uint64_t recordsWritten() const { return count_; }

    /** Bytes emitted so far (compression-ratio bookkeeping). */
    uint64_t bytesWritten() const { return bytes_; }

  private:
    std::string path_;
    std::FILE *file_ = nullptr;
    uint64_t count_ = 0;
    uint64_t bytes_ = 0;
    uint64_t lastPc_ = 0;
    uint64_t lastMemAddr_ = 0;

    void writeHeader();
    void closeFile(bool throwOnError);
    void putByte(uint8_t b);
    void putVarint(uint64_t v);
    void putSignedVarint(int64_t v);
    void putOperand(const Operand &op);
};

/**
 * Replayable compressed trace reader. Decode errors (truncation, malformed
 * varints, bad tags, out-of-range operation classes) throw FatalError
 * naming the record index and byte offset where decoding stopped.
 */
class CompressedTraceReader : public TraceSource
{
  public:
    explicit CompressedTraceReader(const std::string &path);
    ~CompressedTraceReader() override;

    CompressedTraceReader(const CompressedTraceReader &) = delete;
    CompressedTraceReader &operator=(const CompressedTraceReader &) = delete;

    bool next(TraceRecord &rec) override;
    void reset() override;
    std::string name() const override { return path_; }

    uint64_t recordCount() const { return count_; }

  private:
    std::string path_;
    std::FILE *file_ = nullptr;
    uint64_t count_ = 0;
    uint64_t pos_ = 0;
    uint64_t lastPc_ = 0;
    uint64_t lastMemAddr_ = 0;

    uint8_t getByte();
    uint64_t getVarint();
    int64_t getSignedVarint();
    Operand getOperand();
};

/**
 * Open a trace file of either format by inspecting its magic.
 * @return a replayable TraceSource (TraceFileReader or
 *         CompressedTraceReader).
 */
std::unique_ptr<TraceSource> openTraceFile(const std::string &path);

} // namespace trace
} // namespace paragraph

#endif // PARAGRAPH_TRACE_COMPRESSED_IO_HPP
