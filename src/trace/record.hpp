/**
 * @file
 * TraceRecord: one dynamic instruction of a serial execution trace.
 *
 * This is the interface between trace producers (the functional simulator —
 * our Pixie substitute — trace files, or synthetic generators) and the
 * Paragraph analyzer. A record carries exactly what the DDG placement rule
 * needs: the Table 1 operation class, the source/destination storage
 * locations (registers or classified memory addresses), and whether the
 * instruction creates a value / is a system call.
 */

#ifndef PARAGRAPH_TRACE_RECORD_HPP
#define PARAGRAPH_TRACE_RECORD_HPP

#include <cstdint>
#include <string>

#include "isa/op_class.hpp"

namespace paragraph {
namespace trace {

/** Memory segment of an accessed address; drives the renaming switches. */
enum class Segment : uint8_t
{
    None,  ///< not a memory operand
    Data,  ///< static data (globals); non-stack
    Heap,  ///< dynamic allocation; non-stack
    Stack, ///< procedure frames
};

/** Human-readable segment name. */
const char *segmentName(Segment seg);

/** One source or destination storage location. */
struct Operand
{
    enum class Kind : uint8_t { None, IntReg, FpReg, Mem };

    Kind kind = Kind::None;
    Segment seg = Segment::None; ///< meaningful only for Kind::Mem
    uint64_t id = 0;             ///< register index, or memory address

    /** Integer-register operand. */
    static Operand
    intReg(uint8_t idx)
    {
        return Operand{Kind::IntReg, Segment::None, idx};
    }

    /** FP-register operand. */
    static Operand
    fpReg(uint8_t idx)
    {
        return Operand{Kind::FpReg, Segment::None, idx};
    }

    /** Memory operand at @p addr inside @p seg. */
    static Operand
    mem(uint64_t addr, Segment seg)
    {
        return Operand{Kind::Mem, seg, addr};
    }

    bool valid() const { return kind != Kind::None; }
    bool isMem() const { return kind == Kind::Mem; }

    bool operator==(const Operand &other) const = default;
};

/**
 * Unique 64-bit storage-location key for the live well. The top two bits
 * tag the namespace (memory / int reg / FP reg) so register indices can
 * never collide with addresses.
 */
inline uint64_t
locationKey(const Operand &op)
{
    // Branchless: operand kinds vary record to record, so a switch here
    // mispredicts on the analyzer hot path. Indexed by Kind: None yields
    // the all-ones invalid key, registers get their namespace tag ORed
    // with the index, memory keeps the address with the tag bits cleared.
    static constexpr uint64_t tagFor[4] = {~0ULL, 1ULL << 62, 2ULL << 62, 0};
    static constexpr uint64_t maskFor[4] = {0, ~0ULL, ~0ULL, ~(3ULL << 62)};
    size_t k = static_cast<size_t>(op.kind);
    return tagFor[k] | (op.id & maskFor[k]);
}

/** Maximum number of source operands a record can carry. */
constexpr int maxSrcs = 3;

/** One dynamic instruction. */
struct TraceRecord
{
    isa::OpClass cls = isa::OpClass::IntAlu;
    bool createsValue = false; ///< false for branches/jumps (not in the DDG)
    bool isSysCall = false;
    bool isCondBranch = false; ///< conditional branch (prediction target)
    bool branchTaken = false;  ///< outcome, meaningful when isCondBranch
    uint8_t numSrcs = 0;
    /**
     * Bit i set when srcs[i] is the last read of that live value
     * (filled by LastUseAnnotator; zero in raw traces).
     */
    uint8_t lastUseMask = 0;
    Operand srcs[maxSrcs] = {};
    Operand dest = {};
    uint64_t pc = 0; ///< static instruction index (diagnostics only)

    /** Append a source operand (ignores invalid operands). */
    void
    addSrc(const Operand &op)
    {
        if (op.valid() && numSrcs < maxSrcs)
            srcs[numSrcs++] = op;
    }

    bool operator==(const TraceRecord &other) const = default;
};

/** Render a record for diagnostics. */
std::string toString(const TraceRecord &rec);

} // namespace trace
} // namespace paragraph

#endif // PARAGRAPH_TRACE_RECORD_HPP
