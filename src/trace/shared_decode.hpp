/**
 * @file
 * SharedDecodePool: decode each trace block once, share it with every reader.
 *
 * BENCH_sweep.json's streamed `--jobs=8` regression had one root cause:
 * every worker analyzing the same `.ptrc` re-decoded the whole file through
 * a private BlockPipeline. The pool inverts that: one mapped file, one
 * decode of each 64K-record block (whichever consumer gets there first pays
 * it; everyone else waits on a condition variable instead of redoing the
 * work), and refcounted `shared_ptr<const DecodedBlock>` handout so a block
 * stays alive exactly as long as some engine is reading it. A small LRU
 * keeps recently decoded blocks warm for consumers running slightly apart
 * in the trace; trim() drops every unreferenced block when the trace
 * repository needs the bytes back for its budget.
 *
 * Blocks hold fully unpacked TraceRecords (the layout the placement loop
 * consumes; the mapped PackedRecords are the storage-efficient form), so a
 * handed-out span feeds Paragraph::processAll with zero further copies.
 *
 * Integrity: the pool verifies the v2 payload CRC over the mapped bytes
 * once at construction — eager, unlike the sequential reader's check at
 * end-of-stream, because random-access consumers may legitimately never
 * read the final block. The error text matches TraceFileReader's.
 */

#ifndef PARAGRAPH_TRACE_SHARED_DECODE_HPP
#define PARAGRAPH_TRACE_SHARED_DECODE_HPP

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "trace/block_source.hpp"
#include "trace/mmap_io.hpp"
#include "trace/record.hpp"

namespace paragraph {
namespace trace {

/** One decoded block; immutable once published. */
struct DecodedBlock
{
    uint64_t firstRecord = 0;
    std::vector<TraceRecord> records;
};

class SharedDecodePool
{
  public:
    struct Options
    {
        /** Records per block (matches the fused block-major granule). */
        size_t blockRecords = 65536;

        /** Unreferenced decoded blocks kept warm (LRU beyond this). */
        size_t maxCachedBlocks = 8;

        /** Serve only the first maxRecords records; 0 = whole trace. */
        uint64_t maxRecords = 0;

        /** Verify the v2 payload CRC eagerly at construction. */
        bool verifyPayload = true;
    };

    SharedDecodePool(std::shared_ptr<const MmapTraceFile> file, Options opt);

    SharedDecodePool(const SharedDecodePool &) = delete;
    SharedDecodePool &operator=(const SharedDecodePool &) = delete;

    /** Records served (header count clipped by Options::maxRecords). */
    uint64_t recordCount() const { return count_; }

    size_t blockRecords() const { return opt_.blockRecords; }
    size_t blockCount() const;
    const MmapTraceFile &file() const { return *file_; }
    std::string name() const { return file_->path(); }

    /**
     * The decoded block at @p index, decoding it (once) if needed.
     *
     * Concurrent callers for the same undecoded block: one decodes, the
     * rest wait. Decode errors propagate to every waiter and are not
     * cached, so a retry re-attempts the decode.
     */
    std::shared_ptr<const DecodedBlock> block(size_t index);

    /** Blocks currently cached (decoded and retained). */
    size_t cachedBlocks() const;

    /** Bytes held by cached blocks (for the repository's byte budget). */
    size_t cachedBytes() const;

    /** Total decode executions — the decode-once observability counter. */
    uint64_t blocksDecoded() const;

    /** Drop every cached block no consumer currently references. */
    void trim();

  private:
    std::shared_ptr<const MmapTraceFile> file_;
    Options opt_;
    uint64_t count_ = 0;

    mutable std::mutex mutex_;
    std::condition_variable cv_;

    struct CacheEntry
    {
        std::shared_ptr<const DecodedBlock> block;
        uint64_t lastUse = 0;
    };

    std::unordered_map<size_t, CacheEntry> cache_;
    std::unordered_set<size_t> inProgress_;
    uint64_t useCounter_ = 0;
    uint64_t blocksDecoded_ = 0;

    void evictLocked();
};

/**
 * BlockSource view of a pool: hands out whole decoded blocks in order,
 * holding the current block's refcount until the next call. Many cursors
 * can walk the same pool concurrently; the first one to reach a block
 * decodes it for all.
 */
class SharedDecodeCursor : public BlockSource
{
  public:
    explicit SharedDecodeCursor(std::shared_ptr<SharedDecodePool> pool)
        : pool_(std::move(pool))
    {
    }

    size_t next(const TraceRecord **records) override;

    void reset();

  private:
    std::shared_ptr<SharedDecodePool> pool_;
    std::shared_ptr<const DecodedBlock> current_;
    size_t nextBlock_ = 0;
};

} // namespace trace
} // namespace paragraph

#endif // PARAGRAPH_TRACE_SHARED_DECODE_HPP
