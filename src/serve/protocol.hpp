/**
 * @file
 * The paragraph-serve wire protocol: newline-delimited JSON, one request
 * line in, one response line out, schema "paragraph-serve-v1".
 *
 * A sweep request carries the same axes as the paragraph-sweep command line
 * (inputs, windows, rename, syscalls, predictors, fus, max, profiles) and
 * is expanded through the *same* engine::buildSweepConfigAxis cross
 * product, so a daemon-served grid is cell-for-cell the grid the CLI would
 * run. The response envelope carries cache accounting (cells_cached /
 * cells_computed) plus the full sweep JSON document as an escaped string —
 * the document itself is byte-identical to `paragraph-sweep --no-timing`
 * output for the same grid, which is what the cache-proof tests diff.
 *
 * Everything here is pure parse/render (no sockets), so the protocol is
 * unit-testable and fuzzable in isolation.
 */

#ifndef PARAGRAPH_SERVE_PROTOCOL_HPP
#define PARAGRAPH_SERVE_PROTOCOL_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "engine/sweep_args.hpp"

namespace paragraph {
namespace serve {

constexpr const char *protocolSchema = "paragraph-serve-v1";

/** One parsed client request. */
struct ServeRequest
{
    enum class Op { Sweep, Explore, Ping, Stats, Health, Failpoint, Shutdown };

    Op op = Op::Ping;

    /** Sweep axes (Op::Sweep only); reuses the CLI's grid expansion. */
    std::vector<std::string> inputs;
    std::vector<uint64_t> windows;
    std::vector<std::string> renames;
    std::vector<std::string> syscalls;
    std::vector<std::string> predictors;
    std::vector<uint64_t> fus;
    uint64_t maxInstructions = 0;
    bool profiles = true;
    bool small = false;

    /** Knee tolerance for Op::Explore (0 = exact frontier). Carried on the
     *  wire as a string rendered by jsonDouble, so the daemon explores with
     *  bit-for-bit the tolerance the client asked for. */
    double kneeTol = 0.0;

    /** Failpoint control (Op::Failpoint only, daemon must allow it):
     *  spec is "site=policy;..." as in PARAGRAPH_FAILPOINTS; empty spec
     *  resets every site. seed reseeds the schedule when hasSeed. */
    std::string failpointSpec;
    uint64_t failpointSeed = 0;
    bool hasFailpointSeed = false;
};

/**
 * Parse one request line. @return false with @p error set on a malformed
 * line, wrong schema, or unknown op (the server turns that into an error
 * response, never a dropped connection).
 */
bool parseServeRequest(const std::string &line, ServeRequest &out,
                       std::string &error);

/** Render @p req as a single request line (no trailing newline). */
std::string renderServeRequest(const ServeRequest &req);

/** Map the request's sweep axes onto the CLI argument struct, ready for
 *  engine::buildSweepConfigAxis. */
engine::SweepArgs toSweepArgs(const ServeRequest &req);

/** One parsed server response. */
struct ServeResponse
{
    std::string status; ///< "ok", "error", or "busy"
    std::string op;     ///< echo of the request op
    std::string error;  ///< status == "error" only

    /** Overload hint (status == "busy" only): wait roughly this long
     *  before retrying. */
    uint64_t retryAfterMs = 0;

    /** Sweep accounting (op == "sweep" / "explore"). */
    uint64_t cellsTotal = 0;
    uint64_t cellsFailed = 0;
    uint64_t cellsCached = 0;
    uint64_t cellsComputed = 0;

    /** Explore accounting (op == "explore" only): cells_executed counts
     *  measured cells (cached + computed), cells_pruned the certificate-
     *  skipped remainder of the grid. */
    uint64_t cellsExecuted = 0;
    uint64_t cellsPruned = 0;

    /** The full sweep/explore JSON document (op == "sweep" / "explore"). */
    std::string document;

    /** Daemon counters (op == "stats" only). */
    uint64_t requests = 0;
    uint64_t storeEntries = 0;
    uint64_t storeHotBytes = 0;
    uint64_t traceCachedInputs = 0;
    uint64_t traceCachedBytes = 0;
    uint64_t totalCellsCached = 0;
    uint64_t totalCellsComputed = 0;

    /** Health probe (op == "health" only). */
    uint64_t pendingCells = 0;
    uint64_t activeSweeps = 0;
    uint64_t workers = 0;
    uint64_t storeDiskBytes = 0;
    uint64_t storeAppends = 0;
    uint64_t storeSyncs = 0;
    uint64_t storeCompactions = 0;
    uint64_t failpointsActive = 0;
    uint64_t failpointFires = 0;
    std::string storeSync; ///< daemon's fsync policy name

    bool ok() const { return status == "ok"; }
    bool busy() const { return status == "busy"; }
};

/** Parse one response line; false with @p error on malformed input. */
bool parseServeResponse(const std::string &line, ServeResponse &out,
                        std::string &error);

/** Render a sweep response line (no trailing newline). */
std::string renderSweepResponse(uint64_t cellsTotal, uint64_t cellsFailed,
                                uint64_t cellsCached, uint64_t cellsComputed,
                                const std::string &document);

/** Render an explore response line (no trailing newline). */
std::string renderExploreResponse(uint64_t cellsTotal, uint64_t cellsExecuted,
                                  uint64_t cellsPruned, uint64_t cellsFailed,
                                  uint64_t cellsCached,
                                  uint64_t cellsComputed,
                                  const std::string &document);

/** Render a ping/shutdown acknowledgement line. */
std::string renderAckResponse(const char *op);

/** Render a stats response line from the daemon counters. */
std::string renderStatsResponse(const ServeResponse &stats);

/** Render a health response line from the daemon probe fields. */
std::string renderHealthResponse(const ServeResponse &health);

/** Render an overload rejection line with a retry hint. */
std::string renderBusyResponse(uint64_t retryAfterMs);

/** Render an error response line. */
std::string renderErrorResponse(const std::string &message);

} // namespace serve
} // namespace paragraph

#endif // PARAGRAPH_SERVE_PROTOCOL_HPP
