#include "serve/result_store.hpp"

#include <cstdio>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "engine/sweep_json.hpp"
#include "support/failpoint.hpp"
#include "support/json_line.hpp"
#include "support/panic.hpp"

namespace paragraph {
namespace serve {

namespace {

constexpr const char *storeSchema = "paragraph-serve-store-v1";

std::string
renderEntry(const ResultKey &key, const std::string &cellJson)
{
    return "{\"trace_crc\": " + std::to_string(key.traceCrc) +
           ", \"config_key\": " + std::to_string(key.configKey) +
           ", \"profiles\": " + (key.profiles ? "true" : "false") +
           ", \"cell\": " + engine::jsonString(cellJson) + "}\n";
}

/** Parse one entry line; false if it is not a complete, well-formed entry. */
bool
parseEntry(const std::string &line, ResultKey &key, std::string &cellJson)
{
    JsonLineParser p(line);
    if (!p.parse())
        return false;
    uint64_t traceCrc = 0;
    uint64_t configKey = 0;
    bool profiles = false;
    const std::string *cell = p.str("cell");
    if (!p.num("trace_crc", traceCrc) || !p.num("config_key", configKey) ||
        !p.boolean("profiles", profiles) || !cell ||
        traceCrc > UINT32_MAX || configKey > UINT32_MAX)
        return false;
    key.traceCrc = static_cast<uint32_t>(traceCrc);
    key.configKey = static_cast<uint32_t>(configKey);
    key.profiles = profiles;
    cellJson = *cell;
    return true;
}

} // namespace

ResultStore::ResultStore(std::string path)
    : ResultStore(std::move(path), Options())
{
}

ResultStore::ResultStore(std::string path, Options opt)
    : path_(std::move(path)), opt_(opt),
      lastSync_(std::chrono::steady_clock::now())
{
    // a+ creates the file if needed without truncating an existing store;
    // the separate read handle keeps appends and lookups independent.
    append_ = std::fopen(path_.c_str(), "ab");
    if (!append_)
        PARA_FATAL("cannot open result store for append: %s", path_.c_str());
    read_ = std::fopen(path_.c_str(), "rb");
    if (!read_) {
        std::fclose(append_);
        append_ = nullptr;
        PARA_FATAL("cannot open result store for reading: %s", path_.c_str());
    }

    // Index every line. Offsets are tracked manually so damaged lines cost
    // nothing but a warning.
    std::string line;
    long offset = 0;
    size_t lineNo = 0;
    bool sawHeader = false;
    int c;
    for (;;) {
        line.clear();
        long lineStart = offset;
        while ((c = std::fgetc(read_)) != EOF && c != '\n')
            line += static_cast<char>(c);
        offset = lineStart + static_cast<long>(line.size()) + (c == '\n');
        if (line.empty() && c == EOF)
            break;
        ++lineNo;
        if (c == EOF) {
            // Torn final line (crash mid-append): drop it from the index
            // and terminate it on disk, so the next insert starts a clean
            // line instead of concatenating onto the fragment. The sealed
            // fragment is then just another malformed line future loads
            // warn about and skip.
            PARA_WARN("result store %s line %zu is truncated; dropped",
                      path_.c_str(), lineNo);
            if (std::fputc('\n', append_) == EOF ||
                std::fflush(append_) != 0)
                PARA_WARN("result store %s: cannot seal truncated line",
                          path_.c_str());
            break;
        }
        if (line.empty())
            continue;
        if (!sawHeader) {
            JsonLineParser p(line);
            const std::string *schema = p.parse() ? p.str("schema") : nullptr;
            if (!schema || *schema != storeSchema) {
                PARA_FATAL("%s is not a serve result store (expected "
                           "schema %s)",
                           path_.c_str(), storeSchema);
            }
            sawHeader = true;
            continue;
        }
        ResultKey key;
        std::string cellJson;
        if (!parseEntry(line, key, cellJson)) {
            PARA_WARN("result store %s line %zu is malformed; skipped",
                      path_.c_str(), lineNo);
            continue;
        }
        Entry &entry = index_[key]; // duplicate keys: newest position wins
        if (entry.hot)
            hotBytes_ -= entry.hotText.size();
        entry.offset = lineStart;
        entry.length = line.size();
        entry.hot = false;
        entry.hotText.clear();
        touch(entry, std::move(cellJson));
    }

    if (!sawHeader) {
        std::string header =
            std::string("{\"schema\": \"") + storeSchema + "\"}\n";
        if (std::fwrite(header.data(), 1, header.size(), append_) !=
                header.size() ||
            std::fflush(append_) != 0)
            PARA_FATAL("cannot write result store header: %s", path_.c_str());
    }
}

ResultStore::~ResultStore()
{
    // Buffered stdio reports a full disk only at flush/close; losing that
    // here would silently drop the final appends of the daemon's lifetime.
    if (append_) {
        if (std::fflush(append_) != 0)
            PARA_WARN("result store %s: flush failed on close; recent "
                      "entries may be lost",
                      path_.c_str());
        else if (opt_.syncPolicy != SyncPolicy::None &&
                 ::fsync(::fileno(append_)) != 0)
            PARA_WARN("result store %s: fsync failed on close; recent "
                      "entries may not be on the device",
                      path_.c_str());
        if (std::fclose(append_) != 0)
            PARA_WARN("result store %s: close failed; recent entries may "
                      "be lost",
                      path_.c_str());
    }
    if (read_)
        std::fclose(read_);
}

void
ResultStore::syncLocked()
{
    if (PARA_FAILPOINT("store.sync") || ::fsync(::fileno(append_)) != 0) {
        PARA_WARN("result store %s: fsync failed; acknowledged entries "
                  "may not survive a machine crash",
                  path_.c_str());
        return;
    }
    ++syncs_;
    lastSync_ = std::chrono::steady_clock::now();
}

void
ResultStore::touch(Entry &entry, std::string text)
{
    entry.lastUse = ++useCounter_;
    if (!entry.hot) {
        hotBytes_ += text.size();
        entry.hotText = std::move(text);
        entry.hot = true;
    }
    enforceBudget();
}

void
ResultStore::enforceBudget()
{
    if (opt_.memoryBudget == 0)
        return;
    while (hotBytes_ > opt_.memoryBudget) {
        Entry *victim = nullptr;
        for (auto &kv : index_) {
            if (!kv.second.hot)
                continue;
            if (!victim || kv.second.lastUse < victim->lastUse)
                victim = &kv.second;
        }
        if (!victim)
            return;
        hotBytes_ -= victim->hotText.size();
        victim->hotText.clear();
        victim->hotText.shrink_to_fit();
        victim->hot = false;
    }
}

bool
ResultStore::lookup(const ResultKey &key, std::string &cellJson)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end())
        return false;
    Entry &entry = it->second;
    if (entry.hot) {
        cellJson = entry.hotText;
        entry.lastUse = ++useCounter_;
        return true;
    }
    // Cold entry: re-read its line from disk and re-validate. A line that
    // no longer parses (external damage) degrades to a miss.
    std::string line(entry.length, '\0');
    if (std::fseek(read_, entry.offset, SEEK_SET) != 0 ||
        std::fread(line.data(), 1, line.size(), read_) != line.size()) {
        PARA_WARN("result store %s: cannot re-read entry at offset %ld",
                  path_.c_str(), entry.offset);
        return false;
    }
    ResultKey diskKey;
    bool parsed = parseEntry(line, diskKey, cellJson);
    bool sameKey = parsed && !(diskKey < key) && !(key < diskKey);
    if (!parsed || !sameKey) {
        PARA_WARN("result store %s: entry at offset %ld no longer parses; "
                  "treated as a miss",
                  path_.c_str(), entry.offset);
        cellJson.clear();
        return false;
    }
    touch(entry, cellJson);
    return true;
}

void
ResultStore::insert(const ResultKey &key, const std::string &cellJson)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (index_.count(key))
        return;
    if (!append_ || writeFailed_)
        return;
    std::string entryLine = renderEntry(key, cellJson);
    if (std::fseek(append_, 0, SEEK_END) != 0) {
        writeFailed_ = true;
        PARA_WARN("result store %s: seek failed; caching disabled",
                  path_.c_str());
        return;
    }
    long offset = std::ftell(append_);
    if (PARA_FAILPOINT("store.append.torn")) {
        // Simulated crash mid-append: half the line reaches the file with
        // no terminating newline, exactly what a power cut during fwrite
        // leaves behind. The fragment is never indexed; the next open
        // seals and skips it.
        std::fwrite(entryLine.data(), 1, entryLine.size() / 2, append_);
        std::fflush(append_);
        writeFailed_ = true;
        PARA_WARN("result store %s: torn append (injected); caching "
                  "disabled",
                  path_.c_str());
        return;
    }
    if (offset < 0 || PARA_FAILPOINT("store.append.fail") ||
        std::fwrite(entryLine.data(), 1, entryLine.size(), append_) !=
            entryLine.size() ||
        std::fflush(append_) != 0) {
        writeFailed_ = true;
        PARA_WARN("result store %s: append failed; caching disabled",
                  path_.c_str());
        return;
    }
    ++appends_;
    if (opt_.syncPolicy == SyncPolicy::Cell) {
        syncLocked();
    } else if (opt_.syncPolicy == SyncPolicy::Interval) {
        auto now = std::chrono::steady_clock::now();
        std::chrono::duration<double> since = now - lastSync_;
        if (since.count() >= opt_.syncIntervalSeconds)
            syncLocked();
    }
    Entry &entry = index_[key];
    entry.offset = offset;
    entry.length = entryLine.size() - 1; // exclude the newline
    touch(entry, cellJson);
    if (opt_.compactEveryAppends != 0 &&
        ++appendsSinceCompact_ >= opt_.compactEveryAppends) {
        std::string error;
        if (!compactLocked(error))
            PARA_WARN("result store %s: compaction failed (%s); store "
                      "kept as-is",
                      path_.c_str(), error.c_str());
    }
}

bool
ResultStore::compact(std::string &error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return compactLocked(error);
}

bool
ResultStore::compactLocked(std::string &error)
{
    appendsSinceCompact_ = 0;

    // Stage 1: collect every live entry's text. Hot entries come from
    // memory; cold ones re-read through the old file handle. Unreadable
    // entries are dropped — compaction is the designated place to shed
    // damage, and lookup() already treats them as misses.
    std::vector<std::pair<ResultKey, std::string>> live;
    live.reserve(index_.size());
    for (auto it = index_.begin(); it != index_.end();) {
        Entry &entry = it->second;
        std::string cellJson;
        bool ok;
        if (entry.hot) {
            cellJson = entry.hotText;
            ok = true;
        } else {
            std::string line(entry.length, '\0');
            ResultKey diskKey;
            ok = std::fseek(read_, entry.offset, SEEK_SET) == 0 &&
                 std::fread(line.data(), 1, line.size(), read_) ==
                     line.size() &&
                 parseEntry(line, diskKey, cellJson) &&
                 !(diskKey < it->first) && !(it->first < diskKey);
        }
        if (!ok) {
            PARA_WARN("result store %s: entry at offset %ld is unreadable; "
                      "dropped by compaction",
                      path_.c_str(), entry.offset);
            if (entry.hot)
                hotBytes_ -= entry.hotText.size();
            it = index_.erase(it);
            continue;
        }
        live.emplace_back(it->first, std::move(cellJson));
        ++it;
    }

    // Stage 2: write header + live entries to a temp file and push it to
    // the device before it can replace anything.
    std::string tmpPath = path_ + ".compact.tmp";
    std::FILE *tmp = std::fopen(tmpPath.c_str(), "wb");
    if (!tmp) {
        error = "cannot create " + tmpPath;
        return false;
    }
    std::vector<long> offsets(live.size(), 0);
    std::string header = std::string("{\"schema\": \"") + storeSchema +
                         "\"}\n";
    bool failed =
        PARA_FAILPOINT("store.compact") ||
        std::fwrite(header.data(), 1, header.size(), tmp) != header.size();
    long offset = static_cast<long>(header.size());
    std::vector<std::string> lines(live.size());
    for (size_t i = 0; !failed && i < live.size(); ++i) {
        lines[i] = renderEntry(live[i].first, live[i].second);
        offsets[i] = offset;
        failed = std::fwrite(lines[i].data(), 1, lines[i].size(), tmp) !=
                 lines[i].size();
        offset += static_cast<long>(lines[i].size());
    }
    if (!failed)
        failed = std::fflush(tmp) != 0 || ::fsync(::fileno(tmp)) != 0;
    if (std::fclose(tmp) != 0)
        failed = true;
    if (failed) {
        std::remove(tmpPath.c_str());
        error = "cannot write " + tmpPath;
        return false;
    }

    // Stage 3: atomically replace the store, then reopen both handles on
    // the new file (the old descriptors still reference the old inode) and
    // fsync the directory so the rename itself survives a machine crash.
    if (std::rename(tmpPath.c_str(), path_.c_str()) != 0) {
        std::remove(tmpPath.c_str());
        error = "cannot rename " + tmpPath + " over " + path_;
        return false;
    }
    size_t slash = path_.find_last_of('/');
    std::string dir = slash == std::string::npos
                          ? std::string(".")
                          : path_.substr(0, slash ? slash : 1);
    int dirFd = ::open(dir.c_str(), O_RDONLY | O_CLOEXEC);
    if (dirFd >= 0) {
        ::fsync(dirFd);
        ::close(dirFd);
    }
    std::fclose(append_);
    std::fclose(read_);
    append_ = std::fopen(path_.c_str(), "ab");
    read_ = append_ ? std::fopen(path_.c_str(), "rb") : nullptr;
    if (!append_ || !read_) {
        // The compacted file is on disk and intact; only this process can
        // no longer write to it.
        if (append_) {
            std::fclose(append_);
            append_ = nullptr;
        }
        writeFailed_ = true;
        error = "cannot reopen " + path_ + " after compaction";
        return false;
    }

    // Stage 4: point the index at the rewritten lines. The rewrite also
    // repairs append failures: the new file is clean and the handle fresh.
    size_t i = 0;
    for (auto &kv : index_) {
        kv.second.offset = offsets[i];
        kv.second.length = lines[i].size() - 1; // exclude the newline
        ++i;
    }
    writeFailed_ = false;
    ++compactions_;
    return true;
}

size_t
ResultStore::entries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return index_.size();
}

size_t
ResultStore::hotBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hotBytes_;
}

uint64_t
ResultStore::appends() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return appends_;
}

uint64_t
ResultStore::syncs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return syncs_;
}

uint64_t
ResultStore::compactions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return compactions_;
}

long
ResultStore::diskBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!read_ || std::fseek(read_, 0, SEEK_END) != 0)
        return -1;
    return std::ftell(read_);
}

} // namespace serve
} // namespace paragraph
