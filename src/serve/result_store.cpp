#include "serve/result_store.hpp"

#include <utility>
#include <vector>

#include "engine/sweep_json.hpp"
#include "support/json_line.hpp"
#include "support/panic.hpp"

namespace paragraph {
namespace serve {

namespace {

constexpr const char *storeSchema = "paragraph-serve-store-v1";

std::string
renderEntry(const ResultKey &key, const std::string &cellJson)
{
    return "{\"trace_crc\": " + std::to_string(key.traceCrc) +
           ", \"config_key\": " + std::to_string(key.configKey) +
           ", \"profiles\": " + (key.profiles ? "true" : "false") +
           ", \"cell\": " + engine::jsonString(cellJson) + "}\n";
}

/** Parse one entry line; false if it is not a complete, well-formed entry. */
bool
parseEntry(const std::string &line, ResultKey &key, std::string &cellJson)
{
    JsonLineParser p(line);
    if (!p.parse())
        return false;
    uint64_t traceCrc = 0;
    uint64_t configKey = 0;
    bool profiles = false;
    const std::string *cell = p.str("cell");
    if (!p.num("trace_crc", traceCrc) || !p.num("config_key", configKey) ||
        !p.boolean("profiles", profiles) || !cell ||
        traceCrc > UINT32_MAX || configKey > UINT32_MAX)
        return false;
    key.traceCrc = static_cast<uint32_t>(traceCrc);
    key.configKey = static_cast<uint32_t>(configKey);
    key.profiles = profiles;
    cellJson = *cell;
    return true;
}

} // namespace

ResultStore::ResultStore(std::string path)
    : ResultStore(std::move(path), Options())
{
}

ResultStore::ResultStore(std::string path, Options opt)
    : path_(std::move(path)), opt_(opt)
{
    // a+ creates the file if needed without truncating an existing store;
    // the separate read handle keeps appends and lookups independent.
    append_ = std::fopen(path_.c_str(), "ab");
    if (!append_)
        PARA_FATAL("cannot open result store for append: %s", path_.c_str());
    read_ = std::fopen(path_.c_str(), "rb");
    if (!read_) {
        std::fclose(append_);
        append_ = nullptr;
        PARA_FATAL("cannot open result store for reading: %s", path_.c_str());
    }

    // Index every line. Offsets are tracked manually so damaged lines cost
    // nothing but a warning.
    std::string line;
    long offset = 0;
    size_t lineNo = 0;
    bool sawHeader = false;
    int c;
    for (;;) {
        line.clear();
        long lineStart = offset;
        while ((c = std::fgetc(read_)) != EOF && c != '\n')
            line += static_cast<char>(c);
        offset = lineStart + static_cast<long>(line.size()) + (c == '\n');
        if (line.empty() && c == EOF)
            break;
        ++lineNo;
        if (c == EOF) {
            // Torn final line (crash mid-append): drop it from the index
            // and terminate it on disk, so the next insert starts a clean
            // line instead of concatenating onto the fragment. The sealed
            // fragment is then just another malformed line future loads
            // warn about and skip.
            PARA_WARN("result store %s line %zu is truncated; dropped",
                      path_.c_str(), lineNo);
            if (std::fputc('\n', append_) == EOF ||
                std::fflush(append_) != 0)
                PARA_WARN("result store %s: cannot seal truncated line",
                          path_.c_str());
            break;
        }
        if (line.empty())
            continue;
        if (!sawHeader) {
            JsonLineParser p(line);
            const std::string *schema = p.parse() ? p.str("schema") : nullptr;
            if (!schema || *schema != storeSchema) {
                PARA_FATAL("%s is not a serve result store (expected "
                           "schema %s)",
                           path_.c_str(), storeSchema);
            }
            sawHeader = true;
            continue;
        }
        ResultKey key;
        std::string cellJson;
        if (!parseEntry(line, key, cellJson)) {
            PARA_WARN("result store %s line %zu is malformed; skipped",
                      path_.c_str(), lineNo);
            continue;
        }
        Entry &entry = index_[key]; // duplicate keys: newest position wins
        if (entry.hot)
            hotBytes_ -= entry.hotText.size();
        entry.offset = lineStart;
        entry.length = line.size();
        entry.hot = false;
        entry.hotText.clear();
        touch(entry, std::move(cellJson));
    }

    if (!sawHeader) {
        std::string header =
            std::string("{\"schema\": \"") + storeSchema + "\"}\n";
        if (std::fwrite(header.data(), 1, header.size(), append_) !=
                header.size() ||
            std::fflush(append_) != 0)
            PARA_FATAL("cannot write result store header: %s", path_.c_str());
    }
}

ResultStore::~ResultStore()
{
    if (append_)
        std::fclose(append_);
    if (read_)
        std::fclose(read_);
}

void
ResultStore::touch(Entry &entry, std::string text)
{
    entry.lastUse = ++useCounter_;
    if (!entry.hot) {
        hotBytes_ += text.size();
        entry.hotText = std::move(text);
        entry.hot = true;
    }
    enforceBudget();
}

void
ResultStore::enforceBudget()
{
    if (opt_.memoryBudget == 0)
        return;
    while (hotBytes_ > opt_.memoryBudget) {
        Entry *victim = nullptr;
        for (auto &kv : index_) {
            if (!kv.second.hot)
                continue;
            if (!victim || kv.second.lastUse < victim->lastUse)
                victim = &kv.second;
        }
        if (!victim)
            return;
        hotBytes_ -= victim->hotText.size();
        victim->hotText.clear();
        victim->hotText.shrink_to_fit();
        victim->hot = false;
    }
}

bool
ResultStore::lookup(const ResultKey &key, std::string &cellJson)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end())
        return false;
    Entry &entry = it->second;
    if (entry.hot) {
        cellJson = entry.hotText;
        entry.lastUse = ++useCounter_;
        return true;
    }
    // Cold entry: re-read its line from disk and re-validate. A line that
    // no longer parses (external damage) degrades to a miss.
    std::string line(entry.length, '\0');
    if (std::fseek(read_, entry.offset, SEEK_SET) != 0 ||
        std::fread(line.data(), 1, line.size(), read_) != line.size()) {
        PARA_WARN("result store %s: cannot re-read entry at offset %ld",
                  path_.c_str(), entry.offset);
        return false;
    }
    ResultKey diskKey;
    bool parsed = parseEntry(line, diskKey, cellJson);
    bool sameKey = parsed && !(diskKey < key) && !(key < diskKey);
    if (!parsed || !sameKey) {
        PARA_WARN("result store %s: entry at offset %ld no longer parses; "
                  "treated as a miss",
                  path_.c_str(), entry.offset);
        cellJson.clear();
        return false;
    }
    touch(entry, cellJson);
    return true;
}

void
ResultStore::insert(const ResultKey &key, const std::string &cellJson)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (index_.count(key))
        return;
    if (!append_ || writeFailed_)
        return;
    std::string entryLine = renderEntry(key, cellJson);
    if (std::fseek(append_, 0, SEEK_END) != 0) {
        writeFailed_ = true;
        PARA_WARN("result store %s: seek failed; caching disabled",
                  path_.c_str());
        return;
    }
    long offset = std::ftell(append_);
    if (offset < 0 ||
        std::fwrite(entryLine.data(), 1, entryLine.size(), append_) !=
            entryLine.size() ||
        std::fflush(append_) != 0) {
        writeFailed_ = true;
        PARA_WARN("result store %s: append failed; caching disabled",
                  path_.c_str());
        return;
    }
    Entry &entry = index_[key];
    entry.offset = offset;
    entry.length = entryLine.size() - 1; // exclude the newline
    touch(entry, cellJson);
}

size_t
ResultStore::entries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return index_.size();
}

size_t
ResultStore::hotBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hotBytes_;
}

} // namespace serve
} // namespace paragraph
