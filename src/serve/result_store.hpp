/**
 * @file
 * ResultStore: the daemon's content-addressed cell cache.
 *
 * Every Ok cell the daemon ever computes is stored under its *content*
 * address — the CRC-32 of the trace's packed records plus the CRC-32 of the
 * canonical config text (engine/config_key.hpp) plus the profiles flag that
 * selects the cell rendering. Nothing about the key involves input spec
 * strings, request shapes, or time, so any client asking for a cell that
 * any client has ever computed gets the original bytes back, even across
 * daemon restarts.
 *
 * Persistence is an append-only JSONL file in the journal's mold: a schema
 * header line, then one self-contained entry per line, flushed as written.
 * Loading tolerates torn or corrupt lines (a crash mid-append loses at most
 * the line being written; everything else re-serves), and duplicate keys
 * resolve to the newest entry. The in-memory index holds every entry's file
 * position; entry *text* is kept hot only up to Options::memoryBudget bytes
 * (LRU), older entries re-read from disk on demand — the index stays small
 * even when the store grows far past RAM.
 */

#ifndef PARAGRAPH_SERVE_RESULT_STORE_HPP
#define PARAGRAPH_SERVE_RESULT_STORE_HPP

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>

namespace paragraph {
namespace serve {

/**
 * When appended entries are pushed past the OS page cache to the device.
 * Every policy flushes stdio buffers per entry (a daemon crash never loses
 * an acknowledged append); the policy only controls fsync, i.e. what a
 * *machine* crash can take with it.
 */
enum class SyncPolicy
{
    None,     ///< never fsync; machine crash may lose recent entries
    Interval, ///< fsync at most once per syncIntervalSeconds, on append
    Cell,     ///< fsync after every appended entry
};

/** Content address of one cell result. */
struct ResultKey
{
    uint32_t traceCrc = 0;  ///< trace::traceBufferCrc of the input's records
    uint32_t configKey = 0; ///< engine::configKey of the analysis config
    bool profiles = false;  ///< cell rendered with profile buckets?

    bool
    operator<(const ResultKey &o) const
    {
        if (traceCrc != o.traceCrc)
            return traceCrc < o.traceCrc;
        if (configKey != o.configKey)
            return configKey < o.configKey;
        return profiles < o.profiles;
    }
};

class ResultStore
{
  public:
    struct Options
    {
        /** Byte budget for hot entry text; 0 = keep everything resident.
         *  The index (a few dozen bytes per entry) is never evicted. */
        size_t memoryBudget = 0;

        /** Device-durability policy for appended entries. */
        SyncPolicy syncPolicy = SyncPolicy::None;

        /** Minimum seconds between fsyncs under SyncPolicy::Interval. */
        double syncIntervalSeconds = 5.0;

        /** Compact automatically after this many appends; 0 = only when
         *  compact() is called explicitly. */
        size_t compactEveryAppends = 0;
    };

    /**
     * Open (creating if absent) the store at @p path and index every
     * parseable entry. Throws FatalError if the file cannot be opened or
     * carries the wrong schema header; damaged entry lines are warned
     * about and skipped.
     */
    explicit ResultStore(std::string path);
    ResultStore(std::string path, Options opt);
    ~ResultStore();

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    /**
     * Fetch the cell text stored under @p key into @p cellJson. Serves
     * from the hot cache or re-reads the entry's line from disk.
     * @return false on a miss (or if the on-disk line has since been
     *         damaged — treated as a miss, the caller recomputes).
     */
    bool lookup(const ResultKey &key, std::string &cellJson);

    /**
     * Append @p cellJson under @p key and flush. A key already present is
     * left alone (first write wins — identical by construction, since the
     * key is the content address of everything that determines the text).
     */
    void insert(const ResultKey &key, const std::string &cellJson);

    /**
     * Rewrite the store as exactly one line per indexed key — dropping
     * superseded duplicates, damaged lines, and sealed torn fragments —
     * via a temp file that is fsynced and atomically renamed over the
     * store, so a crash at any point leaves either the old file or the
     * new one, never a mixture. Entries whose on-disk line can no longer
     * be read are dropped from the index with a warning.
     * @return false (with @p error set) if compaction could not complete;
     *         the existing store is untouched and stays in service.
     */
    bool compact(std::string &error);

    /** Entries indexed. */
    size_t entries() const;

    /** Bytes of entry text currently hot. */
    size_t hotBytes() const;

    /** Entries appended since open (survives compaction). */
    uint64_t appends() const;

    /** fsync calls issued by the durability policy. */
    uint64_t syncs() const;

    /** Completed compactions. */
    uint64_t compactions() const;

    /** Current size of the store file in bytes, or -1 if unknown. */
    long diskBytes() const;

  private:
    struct Entry
    {
        long offset = 0;   ///< byte offset of this entry's line
        size_t length = 0; ///< line length excluding the newline
        std::string hotText;
        bool hot = false;
        uint64_t lastUse = 0;
    };

    void touch(Entry &entry, std::string text);
    void enforceBudget();
    void syncLocked();
    bool compactLocked(std::string &error);

    std::string path_;
    Options opt_;
    mutable std::mutex mutex_;
    std::FILE *append_ = nullptr;
    std::FILE *read_ = nullptr;
    std::map<ResultKey, Entry> index_;
    size_t hotBytes_ = 0;
    uint64_t useCounter_ = 0;
    bool writeFailed_ = false;
    uint64_t appends_ = 0;
    uint64_t syncs_ = 0;
    uint64_t compactions_ = 0;
    size_t appendsSinceCompact_ = 0;
    std::chrono::steady_clock::time_point lastSync_{};
};

} // namespace serve
} // namespace paragraph

#endif // PARAGRAPH_SERVE_RESULT_STORE_HPP
