#include "serve/protocol.hpp"

#include "engine/sweep_json.hpp"
#include "support/json_line.hpp"
#include "support/string_utils.hpp"

namespace paragraph {
namespace serve {

namespace {

const char *
opName(ServeRequest::Op op)
{
    switch (op) {
      case ServeRequest::Op::Sweep:
        return "sweep";
      case ServeRequest::Op::Ping:
        return "ping";
      case ServeRequest::Op::Stats:
        return "stats";
      case ServeRequest::Op::Shutdown:
        return "shutdown";
    }
    return "ping";
}

void
appendStrList(std::string &s, const char *key,
              const std::vector<std::string> &items)
{
    if (items.empty())
        return;
    s += ", \"";
    s += key;
    s += "\": [";
    for (size_t i = 0; i < items.size(); ++i) {
        if (i)
            s += ", ";
        s += engine::jsonString(items[i]);
    }
    s += ']';
}

void
appendNumList(std::string &s, const char *key,
              const std::vector<uint64_t> &items)
{
    if (items.empty())
        return;
    s += ", \"";
    s += key;
    s += "\": [";
    for (size_t i = 0; i < items.size(); ++i) {
        if (i)
            s += ", ";
        s += std::to_string(items[i]);
    }
    s += ']';
}

} // namespace

bool
parseServeRequest(const std::string &line, ServeRequest &out,
                  std::string &error)
{
    JsonLineParser p(line);
    if (!p.parse()) {
        error = "malformed request line";
        return false;
    }
    const std::string *schema = p.str("schema");
    if (!schema || *schema != protocolSchema) {
        error = strFormat("expected schema \"%s\"", protocolSchema);
        return false;
    }
    const std::string *op = p.str("op");
    if (!op) {
        error = "request has no op";
        return false;
    }
    if (*op == "sweep")
        out.op = ServeRequest::Op::Sweep;
    else if (*op == "ping")
        out.op = ServeRequest::Op::Ping;
    else if (*op == "stats")
        out.op = ServeRequest::Op::Stats;
    else if (*op == "shutdown")
        out.op = ServeRequest::Op::Shutdown;
    else {
        error = strFormat("unknown op '%s'", op->c_str());
        return false;
    }

    if (const std::vector<std::string> *v = p.strList("inputs"))
        out.inputs = *v;
    if (const std::vector<uint64_t> *v = p.numList("windows"))
        out.windows = *v;
    if (const std::vector<std::string> *v = p.strList("rename"))
        out.renames = *v;
    if (const std::vector<std::string> *v = p.strList("syscalls"))
        out.syscalls = *v;
    if (const std::vector<std::string> *v = p.strList("predictors"))
        out.predictors = *v;
    if (const std::vector<uint64_t> *v = p.numList("fus"))
        out.fus = *v;
    p.num("max", out.maxInstructions);
    p.boolean("profiles", out.profiles);
    p.boolean("small", out.small);

    if (out.op == ServeRequest::Op::Sweep && out.inputs.empty()) {
        error = "sweep request has no inputs";
        return false;
    }
    return true;
}

std::string
renderServeRequest(const ServeRequest &req)
{
    std::string s = std::string("{\"schema\": \"") + protocolSchema +
                    "\", \"op\": \"" + opName(req.op) + '"';
    appendStrList(s, "inputs", req.inputs);
    appendNumList(s, "windows", req.windows);
    appendStrList(s, "rename", req.renames);
    appendStrList(s, "syscalls", req.syscalls);
    appendStrList(s, "predictors", req.predictors);
    appendNumList(s, "fus", req.fus);
    if (req.maxInstructions)
        s += ", \"max\": " + std::to_string(req.maxInstructions);
    if (!req.profiles)
        s += ", \"profiles\": false";
    if (req.small)
        s += ", \"small\": true";
    s += '}';
    return s;
}

engine::SweepArgs
toSweepArgs(const ServeRequest &req)
{
    engine::SweepArgs args;
    args.inputs = req.inputs;
    args.windows = req.windows;
    args.renames = req.renames;
    args.syscalls = req.syscalls;
    args.predictors = req.predictors;
    for (uint64_t fu : req.fus)
        args.fus.push_back(static_cast<uint32_t>(fu));
    args.maxInstructions = req.maxInstructions;
    args.small = req.small;
    args.json.timing = false; // served documents are always deterministic
    args.json.profiles = req.profiles;
    return args;
}

bool
parseServeResponse(const std::string &line, ServeResponse &out,
                   std::string &error)
{
    JsonLineParser p(line);
    if (!p.parse()) {
        error = "malformed response line";
        return false;
    }
    const std::string *schema = p.str("schema");
    if (!schema || *schema != protocolSchema) {
        error = strFormat("expected schema \"%s\"", protocolSchema);
        return false;
    }
    const std::string *status = p.str("status");
    if (!status) {
        error = "response has no status";
        return false;
    }
    out.status = *status;
    if (const std::string *op = p.str("op"))
        out.op = *op;
    if (const std::string *err = p.str("error"))
        out.error = *err;
    if (const std::string *doc = p.str("document"))
        out.document = *doc;
    p.num("cells_total", out.cellsTotal);
    p.num("cells_failed", out.cellsFailed);
    p.num("cells_cached", out.cellsCached);
    p.num("cells_computed", out.cellsComputed);
    p.num("requests", out.requests);
    p.num("store_entries", out.storeEntries);
    p.num("store_hot_bytes", out.storeHotBytes);
    p.num("trace_cached_inputs", out.traceCachedInputs);
    p.num("trace_cached_bytes", out.traceCachedBytes);
    p.num("total_cells_cached", out.totalCellsCached);
    p.num("total_cells_computed", out.totalCellsComputed);
    return true;
}

std::string
renderSweepResponse(uint64_t cellsTotal, uint64_t cellsFailed,
                    uint64_t cellsCached, uint64_t cellsComputed,
                    const std::string &document)
{
    return std::string("{\"schema\": \"") + protocolSchema +
           "\", \"status\": \"ok\", \"op\": \"sweep\", \"cells_total\": " +
           std::to_string(cellsTotal) +
           ", \"cells_failed\": " + std::to_string(cellsFailed) +
           ", \"cells_cached\": " + std::to_string(cellsCached) +
           ", \"cells_computed\": " + std::to_string(cellsComputed) +
           ", \"document\": " + engine::jsonString(document) + '}';
}

std::string
renderAckResponse(const char *op)
{
    return std::string("{\"schema\": \"") + protocolSchema +
           "\", \"status\": \"ok\", \"op\": \"" + op + "\"}";
}

std::string
renderStatsResponse(const ServeResponse &stats)
{
    return std::string("{\"schema\": \"") + protocolSchema +
           "\", \"status\": \"ok\", \"op\": \"stats\", \"requests\": " +
           std::to_string(stats.requests) +
           ", \"store_entries\": " + std::to_string(stats.storeEntries) +
           ", \"store_hot_bytes\": " + std::to_string(stats.storeHotBytes) +
           ", \"trace_cached_inputs\": " +
           std::to_string(stats.traceCachedInputs) +
           ", \"trace_cached_bytes\": " +
           std::to_string(stats.traceCachedBytes) +
           ", \"total_cells_cached\": " +
           std::to_string(stats.totalCellsCached) +
           ", \"total_cells_computed\": " +
           std::to_string(stats.totalCellsComputed) + '}';
}

std::string
renderErrorResponse(const std::string &message)
{
    return std::string("{\"schema\": \"") + protocolSchema +
           "\", \"status\": \"error\", \"error\": " +
           engine::jsonString(message) + '}';
}

} // namespace serve
} // namespace paragraph
