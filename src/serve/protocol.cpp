#include "serve/protocol.hpp"

#include <cstdlib>

#include "engine/sweep_json.hpp"
#include "support/json_line.hpp"
#include "support/string_utils.hpp"

namespace paragraph {
namespace serve {

namespace {

const char *
opName(ServeRequest::Op op)
{
    switch (op) {
      case ServeRequest::Op::Sweep:
        return "sweep";
      case ServeRequest::Op::Explore:
        return "explore";
      case ServeRequest::Op::Ping:
        return "ping";
      case ServeRequest::Op::Stats:
        return "stats";
      case ServeRequest::Op::Health:
        return "health";
      case ServeRequest::Op::Failpoint:
        return "failpoint";
      case ServeRequest::Op::Shutdown:
        return "shutdown";
    }
    return "ping";
}

void
appendStrList(std::string &s, const char *key,
              const std::vector<std::string> &items)
{
    if (items.empty())
        return;
    s += ", \"";
    s += key;
    s += "\": [";
    for (size_t i = 0; i < items.size(); ++i) {
        if (i)
            s += ", ";
        s += engine::jsonString(items[i]);
    }
    s += ']';
}

void
appendNumList(std::string &s, const char *key,
              const std::vector<uint64_t> &items)
{
    if (items.empty())
        return;
    s += ", \"";
    s += key;
    s += "\": [";
    for (size_t i = 0; i < items.size(); ++i) {
        if (i)
            s += ", ";
        s += std::to_string(items[i]);
    }
    s += ']';
}

} // namespace

bool
parseServeRequest(const std::string &line, ServeRequest &out,
                  std::string &error)
{
    JsonLineParser p(line);
    if (!p.parse()) {
        error = "malformed request line";
        return false;
    }
    const std::string *schema = p.str("schema");
    if (!schema || *schema != protocolSchema) {
        error = strFormat("expected schema \"%s\"", protocolSchema);
        return false;
    }
    const std::string *op = p.str("op");
    if (!op) {
        error = "request has no op";
        return false;
    }
    if (*op == "sweep")
        out.op = ServeRequest::Op::Sweep;
    else if (*op == "explore")
        out.op = ServeRequest::Op::Explore;
    else if (*op == "ping")
        out.op = ServeRequest::Op::Ping;
    else if (*op == "stats")
        out.op = ServeRequest::Op::Stats;
    else if (*op == "health")
        out.op = ServeRequest::Op::Health;
    else if (*op == "failpoint")
        out.op = ServeRequest::Op::Failpoint;
    else if (*op == "shutdown")
        out.op = ServeRequest::Op::Shutdown;
    else {
        error = strFormat("unknown op '%s'", op->c_str());
        return false;
    }

    if (const std::vector<std::string> *v = p.strList("inputs"))
        out.inputs = *v;
    if (const std::vector<uint64_t> *v = p.numList("windows"))
        out.windows = *v;
    if (const std::vector<std::string> *v = p.strList("rename"))
        out.renames = *v;
    if (const std::vector<std::string> *v = p.strList("syscalls"))
        out.syscalls = *v;
    if (const std::vector<std::string> *v = p.strList("predictors"))
        out.predictors = *v;
    if (const std::vector<uint64_t> *v = p.numList("fus"))
        out.fus = *v;
    p.num("max", out.maxInstructions);
    p.boolean("profiles", out.profiles);
    p.boolean("small", out.small);
    if (const std::string *spec = p.str("spec"))
        out.failpointSpec = *spec;
    out.hasFailpointSeed = p.num("seed", out.failpointSeed);
    if (const std::string *tol = p.str("knee_tol")) {
        char *end = nullptr;
        double v = std::strtod(tol->c_str(), &end);
        if (!end || *end != '\0' || v < 0.0 || v != v) {
            error = strFormat("bad knee_tol value '%s'", tol->c_str());
            return false;
        }
        out.kneeTol = v;
    }

    if ((out.op == ServeRequest::Op::Sweep ||
         out.op == ServeRequest::Op::Explore) &&
        out.inputs.empty()) {
        error = strFormat("%s request has no inputs", opName(out.op));
        return false;
    }
    return true;
}

std::string
renderServeRequest(const ServeRequest &req)
{
    std::string s = std::string("{\"schema\": \"") + protocolSchema +
                    "\", \"op\": \"" + opName(req.op) + '"';
    appendStrList(s, "inputs", req.inputs);
    appendNumList(s, "windows", req.windows);
    appendStrList(s, "rename", req.renames);
    appendStrList(s, "syscalls", req.syscalls);
    appendStrList(s, "predictors", req.predictors);
    appendNumList(s, "fus", req.fus);
    if (req.maxInstructions)
        s += ", \"max\": " + std::to_string(req.maxInstructions);
    if (!req.profiles)
        s += ", \"profiles\": false";
    if (req.small)
        s += ", \"small\": true";
    if (req.op == ServeRequest::Op::Explore && req.kneeTol != 0.0)
        s += ", \"knee_tol\": \"" + engine::jsonDouble(req.kneeTol) + '"';
    if (req.op == ServeRequest::Op::Failpoint) {
        s += ", \"spec\": " + engine::jsonString(req.failpointSpec);
        if (req.hasFailpointSeed)
            s += ", \"seed\": " + std::to_string(req.failpointSeed);
    }
    s += '}';
    return s;
}

engine::SweepArgs
toSweepArgs(const ServeRequest &req)
{
    engine::SweepArgs args;
    args.inputs = req.inputs;
    args.windows = req.windows;
    args.renames = req.renames;
    args.syscalls = req.syscalls;
    args.predictors = req.predictors;
    for (uint64_t fu : req.fus)
        args.fus.push_back(static_cast<uint32_t>(fu));
    args.maxInstructions = req.maxInstructions;
    args.small = req.small;
    args.explore = req.op == ServeRequest::Op::Explore;
    args.kneeTol = req.kneeTol;
    args.json.timing = false; // served documents are always deterministic
    args.json.profiles = req.profiles;
    return args;
}

bool
parseServeResponse(const std::string &line, ServeResponse &out,
                   std::string &error)
{
    JsonLineParser p(line);
    if (!p.parse()) {
        error = "malformed response line";
        return false;
    }
    const std::string *schema = p.str("schema");
    if (!schema || *schema != protocolSchema) {
        error = strFormat("expected schema \"%s\"", protocolSchema);
        return false;
    }
    const std::string *status = p.str("status");
    if (!status) {
        error = "response has no status";
        return false;
    }
    out.status = *status;
    if (const std::string *op = p.str("op"))
        out.op = *op;
    if (const std::string *err = p.str("error"))
        out.error = *err;
    if (const std::string *doc = p.str("document"))
        out.document = *doc;
    p.num("cells_total", out.cellsTotal);
    p.num("cells_failed", out.cellsFailed);
    p.num("cells_cached", out.cellsCached);
    p.num("cells_computed", out.cellsComputed);
    p.num("cells_executed", out.cellsExecuted);
    p.num("cells_pruned", out.cellsPruned);
    p.num("requests", out.requests);
    p.num("store_entries", out.storeEntries);
    p.num("store_hot_bytes", out.storeHotBytes);
    p.num("trace_cached_inputs", out.traceCachedInputs);
    p.num("trace_cached_bytes", out.traceCachedBytes);
    p.num("total_cells_cached", out.totalCellsCached);
    p.num("total_cells_computed", out.totalCellsComputed);
    p.num("retry_after_ms", out.retryAfterMs);
    p.num("pending_cells", out.pendingCells);
    p.num("active_sweeps", out.activeSweeps);
    p.num("workers", out.workers);
    p.num("store_disk_bytes", out.storeDiskBytes);
    p.num("store_appends", out.storeAppends);
    p.num("store_syncs", out.storeSyncs);
    p.num("store_compactions", out.storeCompactions);
    p.num("failpoints_active", out.failpointsActive);
    p.num("failpoint_fires", out.failpointFires);
    if (const std::string *sync = p.str("store_sync"))
        out.storeSync = *sync;
    return true;
}

std::string
renderSweepResponse(uint64_t cellsTotal, uint64_t cellsFailed,
                    uint64_t cellsCached, uint64_t cellsComputed,
                    const std::string &document)
{
    return std::string("{\"schema\": \"") + protocolSchema +
           "\", \"status\": \"ok\", \"op\": \"sweep\", \"cells_total\": " +
           std::to_string(cellsTotal) +
           ", \"cells_failed\": " + std::to_string(cellsFailed) +
           ", \"cells_cached\": " + std::to_string(cellsCached) +
           ", \"cells_computed\": " + std::to_string(cellsComputed) +
           ", \"document\": " + engine::jsonString(document) + '}';
}

std::string
renderExploreResponse(uint64_t cellsTotal, uint64_t cellsExecuted,
                      uint64_t cellsPruned, uint64_t cellsFailed,
                      uint64_t cellsCached, uint64_t cellsComputed,
                      const std::string &document)
{
    return std::string("{\"schema\": \"") + protocolSchema +
           "\", \"status\": \"ok\", \"op\": \"explore\", "
           "\"cells_total\": " +
           std::to_string(cellsTotal) +
           ", \"cells_executed\": " + std::to_string(cellsExecuted) +
           ", \"cells_pruned\": " + std::to_string(cellsPruned) +
           ", \"cells_failed\": " + std::to_string(cellsFailed) +
           ", \"cells_cached\": " + std::to_string(cellsCached) +
           ", \"cells_computed\": " + std::to_string(cellsComputed) +
           ", \"document\": " + engine::jsonString(document) + '}';
}

std::string
renderAckResponse(const char *op)
{
    return std::string("{\"schema\": \"") + protocolSchema +
           "\", \"status\": \"ok\", \"op\": \"" + op + "\"}";
}

std::string
renderStatsResponse(const ServeResponse &stats)
{
    return std::string("{\"schema\": \"") + protocolSchema +
           "\", \"status\": \"ok\", \"op\": \"stats\", \"requests\": " +
           std::to_string(stats.requests) +
           ", \"store_entries\": " + std::to_string(stats.storeEntries) +
           ", \"store_hot_bytes\": " + std::to_string(stats.storeHotBytes) +
           ", \"trace_cached_inputs\": " +
           std::to_string(stats.traceCachedInputs) +
           ", \"trace_cached_bytes\": " +
           std::to_string(stats.traceCachedBytes) +
           ", \"total_cells_cached\": " +
           std::to_string(stats.totalCellsCached) +
           ", \"total_cells_computed\": " +
           std::to_string(stats.totalCellsComputed) + '}';
}

std::string
renderHealthResponse(const ServeResponse &health)
{
    return std::string("{\"schema\": \"") + protocolSchema +
           "\", \"status\": \"ok\", \"op\": \"health\", " +
           "\"pending_cells\": " + std::to_string(health.pendingCells) +
           ", \"active_sweeps\": " + std::to_string(health.activeSweeps) +
           ", \"workers\": " + std::to_string(health.workers) +
           ", \"store_entries\": " + std::to_string(health.storeEntries) +
           ", \"store_disk_bytes\": " +
           std::to_string(health.storeDiskBytes) +
           ", \"store_appends\": " + std::to_string(health.storeAppends) +
           ", \"store_syncs\": " + std::to_string(health.storeSyncs) +
           ", \"store_compactions\": " +
           std::to_string(health.storeCompactions) +
           ", \"store_sync\": " + engine::jsonString(health.storeSync) +
           ", \"failpoints_active\": " +
           std::to_string(health.failpointsActive) +
           ", \"failpoint_fires\": " +
           std::to_string(health.failpointFires) + '}';
}

std::string
renderBusyResponse(uint64_t retryAfterMs)
{
    return std::string("{\"schema\": \"") + protocolSchema +
           "\", \"status\": \"busy\", \"error\": \"server overloaded\", "
           "\"retry_after_ms\": " +
           std::to_string(retryAfterMs) + '}';
}

std::string
renderErrorResponse(const std::string &message)
{
    return std::string("{\"schema\": \"") + protocolSchema +
           "\", \"status\": \"error\", \"error\": " +
           engine::jsonString(message) + '}';
}

} // namespace serve
} // namespace paragraph
