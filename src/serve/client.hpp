/**
 * @file
 * ServeClient: a minimal blocking client for the paragraph-serve socket.
 *
 * One connection, one request line out, one response line back — exactly
 * the protocol the daemon speaks (serve/protocol.hpp). Used by the
 * `paragraph-serve --client` CLI mode and by the serve tests; error paths
 * return false with a message instead of throwing so CLI and test callers
 * can report them verbatim.
 */

#ifndef PARAGRAPH_SERVE_CLIENT_HPP
#define PARAGRAPH_SERVE_CLIENT_HPP

#include <string>

namespace paragraph {
namespace serve {

class ServeClient
{
  public:
    explicit ServeClient(std::string socketPath)
        : socketPath_(std::move(socketPath))
    {
    }
    ~ServeClient() { close(); }

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /** Connect to the daemon socket. */
    bool connect(std::string &error);

    /**
     * Send @p line (a newline is appended) and block for one response
     * line. Requires a successful connect().
     */
    bool roundTrip(const std::string &line, std::string &responseLine,
                   std::string &error);

    /** Send without waiting (used to test disconnect-mid-job). */
    bool sendLine(const std::string &line, std::string &error);

    void close();

    bool connected() const { return fd_ >= 0; }

  private:
    std::string socketPath_;
    std::string buffer_;
    int fd_ = -1;
};

} // namespace serve
} // namespace paragraph

#endif // PARAGRAPH_SERVE_CLIENT_HPP
