/**
 * @file
 * ServeClient: a minimal blocking client for the paragraph-serve socket.
 *
 * One connection, one request line out, one response line back — exactly
 * the protocol the daemon speaks (serve/protocol.hpp). Used by the
 * `paragraph-serve --client` CLI mode and by the serve tests; error paths
 * return false with a message instead of throwing so CLI and test callers
 * can report them verbatim.
 */

#ifndef PARAGRAPH_SERVE_CLIENT_HPP
#define PARAGRAPH_SERVE_CLIENT_HPP

#include <string>

namespace paragraph {
namespace serve {

class ServeClient
{
  public:
    explicit ServeClient(std::string socketPath)
        : socketPath_(std::move(socketPath))
    {
    }
    ~ServeClient() { close(); }

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /** Connect to the daemon socket. */
    bool connect(std::string &error);

    /**
     * Give every subsequent send/recv at most @p seconds to make progress
     * (SO_SNDTIMEO/SO_RCVTIMEO); 0 restores blocking forever. May be
     * called before or after connect(). A hung or wedged daemon then
     * fails the round trip with a "timed out" error instead of hanging
     * the client for good.
     */
    void setTimeout(double seconds);

    /**
     * Send @p line (a newline is appended) and block for one response
     * line. Requires a successful connect().
     */
    bool roundTrip(const std::string &line, std::string &responseLine,
                   std::string &error);

    /** Send without waiting (used to test disconnect-mid-job). */
    bool sendLine(const std::string &line, std::string &error);

    void close();

    bool connected() const { return fd_ >= 0; }

  private:
    bool applyTimeout(std::string &error);

    std::string socketPath_;
    std::string buffer_;
    int fd_ = -1;
    double timeoutSeconds_ = 0.0;
};

} // namespace serve
} // namespace paragraph

#endif // PARAGRAPH_SERVE_CLIENT_HPP
