#include "serve/client.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

namespace paragraph {
namespace serve {

bool
ServeClient::connect(std::string &error)
{
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (socketPath_.empty() ||
        socketPath_.size() >= sizeof(addr.sun_path)) {
        error = "socket path empty or too long for AF_UNIX";
        return false;
    }
    std::memcpy(addr.sun_path, socketPath_.c_str(), socketPath_.size() + 1);

    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) !=
        0) {
        error = socketPath_ + ": " + std::strerror(errno);
        ::close(fd_);
        fd_ = -1;
        return false;
    }
    if (!applyTimeout(error)) {
        ::close(fd_);
        fd_ = -1;
        return false;
    }
    return true;
}

void
ServeClient::setTimeout(double seconds)
{
    timeoutSeconds_ = seconds > 0 ? seconds : 0.0;
    if (fd_ >= 0) {
        std::string ignored;
        applyTimeout(ignored);
    }
}

bool
ServeClient::applyTimeout(std::string &error)
{
    timeval tv;
    tv.tv_sec = static_cast<time_t>(timeoutSeconds_);
    tv.tv_usec = static_cast<suseconds_t>(
        (timeoutSeconds_ - static_cast<double>(tv.tv_sec)) * 1e6);
    if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
        ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
        error = std::string("setsockopt: ") + std::strerror(errno);
        return false;
    }
    return true;
}

bool
ServeClient::sendLine(const std::string &line, std::string &error)
{
    if (fd_ < 0) {
        error = "not connected";
        return false;
    }
    std::string data = line + "\n";
    size_t sent = 0;
    while (sent < data.size()) {
        ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                error = "timed out sending to the daemon";
                return false;
            }
            error = std::string("send: ") + std::strerror(errno);
            return false;
        }
        sent += static_cast<size_t>(n);
    }
    return true;
}

bool
ServeClient::roundTrip(const std::string &line, std::string &responseLine,
                       std::string &error)
{
    // A daemon shedding at accept writes its busy response and closes
    // before ever reading the request, so the send can fail with EPIPE
    // while a complete response line sits queued on the socket. Attempt
    // the read either way and prefer a real response over the send error.
    std::string sendError;
    bool sendOk = sendLine(line, sendError);
    char chunk[4096];
    for (;;) {
        size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            responseLine = buffer_.substr(0, nl);
            buffer_.erase(0, nl + 1);
            return true;
        }
        ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (!sendOk)
                error = sendError;
            else if (errno == EAGAIN || errno == EWOULDBLOCK)
                error = "timed out waiting for the daemon's response";
            else
                error = std::string("recv: ") + std::strerror(errno);
            return false;
        }
        if (n == 0) {
            error = sendOk ? "daemon closed the connection mid-response"
                           : sendError;
            return false;
        }
        buffer_.append(chunk, static_cast<size_t>(n));
    }
}

void
ServeClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buffer_.clear();
}

} // namespace serve
} // namespace paragraph
