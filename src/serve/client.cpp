#include "serve/client.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace paragraph {
namespace serve {

bool
ServeClient::connect(std::string &error)
{
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (socketPath_.empty() ||
        socketPath_.size() >= sizeof(addr.sun_path)) {
        error = "socket path empty or too long for AF_UNIX";
        return false;
    }
    std::memcpy(addr.sun_path, socketPath_.c_str(), socketPath_.size() + 1);

    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) !=
        0) {
        error = socketPath_ + ": " + std::strerror(errno);
        ::close(fd_);
        fd_ = -1;
        return false;
    }
    return true;
}

bool
ServeClient::sendLine(const std::string &line, std::string &error)
{
    if (fd_ < 0) {
        error = "not connected";
        return false;
    }
    std::string data = line + "\n";
    size_t sent = 0;
    while (sent < data.size()) {
        ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error = std::string("send: ") + std::strerror(errno);
            return false;
        }
        sent += static_cast<size_t>(n);
    }
    return true;
}

bool
ServeClient::roundTrip(const std::string &line, std::string &responseLine,
                       std::string &error)
{
    if (!sendLine(line, error))
        return false;
    char chunk[4096];
    for (;;) {
        size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            responseLine = buffer_.substr(0, nl);
            buffer_.erase(0, nl + 1);
            return true;
        }
        ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error = std::string("recv: ") + std::strerror(errno);
            return false;
        }
        if (n == 0) {
            error = "daemon closed the connection mid-response";
            return false;
        }
        buffer_.append(chunk, static_cast<size_t>(n));
    }
}

void
ServeClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buffer_.clear();
}

} // namespace serve
} // namespace paragraph
