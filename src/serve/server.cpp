#include "serve/server.hpp"

#include <cerrno>
#include <cstring>
#include <map>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "engine/config_key.hpp"
#include "engine/sweep_json.hpp"
#include "support/panic.hpp"

namespace paragraph {
namespace serve {

namespace {

engine::TraceRepository::Options
repoOptions(const ServeServer::Options &opt)
{
    engine::TraceRepository::Options ro;
    ro.scale = opt.small ? workloads::Scale::Small : workloads::Scale::Full;
    ro.memoryBudget = opt.traceMemoryBudget;
    // maxRecords stays 0: the daemon captures whole traces, and per-request
    // instruction caps live in each cell's config (covered by its key).
    return ro;
}

bool
sendAll(int fd, const std::string &data)
{
    size_t sent = 0;
    while (sent < data.size()) {
        ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<size_t>(n);
    }
    return true;
}

} // namespace

ServeServer::ServeServer(Options opt) : opt_(std::move(opt)), repo_(repoOptions(opt_))
{
    engine::SweepScheduler::Options so;
    so.jobs = opt_.jobs;
    so.groupSize = opt_.groupSize;
    so.maxRetries = opt_.maxRetries;
    so.cellDeadlineSeconds = opt_.cellDeadlineSeconds;
    scheduler_ = std::make_unique<engine::SweepScheduler>(repo_, so);
    if (!opt_.storePath.empty()) {
        ResultStore::Options ro;
        ro.memoryBudget = opt_.storeMemoryBudget;
        store_ = std::make_unique<ResultStore>(opt_.storePath, ro);
    }
    cancel_.setReason("daemon shutting down");
}

ServeServer::~ServeServer()
{
    requestStop();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        ::unlink(opt_.socketPath.c_str());
    }
    if (scheduler_)
        scheduler_->stop();
    closeAllClients();
    for (std::thread &t : clientThreads_)
        t.join();
    clientThreads_.clear();
}

bool
ServeServer::start(std::string &error)
{
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (opt_.socketPath.empty() ||
        opt_.socketPath.size() >= sizeof(addr.sun_path)) {
        error = "socket path empty or too long for AF_UNIX";
        return false;
    }
    std::memcpy(addr.sun_path, opt_.socketPath.c_str(),
                opt_.socketPath.size() + 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        error = opt_.socketPath + ": " + std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    if (::listen(listenFd_, 16) != 0) {
        error = std::string("listen: ") + std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        ::unlink(opt_.socketPath.c_str());
        return false;
    }
    return true;
}

void
ServeServer::run()
{
    PARA_ASSERT(listenFd_ >= 0,
                "ServeServer::run() before a successful start()");
    while (!stop_.load(std::memory_order_acquire)) {
        pollfd pfd{listenFd_, POLLIN, 0};
        int n = ::poll(&pfd, 1, 200 /* ms: bounded stop latency */);
        if (n < 0) {
            if (errno == EINTR)
                continue; // a signal arrived; re-check stop_
            PARA_WARN("serve: poll failed (%s)", std::strerror(errno));
            break;
        }
        if (n == 0 || !(pfd.revents & POLLIN))
            continue;
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            PARA_WARN("serve: accept failed (%s)", std::strerror(errno));
            continue;
        }
        {
            std::lock_guard<std::mutex> lock(clientMutex_);
            clientFds_.insert(fd);
            clientThreads_.emplace_back(
                [this, fd] { handleClient(fd); });
        }
    }

    // Wind down: stop accepting, cut queued/in-flight analysis short, and
    // unblock any handler stuck in a read.
    ::close(listenFd_);
    listenFd_ = -1;
    ::unlink(opt_.socketPath.c_str());
    scheduler_->stop();
    closeAllClients();
    for (std::thread &t : clientThreads_)
        t.join();
    clientThreads_.clear();
}

void
ServeServer::requestStop()
{
    cancel_.cancelFromSignal();
    stop_.store(true, std::memory_order_release);
}

void
ServeServer::closeAllClients()
{
    std::lock_guard<std::mutex> lock(clientMutex_);
    for (int fd : clientFds_)
        ::shutdown(fd, SHUT_RDWR);
}

void
ServeServer::handleClient(int fd)
{
    std::string buffer;
    char chunk[4096];
    bool shutdownRequested = false;
    while (!shutdownRequested) {
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0)
            break; // client closed; any partial line is abandoned
        buffer.append(chunk, static_cast<size_t>(n));
        size_t nl;
        while (!shutdownRequested &&
               (nl = buffer.find('\n')) != std::string::npos) {
            std::string line = buffer.substr(0, nl);
            buffer.erase(0, nl + 1);
            if (line.empty())
                continue;
            std::string response =
                handleRequestLine(line, shutdownRequested);
            if (!sendAll(fd, response + "\n")) {
                // Client went away mid-response. Completed cells are
                // already in the store; nothing to unwind.
                shutdownRequested = shutdownRequested || false;
                nl = std::string::npos;
                break;
            }
        }
    }
    ::close(fd);
    {
        std::lock_guard<std::mutex> lock(clientMutex_);
        clientFds_.erase(fd);
    }
    if (shutdownRequested)
        requestStop();
}

std::string
ServeServer::handleRequestLine(const std::string &line, bool &shutdown)
{
    requests_.fetch_add(1, std::memory_order_relaxed);
    ServeRequest req;
    std::string error;
    if (!parseServeRequest(line, req, error))
        return renderErrorResponse(error);
    if (stop_.load(std::memory_order_acquire))
        return renderErrorResponse("daemon is shutting down");

    switch (req.op) {
      case ServeRequest::Op::Ping:
        return renderAckResponse("ping");
      case ServeRequest::Op::Stats:
        return statsLine();
      case ServeRequest::Op::Shutdown:
        shutdown = true;
        if (!opt_.quiet)
            PARA_WARN("serve: shutdown requested by client");
        return renderAckResponse("shutdown");
      case ServeRequest::Op::Sweep:
        break;
    }

    if (req.small != opt_.small) {
        return renderErrorResponse(
            opt_.small ? "daemon serves --small workloads; request full "
                         "scale from a full-scale daemon"
                       : "daemon serves full-scale workloads; drop "
                         "\"small\" or restart the daemon with --small");
    }
    try {
        return handleSweep(req);
    } catch (const std::exception &e) {
        return renderErrorResponse(e.what());
    }
}

std::string
ServeServer::handleSweep(const ServeRequest &req)
{
    engine::SweepArgs args = toSweepArgs(req);
    std::vector<core::AnalysisConfig> configs;
    std::vector<std::string> labels;
    std::string error;
    if (!engine::buildSweepConfigAxis(args, configs, labels, error))
        return renderErrorResponse(error);

    engine::SweepJsonOptions jsonOpt;
    jsonOpt.timing = false;
    jsonOpt.profiles = req.profiles;

    // Lay out the grid exactly as SweepEngine::run would.
    engine::SweepResult sweep;
    sweep.jobs = scheduler_->workers();
    sweep.cells.resize(req.inputs.size() * configs.size());
    std::vector<engine::SweepJob> misses;
    std::vector<size_t> missSlot;         // grid index per submitted job
    std::map<size_t, ResultKey> slotKey;  // grid index -> content address
    uint64_t cached = 0;
    for (size_t i = 0; i < req.inputs.size(); ++i) {
        uint32_t traceCrc = 0;
        bool haveCrc = false;
        try {
            traceCrc = repo_.traceCrc(req.inputs[i]);
            haveCrc = true;
        } catch (const std::exception &) {
            // Unknown/broken input: fall through — the scheduler's
            // per-cell attempts loop will attribute the error per cell.
        }
        for (size_t j = 0; j < configs.size(); ++j) {
            size_t slot = i * configs.size() + j;
            engine::SweepJob job;
            job.input = req.inputs[i];
            job.config = configs[j];
            job.config.cancel = &cancel_;
            job.configLabel = labels[j];
            job.inputIndex = i;
            job.configIndex = j;

            if (haveCrc) {
                ResultKey key;
                key.traceCrc = traceCrc;
                // The key is the *analysis* config's fingerprint — the
                // cancel pointer is excluded from the canonical text.
                key.configKey = engine::configKey(job.config);
                key.profiles = req.profiles;
                slotKey[slot] = key;
                std::string cellJson;
                if (store_ && store_->lookup(key, cellJson)) {
                    engine::SweepCell &cell = sweep.cells[slot];
                    cell.job = std::move(job);
                    cell.status = engine::SweepCell::Status::Skipped;
                    cell.journalText = std::move(cellJson);
                    ++cached;
                    continue;
                }
            }
            missSlot.push_back(slot);
            misses.push_back(std::move(job));
        }
    }
    sweep.cellsSkipped = cached;

    if (!misses.empty()) {
        // Store each Ok cell the moment it is final: a client that
        // disconnects (or a daemon killed later) never loses cells that
        // completed. The callback runs on worker threads; ResultStore
        // serializes internally.
        auto batch = scheduler_->submit(
            std::move(misses), [&](engine::SweepCell &cell) {
                if (cell.status != engine::SweepCell::Status::Ok || !store_)
                    return;
                size_t slot = cell.job.inputIndex * configs.size() +
                              cell.job.configIndex;
                auto it = slotKey.find(slot);
                if (it == slotKey.end())
                    return; // input CRC unavailable: uncacheable
                store_->insert(it->second, cellToJson(cell, jsonOpt));
            });
        batch->wait();
        std::vector<engine::SweepCell> &done = batch->cells();
        for (size_t k = 0; k < done.size(); ++k)
            sweep.cells[missSlot[k]] = std::move(done[k]);
    }

    uint64_t failed = 0;
    for (const engine::SweepCell &cell : sweep.cells) {
        if (cell.status == engine::SweepCell::Status::Failed)
            ++failed;
    }
    sweep.cellsFailed = failed;

    uint64_t computed = sweep.cells.size() - cached;
    cellsCached_.fetch_add(cached, std::memory_order_relaxed);
    cellsComputed_.fetch_add(computed, std::memory_order_relaxed);
    if (!opt_.quiet) {
        PARA_WARN("serve: sweep %zu cells (%llu cached, %llu computed, "
                  "%llu failed)",
                  sweep.cells.size(),
                  static_cast<unsigned long long>(cached),
                  static_cast<unsigned long long>(computed),
                  static_cast<unsigned long long>(failed));
    }

    return renderSweepResponse(sweep.cells.size(), failed, cached, computed,
                               sweepToJson(sweep, jsonOpt));
}

std::string
ServeServer::statsLine()
{
    ServeResponse stats;
    stats.requests = requests_.load(std::memory_order_relaxed);
    stats.storeEntries = store_ ? store_->entries() : 0;
    stats.storeHotBytes = store_ ? store_->hotBytes() : 0;
    stats.traceCachedInputs = repo_.cachedInputs();
    stats.traceCachedBytes = repo_.cachedBytes();
    stats.totalCellsCached = cellsCached_.load(std::memory_order_relaxed);
    stats.totalCellsComputed =
        cellsComputed_.load(std::memory_order_relaxed);
    return renderStatsResponse(stats);
}

} // namespace serve
} // namespace paragraph
