#include "serve/server.hpp"

#include <cerrno>
#include <cstring>
#include <map>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "engine/config_key.hpp"
#include "engine/explorer.hpp"
#include "engine/sweep_json.hpp"
#include "support/failpoint.hpp"
#include "support/panic.hpp"
#include "support/test_seed.hpp"

namespace paragraph {
namespace serve {

namespace {

engine::TraceRepository::Options
repoOptions(const ServeServer::Options &opt)
{
    engine::TraceRepository::Options ro;
    ro.scale = opt.small ? workloads::Scale::Small : workloads::Scale::Full;
    ro.memoryBudget = opt.traceMemoryBudget;
    // maxRecords stays 0: the daemon captures whole traces, and per-request
    // instruction caps live in each cell's config (covered by its key).
    return ro;
}

/** Wait for @p events on @p fd; 0 on deadline expiry, <0 on error. */
int
pollFor(int fd, short events, double timeoutSeconds)
{
    pollfd pfd{fd, events, 0};
    int timeoutMs = timeoutSeconds > 0
                        ? static_cast<int>(timeoutSeconds * 1000.0)
                        : -1;
    int n;
    do {
        n = ::poll(&pfd, 1, timeoutMs);
    } while (n < 0 && errno == EINTR);
    return n;
}

/**
 * Send all of @p data, giving the peer at most @p timeoutSeconds (0 =
 * forever) to drain each burst. A stalled reader fails the send instead of
 * wedging the handler thread.
 */
bool
sendAll(int fd, const std::string &data, double timeoutSeconds)
{
    size_t sent = 0;
    while (sent < data.size()) {
        if (timeoutSeconds > 0 &&
            pollFor(fd, POLLOUT, timeoutSeconds) <= 0)
            return false;
        ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                           MSG_NOSIGNAL);
        if (PARA_FAILPOINT("serve.write") && n > 0)
            n = -1; // simulated peer reset mid-response
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<size_t>(n);
    }
    return true;
}

const char *
syncPolicyName(SyncPolicy policy)
{
    switch (policy) {
      case SyncPolicy::None:
        return "none";
      case SyncPolicy::Interval:
        return "interval";
      case SyncPolicy::Cell:
        return "cell";
    }
    return "none";
}

/**
 * Rewrite the "input_index"/"config_index" fields of a stored cell
 * fragment to this grid's coordinates. The newline-anchored patterns are
 * unambiguous: JSON strings never contain a raw newline, so the anchors
 * can only match the fields writeCell itself rendered.
 */
void
rebindSpliceIndices(std::string &cellJson, size_t inputIndex,
                    size_t configIndex)
{
    auto rewrite = [&cellJson](const char *anchor, size_t value) {
        size_t at = cellJson.find(anchor);
        if (at == std::string::npos)
            return;
        size_t start = at + std::strlen(anchor);
        size_t end = cellJson.find_first_not_of("0123456789", start);
        if (end == std::string::npos)
            return;
        cellJson.replace(start, end - start, std::to_string(value));
    };
    rewrite("\n      \"input_index\": ", inputIndex);
    rewrite("\n      \"config_index\": ", configIndex);
}

} // namespace

ServeServer::ServeServer(Options opt) : opt_(std::move(opt)), repo_(repoOptions(opt_))
{
    engine::SweepScheduler::Options so;
    so.jobs = opt_.jobs;
    so.groupSize = opt_.groupSize;
    so.maxRetries = opt_.maxRetries;
    so.cellDeadlineSeconds = opt_.cellDeadlineSeconds;
    scheduler_ = std::make_unique<engine::SweepScheduler>(repo_, so);
    if (!opt_.storePath.empty()) {
        ResultStore::Options ro;
        ro.memoryBudget = opt_.storeMemoryBudget;
        ro.syncPolicy = opt_.storeSyncPolicy;
        ro.syncIntervalSeconds = opt_.storeSyncIntervalSeconds;
        ro.compactEveryAppends = opt_.storeCompactEvery;
        store_ = std::make_unique<ResultStore>(opt_.storePath, ro);
    }
    cancel_.setReason("daemon shutting down");
}

ServeServer::~ServeServer()
{
    requestStop();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        ::unlink(opt_.socketPath.c_str());
    }
    if (scheduler_)
        scheduler_->stop();
    closeAllClients();
    for (std::thread &t : clientThreads_)
        t.join();
    clientThreads_.clear();
}

bool
ServeServer::start(std::string &error)
{
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (opt_.socketPath.empty() ||
        opt_.socketPath.size() >= sizeof(addr.sun_path)) {
        error = "socket path empty or too long for AF_UNIX";
        return false;
    }
    std::memcpy(addr.sun_path, opt_.socketPath.c_str(),
                opt_.socketPath.size() + 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        error = opt_.socketPath + ": " + std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    if (::listen(listenFd_, 16) != 0) {
        error = std::string("listen: ") + std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        ::unlink(opt_.socketPath.c_str());
        return false;
    }
    return true;
}

void
ServeServer::run()
{
    PARA_ASSERT(listenFd_ >= 0,
                "ServeServer::run() before a successful start()");
    while (!stop_.load(std::memory_order_acquire)) {
        pollfd pfd{listenFd_, POLLIN, 0};
        int n = ::poll(&pfd, 1, 200 /* ms: bounded stop latency */);
        if (n < 0) {
            if (errno == EINTR)
                continue; // a signal arrived; re-check stop_
            PARA_WARN("serve: poll failed (%s)", std::strerror(errno));
            break;
        }
        if (n == 0 || !(pfd.revents & POLLIN))
            continue;
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (PARA_FAILPOINT("serve.accept") && fd >= 0) {
            // Simulated fd exhaustion: surrender the descriptor and take
            // the same branch a real EMFILE would.
            ::close(fd);
            fd = -1;
            errno = EMFILE;
        }
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            PARA_WARN("serve: accept failed (%s)", std::strerror(errno));
            continue;
        }
        size_t clients;
        {
            std::lock_guard<std::mutex> lock(clientMutex_);
            clients = clientFds_.size();
        }
        if (opt_.maxClients != 0 && clients >= opt_.maxClients) {
            // Turn the connection away at the door with a retry hint —
            // a full house must degrade to a polite "busy", never to an
            // unbounded connection backlog.
            rejectedBusy_.fetch_add(1, std::memory_order_relaxed);
            sendAll(fd, renderBusyResponse(busyRetryHintMs()) + "\n",
                    opt_.ioTimeoutSeconds);
            ::close(fd);
            continue;
        }
        {
            std::lock_guard<std::mutex> lock(clientMutex_);
            clientFds_.insert(fd);
            clientThreads_.emplace_back(
                [this, fd] { handleClient(fd); });
        }
    }

    // Wind down: stop accepting, cut queued/in-flight analysis short, and
    // unblock any handler stuck in a read.
    ::close(listenFd_);
    listenFd_ = -1;
    ::unlink(opt_.socketPath.c_str());
    scheduler_->stop();
    closeAllClients();
    for (std::thread &t : clientThreads_)
        t.join();
    clientThreads_.clear();
}

void
ServeServer::requestStop()
{
    cancel_.cancelFromSignal();
    stop_.store(true, std::memory_order_release);
}

void
ServeServer::closeAllClients()
{
    std::lock_guard<std::mutex> lock(clientMutex_);
    for (int fd : clientFds_)
        ::shutdown(fd, SHUT_RDWR);
}

void
ServeServer::handleClient(int fd)
{
    std::string buffer;
    char chunk[4096];
    bool shutdownRequested = false;
    while (!shutdownRequested) {
        if (opt_.ioTimeoutSeconds > 0 &&
            pollFor(fd, POLLIN, opt_.ioTimeoutSeconds) <= 0) {
            // Idle past the deadline (or poll error): a stalled client
            // must not pin a handler thread forever.
            break;
        }
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (PARA_FAILPOINT("serve.read") && n > 0)
            n = 0; // simulated peer hangup mid-request
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0)
            break; // client closed; any partial line is abandoned
        buffer.append(chunk, static_cast<size_t>(n));
        if (opt_.maxRequestBytes != 0 &&
            buffer.size() > opt_.maxRequestBytes &&
            buffer.find('\n') == std::string::npos) {
            // An unterminated line past the cap would otherwise grow
            // without bound on daemon memory.
            sendAll(fd,
                    renderErrorResponse("request exceeds the daemon's "
                                        "max request size") +
                        "\n",
                    opt_.ioTimeoutSeconds);
            break;
        }
        size_t nl;
        while (!shutdownRequested &&
               (nl = buffer.find('\n')) != std::string::npos) {
            std::string line = buffer.substr(0, nl);
            buffer.erase(0, nl + 1);
            if (line.empty())
                continue;
            std::string response;
            if (opt_.maxRequestBytes != 0 &&
                line.size() > opt_.maxRequestBytes) {
                response = renderErrorResponse(
                    "request exceeds the daemon's max request size");
            } else {
                response = handleRequestLine(line, shutdownRequested);
            }
            if (!sendAll(fd, response + "\n", opt_.ioTimeoutSeconds)) {
                // Client went away mid-response. Completed cells are
                // already in the store; nothing to unwind.
                shutdownRequested = shutdownRequested || false;
                nl = std::string::npos;
                break;
            }
        }
    }
    ::close(fd);
    {
        std::lock_guard<std::mutex> lock(clientMutex_);
        clientFds_.erase(fd);
    }
    if (shutdownRequested)
        requestStop();
}

std::string
ServeServer::handleRequestLine(const std::string &line, bool &shutdown)
{
    requests_.fetch_add(1, std::memory_order_relaxed);
    ServeRequest req;
    std::string error;
    if (!parseServeRequest(line, req, error))
        return renderErrorResponse(error);
    if (stop_.load(std::memory_order_acquire))
        return renderErrorResponse("daemon is shutting down");

    switch (req.op) {
      case ServeRequest::Op::Ping:
        return renderAckResponse("ping");
      case ServeRequest::Op::Stats:
        return statsLine();
      case ServeRequest::Op::Health:
        return healthLine();
      case ServeRequest::Op::Failpoint:
        return failpointLine(req);
      case ServeRequest::Op::Shutdown:
        shutdown = true;
        if (!opt_.quiet)
            PARA_WARN("serve: shutdown requested by client");
        return renderAckResponse("shutdown");
      case ServeRequest::Op::Sweep:
      case ServeRequest::Op::Explore:
        break;
    }

    if (req.small != opt_.small) {
        return renderErrorResponse(
            opt_.small ? "daemon serves --small workloads; request full "
                         "scale from a full-scale daemon"
                       : "daemon serves full-scale workloads; drop "
                         "\"small\" or restart the daemon with --small");
    }

    // Admission control: past the cap a sweep is refused with a retry
    // hint, so overload sheds load at the edge instead of growing the
    // scheduler queue without bound.
    unsigned active = activeSweeps_.load(std::memory_order_relaxed);
    for (;;) {
        if (opt_.maxPendingSweeps != 0 && active >= opt_.maxPendingSweeps) {
            rejectedBusy_.fetch_add(1, std::memory_order_relaxed);
            return renderBusyResponse(busyRetryHintMs());
        }
        if (activeSweeps_.compare_exchange_weak(active, active + 1,
                                                std::memory_order_relaxed))
            break;
    }
    try {
        std::string response = req.op == ServeRequest::Op::Explore
                                   ? handleExplore(req)
                                   : handleSweep(req);
        activeSweeps_.fetch_sub(1, std::memory_order_relaxed);
        return response;
    } catch (const std::exception &e) {
        activeSweeps_.fetch_sub(1, std::memory_order_relaxed);
        return renderErrorResponse(e.what());
    } catch (...) {
        activeSweeps_.fetch_sub(1, std::memory_order_relaxed);
        throw;
    }
}

std::string
ServeServer::handleSweep(const ServeRequest &req)
{
    engine::SweepArgs args = toSweepArgs(req);
    std::vector<core::AnalysisConfig> configs;
    std::vector<std::string> labels;
    std::string error;
    if (!engine::buildSweepConfigAxis(args, configs, labels, error))
        return renderErrorResponse(error);

    engine::SweepJsonOptions jsonOpt;
    jsonOpt.timing = false;
    jsonOpt.profiles = req.profiles;

    // Lay out the grid exactly as SweepEngine::run would.
    engine::SweepResult sweep;
    sweep.jobs = scheduler_->workers();
    sweep.cells.resize(req.inputs.size() * configs.size());
    std::vector<engine::SweepJob> misses;
    std::vector<size_t> missSlot;         // grid index per submitted job
    std::map<size_t, ResultKey> slotKey;  // grid index -> content address
    uint64_t cached = 0;
    for (size_t i = 0; i < req.inputs.size(); ++i) {
        uint32_t traceCrc = 0;
        bool haveCrc = false;
        try {
            traceCrc = repo_.traceCrc(req.inputs[i]);
            haveCrc = true;
        } catch (const std::exception &) {
            // Unknown/broken input: fall through — the scheduler's
            // per-cell attempts loop will attribute the error per cell.
        }
        for (size_t j = 0; j < configs.size(); ++j) {
            size_t slot = i * configs.size() + j;
            engine::SweepJob job;
            job.input = req.inputs[i];
            job.config = configs[j];
            job.config.cancel = &cancel_;
            job.configLabel = labels[j];
            job.inputIndex = i;
            job.configIndex = j;

            if (haveCrc) {
                ResultKey key;
                key.traceCrc = traceCrc;
                // The key is the *analysis* config's fingerprint — the
                // cancel pointer is excluded from the canonical text.
                key.configKey = engine::configKey(job.config);
                key.profiles = req.profiles;
                slotKey[slot] = key;
                std::string cellJson;
                if (store_ && store_->lookup(key, cellJson)) {
                    // The fragment is shared across grids by content
                    // address, but its index fields belong to whichever
                    // sweep computed it first: rebind them to this grid's
                    // coordinates so the spliced document stays
                    // byte-identical to a fresh computation.
                    rebindSpliceIndices(cellJson, i, j);
                    engine::SweepCell &cell = sweep.cells[slot];
                    cell.job = std::move(job);
                    cell.status = engine::SweepCell::Status::Skipped;
                    cell.journalText = std::move(cellJson);
                    ++cached;
                    continue;
                }
            }
            missSlot.push_back(slot);
            misses.push_back(std::move(job));
        }
    }
    sweep.cellsSkipped = cached;

    if (!misses.empty()) {
        // Store each Ok cell the moment it is final: a client that
        // disconnects (or a daemon killed later) never loses cells that
        // completed. The callback runs on worker threads; ResultStore
        // serializes internally.
        auto batch = scheduler_->submit(
            std::move(misses), [&](engine::SweepCell &cell) {
                if (cell.status != engine::SweepCell::Status::Ok || !store_)
                    return;
                size_t slot = cell.job.inputIndex * configs.size() +
                              cell.job.configIndex;
                auto it = slotKey.find(slot);
                if (it == slotKey.end())
                    return; // input CRC unavailable: uncacheable
                store_->insert(it->second, cellToJson(cell, jsonOpt));
            });
        batch->wait();
        std::vector<engine::SweepCell> &done = batch->cells();
        for (size_t k = 0; k < done.size(); ++k)
            sweep.cells[missSlot[k]] = std::move(done[k]);
    }

    uint64_t failed = 0;
    for (const engine::SweepCell &cell : sweep.cells) {
        if (cell.status == engine::SweepCell::Status::Failed)
            ++failed;
    }
    sweep.cellsFailed = failed;

    uint64_t computed = sweep.cells.size() - cached;
    cellsCached_.fetch_add(cached, std::memory_order_relaxed);
    cellsComputed_.fetch_add(computed, std::memory_order_relaxed);
    if (!opt_.quiet) {
        PARA_WARN("serve: sweep %zu cells (%llu cached, %llu computed, "
                  "%llu failed)",
                  sweep.cells.size(),
                  static_cast<unsigned long long>(cached),
                  static_cast<unsigned long long>(computed),
                  static_cast<unsigned long long>(failed));
    }

    return renderSweepResponse(sweep.cells.size(), failed, cached, computed,
                               sweepToJson(sweep, jsonOpt));
}

std::string
ServeServer::handleExplore(const ServeRequest &req)
{
    engine::SweepArgs args = toSweepArgs(req);
    std::vector<core::AnalysisConfig> configs;
    std::vector<std::string> labels;
    std::string error;
    if (!engine::buildSweepConfigAxis(args, configs, labels, error))
        return renderErrorResponse(error);

    engine::SweepJsonOptions jsonOpt;
    jsonOpt.timing = false;
    jsonOpt.profiles = req.profiles;

    // The explorer drives measurement round by round; each round resolves
    // against the content-addressed store first (previous sweeps *and*
    // previous explores of overlapping grids serve their cells for free)
    // and submits only the misses through the standing scheduler.
    uint64_t cached = 0;
    uint64_t computed = 0;
    auto runner = [&](std::vector<engine::SweepJob> jobs)
        -> std::vector<engine::SweepCell> {
        std::vector<engine::SweepCell> cells(jobs.size());
        std::vector<engine::SweepJob> misses;
        std::vector<size_t> missAt; // position per submitted job
        // Content address per grid coordinate: explore rounds carry
        // arbitrary grid subsets, so the store callback maps a finished
        // cell back to its key by (input, config) coordinate.
        std::map<std::pair<size_t, size_t>, ResultKey> coordKey;
        for (size_t k = 0; k < jobs.size(); ++k) {
            engine::SweepJob job = jobs[k];
            job.config.cancel = &cancel_;
            bool haveCrc = false;
            ResultKey key;
            try {
                key.traceCrc = repo_.traceCrc(job.input);
                haveCrc = true;
            } catch (const std::exception &) {
                // Unknown input: let the scheduler attribute the error.
            }
            if (haveCrc) {
                key.configKey = engine::configKey(job.config);
                key.profiles = req.profiles;
                coordKey[{job.inputIndex, job.configIndex}] = key;
                std::string cellJson;
                if (store_ && store_->lookup(key, cellJson)) {
                    rebindSpliceIndices(cellJson, job.inputIndex,
                                        job.configIndex);
                    cells[k].job = std::move(job);
                    cells[k].status = engine::SweepCell::Status::Skipped;
                    cells[k].journalText = std::move(cellJson);
                    ++cached;
                    continue;
                }
            }
            ++computed;
            missAt.push_back(k);
            misses.push_back(std::move(job));
        }
        if (!misses.empty()) {
            // Store each Ok cell the moment it is final, exactly as a
            // sweep would: a client gone mid-explore still leaves every
            // finished cell behind for the next asker.
            auto batch = scheduler_->submit(
                std::move(misses), [&](engine::SweepCell &cell) {
                    if (cell.status != engine::SweepCell::Status::Ok ||
                        !store_)
                        return;
                    auto it = coordKey.find(
                        {cell.job.inputIndex, cell.job.configIndex});
                    if (it == coordKey.end())
                        return; // input CRC unavailable: uncacheable
                    store_->insert(it->second, cellToJson(cell, jsonOpt));
                });
            batch->wait();
            std::vector<engine::SweepCell> &done = batch->cells();
            for (size_t k = 0; k < done.size(); ++k)
                cells[missAt[k]] = std::move(done[k]);
        }
        return cells;
    };

    engine::Explorer::Options exOpt;
    exOpt.kneeTol = req.kneeTol;
    exOpt.seed = testSeed(exOpt.seed);
    engine::Explorer explorer(exOpt);
    engine::SweepAxes axes = engine::defaultedSweepAxes(args);
    engine::ExploreResult explored =
        explorer.explore(req.inputs, axes, configs, labels, runner);
    explored.jobs = scheduler_->workers();

    cellsCached_.fetch_add(cached, std::memory_order_relaxed);
    cellsComputed_.fetch_add(computed, std::memory_order_relaxed);
    if (!opt_.quiet) {
        PARA_WARN("serve: explore %zu/%zu cells (%llu cached, %llu "
                  "computed, %zu pruned, %zu failed)",
                  explored.cellsExecuted, explored.cellsTotal,
                  static_cast<unsigned long long>(cached),
                  static_cast<unsigned long long>(computed),
                  explored.cellsPruned, explored.cellsFailed);
    }

    return renderExploreResponse(explored.cellsTotal, explored.cellsExecuted,
                                 explored.cellsPruned, explored.cellsFailed,
                                 cached, computed,
                                 exploreToJson(explored, jsonOpt));
}

std::string
ServeServer::statsLine()
{
    ServeResponse stats;
    stats.requests = requests_.load(std::memory_order_relaxed);
    stats.storeEntries = store_ ? store_->entries() : 0;
    stats.storeHotBytes = store_ ? store_->hotBytes() : 0;
    stats.traceCachedInputs = repo_.cachedInputs();
    stats.traceCachedBytes = repo_.cachedBytes();
    stats.totalCellsCached = cellsCached_.load(std::memory_order_relaxed);
    stats.totalCellsComputed =
        cellsComputed_.load(std::memory_order_relaxed);
    return renderStatsResponse(stats);
}

std::string
ServeServer::healthLine()
{
    ServeResponse health;
    health.pendingCells = scheduler_->pendingCells();
    health.activeSweeps = activeSweeps_.load(std::memory_order_relaxed);
    health.workers = scheduler_->workers();
    health.storeEntries = store_ ? store_->entries() : 0;
    long disk = store_ ? store_->diskBytes() : 0;
    health.storeDiskBytes = disk > 0 ? static_cast<uint64_t>(disk) : 0;
    health.storeAppends = store_ ? store_->appends() : 0;
    health.storeSyncs = store_ ? store_->syncs() : 0;
    health.storeCompactions = store_ ? store_->compactions() : 0;
    health.storeSync = syncPolicyName(opt_.storeSyncPolicy);
    health.failpointsActive = failpoint::activeSites();
    health.failpointFires = failpoint::totalFires();
    return renderHealthResponse(health);
}

std::string
ServeServer::failpointLine(const ServeRequest &req)
{
    if (!opt_.allowFailpoints) {
        return renderErrorResponse(
            "failpoint control is disabled (start the daemon with "
            "--allow-failpoints)");
    }
    if (req.hasFailpointSeed)
        failpoint::setSeed(req.failpointSeed);
    if (req.failpointSpec.empty()) {
        failpoint::reset();
    } else {
        std::string error;
        if (!failpoint::configureList(req.failpointSpec, error))
            return renderErrorResponse("bad failpoint spec: " + error);
    }
    if (!opt_.quiet)
        PARA_WARN("serve: failpoints now [%s]",
                  failpoint::describe().c_str());
    return renderAckResponse("failpoint");
}

uint64_t
ServeServer::busyRetryHintMs()
{
    // Rough hint scaled to the backlog: an empty queue suggests a quick
    // retry, a deep one pushes clients further out. Clamped so a client
    // never waits more than a few seconds before re-probing.
    uint64_t pending = scheduler_->pendingCells();
    uint64_t hint = 100 + 50 * pending;
    return hint > 5000 ? 5000 : hint;
}

} // namespace serve
} // namespace paragraph
