/**
 * @file
 * ServeServer: the paragraph-serve daemon core.
 *
 * One process owns three shared layers — a TraceRepository (byte-budgeted
 * capture cache), a SweepScheduler (standing worker pool with trace-major
 * fusion across *all* clients' cells), and a ResultStore (the persistent
 * content-addressed cell cache). Clients connect over an AF_UNIX socket
 * and exchange one newline-delimited JSON request/response pair per
 * operation (serve/protocol.hpp); each connection gets a handler thread,
 * but all actual analysis flows through the one scheduler, so two clients
 * sweeping the same trace fuse into shared passes.
 *
 * A sweep request is resolved cell by cell: compute the content address
 * (trace CRC + config key + profiles flag), serve store hits as journal-
 * style splices, submit only the misses, store every newly-Ok cell as it
 * completes (so a client that disconnects mid-job still leaves its
 * finished cells behind for the next asker), and render the document with
 * the same writer paragraph-sweep uses. Shutdown (client op, SIGINT, or
 * SIGTERM) is graceful: in-flight analyses are cancelled at their next
 * checkpoint, queued cells fail fast, and the store's append-per-cell
 * discipline means a restart re-serves everything that ever finished.
 */

#ifndef PARAGRAPH_SERVE_SERVER_HPP
#define PARAGRAPH_SERVE_SERVER_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/cancel_token.hpp"
#include "engine/scheduler.hpp"
#include "engine/trace_repository.hpp"
#include "serve/protocol.hpp"
#include "serve/result_store.hpp"

namespace paragraph {
namespace serve {

class ServeServer
{
  public:
    struct Options
    {
        /** AF_UNIX socket path to listen on (created; must not exist). */
        std::string socketPath;

        /** Result store JSONL path; empty = serve without persistence
         *  (every cell recomputed, useful only for tests). */
        std::string storePath;

        /** Hot-text byte budget for the result store; 0 = unlimited. */
        size_t storeMemoryBudget = 0;

        /** Capture-cache byte budget for the trace repository;
         *  0 = unlimited. */
        size_t traceMemoryBudget = 0;

        /** Analysis worker threads; 0 = hardware concurrency. */
        unsigned jobs = 0;

        /** Cells fused per pass (engine::SweepScheduler::Options). */
        unsigned groupSize = 8;

        /** Retries for ordinarily-failed cells. */
        unsigned maxRetries = 0;

        /** Per-attempt cell deadline in seconds; 0 = none. */
        double cellDeadlineSeconds = 0.0;

        /** Serve workload inputs at reduced scale (must match what
         *  clients ask for; a mismatched request is rejected). */
        bool small = false;

        /** Suppress per-request log lines on stderr. */
        bool quiet = false;

        /** Device-durability policy for the result store. */
        SyncPolicy storeSyncPolicy = SyncPolicy::None;

        /** Minimum seconds between store fsyncs under Interval. */
        double storeSyncIntervalSeconds = 5.0;

        /** Compact the store after this many appends; 0 = never. */
        size_t storeCompactEvery = 0;

        /** Per-connection I/O deadline in seconds; 0 = none. A client
         *  that stalls mid-request or mid-response is disconnected. */
        double ioTimeoutSeconds = 0.0;

        /** Largest accepted request line in bytes; 0 = unlimited. */
        size_t maxRequestBytes = 0;

        /** Sweeps admitted concurrently; one more gets a "busy" line
         *  with a retry hint instead of queueing. 0 = unlimited. */
        unsigned maxPendingSweeps = 0;

        /** Concurrent client connections; one more is turned away at
         *  accept with a "busy" line. 0 = unlimited. */
        unsigned maxClients = 0;

        /** Honor failpoint-control requests from clients (chaos tests
         *  only; never enable on a shared daemon). */
        bool allowFailpoints = false;
    };

    explicit ServeServer(Options opt);
    ~ServeServer();

    ServeServer(const ServeServer &) = delete;
    ServeServer &operator=(const ServeServer &) = delete;

    /** Bind + listen on Options::socketPath. False with @p error set on
     *  failure (socket in use, path too long, ...). */
    bool start(std::string &error);

    /**
     * Accept and serve clients until requestStop() (or a client shutdown
     * op). Returns after every handler thread has been joined and the
     * socket unlinked.
     */
    void run();

    /** Ask run() to wind down. Async-signal-safe: flips atomics only. */
    void requestStop();

    /** The token every analysis runs under; requestStop() cancels it. */
    core::CancelToken &cancelToken() { return cancel_; }

  private:
    void handleClient(int fd);
    std::string handleRequestLine(const std::string &line, bool &shutdown);
    std::string handleSweep(const ServeRequest &req);
    std::string handleExplore(const ServeRequest &req);
    std::string statsLine();
    std::string healthLine();
    std::string failpointLine(const ServeRequest &req);
    uint64_t busyRetryHintMs();
    void closeAllClients();

    Options opt_;
    engine::TraceRepository repo_;
    std::unique_ptr<engine::SweepScheduler> scheduler_;
    std::unique_ptr<ResultStore> store_;
    core::CancelToken cancel_;

    int listenFd_ = -1;
    std::atomic<bool> stop_{false};

    std::mutex clientMutex_;
    std::set<int> clientFds_;
    std::vector<std::thread> clientThreads_;

    std::atomic<uint64_t> requests_{0};
    std::atomic<uint64_t> cellsCached_{0};
    std::atomic<uint64_t> cellsComputed_{0};
    std::atomic<unsigned> activeSweeps_{0};
    std::atomic<uint64_t> rejectedBusy_{0};
};

} // namespace serve
} // namespace paragraph

#endif // PARAGRAPH_SERVE_SERVER_HPP
