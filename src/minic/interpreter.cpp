#include "minic/interpreter.hpp"

#include <cmath>
#include <limits>

#include "casm/program.hpp"
#include "sim/memory.hpp"
#include "support/panic.hpp"

namespace paragraph {
namespace minic {

namespace {

/** A runtime value: a 32-bit integer (also used for pointers) or a double. */
struct Value
{
    bool isF = false;
    int32_t i = 0;
    double f = 0.0;

    static Value
    ofInt(int32_t v)
    {
        Value x;
        x.i = v;
        return x;
    }

    static Value
    ofFloat(double v)
    {
        Value x;
        x.isF = true;
        x.f = v;
        return x;
    }
};

enum class Flow : uint8_t { Normal, Break, Continue, Return };

int32_t
clampToInt32(double v)
{
    if (std::isnan(v))
        return 0;
    if (v >= 2147483647.0)
        return std::numeric_limits<int32_t>::max();
    if (v <= -2147483648.0)
        return std::numeric_limits<int32_t>::min();
    return static_cast<int32_t>(v);
}

class Interp
{
  public:
    Interp(const Module &module, std::vector<int32_t> int_input,
           std::vector<double> fp_input, uint64_t max_steps)
        : module_(module),
          intInput_(std::move(int_input)),
          fpInput_(std::move(fp_input)),
          maxSteps_(max_steps)
    {
        layoutGlobals();
    }

    InterpResult
    run()
    {
        int mi = module_.findFunction("main");
        PARA_ASSERT(mi >= 0, "no main");
        Value v = call(mi, {});
        if (!exited_) {
            const Function &fn = module_.functions[static_cast<size_t>(mi)];
            result_.exitCode = fn.returnType.isScalarInt() ? v.i : 0;
        }
        result_.steps = steps_;
        return result_;
    }

  private:
    struct Frame
    {
        std::vector<Value> scalars;     ///< by symbol id (scalars only)
        std::vector<uint64_t> arrayAddr; ///< by symbol id (local arrays)
        const Function *fn = nullptr;
        Value returnValue;
    };

    const Module &module_;
    sim::Memory mem_;
    std::vector<uint64_t> globalAddr_;
    uint64_t heapBrk_ = 0;
    uint64_t stackPtr_ = casm::MemoryLayout::stackTop;

    std::vector<int32_t> intInput_;
    std::vector<double> fpInput_;
    size_t intPos_ = 0;
    size_t fpPos_ = 0;

    InterpResult result_;
    bool exited_ = false;
    uint64_t steps_ = 0;
    uint64_t maxSteps_;
    int depth_ = 0;

    void
    tick()
    {
        ++steps_;
        if (maxSteps_ && steps_ > maxSteps_)
            PARA_FATAL("interpreter step limit exceeded");
    }

    // --- Memory layout ----------------------------------------------------

    void
    layoutGlobals()
    {
        uint64_t addr = casm::MemoryLayout::dataBase;
        globalAddr_.resize(module_.globals.size());
        for (size_t g = 0; g < module_.globals.size(); ++g) {
            const Symbol &sym = module_.globals[g];
            uint64_t align = sym.type.base == BaseType::Float ? 8 : 4;
            addr = (addr + align - 1) & ~(align - 1);
            globalAddr_[g] = addr;
            // Initializers (flattened element order, zero-filled tail).
            if (sym.type.base == BaseType::Float) {
                for (size_t i = 0; i < sym.initFloats.size(); ++i)
                    mem_.writeDouble(addr + 8 * i, sym.initFloats[i]);
            } else {
                for (size_t i = 0; i < sym.initInts.size(); ++i) {
                    mem_.write32(addr + 4 * i,
                                 static_cast<uint32_t>(sym.initInts[i]));
                }
            }
            addr += static_cast<uint64_t>(sym.type.byteSize());
        }
        heapBrk_ = (addr + casm::MemoryLayout::heapAlign - 1) &
                   ~(casm::MemoryLayout::heapAlign - 1);
    }

    // --- Calls --------------------------------------------------------------

    Value
    call(int function_index, const std::vector<Value> &args)
    {
        if (++depth_ > 5000)
            PARA_FATAL("interpreter call depth exceeded");
        const Function &fn =
            module_.functions[static_cast<size_t>(function_index)];
        Frame frame;
        frame.fn = &fn;
        frame.scalars.resize(fn.locals.size());
        frame.arrayAddr.assign(fn.locals.size(), 0);

        uint64_t stack_save = stackPtr_;
        for (size_t i = 0; i < fn.locals.size(); ++i) {
            if (fn.locals[i].type.isArray()) {
                uint64_t bytes = static_cast<uint64_t>(
                    fn.locals[i].type.byteSize());
                stackPtr_ = (stackPtr_ - bytes) & ~uint64_t{7};
                frame.arrayAddr[i] = stackPtr_;
                // Fresh stack reads as zero on the machine; scrub any reuse.
                for (uint64_t b = 0; b < bytes; b += 4)
                    mem_.write32(frame.arrayAddr[i] + b, 0);
            }
        }
        for (size_t a = 0; a < args.size(); ++a)
            frame.scalars[static_cast<size_t>(fn.params[a])] = args[a];

        Flow flow = Flow::Normal;
        for (const StmtPtr &st : fn.body) {
            flow = exec(*st, frame);
            if (flow == Flow::Return || exited_)
                break;
        }
        stackPtr_ = stack_save;
        --depth_;
        return frame.returnValue;
    }

    // --- Statements ---------------------------------------------------------

    Flow
    exec(const Stmt &st, Frame &frame)
    {
        if (exited_)
            return Flow::Return;
        tick();
        switch (st.kind) {
          case StmtKind::Block:
            for (const StmtPtr &s : st.body) {
                Flow flow = exec(*s, frame);
                if (flow != Flow::Normal)
                    return flow;
                if (exited_)
                    return Flow::Return;
            }
            return Flow::Normal;
          case StmtKind::Decl:
            if (st.expr) {
                Value v = eval(*st.expr, frame);
                storeVar(st.symbolId, v, frame);
            }
            return Flow::Normal;
          case StmtKind::ExprStmt:
            eval(*st.expr, frame);
            return Flow::Normal;
          case StmtKind::If:
            if (eval(*st.expr, frame).i != 0)
                return exec(*st.thenStmt, frame);
            if (st.elseStmt)
                return exec(*st.elseStmt, frame);
            return Flow::Normal;
          case StmtKind::While:
            while (!exited_ && eval(*st.expr, frame).i != 0) {
                Flow flow = exec(*st.loopBody, frame);
                if (flow == Flow::Break)
                    break;
                if (flow == Flow::Return)
                    return flow;
                tick();
            }
            return Flow::Normal;
          case StmtKind::For: {
            if (st.forInit)
                exec(*st.forInit, frame);
            while (!exited_ &&
                   (!st.expr || eval(*st.expr, frame).i != 0)) {
                Flow flow = exec(*st.loopBody, frame);
                if (flow == Flow::Break)
                    break;
                if (flow == Flow::Return)
                    return flow;
                if (st.forStep)
                    eval(*st.forStep, frame);
                tick();
            }
            return Flow::Normal;
          }
          case StmtKind::Return:
            if (st.expr)
                frame.returnValue = eval(*st.expr, frame);
            return Flow::Return;
          case StmtKind::Break:
            return Flow::Break;
          case StmtKind::Continue:
            return Flow::Continue;
          case StmtKind::Empty:
            return Flow::Normal;
        }
        PARA_PANIC("bad statement kind");
    }

    // --- Variables ----------------------------------------------------------

    const Symbol &
    symbolOf(int id, const Frame &frame) const
    {
        if (isGlobalId(id))
            return module_.globals[static_cast<size_t>(globalIndex(id))];
        return frame.fn->locals[static_cast<size_t>(id)];
    }

    Value
    loadVar(int id, const Frame &frame)
    {
        const Symbol &sym = symbolOf(id, frame);
        PARA_ASSERT(!sym.type.isArray(), "loadVar on array");
        bool is_fp = sym.type.isScalarFloat();
        if (isGlobalId(id)) {
            uint64_t addr = globalAddr_[static_cast<size_t>(globalIndex(id))];
            return is_fp
                       ? Value::ofFloat(mem_.readDouble(addr))
                       : Value::ofInt(
                             static_cast<int32_t>(mem_.read32(addr)));
        }
        return frame.scalars[static_cast<size_t>(id)];
    }

    void
    storeVar(int id, const Value &v, Frame &frame)
    {
        const Symbol &sym = symbolOf(id, frame);
        bool is_fp = sym.type.isScalarFloat();
        PARA_ASSERT(v.isF == is_fp, "type confusion in storeVar");
        if (isGlobalId(id)) {
            uint64_t addr = globalAddr_[static_cast<size_t>(globalIndex(id))];
            if (is_fp)
                mem_.writeDouble(addr, v.f);
            else
                mem_.write32(addr, static_cast<uint32_t>(v.i));
            return;
        }
        frame.scalars[static_cast<size_t>(id)] = v;
    }

    /** Address of an array/pointer expression (mirrors CodeGen::genAddress). */
    uint64_t
    address(const Expr &e, Frame &frame)
    {
        switch (e.kind) {
          case ExprKind::Var: {
            const Symbol &sym = symbolOf(e.symbolId, frame);
            if (sym.type.isArray()) {
                if (isGlobalId(e.symbolId)) {
                    return globalAddr_[static_cast<size_t>(
                        globalIndex(e.symbolId))];
                }
                return frame.arrayAddr[static_cast<size_t>(e.symbolId)];
            }
            PARA_ASSERT(sym.type.isPointer(), "address of non-array");
            return static_cast<uint64_t>(
                static_cast<uint32_t>(loadVar(e.symbolId, frame).i));
          }
          case ExprKind::Index: {
            uint64_t base = address(*e.kids[0], frame);
            int64_t stride = e.type.isArray()
                                 ? e.type.byteSize()
                                 : e.type.decayed().elemSize();
            int32_t idx = eval(*e.kids[1], frame).i;
            return static_cast<uint64_t>(static_cast<uint32_t>(
                static_cast<int64_t>(base) + idx * stride));
          }
          default: {
            // Pointer-valued rvalue (call result, pointer arithmetic).
            Value v = eval(e, frame);
            return static_cast<uint64_t>(static_cast<uint32_t>(v.i));
          }
        }
    }

    // --- Expressions ----------------------------------------------------------

    Value
    eval(const Expr &e, Frame &frame)
    {
        tick();
        switch (e.kind) {
          case ExprKind::IntLit:
            return Value::ofInt(static_cast<int32_t>(e.intValue));
          case ExprKind::FloatLit:
            return Value::ofFloat(e.floatValue);
          case ExprKind::Var: {
            const Symbol &sym = symbolOf(e.symbolId, frame);
            if (sym.type.isArray()) {
                return Value::ofInt(
                    static_cast<int32_t>(address(e, frame)));
            }
            return loadVar(e.symbolId, frame);
          }
          case ExprKind::Index: {
            if (e.type.isArray()) {
                return Value::ofInt(
                    static_cast<int32_t>(address(e, frame)));
            }
            uint64_t addr = address(e, frame);
            if (e.type.isScalarFloat())
                return Value::ofFloat(mem_.readDouble(addr));
            return Value::ofInt(static_cast<int32_t>(mem_.read32(addr)));
          }
          case ExprKind::Assign: {
            const Expr &lhs = *e.kids[0];
            if (lhs.kind == ExprKind::Var) {
                Value v = eval(*e.kids[1], frame);
                storeVar(lhs.symbolId, v, frame);
                return v;
            }
            uint64_t addr = address(lhs, frame);
            Value v = eval(*e.kids[1], frame);
            if (v.isF)
                mem_.writeDouble(addr, v.f);
            else
                mem_.write32(addr, static_cast<uint32_t>(v.i));
            return v;
          }
          case ExprKind::Binary:
            return evalBinary(e, frame);
          case ExprKind::Logical: {
            int32_t a = eval(*e.kids[0], frame).i;
            if (e.op == Tok::AndAnd) {
                if (a == 0)
                    return Value::ofInt(0);
            } else {
                if (a != 0)
                    return Value::ofInt(1);
            }
            return Value::ofInt(eval(*e.kids[1], frame).i != 0 ? 1 : 0);
          }
          case ExprKind::Unary: {
            Value v = eval(*e.kids[0], frame);
            switch (e.op) {
              case Tok::Minus:
                if (v.isF)
                    return Value::ofFloat(-v.f);
                return Value::ofInt(static_cast<int32_t>(
                    0u - static_cast<uint32_t>(v.i)));
              case Tok::Not:
                return Value::ofInt(v.i == 0 ? 1 : 0);
              case Tok::Tilde:
                return Value::ofInt(~v.i);
              default:
                PARA_PANIC("bad unary");
            }
          }
          case ExprKind::Cast:
            if (e.type.isScalarFloat()) {
                Value v = eval(*e.kids[0], frame);
                return Value::ofFloat(static_cast<double>(v.i));
            } else {
                Value v = eval(*e.kids[0], frame);
                return v.isF ? Value::ofInt(clampToInt32(v.f)) : v;
            }
          case ExprKind::Call:
            return evalCall(e, frame);
        }
        PARA_PANIC("bad expression kind");
    }

    Value
    evalBinary(const Expr &e, Frame &frame)
    {
        Value a = eval(*e.kids[0], frame);
        Value b = eval(*e.kids[1], frame);
        if (a.isF || b.isF) {
            PARA_ASSERT(a.isF && b.isF, "mixed FP binary after sema");
            switch (e.op) {
              case Tok::Plus:  return Value::ofFloat(a.f + b.f);
              case Tok::Minus: return Value::ofFloat(a.f - b.f);
              case Tok::Star:  return Value::ofFloat(a.f * b.f);
              case Tok::Slash: return Value::ofFloat(a.f / b.f);
              case Tok::Lt: return Value::ofInt(a.f < b.f ? 1 : 0);
              case Tok::Gt: return Value::ofInt(a.f > b.f ? 1 : 0);
              case Tok::Le: return Value::ofInt(a.f <= b.f ? 1 : 0);
              case Tok::Ge: return Value::ofInt(a.f >= b.f ? 1 : 0);
              case Tok::Eq: return Value::ofInt(a.f == b.f ? 1 : 0);
              case Tok::Ne: return Value::ofInt(a.f != b.f ? 1 : 0);
              default: PARA_PANIC("bad FP binary");
            }
        }

        uint32_t ua = static_cast<uint32_t>(a.i);
        uint32_t ub = static_cast<uint32_t>(b.i);

        // Pointer arithmetic scales by element size, as in the compiler.
        if (e.type.isPointer() && (e.op == Tok::Plus || e.op == Tok::Minus)) {
            Type lt = e.kids[0]->type.decayed();
            Type rt = e.kids[1]->type.decayed();
            uint32_t scale = static_cast<uint32_t>(e.type.elemSize());
            if (lt.isPointer() && !rt.isPointer())
                ub *= scale;
            else if (rt.isPointer() && !lt.isPointer())
                ua *= scale;
        }

        switch (e.op) {
          case Tok::Plus:  return Value::ofInt(static_cast<int32_t>(ua + ub));
          case Tok::Minus: return Value::ofInt(static_cast<int32_t>(ua - ub));
          case Tok::Star:
            return Value::ofInt(static_cast<int32_t>(ua * ub));
          case Tok::Slash: {
            if (b.i == 0)
                PARA_FATAL("division by zero (interpreter)");
            if (a.i == std::numeric_limits<int32_t>::min() && b.i == -1)
                return Value::ofInt(a.i);
            return Value::ofInt(a.i / b.i);
          }
          case Tok::Percent: {
            if (b.i == 0)
                PARA_FATAL("remainder by zero (interpreter)");
            if (a.i == std::numeric_limits<int32_t>::min() && b.i == -1)
                return Value::ofInt(0);
            return Value::ofInt(a.i % b.i);
          }
          case Tok::Amp:   return Value::ofInt(static_cast<int32_t>(ua & ub));
          case Tok::Pipe:  return Value::ofInt(static_cast<int32_t>(ua | ub));
          case Tok::Caret: return Value::ofInt(static_cast<int32_t>(ua ^ ub));
          case Tok::Shl:
            return Value::ofInt(static_cast<int32_t>(ua << (ub & 31)));
          case Tok::Shr:
            return Value::ofInt(a.i >> (ub & 31));
          case Tok::Lt: return Value::ofInt(a.i < b.i ? 1 : 0);
          case Tok::Gt: return Value::ofInt(a.i > b.i ? 1 : 0);
          case Tok::Le: return Value::ofInt(a.i <= b.i ? 1 : 0);
          case Tok::Ge: return Value::ofInt(a.i >= b.i ? 1 : 0);
          case Tok::Eq: return Value::ofInt(a.i == b.i ? 1 : 0);
          case Tok::Ne: return Value::ofInt(a.i != b.i ? 1 : 0);
          default: PARA_PANIC("bad int binary");
        }
    }

    Value
    evalCall(const Expr &e, Frame &frame)
    {
        if (e.builtin == Builtin::None) {
            std::vector<Value> args;
            args.reserve(e.kids.size());
            for (const ExprPtr &arg : e.kids)
                args.push_back(eval(*arg, frame));
            return call(e.functionId, args);
        }
        switch (e.builtin) {
          case Builtin::PrintInt: {
            Value v = eval(*e.kids[0], frame);
            if (!exited_)
                result_.intOutput.push_back(v.i);
            return Value::ofInt(0);
          }
          case Builtin::PrintFloat: {
            Value v = eval(*e.kids[0], frame);
            if (!exited_)
                result_.fpOutput.push_back(v.f);
            return Value::ofInt(0);
          }
          case Builtin::ReadInt:
            return Value::ofInt(intPos_ < intInput_.size()
                                    ? intInput_[intPos_++]
                                    : 0);
          case Builtin::ReadFloat:
            return Value::ofFloat(fpPos_ < fpInput_.size()
                                      ? fpInput_[fpPos_++]
                                      : 0.0);
          case Builtin::Exit: {
            Value v = eval(*e.kids[0], frame);
            result_.exitCode = v.i;
            exited_ = true;
            return Value::ofInt(0);
          }
          case Builtin::AllocInt:
          case Builtin::AllocFloat: {
            int32_t n = eval(*e.kids[0], frame).i;
            uint32_t bytes = static_cast<uint32_t>(n)
                             << (e.builtin == Builtin::AllocFloat ? 3 : 2);
            bytes = (bytes + 7u) & ~7u;
            uint64_t old = heapBrk_;
            heapBrk_ += bytes;
            if (heapBrk_ >= sim::Memory::stackFloor)
                PARA_FATAL("heap overflow (interpreter)");
            return Value::ofInt(static_cast<int32_t>(old));
          }
          case Builtin::Sqrt:
            return Value::ofFloat(std::sqrt(eval(*e.kids[0], frame).f));
          case Builtin::ToFloat:
            return Value::ofFloat(
                static_cast<double>(eval(*e.kids[0], frame).i));
          case Builtin::ToInt:
            return Value::ofInt(clampToInt32(eval(*e.kids[0], frame).f));
          default:
            PARA_PANIC("bad builtin");
        }
    }
};

} // namespace

InterpResult
interpret(const Module &module, std::vector<int32_t> int_input,
          std::vector<double> fp_input, uint64_t max_steps)
{
    Interp interp(module, std::move(int_input), std::move(fp_input),
                  max_steps);
    return interp.run();
}

} // namespace minic
} // namespace paragraph
