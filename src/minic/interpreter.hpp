/**
 * @file
 * A direct AST interpreter for MiniC.
 *
 * This is the *reference semantics* for the language: it shares the parser
 * with the compiler but nothing downstream, so running a program both ways
 * (interpret the AST; compile to assembly and simulate) and comparing the
 * outputs is a differential test of the entire code-generation +
 * assembler + simulator pipeline. The fuzz tests in
 * tests/minic/differential_test.cpp lean on this.
 *
 * Semantics mirror the compiled target exactly: 32-bit wrapping integer
 * arithmetic, truncating division, IEEE doubles, C-style short-circuit
 * logic, arrays/pointers over a flat byte-addressed store with the same
 * data/heap/stack segmentation.
 */

#ifndef PARAGRAPH_MINIC_INTERPRETER_HPP
#define PARAGRAPH_MINIC_INTERPRETER_HPP

#include <cstdint>
#include <vector>

#include "minic/ast.hpp"

namespace paragraph {
namespace minic {

/** Outputs and status of an interpreted run. */
struct InterpResult
{
    std::vector<int64_t> intOutput;
    std::vector<double> fpOutput;
    int32_t exitCode = 0;
    uint64_t steps = 0; ///< statements + expressions evaluated
};

/**
 * Interpret @p module (must contain main).
 *
 * @param int_input   queue consumed by read_int()
 * @param fp_input    queue consumed by read_float()
 * @param max_steps   abort guard for runaway programs (0 = none)
 * @throws FatalError on division by zero, step-limit overrun, or other
 *         conditions that would also abort the simulated machine.
 */
InterpResult interpret(const Module &module,
                       std::vector<int32_t> int_input = {},
                       std::vector<double> fp_input = {},
                       uint64_t max_steps = 0);

} // namespace minic
} // namespace paragraph

#endif // PARAGRAPH_MINIC_INTERPRETER_HPP
