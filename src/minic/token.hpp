/**
 * @file
 * Token definitions for the MiniC lexer.
 */

#ifndef PARAGRAPH_MINIC_TOKEN_HPP
#define PARAGRAPH_MINIC_TOKEN_HPP

#include <cstdint>
#include <string>

namespace paragraph {
namespace minic {

enum class Tok : uint8_t
{
    End,
    // Literals and identifiers.
    IntLit, FloatLit, Ident,
    // Keywords.
    KwInt, KwFloat, KwVoid, KwIf, KwElse, KwWhile, KwFor, KwReturn,
    KwBreak, KwContinue,
    // Punctuation.
    LParen, RParen, LBrace, RBrace, LBracket, RBracket,
    Comma, Semicolon,
    // Operators.
    Assign,                  // =
    Plus, Minus, Star, Slash, Percent,
    Amp, Pipe, Caret, Tilde, Shl, Shr,
    AndAnd, OrOr, Not,
    Eq, Ne, Lt, Gt, Le, Ge,
};

/** Human-readable token-kind name (diagnostics). */
const char *tokName(Tok t);

struct Token
{
    Tok kind = Tok::End;
    int line = 0;
    std::string text;  ///< identifier spelling
    int64_t intValue = 0;
    double floatValue = 0.0;
};

} // namespace minic
} // namespace paragraph

#endif // PARAGRAPH_MINIC_TOKEN_HPP
