#include "minic/parser.hpp"

#include <map>
#include <utility>

#include "minic/lexer.hpp"
#include "support/panic.hpp"
#include "support/string_utils.hpp"

namespace paragraph {
namespace minic {

std::string
Type::toString() const
{
    std::string s;
    switch (base) {
      case BaseType::Void:  s = "void"; break;
      case BaseType::Int:   s = "int"; break;
      case BaseType::Float: s = "float"; break;
    }
    if (pointer)
        s += "*";
    for (int d : dims)
        s += strFormat("[%d]", d);
    return s;
}

int
Module::findFunction(const std::string &name) const
{
    for (size_t i = 0; i < functions.size(); ++i) {
        if (functions[i].name == name)
            return static_cast<int>(i);
    }
    return -1;
}

namespace {

Builtin
builtinFor(const std::string &name)
{
    if (name == "print_int")   return Builtin::PrintInt;
    if (name == "print_float") return Builtin::PrintFloat;
    if (name == "read_int")    return Builtin::ReadInt;
    if (name == "read_float")  return Builtin::ReadFloat;
    if (name == "exit")        return Builtin::Exit;
    if (name == "alloc_int")   return Builtin::AllocInt;
    if (name == "alloc_float") return Builtin::AllocFloat;
    if (name == "sqrt")        return Builtin::Sqrt;
    if (name == "itof")        return Builtin::ToFloat;
    if (name == "ftoi")        return Builtin::ToInt;
    return Builtin::None;
}

class Parser
{
  public:
    explicit Parser(std::string_view source) : tokens_(tokenize(source)) {}

    Module
    run()
    {
        while (!at(Tok::End))
            parseTopLevel();
        for (const Function &f : module_.functions) {
            if (!f.defined) {
                PARA_FATAL("minic: function '%s' declared but never defined",
                           f.name.c_str());
            }
        }
        if (module_.findFunction("main") < 0)
            PARA_FATAL("minic: no 'main' function");
        return std::move(module_);
    }

  private:
    std::vector<Token> tokens_;
    size_t pos_ = 0;
    Module module_;

    Function *currentFn_ = nullptr;
    std::vector<std::map<std::string, int>> scopes_;
    int loopDepth_ = 0;

    // --- Token helpers ----------------------------------------------------

    const Token &cur() const { return tokens_[pos_]; }
    bool at(Tok t) const { return cur().kind == t; }
    const Token &peek(size_t k = 1) const
    {
        size_t i = pos_ + k;
        return i < tokens_.size() ? tokens_[i] : tokens_.back();
    }

    Token
    advance()
    {
        Token t = cur();
        if (!at(Tok::End))
            ++pos_;
        return t;
    }

    bool
    accept(Tok t)
    {
        if (at(t)) {
            advance();
            return true;
        }
        return false;
    }

    Token
    expect(Tok t, const char *what)
    {
        if (!at(t)) {
            PARA_FATAL("minic line %d: expected %s (%s), found %s",
                       cur().line, tokName(t), what, tokName(cur().kind));
        }
        return advance();
    }

    [[noreturn]] void
    error(int line, const std::string &msg) const
    {
        PARA_FATAL("minic line %d: %s", line, msg.c_str());
    }

    // --- Symbols ----------------------------------------------------------

    int
    lookup(const std::string &name, int line) const
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            auto found = it->find(name);
            if (found != it->end())
                return found->second;
        }
        for (size_t i = 0; i < module_.globals.size(); ++i) {
            if (module_.globals[i].name == name)
                return makeGlobalId(static_cast<int>(i));
        }
        PARA_FATAL("minic line %d: undeclared identifier '%s'", line,
                   name.c_str());
    }

    const Symbol &
    symbol(int id) const
    {
        if (isGlobalId(id))
            return module_.globals[static_cast<size_t>(globalIndex(id))];
        return currentFn_->locals[static_cast<size_t>(id)];
    }

    int
    declareLocal(const std::string &name, Type type, int line,
                 bool is_param = false)
    {
        PARA_ASSERT(currentFn_ != nullptr);
        auto &scope = scopes_.back();
        if (scope.count(name))
            error(line, "redeclaration of '" + name + "'");
        Symbol sym;
        sym.name = name;
        sym.type = std::move(type);
        sym.isParam = is_param;
        currentFn_->locals.push_back(std::move(sym));
        int id = static_cast<int>(currentFn_->locals.size() - 1);
        scope[name] = id;
        return id;
    }

    // --- Types ------------------------------------------------------------

    bool
    atType() const
    {
        return at(Tok::KwInt) || at(Tok::KwFloat) || at(Tok::KwVoid);
    }

    /** Parse "int" / "float" / "void" plus optional '*'. */
    Type
    parseTypeSpec()
    {
        Type t;
        if (accept(Tok::KwInt)) {
            t.base = BaseType::Int;
        } else if (accept(Tok::KwFloat)) {
            t.base = BaseType::Float;
        } else if (accept(Tok::KwVoid)) {
            t.base = BaseType::Void;
        } else {
            error(cur().line, "expected type");
        }
        if (accept(Tok::Star)) {
            if (t.isVoid())
                error(cur().line, "void* is not supported");
            t.pointer = true;
        }
        return t;
    }

    /** Parse array suffix "[N][M]..." after a declarator name. */
    void
    parseArraySuffix(Type &t, int line)
    {
        while (accept(Tok::LBracket)) {
            if (t.pointer)
                error(line, "array of pointers is not supported");
            Token n = expect(Tok::IntLit, "array dimension");
            if (n.intValue <= 0 || n.intValue > (1 << 24))
                error(line, "array dimension out of range");
            t.dims.push_back(static_cast<int>(n.intValue));
            expect(Tok::RBracket, "array dimension");
        }
    }

    // --- Top level ----------------------------------------------------------

    void
    parseTopLevel()
    {
        if (!atType())
            error(cur().line, "expected declaration");
        Type type = parseTypeSpec();
        Token name = expect(Tok::Ident, "declaration name");
        if (at(Tok::LParen)) {
            parseFunction(type, name);
        } else {
            parseGlobal(type, name);
        }
    }

    void
    parseGlobal(Type type, const Token &name)
    {
        if (type.isVoid())
            error(name.line, "global of type void");
        parseArraySuffix(type, name.line);
        for (const Symbol &g : module_.globals) {
            if (g.name == name.text)
                error(name.line, "redeclaration of global '" + name.text + "'");
        }

        Symbol sym;
        sym.name = name.text;
        sym.type = type;
        if (accept(Tok::Assign))
            parseGlobalInit(sym, name.line);
        expect(Tok::Semicolon, "global declaration");
        module_.globals.push_back(std::move(sym));
    }

    void
    parseGlobalInit(Symbol &sym, int line)
    {
        auto const_value = [&](bool as_float, int64_t &iv, double &fv) {
            bool neg = accept(Tok::Minus);
            if (at(Tok::IntLit)) {
                Token t = advance();
                iv = neg ? -t.intValue : t.intValue;
                fv = static_cast<double>(iv);
            } else if (at(Tok::FloatLit)) {
                Token t = advance();
                fv = neg ? -t.floatValue : t.floatValue;
                iv = static_cast<int64_t>(fv);
                if (!as_float)
                    error(t.line, "float initializer for int global");
            } else {
                error(cur().line, "global initializers must be constants");
            }
        };

        bool is_float = sym.type.base == BaseType::Float;
        if (sym.type.isArray()) {
            expect(Tok::LBrace, "array initializer");
            int64_t capacity = sym.type.byteSize() / sym.type.elemSize();
            while (!at(Tok::RBrace)) {
                int64_t iv;
                double fv;
                const_value(is_float, iv, fv);
                if (static_cast<int64_t>(is_float ? sym.initFloats.size()
                                                  : sym.initInts.size()) >=
                    capacity) {
                    error(line, "too many initializers");
                }
                if (is_float)
                    sym.initFloats.push_back(fv);
                else
                    sym.initInts.push_back(iv);
                if (!accept(Tok::Comma))
                    break;
            }
            expect(Tok::RBrace, "array initializer");
        } else {
            int64_t iv;
            double fv;
            const_value(is_float, iv, fv);
            if (is_float)
                sym.initFloats.push_back(fv);
            else
                sym.initInts.push_back(iv);
        }
    }

    void
    parseFunction(Type return_type, const Token &name)
    {
        if (return_type.isArray())
            error(name.line, "functions cannot return arrays");

        Function fn;
        fn.name = name.text;
        fn.returnType = return_type;
        fn.line = name.line;
        currentFn_ = &fn;
        scopes_.clear();
        scopes_.emplace_back();

        expect(Tok::LParen, "parameter list");
        if (!at(Tok::RParen)) {
            do {
                Type pt = parseTypeSpec();
                if (pt.isVoid())
                    error(cur().line, "void parameter");
                Token pname = expect(Tok::Ident, "parameter name");
                // "type name[]" parameters decay to pointers.
                if (accept(Tok::LBracket)) {
                    expect(Tok::RBracket, "array parameter");
                    pt.pointer = true;
                }
                fn.params.push_back(
                    declareLocal(pname.text, pt, pname.line, true));
            } while (accept(Tok::Comma));
        }
        expect(Tok::RParen, "parameter list");

        int existing = module_.findFunction(fn.name);
        if (accept(Tok::Semicolon)) {
            // Prototype.
            if (existing >= 0)
                error(name.line, "redeclaration of '" + fn.name + "'");
            fn.defined = false;
            currentFn_ = nullptr;
            module_.functions.push_back(std::move(fn));
            return;
        }

        if (existing >= 0) {
            Function &proto = module_.functions[static_cast<size_t>(existing)];
            if (proto.defined)
                error(name.line, "redefinition of '" + fn.name + "'");
            if (proto.params.size() != fn.params.size())
                error(name.line, "definition of '" + fn.name +
                                     "' does not match its prototype");
        } else {
            // Publish the signature before the body so recursive calls
            // resolve without a separate prototype.
            Function sig;
            sig.name = fn.name;
            sig.returnType = fn.returnType;
            sig.params = fn.params;
            sig.locals = fn.locals;
            sig.defined = false;
            sig.line = fn.line;
            module_.functions.push_back(std::move(sig));
            existing = static_cast<int>(module_.functions.size() - 1);
        }

        expect(Tok::LBrace, "function body");
        scopes_.emplace_back();
        while (!at(Tok::RBrace))
            fn.body.push_back(parseStatement());
        expect(Tok::RBrace, "function body");
        scopes_.pop_back();
        fn.defined = true;
        currentFn_ = nullptr;
        module_.functions[static_cast<size_t>(existing)] = std::move(fn);
    }

    // --- Statements ---------------------------------------------------------

    StmtPtr
    parseStatement()
    {
        int line = cur().line;
        if (at(Tok::LBrace)) {
            advance();
            auto st = std::make_unique<Stmt>();
            st->kind = StmtKind::Block;
            st->line = line;
            scopes_.emplace_back();
            while (!at(Tok::RBrace))
                st->body.push_back(parseStatement());
            expect(Tok::RBrace, "block");
            scopes_.pop_back();
            return st;
        }
        if (atType())
            return parseDecl();
        if (accept(Tok::KwIf)) {
            auto st = std::make_unique<Stmt>();
            st->kind = StmtKind::If;
            st->line = line;
            expect(Tok::LParen, "if condition");
            st->expr = parseCondition();
            expect(Tok::RParen, "if condition");
            st->thenStmt = parseStatement();
            if (accept(Tok::KwElse))
                st->elseStmt = parseStatement();
            return st;
        }
        if (accept(Tok::KwWhile)) {
            auto st = std::make_unique<Stmt>();
            st->kind = StmtKind::While;
            st->line = line;
            expect(Tok::LParen, "while condition");
            st->expr = parseCondition();
            expect(Tok::RParen, "while condition");
            ++loopDepth_;
            st->loopBody = parseStatement();
            --loopDepth_;
            return st;
        }
        if (accept(Tok::KwFor)) {
            auto st = std::make_unique<Stmt>();
            st->kind = StmtKind::For;
            st->line = line;
            expect(Tok::LParen, "for header");
            scopes_.emplace_back();
            if (!accept(Tok::Semicolon)) {
                if (atType()) {
                    st->forInit = parseDecl();
                } else {
                    st->forInit = parseExprStatement();
                }
            }
            if (!at(Tok::Semicolon))
                st->expr = parseCondition();
            expect(Tok::Semicolon, "for condition");
            if (!at(Tok::RParen))
                st->forStep = parseExpr();
            expect(Tok::RParen, "for header");
            ++loopDepth_;
            st->loopBody = parseStatement();
            --loopDepth_;
            scopes_.pop_back();
            return st;
        }
        if (accept(Tok::KwReturn)) {
            auto st = std::make_unique<Stmt>();
            st->kind = StmtKind::Return;
            st->line = line;
            if (!at(Tok::Semicolon)) {
                st->expr = parseExpr();
                if (currentFn_->returnType.isVoid())
                    error(line, "returning a value from a void function");
                st->expr = convertTo(std::move(st->expr),
                                     currentFn_->returnType.decayed(), line);
            } else if (!currentFn_->returnType.isVoid()) {
                error(line, "missing return value");
            }
            expect(Tok::Semicolon, "return");
            return st;
        }
        if (accept(Tok::KwBreak)) {
            if (loopDepth_ == 0)
                error(line, "break outside a loop");
            expect(Tok::Semicolon, "break");
            auto st = std::make_unique<Stmt>();
            st->kind = StmtKind::Break;
            st->line = line;
            return st;
        }
        if (accept(Tok::KwContinue)) {
            if (loopDepth_ == 0)
                error(line, "continue outside a loop");
            expect(Tok::Semicolon, "continue");
            auto st = std::make_unique<Stmt>();
            st->kind = StmtKind::Continue;
            st->line = line;
            return st;
        }
        if (accept(Tok::Semicolon)) {
            auto st = std::make_unique<Stmt>();
            st->kind = StmtKind::Empty;
            st->line = line;
            return st;
        }
        return parseExprStatement();
    }

    StmtPtr
    parseExprStatement()
    {
        auto st = std::make_unique<Stmt>();
        st->kind = StmtKind::ExprStmt;
        st->line = cur().line;
        st->expr = parseExpr();
        expect(Tok::Semicolon, "expression statement");
        return st;
    }

    StmtPtr
    parseDecl()
    {
        int line = cur().line;
        Type type = parseTypeSpec();
        if (type.isVoid())
            error(line, "variable of type void");
        Token name = expect(Tok::Ident, "variable name");
        parseArraySuffix(type, name.line);

        auto st = std::make_unique<Stmt>();
        st->kind = StmtKind::Decl;
        st->line = line;
        st->symbolId = declareLocal(name.text, type, name.line);
        if (accept(Tok::Assign)) {
            if (type.isArray())
                error(line, "local array initializers are not supported");
            st->expr = convertTo(parseExpr(), type, line);
        }
        expect(Tok::Semicolon, "declaration");
        return st;
    }

    /** Conditions must be scalar ints (comparisons already yield int). */
    ExprPtr
    parseCondition()
    {
        int line = cur().line;
        ExprPtr e = parseExpr();
        if (!e->type.isScalarInt() && !e->type.isPointer())
            error(line, "condition must have integer type, got " +
                            e->type.toString());
        return e;
    }

    // --- Expressions ---------------------------------------------------------
    //
    // Precedence (loosest to tightest):
    //   assignment
    //   || , &&
    //   | , ^ , &
    //   == !=
    //   < > <= >=
    //   << >>
    //   + -
    //   * / %
    //   unary - ! ~
    //   postfix [] ()
    //   primary

    ExprPtr
    parseExpr()
    {
        return parseAssignment();
    }

    ExprPtr
    parseAssignment()
    {
        ExprPtr lhs = parseOrOr();
        if (!at(Tok::Assign))
            return lhs;
        int line = advance().line;
        if (lhs->kind != ExprKind::Var && lhs->kind != ExprKind::Index)
            error(line, "assignment target must be a variable or element");
        if (lhs->kind == ExprKind::Var) {
            const Symbol &sym = symbol(lhs->symbolId);
            if (sym.type.isArray())
                error(line, "cannot assign to an array");
        }
        ExprPtr rhs = convertTo(parseAssignment(), lhs->type, line);
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::Assign;
        e->line = line;
        e->type = lhs->type;
        e->kids.push_back(std::move(lhs));
        e->kids.push_back(std::move(rhs));
        return e;
    }

    ExprPtr
    parseOrOr()
    {
        ExprPtr lhs = parseAndAnd();
        while (at(Tok::OrOr)) {
            int line = advance().line;
            ExprPtr rhs = parseAndAnd();
            lhs = makeLogical(Tok::OrOr, std::move(lhs), std::move(rhs), line);
        }
        return lhs;
    }

    ExprPtr
    parseAndAnd()
    {
        ExprPtr lhs = parseBitOr();
        while (at(Tok::AndAnd)) {
            int line = advance().line;
            ExprPtr rhs = parseBitOr();
            lhs = makeLogical(Tok::AndAnd, std::move(lhs), std::move(rhs),
                              line);
        }
        return lhs;
    }

    ExprPtr
    parseBitOr()
    {
        ExprPtr lhs = parseBitXor();
        while (at(Tok::Pipe)) {
            int line = advance().line;
            lhs = makeIntBinary(Tok::Pipe, std::move(lhs), parseBitXor(),
                                line);
        }
        return lhs;
    }

    ExprPtr
    parseBitXor()
    {
        ExprPtr lhs = parseBitAnd();
        while (at(Tok::Caret)) {
            int line = advance().line;
            lhs = makeIntBinary(Tok::Caret, std::move(lhs), parseBitAnd(),
                                line);
        }
        return lhs;
    }

    ExprPtr
    parseBitAnd()
    {
        ExprPtr lhs = parseEquality();
        while (at(Tok::Amp)) {
            int line = advance().line;
            lhs = makeIntBinary(Tok::Amp, std::move(lhs), parseEquality(),
                                line);
        }
        return lhs;
    }

    ExprPtr
    parseEquality()
    {
        ExprPtr lhs = parseRelational();
        while (at(Tok::Eq) || at(Tok::Ne)) {
            Tok op = cur().kind;
            int line = advance().line;
            lhs = makeComparison(op, std::move(lhs), parseRelational(), line);
        }
        return lhs;
    }

    ExprPtr
    parseRelational()
    {
        ExprPtr lhs = parseShift();
        while (at(Tok::Lt) || at(Tok::Gt) || at(Tok::Le) || at(Tok::Ge)) {
            Tok op = cur().kind;
            int line = advance().line;
            lhs = makeComparison(op, std::move(lhs), parseShift(), line);
        }
        return lhs;
    }

    ExprPtr
    parseShift()
    {
        ExprPtr lhs = parseAdditive();
        while (at(Tok::Shl) || at(Tok::Shr)) {
            Tok op = cur().kind;
            int line = advance().line;
            lhs = makeIntBinary(op, std::move(lhs), parseAdditive(), line);
        }
        return lhs;
    }

    ExprPtr
    parseAdditive()
    {
        ExprPtr lhs = parseMultiplicative();
        while (at(Tok::Plus) || at(Tok::Minus)) {
            Tok op = cur().kind;
            int line = advance().line;
            lhs = makeArith(op, std::move(lhs), parseMultiplicative(), line);
        }
        return lhs;
    }

    ExprPtr
    parseMultiplicative()
    {
        ExprPtr lhs = parseUnary();
        while (at(Tok::Star) || at(Tok::Slash) || at(Tok::Percent)) {
            Tok op = cur().kind;
            int line = advance().line;
            if (op == Tok::Percent) {
                lhs = makeIntBinary(op, std::move(lhs), parseUnary(), line);
            } else {
                lhs = makeArith(op, std::move(lhs), parseUnary(), line);
            }
        }
        return lhs;
    }

    ExprPtr
    parseUnary()
    {
        int line = cur().line;
        if (accept(Tok::Minus)) {
            ExprPtr kid = parseUnary();
            // Fold negation of literals so "-5" stays a constant.
            if (kid->kind == ExprKind::IntLit) {
                kid->intValue = -kid->intValue;
                return kid;
            }
            if (kid->kind == ExprKind::FloatLit) {
                kid->floatValue = -kid->floatValue;
                return kid;
            }
            requireNumeric(*kid, line);
            auto e = std::make_unique<Expr>();
            e->kind = ExprKind::Unary;
            e->op = Tok::Minus;
            e->line = line;
            e->type = kid->type.decayed();
            e->kids.push_back(std::move(kid));
            return e;
        }
        if (accept(Tok::Not)) {
            ExprPtr kid = parseUnary();
            requireInt(*kid, line, "'!'");
            auto e = std::make_unique<Expr>();
            e->kind = ExprKind::Unary;
            e->op = Tok::Not;
            e->line = line;
            e->type = Type::intTy();
            e->kids.push_back(std::move(kid));
            return e;
        }
        if (accept(Tok::Tilde)) {
            ExprPtr kid = parseUnary();
            requireInt(*kid, line, "'~'");
            auto e = std::make_unique<Expr>();
            e->kind = ExprKind::Unary;
            e->op = Tok::Tilde;
            e->line = line;
            e->type = Type::intTy();
            e->kids.push_back(std::move(kid));
            return e;
        }
        return parsePostfix();
    }

    ExprPtr
    parsePostfix()
    {
        ExprPtr e = parsePrimary();
        while (at(Tok::LBracket)) {
            int line = advance().line;
            if (!e->type.isArray() && !e->type.isPointer())
                error(line, "indexing a non-array value of type " +
                                e->type.toString());
            ExprPtr idx = parseExpr();
            requireInt(*idx, line, "array index");
            expect(Tok::RBracket, "index");
            auto ix = std::make_unique<Expr>();
            ix->kind = ExprKind::Index;
            ix->line = line;
            ix->type = e->type.indexed();
            ix->kids.push_back(std::move(e));
            ix->kids.push_back(std::move(idx));
            e = std::move(ix);
        }
        return e;
    }

    ExprPtr
    parsePrimary()
    {
        int line = cur().line;
        if (at(Tok::IntLit)) {
            Token t = advance();
            auto e = std::make_unique<Expr>();
            e->kind = ExprKind::IntLit;
            e->line = line;
            e->type = Type::intTy();
            e->intValue = t.intValue;
            return e;
        }
        if (at(Tok::FloatLit)) {
            Token t = advance();
            auto e = std::make_unique<Expr>();
            e->kind = ExprKind::FloatLit;
            e->line = line;
            e->type = Type::floatTy();
            e->floatValue = t.floatValue;
            return e;
        }
        if (accept(Tok::LParen)) {
            ExprPtr e = parseExpr();
            expect(Tok::RParen, "parenthesized expression");
            return e;
        }
        if (at(Tok::Ident)) {
            Token name = advance();
            if (at(Tok::LParen))
                return parseCall(name);
            auto e = std::make_unique<Expr>();
            e->kind = ExprKind::Var;
            e->line = line;
            e->name = name.text;
            e->symbolId = lookup(name.text, line);
            e->type = symbol(e->symbolId).type;
            return e;
        }
        error(line, std::string("unexpected token ") + tokName(cur().kind));
    }

    ExprPtr
    parseCall(const Token &name)
    {
        int line = name.line;
        expect(Tok::LParen, "call");
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::Call;
        e->line = line;
        e->name = name.text;
        if (!at(Tok::RParen)) {
            do {
                e->kids.push_back(parseExpr());
            } while (accept(Tok::Comma));
        }
        expect(Tok::RParen, "call");

        e->builtin = builtinFor(name.text);
        if (e->builtin != Builtin::None) {
            typeBuiltin(*e);
            return e;
        }

        int fi = module_.findFunction(name.text);
        if (fi < 0)
            error(line, "call to undeclared function '" + name.text + "'");
        Function &fn = module_.functions[static_cast<size_t>(fi)];
        if (fn.params.size() != e->kids.size()) {
            error(line, strFormat("'%s' expects %zu arguments, got %zu",
                                  name.text.c_str(), fn.params.size(),
                                  e->kids.size()));
        }
        for (size_t i = 0; i < e->kids.size(); ++i) {
            Type pt = fn.locals[static_cast<size_t>(fn.params[i])]
                          .type.decayed();
            e->kids[i] = convertTo(std::move(e->kids[i]), pt, line);
        }
        e->functionId = fi;
        e->type = fn.returnType;
        return e;
    }

    void
    typeBuiltin(Expr &e)
    {
        auto arity = [&](size_t n) {
            if (e.kids.size() != n) {
                error(e.line, strFormat("'%s' expects %zu arguments, got %zu",
                                        e.name.c_str(), n, e.kids.size()));
            }
        };
        switch (e.builtin) {
          case Builtin::PrintInt:
          case Builtin::Exit:
            arity(1);
            e.kids[0] = convertTo(std::move(e.kids[0]), Type::intTy(), e.line);
            e.type = Type::voidTy();
            break;
          case Builtin::PrintFloat:
            arity(1);
            e.kids[0] =
                convertTo(std::move(e.kids[0]), Type::floatTy(), e.line);
            e.type = Type::voidTy();
            break;
          case Builtin::ReadInt:
            arity(0);
            e.type = Type::intTy();
            break;
          case Builtin::ReadFloat:
            arity(0);
            e.type = Type::floatTy();
            break;
          case Builtin::AllocInt:
            arity(1);
            e.kids[0] = convertTo(std::move(e.kids[0]), Type::intTy(), e.line);
            e.type = Type::pointerTo(BaseType::Int);
            break;
          case Builtin::AllocFloat:
            arity(1);
            e.kids[0] = convertTo(std::move(e.kids[0]), Type::intTy(), e.line);
            e.type = Type::pointerTo(BaseType::Float);
            break;
          case Builtin::Sqrt:
            arity(1);
            e.kids[0] =
                convertTo(std::move(e.kids[0]), Type::floatTy(), e.line);
            e.type = Type::floatTy();
            break;
          case Builtin::ToFloat:
            arity(1);
            e.kids[0] = convertTo(std::move(e.kids[0]), Type::intTy(), e.line);
            e.type = Type::floatTy();
            break;
          case Builtin::ToInt:
            arity(1);
            e.kids[0] =
                convertTo(std::move(e.kids[0]), Type::floatTy(), e.line);
            e.type = Type::intTy();
            break;
          default:
            PARA_PANIC("bad builtin");
        }
    }

    // --- Typing helpers -----------------------------------------------------

    void
    requireNumeric(const Expr &e, int line) const
    {
        Type t = e.type.decayed();
        if (t.isPointer())
            return; // pointers behave like integers where needed
        if (!t.isScalarInt() && !t.isScalarFloat())
            error(line, "operand must be numeric, got " + e.type.toString());
    }

    void
    requireInt(const Expr &e, int line, const char *what) const
    {
        Type t = e.type.decayed();
        if (!t.isScalarInt() && !t.isPointer()) {
            error(line, std::string("operand of ") + what +
                            " must be int, got " + e.type.toString());
        }
    }

    /** Insert an implicit conversion so @p e has type @p target. */
    ExprPtr
    convertTo(ExprPtr e, const Type &target, int line)
    {
        Type from = e->type.decayed();
        Type to = target.decayed();
        if (from == to)
            return e;
        // int <-> pointer conversions are free (addresses are ints).
        bool from_intish = from.isScalarInt() || from.isPointer();
        bool to_intish = to.isScalarInt() || to.isPointer();
        if (from_intish && to_intish) {
            e->type = to;
            return e;
        }
        if (from.isScalarFloat() && to_intish) {
            return makeCast(std::move(e), to, line);
        }
        if (from_intish && to.isScalarFloat()) {
            // Fold literal conversions.
            if (e->kind == ExprKind::IntLit) {
                e->kind = ExprKind::FloatLit;
                e->floatValue = static_cast<double>(e->intValue);
                e->type = Type::floatTy();
                return e;
            }
            return makeCast(std::move(e), to, line);
        }
        error(line, "cannot convert " + e->type.toString() + " to " +
                        target.toString());
    }

    ExprPtr
    makeCast(ExprPtr kid, const Type &to, int line)
    {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::Cast;
        e->line = line;
        e->type = to;
        e->kids.push_back(std::move(kid));
        return e;
    }

    /** Arithmetic + - * / with the usual int->float promotion; pointer
     *  arithmetic (ptr +/- int) keeps the pointer type. */
    ExprPtr
    makeArith(Tok op, ExprPtr lhs, ExprPtr rhs, int line)
    {
        requireNumeric(*lhs, line);
        requireNumeric(*rhs, line);
        Type lt = lhs->type.decayed();
        Type rt = rhs->type.decayed();

        Type result;
        if (lt.isPointer() && rt.isScalarInt() &&
            (op == Tok::Plus || op == Tok::Minus)) {
            result = lt;
        } else if (rt.isPointer() && lt.isScalarInt() && op == Tok::Plus) {
            result = rt;
        } else if (lt.isScalarFloat() || rt.isScalarFloat()) {
            result = Type::floatTy();
            lhs = convertTo(std::move(lhs), result, line);
            rhs = convertTo(std::move(rhs), result, line);
        } else {
            result = Type::intTy();
        }

        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::Binary;
        e->op = op;
        e->line = line;
        e->type = result;
        e->kids.push_back(std::move(lhs));
        e->kids.push_back(std::move(rhs));
        return e;
    }

    /** Bitwise / shift / modulo: both operands int. */
    ExprPtr
    makeIntBinary(Tok op, ExprPtr lhs, ExprPtr rhs, int line)
    {
        requireInt(*lhs, line, "integer operator");
        requireInt(*rhs, line, "integer operator");
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::Binary;
        e->op = op;
        e->line = line;
        e->type = Type::intTy();
        e->kids.push_back(std::move(lhs));
        e->kids.push_back(std::move(rhs));
        return e;
    }

    /** Comparisons: numeric operands, int result. */
    ExprPtr
    makeComparison(Tok op, ExprPtr lhs, ExprPtr rhs, int line)
    {
        requireNumeric(*lhs, line);
        requireNumeric(*rhs, line);
        Type lt = lhs->type.decayed();
        Type rt = rhs->type.decayed();
        if (lt.isScalarFloat() || rt.isScalarFloat()) {
            lhs = convertTo(std::move(lhs), Type::floatTy(), line);
            rhs = convertTo(std::move(rhs), Type::floatTy(), line);
        }
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::Binary;
        e->op = op;
        e->line = line;
        e->type = Type::intTy();
        e->kids.push_back(std::move(lhs));
        e->kids.push_back(std::move(rhs));
        return e;
    }

    ExprPtr
    makeLogical(Tok op, ExprPtr lhs, ExprPtr rhs, int line)
    {
        requireInt(*lhs, line, "logical operator");
        requireInt(*rhs, line, "logical operator");
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::Logical;
        e->op = op;
        e->line = line;
        e->type = Type::intTy();
        e->kids.push_back(std::move(lhs));
        e->kids.push_back(std::move(rhs));
        return e;
    }
};

} // namespace

Module
parse(std::string_view source)
{
    Parser parser(source);
    return parser.run();
}

} // namespace minic
} // namespace paragraph
