/**
 * @file
 * Lexer for MiniC: C-style tokens, // and block comments.
 */

#ifndef PARAGRAPH_MINIC_LEXER_HPP
#define PARAGRAPH_MINIC_LEXER_HPP

#include <string_view>
#include <vector>

#include "minic/token.hpp"

namespace paragraph {
namespace minic {

/**
 * Tokenize @p source.
 * @throws FatalError on an unrecognized character or malformed literal.
 */
std::vector<Token> tokenize(std::string_view source);

} // namespace minic
} // namespace paragraph

#endif // PARAGRAPH_MINIC_LEXER_HPP
