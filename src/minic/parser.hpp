/**
 * @file
 * Recursive-descent parser + semantic analysis for MiniC.
 */

#ifndef PARAGRAPH_MINIC_PARSER_HPP
#define PARAGRAPH_MINIC_PARSER_HPP

#include <string_view>

#include "minic/ast.hpp"

namespace paragraph {
namespace minic {

/**
 * Parse and type-check a MiniC translation unit.
 * @throws FatalError with a line number on any syntax or semantic error.
 */
Module parse(std::string_view source);

} // namespace minic
} // namespace paragraph

#endif // PARAGRAPH_MINIC_PARSER_HPP
