/**
 * @file
 * Abstract syntax tree, types, and symbols for MiniC.
 *
 * MiniC is the imperative source language the SPEC-analog workloads are
 * written in: ints, floats (doubles), multi-dimensional global and local
 * arrays, pointers with C-style scaling, functions with recursion, and the
 * usual control flow. The parser performs semantic analysis inline, so every
 * expression node carries its resolved type and implicit conversions appear
 * as explicit Cast nodes.
 */

#ifndef PARAGRAPH_MINIC_AST_HPP
#define PARAGRAPH_MINIC_AST_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "minic/token.hpp"

namespace paragraph {
namespace minic {

enum class BaseType : uint8_t { Void, Int, Float };

/** A MiniC type: scalar, pointer, or (possibly multi-dimensional) array. */
struct Type
{
    BaseType base = BaseType::Void;
    bool pointer = false;   ///< pointer to base (arrays decay to this)
    std::vector<int> dims;  ///< array dimensions; empty for scalars/pointers

    static Type voidTy() { return {BaseType::Void, false, {}}; }
    static Type intTy() { return {BaseType::Int, false, {}}; }
    static Type floatTy() { return {BaseType::Float, false, {}}; }

    static Type
    pointerTo(BaseType b)
    {
        return {b, true, {}};
    }

    bool isVoid() const { return base == BaseType::Void; }
    bool isArray() const { return !dims.empty(); }
    bool isPointer() const { return pointer; }
    bool isScalarInt() const { return base == BaseType::Int && !pointer && dims.empty(); }
    bool isScalarFloat() const { return base == BaseType::Float && !pointer && dims.empty(); }

    /** Size in bytes of one element (Int 4, Float 8). */
    int
    elemSize() const
    {
        return base == BaseType::Float ? 8 : 4;
    }

    /** Total byte size (arrays: product of dims * elemSize). */
    int64_t
    byteSize() const
    {
        int64_t n = elemSize();
        for (int d : dims)
            n *= d;
        return n;
    }

    /** Type of an indexing result: strips the first array dim or the
     *  pointer. */
    Type
    indexed() const
    {
        Type t = *this;
        if (!t.dims.empty())
            t.dims.erase(t.dims.begin());
        else
            t.pointer = false;
        return t;
    }

    /** Arrays decay to pointers in value contexts. */
    Type
    decayed() const
    {
        if (!isArray())
            return *this;
        Type t;
        t.base = base;
        t.pointer = true;
        return t;
    }

    bool operator==(const Type &other) const = default;

    std::string toString() const;
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind : uint8_t
{
    IntLit,
    FloatLit,
    Var,      ///< resolved identifier (symbolId)
    Binary,   ///< op, kids[0], kids[1]
    Logical,  ///< && / || with short-circuit evaluation
    Unary,    ///< op, kids[0]
    Assign,   ///< kids[0] = kids[1]; kids[0] is Var or Index
    Index,    ///< kids[0][kids[1]]
    Call,     ///< name(kids...)
    Cast,     ///< implicit int<->float conversion of kids[0]
};

/** Builtin functions recognized by name at call sites. */
enum class Builtin : uint8_t
{
    None,
    PrintInt, PrintFloat, ReadInt, ReadFloat, Exit,
    AllocInt, AllocFloat, Sqrt, ToFloat, ToInt,
};

struct Expr
{
    ExprKind kind;
    Type type;   ///< result type (post-sema)
    int line = 0;
    Tok op = Tok::End;         ///< Binary/Logical/Unary operator
    int64_t intValue = 0;      ///< IntLit
    double floatValue = 0.0;   ///< FloatLit
    std::string name;          ///< Var / Call spelling
    int symbolId = 0;          ///< Var: resolved symbol (see Symbol ids)
    int functionId = -1;       ///< Call: resolved function index
    Builtin builtin = Builtin::None; ///< Call: builtin dispatch
    std::vector<ExprPtr> kids;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind : uint8_t
{
    Block, If, While, For, Return, ExprStmt, Decl, Break, Continue, Empty,
};

struct Stmt
{
    StmtKind kind;
    int line = 0;
    ExprPtr expr;      ///< condition / expression / return value / decl init
    std::vector<StmtPtr> body; ///< Block statements
    StmtPtr thenStmt;  ///< If
    StmtPtr elseStmt;  ///< If
    StmtPtr loopBody;  ///< While / For
    StmtPtr forInit;   ///< For (Decl or ExprStmt)
    ExprPtr forStep;   ///< For
    int symbolId = 0;  ///< Decl target
};

/**
 * Symbol ids: locals are non-negative indices into Function::locals;
 * globals are encoded as -(index + 1) into Module::globals.
 */
inline bool isGlobalId(int id) { return id < 0; }
inline int globalIndex(int id) { return -id - 1; }
inline int makeGlobalId(int index) { return -index - 1; }

struct Symbol
{
    std::string name;
    Type type;
    bool isParam = false;
    /** Global initializers (flattened, element order). */
    std::vector<int64_t> initInts;
    std::vector<double> initFloats;
};

struct Function
{
    std::string name;
    Type returnType;
    std::vector<int> params; ///< symbol ids (locals)
    std::vector<Symbol> locals;
    std::vector<StmtPtr> body;
    bool defined = false; ///< false for a prototype
    int line = 0;
};

struct Module
{
    std::vector<Symbol> globals;
    std::vector<Function> functions;

    /** Find function index by name; -1 when absent. */
    int findFunction(const std::string &name) const;
};

} // namespace minic
} // namespace paragraph

#endif // PARAGRAPH_MINIC_AST_HPP
