#include "minic/lexer.hpp"

#include <cctype>
#include <cstdlib>

#include "support/panic.hpp"

namespace paragraph {
namespace minic {

const char *
tokName(Tok t)
{
    switch (t) {
      case Tok::End:       return "end of input";
      case Tok::IntLit:    return "integer literal";
      case Tok::FloatLit:  return "float literal";
      case Tok::Ident:     return "identifier";
      case Tok::KwInt:     return "'int'";
      case Tok::KwFloat:   return "'float'";
      case Tok::KwVoid:    return "'void'";
      case Tok::KwIf:      return "'if'";
      case Tok::KwElse:    return "'else'";
      case Tok::KwWhile:   return "'while'";
      case Tok::KwFor:     return "'for'";
      case Tok::KwReturn:  return "'return'";
      case Tok::KwBreak:   return "'break'";
      case Tok::KwContinue:return "'continue'";
      case Tok::LParen:    return "'('";
      case Tok::RParen:    return "')'";
      case Tok::LBrace:    return "'{'";
      case Tok::RBrace:    return "'}'";
      case Tok::LBracket:  return "'['";
      case Tok::RBracket:  return "']'";
      case Tok::Comma:     return "','";
      case Tok::Semicolon: return "';'";
      case Tok::Assign:    return "'='";
      case Tok::Plus:      return "'+'";
      case Tok::Minus:     return "'-'";
      case Tok::Star:      return "'*'";
      case Tok::Slash:     return "'/'";
      case Tok::Percent:   return "'%'";
      case Tok::Amp:       return "'&'";
      case Tok::Pipe:      return "'|'";
      case Tok::Caret:     return "'^'";
      case Tok::Tilde:     return "'~'";
      case Tok::Shl:       return "'<<'";
      case Tok::Shr:       return "'>>'";
      case Tok::AndAnd:    return "'&&'";
      case Tok::OrOr:      return "'||'";
      case Tok::Not:       return "'!'";
      case Tok::Eq:        return "'=='";
      case Tok::Ne:        return "'!='";
      case Tok::Lt:        return "'<'";
      case Tok::Gt:        return "'>'";
      case Tok::Le:        return "'<='";
      case Tok::Ge:        return "'>='";
      default:             return "?";
    }
}

namespace {

Tok
keywordFor(const std::string &word)
{
    if (word == "int")      return Tok::KwInt;
    if (word == "float")    return Tok::KwFloat;
    if (word == "double")   return Tok::KwFloat; // synonym
    if (word == "void")     return Tok::KwVoid;
    if (word == "if")       return Tok::KwIf;
    if (word == "else")     return Tok::KwElse;
    if (word == "while")    return Tok::KwWhile;
    if (word == "for")      return Tok::KwFor;
    if (word == "return")   return Tok::KwReturn;
    if (word == "break")    return Tok::KwBreak;
    if (word == "continue") return Tok::KwContinue;
    return Tok::Ident;
}

} // namespace

std::vector<Token>
tokenize(std::string_view src)
{
    std::vector<Token> out;
    size_t i = 0;
    int line = 1;
    auto peek = [&](size_t k = 0) -> char {
        return i + k < src.size() ? src[i + k] : '\0';
    };

    while (i < src.size()) {
        char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '/' && peek(1) == '/') {
            while (i < src.size() && src[i] != '\n')
                ++i;
            continue;
        }
        if (c == '/' && peek(1) == '*') {
            i += 2;
            while (i < src.size() && !(src[i] == '*' && peek(1) == '/')) {
                if (src[i] == '\n')
                    ++line;
                ++i;
            }
            if (i >= src.size())
                PARA_FATAL("minic line %d: unterminated block comment", line);
            i += 2;
            continue;
        }

        Token tok;
        tok.line = line;

        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
            size_t start = i;
            bool is_float = false;
            bool is_hex = c == '0' && (peek(1) == 'x' || peek(1) == 'X');
            if (is_hex)
                i += 2;
            while (i < src.size()) {
                char d = src[i];
                if (std::isdigit(static_cast<unsigned char>(d)) ||
                    (is_hex && std::isxdigit(static_cast<unsigned char>(d)))) {
                    ++i;
                } else if (!is_hex && (d == '.' || d == 'e' || d == 'E')) {
                    is_float = true;
                    ++i;
                    if ((d == 'e' || d == 'E') &&
                        (peek() == '+' || peek() == '-')) {
                        ++i;
                    }
                } else {
                    break;
                }
            }
            std::string text(src.substr(start, i - start));
            if (is_float) {
                tok.kind = Tok::FloatLit;
                tok.floatValue = std::strtod(text.c_str(), nullptr);
            } else {
                tok.kind = Tok::IntLit;
                tok.intValue = std::strtoll(text.c_str(), nullptr, 0);
            }
            out.push_back(std::move(tok));
            continue;
        }

        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            size_t start = i;
            while (i < src.size() &&
                   (std::isalnum(static_cast<unsigned char>(src[i])) ||
                    src[i] == '_')) {
                ++i;
            }
            tok.text = std::string(src.substr(start, i - start));
            tok.kind = keywordFor(tok.text);
            out.push_back(std::move(tok));
            continue;
        }

        auto two = [&](char second, Tok both, Tok single) {
            if (peek(1) == second) {
                tok.kind = both;
                i += 2;
            } else {
                tok.kind = single;
                ++i;
            }
        };

        switch (c) {
          case '(': tok.kind = Tok::LParen;    ++i; break;
          case ')': tok.kind = Tok::RParen;    ++i; break;
          case '{': tok.kind = Tok::LBrace;    ++i; break;
          case '}': tok.kind = Tok::RBrace;    ++i; break;
          case '[': tok.kind = Tok::LBracket;  ++i; break;
          case ']': tok.kind = Tok::RBracket;  ++i; break;
          case ',': tok.kind = Tok::Comma;     ++i; break;
          case ';': tok.kind = Tok::Semicolon; ++i; break;
          case '+': tok.kind = Tok::Plus;      ++i; break;
          case '-': tok.kind = Tok::Minus;     ++i; break;
          case '*': tok.kind = Tok::Star;      ++i; break;
          case '/': tok.kind = Tok::Slash;     ++i; break;
          case '%': tok.kind = Tok::Percent;   ++i; break;
          case '^': tok.kind = Tok::Caret;     ++i; break;
          case '~': tok.kind = Tok::Tilde;     ++i; break;
          case '&': two('&', Tok::AndAnd, Tok::Amp); break;
          case '|': two('|', Tok::OrOr, Tok::Pipe); break;
          case '=': two('=', Tok::Eq, Tok::Assign); break;
          case '!': two('=', Tok::Ne, Tok::Not); break;
          case '<':
            if (peek(1) == '<') {
                tok.kind = Tok::Shl;
                i += 2;
            } else {
                two('=', Tok::Le, Tok::Lt);
            }
            break;
          case '>':
            if (peek(1) == '>') {
                tok.kind = Tok::Shr;
                i += 2;
            } else {
                two('=', Tok::Ge, Tok::Gt);
            }
            break;
          default:
            PARA_FATAL("minic line %d: unexpected character '%c'", line, c);
        }
        out.push_back(std::move(tok));
    }

    Token end;
    end.kind = Tok::End;
    end.line = line;
    out.push_back(end);
    return out;
}

} // namespace minic
} // namespace paragraph
