/**
 * @file
 * MiniC code generator: AST -> assembly text -> assembled Program.
 *
 * Code-generation model (deliberately close to a classic optimizing RISC
 * compiler's output shape, because the renaming experiments depend on it):
 *
 *  - Scalar locals live in callee-saved registers (s0-s7 for ints, f20-f30
 *    for floats) while they fit; overflow scalars, arrays, and spill slots
 *    live in the stack frame. Loop counters therefore carry their recurrence
 *    through a *register*, exactly the structure paper Section 3.2 discusses.
 *  - Expression temporaries come from caller-saved pools (t0-t9 / f4-f17)
 *    and are spilled around calls.
 *  - Arguments pass in a0-a3 / f12-f15; results return in v0 / f0.
 *  - Floating-point literals are pooled in the data segment and loaded with
 *    l.d, as the MIPS compilers did.
 *
 * The generated text is ordinary assembler source for casm::assemble, so
 * every compiled program is also a readable .s listing.
 */

#ifndef PARAGRAPH_MINIC_COMPILER_HPP
#define PARAGRAPH_MINIC_COMPILER_HPP

#include <string>
#include <string_view>

#include "casm/program.hpp"
#include "minic/ast.hpp"

namespace paragraph {
namespace minic {

/** Generate assembly text for a parsed module. */
std::string generateAssembly(const Module &module);

/** Convenience: parse + generate + assemble in one step. */
casm::Program compile(std::string_view source);

} // namespace minic
} // namespace paragraph

#endif // PARAGRAPH_MINIC_COMPILER_HPP
