/**
 * @file
 * MiniC source for the mixed int/FP analog: spice2g6.
 */

#include "workloads/workload.hpp"

namespace paragraph {
namespace workloads {

/*
 * spice2g6 analog: circuit simulation transient loop. A sparse matrix in
 * CSR form (global integer index arrays + FP values) is rebuilt from a
 * nonlinear "device model" each timestep, then solved with Gauss-Seidel
 * sweeps whose in-place updates form true-dependence chains. The
 * conductance and right-hand-side tables are overwritten every timestep,
 * giving the extra headroom under full memory renaming that Table 4 shows
 * for spice (57 -> 111).
 *
 * Inputs: nodes (<= 256), timesteps.
 */
const char *const srcSpice = R"(
int rowp[260];
int cola[2080];
float va[2080];
float xv[256];
float bv[256];
float gv[256];
int seed;

int lcg() {
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 32767;
}

void main() {
    int n;
    int steps;
    int t;
    int i;
    int k;
    int nnz;
    float sum;
    float diag;
    float xi;

    n = read_int();
    steps = read_int();
    seed = 16180339;

    // Build a sparse pattern: ~8 entries per row, diagonal first.
    nnz = 0;
    for (i = 0; i < n; i = i + 1) {
        rowp[i] = nnz;
        cola[nnz] = i;
        va[nnz] = 4.0;
        nnz = nnz + 1;
        for (k = 0; k < 7; k = k + 1) {
            // Keep columns inside this row's 16-node subcircuit: the
            // matrix is block-diagonal (16 independent partitions), a
            // narrow-banded circuit topology.
            cola[nnz] = (i & 240) | (lcg() & 15);
            va[nnz] = 0.1 + itof(lcg() & 255) * 0.001;
            nnz = nnz + 1;
        }
    }
    rowp[n] = nnz;

    for (i = 0; i < n; i = i + 1) {
        xv[i] = 0.1 + itof(i) * 0.001;
        bv[i] = 1.0;
        gv[i] = 0.0;
    }

    for (t = 0; t < steps; t = t + 1) {
        // Device model evaluation: nonlinear conductances (overwrites gv).
        for (i = 0; i < n; i = i + 1) {
            xi = xv[i];
            if (xi < 0.5) {
                gv[i] = xi * xi * 3.0 + 0.2;
            } else {
                gv[i] = sqrt(xi) + xi * 0.25;
            }
        }
        // Load the RHS (overwrites bv).
        for (i = 0; i < n; i = i + 1) {
            bv[i] = gv[i] * 0.8 + itof(t & 15) * 0.01;
        }
        // Two Gauss-Seidel sweeps: in-place x updates (true-dep chain).
        for (k = 0; k < 2; k = k + 1) {
            for (i = 0; i < n; i = i + 1) {
                sum = bv[i];
                diag = va[rowp[i]];
                for (nnz = rowp[i] + 1; nnz < rowp[i + 1]; nnz = nnz + 1) {
                    sum = sum - va[nnz] * xv[cola[nnz]];
                }
                xv[i] = sum / diag;
            }
        }
    }

    print_float(xv[0]);
}
)";

} // namespace workloads
} // namespace paragraph
