/**
 * @file
 * The SPEC89 workload analogs (paper Table 2).
 *
 * The SPEC89 sources are proprietary, so each benchmark is replaced by a
 * MiniC analog that reproduces the dependence structure the paper attributes
 * to it (see DESIGN.md Section 2 for the substitution argument):
 *
 *   cc1        C   Int  — hash-table/token processing on the heap with
 *                         frequent system calls
 *   doduc      F   FP   — branchy Monte-Carlo particle tracking, per-sample
 *                         procedure calls
 *   eqntott    C   Int  — bit-vector truth-table comparison and merge sort
 *                         over global tables
 *   espresso   C   Int  — bitwise cube-cover minimization over global sets
 *   fpppp      F   FP   — huge straight-line FP blocks over global
 *                         (COMMON-block) scratch arrays
 *   matrix300  F   FP   — DAXPY matrix multiply on stack-resident matrices
 *   nasker     F   FP   — recurrence-bound numerical kernels
 *   spice2g6   F   mix  — sparse matrix solve + nonlinear device evaluation
 *   tomcatv    F   FP   — Jacobi mesh relaxation on stack-resident grids
 *   xlisp      C   Int  — a bytecode interpreter whose virtual-PC recurrence
 *                         serializes execution
 */

#ifndef PARAGRAPH_WORKLOADS_WORKLOAD_HPP
#define PARAGRAPH_WORKLOADS_WORKLOAD_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "casm/program.hpp"
#include "sim/machine.hpp"

namespace paragraph {
namespace workloads {

struct Workload
{
    std::string name;        ///< SPEC benchmark the analog stands in for
    std::string language;    ///< source language of the original ("C"/"FORTRAN")
    std::string benchType;   ///< "Int", "FP", or "Int and FP"
    std::string description; ///< what the analog computes
    std::string source;      ///< MiniC text
    std::vector<int32_t> input;      ///< default (benchmark) inputs
    std::vector<int32_t> smallInput; ///< reduced inputs for unit tests
};

/** Scale selector for trace generation. */
enum class Scale { Small, Full };

class WorkloadSuite
{
  public:
    /** The singleton suite (compiles lazily, caches programs). */
    static WorkloadSuite &instance();

    /** All ten analogs, in the paper's Table 2 order. */
    const std::vector<Workload> &all() const { return workloads_; }

    /** Find by name; throws FatalError when unknown. */
    const Workload &find(const std::string &name) const;

    /** Compiled program for a workload (compiled once, cached). */
    const casm::Program &program(const Workload &w);

    /** Fresh streaming trace source for a workload. */
    std::unique_ptr<sim::MachineTraceSource>
    makeSource(const Workload &w, Scale scale = Scale::Full);

  private:
    WorkloadSuite();
    std::vector<Workload> workloads_;
    std::vector<std::unique_ptr<casm::Program>> programs_;
};

// Raw MiniC sources (one per analog; defined in sources_*.cpp).
extern const char *const srcCc1;
extern const char *const srcDoduc;
extern const char *const srcEqntott;
extern const char *const srcEspresso;
extern const char *const srcFpppp;
extern const char *const srcMatrix300;
extern const char *const srcNasker;
extern const char *const srcSpice;
extern const char *const srcTomcatv;
extern const char *const srcXlisp;

} // namespace workloads
} // namespace paragraph

#endif // PARAGRAPH_WORKLOADS_WORKLOAD_HPP
