/**
 * @file
 * MiniC sources for the C integer analogs: cc1, eqntott, espresso, xlisp.
 */

#include "workloads/workload.hpp"

namespace paragraph {
namespace workloads {

/*
 * cc1 analog: compiler-style symbol processing. A pseudo-random token
 * stream is interned into a hash table of heap-allocated chain nodes, with
 * periodic output system calls (cc1 is the paper's most syscall-heavy
 * benchmark, one per ~15k instructions). Pointer chasing and read-modify-
 * write counters keep the available parallelism modest, as in Table 3.
 *
 * Inputs: tokens.
 */
const char *const srcCc1 = R"(
int hashtab[512];
int pool;
int pool_next;

// Position-based token hash: stands in for reading the token stream out of
// a file buffer (no serial generator chain, as in the real front end).
int token_at(int i) {
    int x;
    x = i * 1103515245 + 12345;
    x = x ^ ((x >> 11) & 1048575);
    return x & 2047;
}

void main() {
    int n;
    int i;
    int tok;
    int h;
    int p;
    int found;
    int* q;

    n = read_int();

    // One arena allocation up front; nodes are carved out by pointer bump
    // (user-level allocator, so interning does not syscall).
    pool = alloc_int(16384);
    pool_next = pool;

    for (i = 0; i < 512; i = i + 1) {
        hashtab[i] = 0;
    }

    for (i = 0; i < n; i = i + 1) {
        tok = token_at(i);
        h = (tok * 31) & 511;

        p = hashtab[h];
        found = 0;
        while (p != 0) {
            q = p;
            if (q[0] == tok) {
                q[1] = q[1] + 1;
                found = 1;
                p = 0;
            } else {
                p = q[2];
            }
        }
        if (found == 0) {
            q = pool_next;
            pool_next = pool_next + 12;
            q[0] = tok;
            q[1] = 1;
            q[2] = hashtab[h];
            hashtab[h] = q;
        }

        if ((i & 127) == 127) {
            print_int(i);
        }
    }

    // Dump a few chain lengths (more output syscalls).
    for (i = 0; i < 8; i = i + 1) {
        h = 0;
        p = hashtab[i * 64];
        while (p != 0) {
            q = p;
            h = h + q[1];
            p = q[2];
        }
        print_int(h);
    }
}
)";

/*
 * eqntott analog: the truth-table sort that dominates eqntott's profile.
 * Terms are 4-word bit-vectors in a global table, ordered by a bottom-up
 * merge sort whose passes ping-pong between the table and a global scratch
 * array — overwritten every pass, which is why full memory renaming buys
 * eqntott extra parallelism in Table 4.
 *
 * Inputs: number of terms (power of two, <= 2048), passes.
 */
const char *const srcEqntott = R"(
int pt[16384];
int tmp[16384];

// Position-based hash: terms are generated independently of one another,
// so table setup adds no serial dependence chain.
int mix(int x) {
    x = x * 1103515245;
    x = x ^ ((x >> 13) & 262143);
    x = x * 40503;
    return x ^ ((x >> 9) & 4194303);
}

// Compare 8-word terms a and b: negative / zero / positive.
int cmppt(int a, int b) {
    int i;
    int x;
    int y;
    for (i = 0; i < 8; i = i + 1) {
        x = pt[a * 8 + i];
        y = pt[b * 8 + i];
        if (x < y) {
            return 0 - 1;
        }
        if (x > y) {
            return 1;
        }
    }
    return 0;
}

void copy_term(int* dst, int d, int* src, int s) {
    dst[d * 8] = src[s * 8];
    dst[d * 8 + 1] = src[s * 8 + 1];
    dst[d * 8 + 2] = src[s * 8 + 2];
    dst[d * 8 + 3] = src[s * 8 + 3];
    dst[d * 8 + 4] = src[s * 8 + 4];
    dst[d * 8 + 5] = src[s * 8 + 5];
    dst[d * 8 + 6] = src[s * 8 + 6];
    dst[d * 8 + 7] = src[s * 8 + 7];
}

void merge(int lo, int mid, int hi) {
    int i;
    int j;
    int k;
    i = lo;
    j = mid;
    k = lo;
    while (i < mid && j < hi) {
        if (cmppt(i, j) <= 0) {
            copy_term(tmp, k, pt, i);
            i = i + 1;
        } else {
            copy_term(tmp, k, pt, j);
            j = j + 1;
        }
        k = k + 1;
    }
    while (i < mid) {
        copy_term(tmp, k, pt, i);
        i = i + 1;
        k = k + 1;
    }
    while (j < hi) {
        copy_term(tmp, k, pt, j);
        j = j + 1;
        k = k + 1;
    }
    for (i = lo; i < hi; i = i + 1) {
        copy_term(pt, i, tmp, i);
    }
}

void sort(int n) {
    int width;
    int lo;
    int mid;
    int hi;
    width = 1;
    while (width < n) {
        lo = 0;
        while (lo < n) {
            mid = lo + width;
            if (mid > n) {
                mid = n;
            }
            hi = lo + 2 * width;
            if (hi > n) {
                hi = n;
            }
            merge(lo, mid, hi);
            lo = lo + 2 * width;
        }
        width = 2 * width;
    }
}

void main() {
    int n;
    int passes;
    int p;
    int i;
    int check;

    n = read_int();
    passes = read_int();
    check = 0;

    for (p = 0; p < passes; p = p + 1) {
        for (i = 0; i < n * 8; i = i + 1) {
            pt[i] = mix(i + p * 65536) & 255;
        }
        sort(n);
        for (i = 0; i < n; i = i + 1) {
            check = check + pt[i * 8] * (i & 7);
        }
    }
    print_int(check);
}
)";

/*
 * espresso analog: two-level cover minimization. Cubes are 4-word bitsets
 * in a global table; each reduction pass recomputes global distance/cover
 * scratch tables (overwritten per pass -> memory-renaming sensitivity) and
 * drops cubes contained in another cube, using heap scratch from alloc_int.
 *
 * Inputs: cubes (<= 512), passes.
 */
const char *const srcEspresso = R"(
int cubes[2048];
int alive[512];
int colcnt[4];

// Position-based hash (no serial generator chain).
int mix(int x) {
    x = x * 1103515245;
    x = x ^ ((x >> 13) & 262143);
    x = x * 40503;
    return x ^ ((x >> 9) & 4194303);
}

int popcount(int x) {
    int c;
    c = 0;
    while (x != 0) {
        c = c + (x & 1);
        x = (x >> 1) & 2147483647;
    }
    return c;
}

// Does cube a contain cube b (b's bits all inside a)?
int contains(int a, int b) {
    int i;
    int bw;
    for (i = 0; i < 4; i = i + 1) {
        bw = cubes[b * 4 + i];
        if ((cubes[a * 4 + i] & bw) != bw) {
            return 0;
        }
    }
    return 1;
}

void main() {
    int n;
    int passes;
    int p;
    int i;
    int j;
    int w;
    int removed;
    int total;
    int* dist;

    n = read_int();
    total = 0;
    passes = read_int();

    dist = alloc_int(512);

    for (i = 0; i < n * 4; i = i + 1) {
        cubes[i] = mix(i) | (mix(i + 7777) << 8);
    }
    for (i = 0; i < n; i = i + 1) {
        alive[i] = 1;
    }

    for (p = 0; p < passes; p = p + 1) {
        // Reset the shared column counters (global scratch rewrite).
        for (w = 0; w < 4; w = w + 1) {
            colcnt[w] = 0;
        }
        // Distance table: ones-count of each cube (global scratch rewrite).
        for (i = 0; i < n; i = i + 1) {
            w = popcount(cubes[i * 4]) + popcount(cubes[i * 4 + 1])
                + popcount(cubes[i * 4 + 2]) + popcount(cubes[i * 4 + 3]);
            dist[i] = w;
        }
        // Containment sweep: kill cubes covered by a larger one. The
        // shared column counters are read-modify-written for every pair
        // considered, as espresso's cofactor counting does.
        removed = 0;
        for (i = 0; i < n; i = i + 1) {
            if (alive[i] == 1) {
                for (j = 0; j < n; j = j + 1) {
                    if (j != i && alive[j] == 1 && dist[j] >= dist[i]) {
                        colcnt[dist[j] & 3] = colcnt[dist[j] & 3] + 1;
                        if (contains(j, i)) {
                            alive[i] = 0;
                            removed = removed + 1;
                            j = n;
                        }
                    }
                }
            }
        }
        // Mutate survivors so later passes differ.
        for (i = 0; i < n; i = i + 1) {
            if (alive[i] == 0) {
                cubes[i * 4] = mix(i + p * 131) | (mix(i + p) << 8);
                cubes[i * 4 + 1] = mix(i * 3 + p);
                alive[i] = 1;
            } else {
                cubes[i * 4 + 2] = cubes[i * 4 + 2] ^ (1 << (i & 15));
            }
        }
        total = total + removed;
    }
    print_int(total);
    print_int(colcnt[0] + colcnt[3]);
}
)";

/*
 * xlisp analog: a bytecode interpreter. The interpreted program (an
 * imperative countdown/accumulate loop, like the paper's prog-structure
 * observation) executes on a virtual machine whose pc and stack-pointer
 * recurrences serialize nearly everything — reproducing xlisp's
 * distinctively flat, low-parallelism profile.
 *
 * Inputs: VM steps.
 */
const char *const srcXlisp = R"(
int prog[64];
int vstack[256];
int vmem[64];

void main() {
    int maxsteps;
    int steps;
    int pc;
    int sp;
    int op;
    int a;
    int b;

    maxsteps = read_int();

    // Bytecode: outer loop decrementing vmem[0], inner accumulation into
    // vmem[1]. Opcodes: 1 PUSHC k, 2 LOAD k, 3 STORE k, 4 ADD, 5 SUB,
    // 6 JNZ addr (pops condition), 7 JMP addr, 8 PRINT, 0 RESTART.
    prog[0] = 1;  prog[1] = 200;     // PUSHC 200
    prog[2] = 3;  prog[3] = 0;       // STORE counter
    prog[4] = 1;  prog[5] = 0;       // PUSHC 0
    prog[6] = 3;  prog[7] = 1;       // STORE acc
    // loop:
    prog[8] = 2;  prog[9] = 1;       // LOAD acc
    prog[10] = 2; prog[11] = 0;      // LOAD counter
    prog[12] = 4;                    // ADD
    prog[13] = 3; prog[14] = 1;      // STORE acc
    prog[15] = 2; prog[16] = 0;      // LOAD counter
    prog[17] = 1; prog[18] = 1;      // PUSHC 1
    prog[19] = 5;                    // SUB
    prog[20] = 3; prog[21] = 0;      // STORE counter
    prog[22] = 2; prog[23] = 0;      // LOAD counter
    prog[24] = 6; prog[25] = 8;      // JNZ loop
    prog[26] = 2; prog[27] = 1;      // LOAD acc
    prog[28] = 8;                    // PRINT
    prog[29] = 0;                    // RESTART

    pc = 0;
    sp = 0;
    steps = 0;
    while (steps < maxsteps) {
        op = prog[pc];
        if (op == 1) {
            vstack[sp] = prog[pc + 1];
            sp = sp + 1;
            pc = pc + 2;
        } else { if (op == 2) {
            vstack[sp] = vmem[prog[pc + 1]];
            sp = sp + 1;
            pc = pc + 2;
        } else { if (op == 3) {
            sp = sp - 1;
            vmem[prog[pc + 1]] = vstack[sp];
            pc = pc + 2;
        } else { if (op == 4) {
            sp = sp - 1;
            b = vstack[sp];
            a = vstack[sp - 1];
            vstack[sp - 1] = a + b;
            pc = pc + 1;
        } else { if (op == 5) {
            sp = sp - 1;
            b = vstack[sp];
            a = vstack[sp - 1];
            vstack[sp - 1] = a - b;
            pc = pc + 1;
        } else { if (op == 6) {
            sp = sp - 1;
            if (vstack[sp] != 0) {
                pc = prog[pc + 1];
            } else {
                pc = pc + 2;
            }
        } else { if (op == 7) {
            pc = prog[pc + 1];
        } else { if (op == 8) {
            print_int(vmem[1]);
            pc = pc + 1;
        } else {
            pc = 0;
            sp = 0;
        } } } } } } } }
        steps = steps + 1;
    }
    print_int(vmem[1]);
}
)";

} // namespace workloads
} // namespace paragraph
