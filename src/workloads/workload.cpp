#include "workloads/workload.hpp"

#include "minic/compiler.hpp"
#include "support/panic.hpp"

namespace paragraph {
namespace workloads {

WorkloadSuite &
WorkloadSuite::instance()
{
    static WorkloadSuite suite;
    return suite;
}

WorkloadSuite::WorkloadSuite()
{
    // Inputs are chosen so full-scale traces land near one million
    // instructions each (laptop-scale stand-ins for the paper's 100M).
    workloads_ = {
        {"cc1", "C", "Int",
         "token interning into a heap hash table, frequent output syscalls",
         srcCc1, {20000}, {400}},
        {"doduc", "FORTRAN", "FP",
         "Monte-Carlo particle tracking, branchy per-sample calls",
         srcDoduc, {250}, {10}},
        {"eqntott", "C", "Int",
         "bit-vector truth-table merge sort over global tables",
         srcEqntott, {1024, 2}, {64, 1}},
        {"espresso", "C", "Int",
         "bitwise cube-cover minimization with heap scratch",
         srcEspresso, {160, 2}, {32, 1}},
        {"fpppp", "FORTRAN", "FP",
         "straight-line FP shells over global scratch arrays",
         srcFpppp, {400}, {12}},
        {"matrix300", "FORTRAN", "FP",
         "DAXPY matrix multiply on stack-resident matrices",
         srcMatrix300, {80, 1}, {10, 1}},
        {"nasker", "FORTRAN", "FP",
         "recurrence-bound numerical kernels over timesteps",
         srcNasker, {1024, 15}, {96, 2}},
        {"spice2g6", "FORTRAN", "Int and FP",
         "sparse Gauss-Seidel transient solve with device models",
         srcSpice, {256, 18}, {48, 2}},
        {"tomcatv", "FORTRAN", "FP",
         "Jacobi mesh relaxation on stack-resident grids",
         srcTomcatv, {64, 8}, {14, 1}},
        {"xlisp", "C", "Int",
         "bytecode interpreter running an imperative countdown program",
         srcXlisp, {40000}, {1500}},
    };
    programs_.resize(workloads_.size());
}

const Workload &
WorkloadSuite::find(const std::string &name) const
{
    for (const Workload &w : workloads_) {
        if (w.name == name)
            return w;
    }
    PARA_FATAL("unknown workload '%s'", name.c_str());
}

const casm::Program &
WorkloadSuite::program(const Workload &w)
{
    for (size_t i = 0; i < workloads_.size(); ++i) {
        if (&workloads_[i] == &w || workloads_[i].name == w.name) {
            if (!programs_[i]) {
                programs_[i] = std::make_unique<casm::Program>(
                    minic::compile(w.source));
            }
            return *programs_[i];
        }
    }
    PARA_FATAL("workload '%s' is not part of the suite", w.name.c_str());
}

std::unique_ptr<sim::MachineTraceSource>
WorkloadSuite::makeSource(const Workload &w, Scale scale)
{
    const casm::Program &prog = program(w);
    const auto &input = scale == Scale::Full ? w.input : w.smallInput;
    return std::make_unique<sim::MachineTraceSource>(prog, input,
                                                     std::vector<double>{},
                                                     w.name);
}

} // namespace workloads
} // namespace paragraph
