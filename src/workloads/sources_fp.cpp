/**
 * @file
 * MiniC sources for the FORTRAN floating-point analogs:
 * matrix300, tomcatv, fpppp, nasker, doduc.
 */

#include "workloads/workload.hpp"

namespace paragraph {
namespace workloads {

/*
 * matrix300 analog: DAXPY-formulated matrix multiply (order <= 96). The
 * matrices are procedure locals, so every array access hits the *stack*
 * segment, and the spilled middle-loop bookkeeping is rewritten in its
 * frame slot every iteration — the paper singles matrix300 out as needing
 * stack renaming precisely because of such non-register-allocatable
 * stack values.
 *
 * Inputs: n (matrix order, <= 96), reps.
 */
const char *const srcMatrix300 = R"(
// Triple-loop DAXPY-form multiply, all in one routine as the FORTRAN
// compiler emits it. The matrices are procedure locals (stack segment);
// the middle-loop index k and repetition counter r are compiler spills,
// rewritten in their frame slots every middle iteration — the stack
// storage dependence that register renaming alone cannot remove.
void main() {
    float a[96][96];
    float b[96][96];
    float c[96][96];
    int j;
    int i;
    int n;
    int reps;
    int k;
    int r;
    float t;
    float s;

    n = read_int();
    reps = read_int();

    for (i = 0; i < n; i = i + 1) {
        for (k = 0; k < n; k = k + 1) {
            a[i][k] = itof(i - k) * 0.5;
            b[i][k] = itof(i + 2 * k) * 0.25;
            c[i][k] = 0.0;
        }
    }

    for (r = 0; r < reps; r = r + 1) {
        for (i = 0; i < n; i = i + 1) {
            for (k = 0; k < n; k = k + 1) {
                t = a[i][k];
                for (j = 0; j < n; j = j + 1) {
                    c[i][j] = c[i][j] + t * b[k][j];
                }
            }
        }
    }

    s = 0.0;
    for (i = 0; i < n; i = i + 1) {
        s = s + c[i][i];
    }
    print_float(s);
}
)";

/*
 * tomcatv analog: Jacobi relaxation sweeps over two mesh grids held in
 * the routine's frame (stack segment), with spilled loop bookkeeping
 * rewritten per iteration, as in matrix300.
 *
 * Inputs: interior size n (<= 64), iterations.
 */
const char *const srcTomcatv = R"(
// Jacobi relaxation, ping-ponging between two stack-resident grids in a
// single routine. The sweep counter it and the address temporary jj are
// compiler spills in the frame; jj is rewritten every inner iteration,
// so without stack renaming the sweeps serialize through its slot.
void main() {
    float x[66][66];
    float y[66][66];
    int j;
    int i;
    int n;
    int iters;
    int it;
    int jj;

    n = read_int();
    iters = read_int();

    for (i = 0; i < n + 2; i = i + 1) {
        for (j = 0; j < n + 2; j = j + 1) {
            x[i][j] = itof(i * j) * 0.001 + itof(i - j) * 0.01;
            y[i][j] = x[i][j];
        }
    }

    for (it = 0; it < iters; it = it + 1) {
        for (i = 1; i < n + 1; i = i + 1) {
            for (j = 1; j < n + 1; j = j + 1) {
                jj = j + 1;
                y[i][j] = 0.25 * (x[i - 1][j] + x[i + 1][j]
                                  + x[i][j - 1] + x[i][jj]);
            }
        }
        for (i = 1; i < n + 1; i = i + 1) {
            for (j = 1; j < n + 1; j = j + 1) {
                jj = j + 1;
                x[i][j] = 0.25 * (y[i - 1][j] + y[i + 1][j]
                                  + y[i][j - 1] + y[i][jj]);
            }
        }
    }

    print_float(x[n / 2][n / 2]);
}
)";

/*
 * fpppp analog: electron-integral-style shells. Each shell runs a long
 * FP-dense block that *overwrites* global (COMMON-block) scratch arrays and
 * accumulates into a result table. Successive shells touch the same scratch
 * locations, so the data segment must be renamed before shells can overlap —
 * the signature the paper reports for fpppp (81 -> 2,000).
 *
 * Inputs: number of shells.
 */
const char *const srcFpppp = R"(
float f0[512];
float f1[512];
float f2[512];
float f3[512];
float result[512];

void shell(int s) {
    int i;
    int k;
    float q;
    float r;
    float u;
    float v;
    float w;
    float z;
    w = 0.0;
    for (i = 0; i < 64; i = i + 1) {
        q = f0[i] * 1.1 + f1[i] * 0.3;
        r = f0[i] - f1[i] * 0.9;
        u = q * r + 0.77;
        v = u * q - r * 0.5;
        z = u * v - (q * 0.25 + r * r) * 1.31 + q;
        f2[i] = u + v * r + z * 0.125;
        f3[i] = v - u * r + z * 0.0625;
        result[s & 511] = result[s & 511] + f2[i] * f3[i] - z * 0.001;
        if (i < 16) {
            w = w + f2[i] * 0.03125 - f3[i] * 0.015625;
        }
    }
    // Shell epilogue: an indexed gather whose address comes off the
    // 16-step running sum, so the scratch array has a *deep* reader.
    // Until the data segment is renamed, the next shell cannot overwrite
    // that element before this late load fires — the cross-shell
    // serialization fpppp exhibits in Table 4.
    k = ftoi(w * 16.0) & 15;
    result[(s + 1) & 511] = result[(s + 1) & 511]
        + f2[k] + f3[1] * 0.005;
}

void main() {
    int s;
    int n;
    int i;

    n = read_int();

    for (i = 0; i < 512; i = i + 1) {
        f0[i] = itof(i) * 0.01;
        f1[i] = itof(511 - i) * 0.02;
        f2[i] = 0.0;
        f3[i] = 0.0;
        result[i] = 0.0;
    }

    for (s = 0; s < n; s = s + 1) {
        shell(s);
    }

    print_float(result[0]);
}
)";

/*
 * nasker analog: recurrence-bound numerical kernels (first-order linear
 * recurrence, tridiagonal substitution, dot products) iterated over
 * timesteps whose arrays are updated in place — true dependences, so no
 * amount of renaming raises the parallelism much beyond register renaming,
 * matching the paper's nasker row.
 *
 * Inputs: vector length n (<= 1024), timesteps.
 */
const char *const srcNasker = R"(
float xv[1024];
float av[1024];
float bv[1024];
float cv[1024];
float dv[1024];
float partial[32];

void main() {
    int n;
    int steps;
    int t;
    int i;
    float acc;
    float prev;

    n = read_int();
    steps = read_int();

    for (i = 0; i < n; i = i + 1) {
        xv[i] = itof(i) * 0.001 + 0.5;
        av[i] = 0.3 + itof(i & 15) * 0.01;
        bv[i] = 1.9 + itof(i & 7) * 0.005;
        cv[i] = 0.1 + itof(i & 3) * 0.002;
        dv[i] = itof(n - i) * 0.0005;
    }

    for (t = 0; t < steps; t = t + 1) {
        // Kernel 1: banded first-order recurrences — one independent
        // 64-element chain per band, like VPENTA's per-plane solves.
        for (i = 1; i < n; i = i + 1) {
            if ((i & 63) != 0) {
                xv[i] = av[i] + 0.49 * xv[i - 1];
            } else {
                xv[i] = av[i];
            }
        }
        // Kernel 2: elementwise update (fully parallel).
        for (i = 0; i < n; i = i + 1) {
            dv[i] = dv[i] * 0.999 + xv[i] * 0.01;
        }
        // Kernel 3: banded forward substitution (64-element chains).
        prev = 0.0;
        for (i = 0; i < n; i = i + 1) {
            if ((i & 63) == 0) {
                prev = 0.0;
            }
            prev = (dv[i] - cv[i] * prev) / bv[i];
            xv[i] = prev;
        }
        // Kernel 4: blocked dot product — 32 independent partial sums,
        // then a short serial combine.
        for (i = 0; i < 32; i = i + 1) {
            partial[i] = 0.0;
        }
        for (i = 0; i < n; i = i + 1) {
            partial[i & 31] = partial[i & 31] + xv[i] * dv[i];
        }
        acc = 0.0;
        for (i = 0; i < 32; i = i + 1) {
            acc = acc + partial[i];
        }
        av[t & 1023] = av[t & 1023] + acc * 0.0001;
    }

    print_float(xv[n / 2]);
}
)";

/*
 * doduc analog: Monte-Carlo particle tracking. 64 independent tracks each
 * carry their own RNG state and energy, advanced by a branchy per-sample
 * procedure — call-frame reuse gives the stack-renaming sensitivity the
 * paper reports for doduc (30 -> 104).
 *
 * Inputs: steps (samples per track).
 */
const char *const srcDoduc = R"(
int seeds[64];
float energy[64];

int lcg(int t) {
    int s;
    s = seeds[t] * 1103515245 + 12345;
    seeds[t] = s;
    return (s >> 16) & 32767;
}

float sample(float e, int t) {
    int r;
    int k;
    float p;
    float q;
    float w;
    r = lcg(t);
    p = itof(r) * 0.000030517578125;
    if (p < 0.3) {
        q = e * 0.5 + p;
    } else {
        if (p < 0.7) {
            q = e * 1.2 - p * 0.4;
        } else {
            q = sqrt(e + p);
        }
    }
    // Cross-section evaluation: a few independent interaction terms.
    w = 0.0;
    for (k = 0; k < 3; k = k + 1) {
        w = w + (q * 0.11 + p * itof(k)) * (e * 0.07 - p * 0.02)
              + q * p * 0.013;
    }
    q = q + w * 0.0001;
    if (q < 0.001) {
        q = 1.0;
    }
    return q;
}

void main() {
    int steps;
    int s;
    int t;
    float acc;

    steps = read_int();

    for (t = 0; t < 64; t = t + 1) {
        seeds[t] = 7 * t + 1;
        energy[t] = 1.0 + itof(t) * 0.01;
    }

    for (s = 0; s < steps; s = s + 1) {
        for (t = 0; t < 64; t = t + 1) {
            energy[t] = sample(energy[t], t);
        }
    }

    acc = 0.0;
    for (t = 0; t < 64; t = t + 1) {
        acc = acc + energy[t];
    }
    print_float(acc);
}
)";

} // namespace workloads
} // namespace paragraph
