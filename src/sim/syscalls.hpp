/**
 * @file
 * System-call interface of the simulated machine.
 *
 * Services follow the classic MIPS simulator convention: the service number
 * goes in v0 and arguments in a0 (or f12 for doubles). I/O is fully
 * deterministic: inputs come from queues primed before the run, outputs are
 * recorded into vectors — no host interaction, so a re-run reproduces the
 * identical trace (required by TraceSource::reset()).
 */

#ifndef PARAGRAPH_SIM_SYSCALLS_HPP
#define PARAGRAPH_SIM_SYSCALLS_HPP

#include <cstdint>

namespace paragraph {
namespace sim {

enum class SysCallService : int32_t
{
    PrintInt = 1,    ///< record a0 in the integer output stream
    PrintDouble = 2, ///< record f12 in the FP output stream
    ReadInt = 3,     ///< v0 <- next queued integer input (0 when exhausted)
    ReadDouble = 4,  ///< f0 <- next queued FP input (0.0 when exhausted)
    Exit = 5,        ///< terminate; exit code in a0
    Sbrk = 6,        ///< v0 <- old break; break += a0 (8-byte aligned)
};

} // namespace sim
} // namespace paragraph

#endif // PARAGRAPH_SIM_SYSCALLS_HPP
