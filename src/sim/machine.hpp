/**
 * @file
 * Machine: the functional simulator (this repository's Pixie substitute).
 *
 * Executes an assembled Program instruction-at-a-time, producing one
 * TraceRecord per executed instruction — the serial execution trace
 * Paragraph analyzes. Execution is fully deterministic (queued I/O, no host
 * state), so re-running the same program yields a bit-identical trace.
 */

#ifndef PARAGRAPH_SIM_MACHINE_HPP
#define PARAGRAPH_SIM_MACHINE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "casm/program.hpp"
#include "sim/memory.hpp"
#include "sim/syscalls.hpp"
#include "trace/record.hpp"
#include "trace/source.hpp"

namespace paragraph {
namespace sim {

class Machine
{
  public:
    /** @param program assembled image; must outlive the machine. */
    explicit Machine(const casm::Program &program);

    /** Queue integer inputs for ReadInt (consumed in order). */
    void setIntInput(std::vector<int32_t> input);

    /** Queue FP inputs for ReadDouble. */
    void setFpInput(std::vector<double> input);

    /**
     * Execute one instruction and describe it in @p rec.
     * @return false when the program has already exited (or ran off the end
     *         of the text segment, which is treated as a clean exit).
     */
    bool step(trace::TraceRecord &rec);

    /**
     * Run to completion (or @p max_instructions).
     * @return number of instructions executed.
     */
    uint64_t run(uint64_t max_instructions = 0);

    /** Reset registers, memory, I/O cursors, and the PC to the entry. */
    void reset();

    // --- State access (tests and examples) -------------------------------

    bool exited() const { return exited_; }
    int32_t exitCode() const { return exitCode_; }
    uint64_t pc() const { return pc_; }
    uint64_t instructionsExecuted() const { return executed_; }

    int32_t
    intReg(uint8_t idx) const
    {
        return static_cast<int32_t>(intRegs_[idx]);
    }

    void
    setIntReg(uint8_t idx, int32_t value)
    {
        if (idx != 0)
            intRegs_[idx] = static_cast<uint32_t>(value);
    }

    double fpReg(uint8_t idx) const { return fpRegs_[idx]; }
    void setFpReg(uint8_t idx, double value) { fpRegs_[idx] = value; }

    Memory &memory() { return memory_; }

    /** Values printed via PrintInt, in order. */
    const std::vector<int64_t> &intOutput() const { return intOutput_; }

    /** Values printed via PrintDouble, in order. */
    const std::vector<double> &fpOutput() const { return fpOutput_; }

  private:
    const casm::Program &program_;
    Memory memory_;
    uint32_t intRegs_[32] = {};
    double fpRegs_[32] = {};
    uint64_t pc_ = 0;
    uint64_t executed_ = 0;
    bool exited_ = false;
    int32_t exitCode_ = 0;
    uint64_t heapBase_ = 0;
    uint64_t brk_ = 0;

    std::vector<int32_t> intInput_;
    std::vector<double> fpInput_;
    size_t intInputPos_ = 0;
    size_t fpInputPos_ = 0;
    std::vector<int64_t> intOutput_;
    std::vector<double> fpOutput_;

    void doSysCall(trace::TraceRecord &rec);

    trace::Segment classify(uint64_t addr) const;
};

/**
 * Streaming TraceSource that executes a program on demand: next() runs one
 * instruction. reset() rebuilds the machine (with its queued inputs), so
 * window-size sweeps can replay the identical trace without storing it.
 */
class MachineTraceSource : public trace::TraceSource
{
  public:
    MachineTraceSource(const casm::Program &program,
                       std::vector<int32_t> int_input = {},
                       std::vector<double> fp_input = {},
                       std::string name = "program");

    bool next(trace::TraceRecord &rec) override;
    void reset() override;
    std::string name() const override { return name_; }

    /** The underlying machine (e.g. to inspect outputs after a run). */
    Machine &machine() { return machine_; }

  private:
    const casm::Program &program_;
    std::vector<int32_t> intInput_;
    std::vector<double> fpInput_;
    std::string name_;
    Machine machine_;
};

} // namespace sim
} // namespace paragraph

#endif // PARAGRAPH_SIM_MACHINE_HPP
