/**
 * @file
 * ExecutionProfile: per-static-instruction execution counts.
 *
 * Pixie — the trace capturer the paper used — was "a basic block execution
 * profiler"; this is the same first-order view over our traces: how often
 * each static instruction executed, which instructions are hot, and what
 * fraction of the dynamic stream the hottest code accounts for. Useful for
 * sanity-checking workload analogs (a benchmark whose inner loop is not
 * dominant is not the benchmark it claims to be).
 */

#ifndef PARAGRAPH_SIM_EXEC_PROFILE_HPP
#define PARAGRAPH_SIM_EXEC_PROFILE_HPP

#include <cstdint>
#include <ostream>
#include <vector>

#include "casm/program.hpp"
#include "trace/source.hpp"

namespace paragraph {
namespace sim {

class ExecutionProfile
{
  public:
    /** @param text_size number of static instructions in the program. */
    explicit ExecutionProfile(size_t text_size)
        : counts_(text_size, 0) {}

    /** Account one executed instruction at static index @p pc. */
    void
    record(uint64_t pc)
    {
        if (pc < counts_.size()) {
            ++counts_[pc];
            ++total_;
        }
    }

    /** Build a profile by draining @p src. */
    static ExecutionProfile
    collect(trace::TraceSource &src, size_t text_size)
    {
        ExecutionProfile prof(text_size);
        trace::TraceRecord rec;
        while (src.next(rec))
            prof.record(rec.pc);
        return prof;
    }

    /** Executions of static instruction @p pc. */
    uint64_t
    count(uint64_t pc) const
    {
        return pc < counts_.size() ? counts_[pc] : 0;
    }

    /** Total dynamic instructions recorded. */
    uint64_t total() const { return total_; }

    /** Static instructions that executed at least once. */
    size_t touched() const;

    /** The @p n hottest static instruction indices, hottest first. */
    std::vector<uint64_t> hottest(size_t n) const;

    /** Fraction of the dynamic stream covered by the @p n hottest. */
    double coverage(size_t n) const;

    /**
     * Print the top-@p n report with disassembly from @p program
     * ("index  count  %dynamic  instruction").
     */
    void printHot(std::ostream &os, const casm::Program &program,
                  size_t n = 16) const;

  private:
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

} // namespace sim
} // namespace paragraph

#endif // PARAGRAPH_SIM_EXEC_PROFILE_HPP
