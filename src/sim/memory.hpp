/**
 * @file
 * Sparse paged memory for the functional simulator.
 *
 * A flat 32-bit-ish little-endian address space backed by 4 KiB pages that
 * materialize on first touch (zero-filled, so .space data and fresh stack
 * frames read as zero). Also owns the segment classifier that tags every
 * traced memory access as Data / Heap / Stack — the distinction Paragraph's
 * rename-data and rename-stack switches depend on.
 */

#ifndef PARAGRAPH_SIM_MEMORY_HPP
#define PARAGRAPH_SIM_MEMORY_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "support/flat_hash_map.hpp"
#include "trace/record.hpp"

namespace paragraph {
namespace sim {

class Memory
{
  public:
    static constexpr uint64_t pageSize = 4096;

    /** Addresses at or above this are classified as stack. */
    static constexpr uint64_t stackFloor = 0x40000000;

    Memory() = default;

    /** Copy @p image to consecutive addresses starting at @p base. */
    void loadImage(uint64_t base, const std::vector<uint8_t> &image);

    uint32_t read32(uint64_t addr);
    void write32(uint64_t addr, uint32_t value);
    uint64_t read64(uint64_t addr);
    void write64(uint64_t addr, uint64_t value);

    double
    readDouble(uint64_t addr)
    {
        uint64_t bits = read64(addr);
        double v;
        __builtin_memcpy(&v, &bits, sizeof(v));
        return v;
    }

    void
    writeDouble(uint64_t addr, double value)
    {
        uint64_t bits;
        __builtin_memcpy(&bits, &value, sizeof(bits));
        write64(addr, bits);
    }

    /**
     * Segment of @p addr given the current heap base (heap grows from
     * heapBase upward; anything >= stackFloor is stack; anything below
     * heap_base is static data).
     */
    static trace::Segment
    classify(uint64_t addr, uint64_t heap_base)
    {
        if (addr >= stackFloor)
            return trace::Segment::Stack;
        if (addr >= heap_base)
            return trace::Segment::Heap;
        return trace::Segment::Data;
    }

    /** Pages currently materialized. */
    size_t pageCount() const { return pages_.size(); }

    /** Drop all contents. */
    void clear();

  private:
    FlatHashMap<uint64_t, uint32_t> pageIndex_; // page number -> pages_ idx
    std::vector<std::unique_ptr<uint8_t[]>> pages_;

    uint8_t *pageFor(uint64_t addr);

    void readBytes(uint64_t addr, uint8_t *out, size_t n);
    void writeBytes(uint64_t addr, const uint8_t *in, size_t n);
};

} // namespace sim
} // namespace paragraph

#endif // PARAGRAPH_SIM_MEMORY_HPP
