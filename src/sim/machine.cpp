#include "sim/machine.hpp"

#include <cmath>
#include <limits>

#include "isa/registers.hpp"
#include "support/panic.hpp"

namespace paragraph {
namespace sim {

using isa::Instruction;
using isa::Opcode;
using isa::OperandPattern;
using trace::Operand;
using trace::TraceRecord;

Machine::Machine(const casm::Program &program) : program_(program)
{
    reset();
}

void
Machine::reset()
{
    memory_.clear();
    memory_.loadImage(casm::MemoryLayout::dataBase, program_.data);
    for (auto &r : intRegs_)
        r = 0;
    for (auto &f : fpRegs_)
        f = 0.0;
    intRegs_[isa::regSp] = casm::MemoryLayout::stackTop;
    heapBase_ = program_.heapBase();
    brk_ = heapBase_;
    pc_ = program_.entry;
    executed_ = 0;
    exited_ = false;
    exitCode_ = 0;
    intInputPos_ = 0;
    fpInputPos_ = 0;
    intOutput_.clear();
    fpOutput_.clear();
}

void
Machine::setIntInput(std::vector<int32_t> input)
{
    intInput_ = std::move(input);
    intInputPos_ = 0;
}

void
Machine::setFpInput(std::vector<double> input)
{
    fpInput_ = std::move(input);
    fpInputPos_ = 0;
}

trace::Segment
Machine::classify(uint64_t addr) const
{
    return Memory::classify(addr, heapBase_);
}

namespace {

int32_t
clampToInt32(double v)
{
    if (std::isnan(v))
        return 0;
    if (v >= 2147483647.0)
        return std::numeric_limits<int32_t>::max();
    if (v <= -2147483648.0)
        return std::numeric_limits<int32_t>::min();
    return static_cast<int32_t>(v);
}

} // namespace

bool
Machine::step(TraceRecord &rec)
{
    if (exited_)
        return false;
    if (pc_ >= program_.text.size()) {
        // Falling off the text segment is a clean exit.
        exited_ = true;
        return false;
    }

    const Instruction &inst = program_.text[pc_];
    rec = TraceRecord{};
    rec.pc = pc_;
    rec.cls = isa::opcodeClass(inst.op);
    uint64_t next_pc = pc_ + 1;

    // Register read/write helpers. The zero register is a constant: reads
    // contribute no dependency, writes are discarded and traced as no-ops.
    auto src_int = [&](uint8_t idx) {
        if (idx != 0)
            rec.addSrc(Operand::intReg(idx));
        return static_cast<int32_t>(intRegs_[idx]);
    };
    auto src_uint = [&](uint8_t idx) {
        if (idx != 0)
            rec.addSrc(Operand::intReg(idx));
        return intRegs_[idx];
    };
    auto dest_int = [&](uint8_t idx, int32_t value) {
        if (idx != 0) {
            intRegs_[idx] = static_cast<uint32_t>(value);
            rec.dest = Operand::intReg(idx);
            rec.createsValue = true;
        }
    };
    auto src_fp = [&](uint8_t idx) {
        rec.addSrc(Operand::fpReg(idx));
        return fpRegs_[idx];
    };
    auto dest_fp = [&](uint8_t idx, double value) {
        fpRegs_[idx] = value;
        rec.dest = Operand::fpReg(idx);
        rec.createsValue = true;
    };
    auto mem_addr = [&](uint8_t base, int32_t offset) {
        if (base != 0)
            rec.addSrc(Operand::intReg(base));
        return static_cast<uint64_t>(static_cast<uint32_t>(
            intRegs_[base] + static_cast<uint32_t>(offset)));
    };

    switch (inst.op) {
      case Opcode::Add:
        dest_int(inst.rd, src_int(inst.rs) + src_int(inst.rt));
        break;
      case Opcode::Sub:
        dest_int(inst.rd, src_int(inst.rs) - src_int(inst.rt));
        break;
      case Opcode::Mul:
        dest_int(inst.rd, static_cast<int32_t>(
            static_cast<int64_t>(src_int(inst.rs)) *
            static_cast<int64_t>(src_int(inst.rt))));
        break;
      case Opcode::Div: {
        int32_t a = src_int(inst.rs);
        int32_t b = src_int(inst.rt);
        if (b == 0)
            PARA_FATAL("division by zero at pc %llu",
                       static_cast<unsigned long long>(pc_));
        int32_t q = (a == std::numeric_limits<int32_t>::min() && b == -1)
                        ? a
                        : a / b;
        dest_int(inst.rd, q);
        break;
      }
      case Opcode::Rem: {
        int32_t a = src_int(inst.rs);
        int32_t b = src_int(inst.rt);
        if (b == 0)
            PARA_FATAL("remainder by zero at pc %llu",
                       static_cast<unsigned long long>(pc_));
        int32_t r = (a == std::numeric_limits<int32_t>::min() && b == -1)
                        ? 0
                        : a % b;
        dest_int(inst.rd, r);
        break;
      }
      case Opcode::And:
        dest_int(inst.rd, static_cast<int32_t>(src_uint(inst.rs) &
                                               src_uint(inst.rt)));
        break;
      case Opcode::Or:
        dest_int(inst.rd, static_cast<int32_t>(src_uint(inst.rs) |
                                               src_uint(inst.rt)));
        break;
      case Opcode::Xor:
        dest_int(inst.rd, static_cast<int32_t>(src_uint(inst.rs) ^
                                               src_uint(inst.rt)));
        break;
      case Opcode::Nor:
        dest_int(inst.rd, static_cast<int32_t>(~(src_uint(inst.rs) |
                                                 src_uint(inst.rt))));
        break;
      case Opcode::Sllv:
        dest_int(inst.rd, static_cast<int32_t>(src_uint(inst.rs)
                                               << (src_uint(inst.rt) & 31)));
        break;
      case Opcode::Srlv:
        dest_int(inst.rd, static_cast<int32_t>(src_uint(inst.rs) >>
                                               (src_uint(inst.rt) & 31)));
        break;
      case Opcode::Srav:
        dest_int(inst.rd, src_int(inst.rs) >>
                              (src_uint(inst.rt) & 31));
        break;
      case Opcode::Slt:
        dest_int(inst.rd, src_int(inst.rs) < src_int(inst.rt) ? 1 : 0);
        break;
      case Opcode::Sltu:
        dest_int(inst.rd, src_uint(inst.rs) < src_uint(inst.rt) ? 1 : 0);
        break;
      case Opcode::Addi:
        dest_int(inst.rd, src_int(inst.rs) + inst.imm);
        break;
      case Opcode::Andi:
        dest_int(inst.rd, static_cast<int32_t>(
            src_uint(inst.rs) & static_cast<uint32_t>(inst.imm)));
        break;
      case Opcode::Ori:
        dest_int(inst.rd, static_cast<int32_t>(
            src_uint(inst.rs) | static_cast<uint32_t>(inst.imm)));
        break;
      case Opcode::Xori:
        dest_int(inst.rd, static_cast<int32_t>(
            src_uint(inst.rs) ^ static_cast<uint32_t>(inst.imm)));
        break;
      case Opcode::Slti:
        dest_int(inst.rd, src_int(inst.rs) < inst.imm ? 1 : 0);
        break;
      case Opcode::Sll:
        dest_int(inst.rd, static_cast<int32_t>(src_uint(inst.rs)
                                               << (inst.imm & 31)));
        break;
      case Opcode::Srl:
        dest_int(inst.rd, static_cast<int32_t>(src_uint(inst.rs) >>
                                               (inst.imm & 31)));
        break;
      case Opcode::Sra:
        dest_int(inst.rd, src_int(inst.rs) >> (inst.imm & 31));
        break;
      case Opcode::Li:
        dest_int(inst.rd, inst.imm);
        break;
      case Opcode::Lui:
        dest_int(inst.rd, static_cast<int32_t>(
            static_cast<uint32_t>(inst.imm) << 16));
        break;
      case Opcode::Move:
        dest_int(inst.rd, src_int(inst.rs));
        break;
      case Opcode::Lw: {
        uint64_t addr = mem_addr(inst.rs, inst.imm);
        rec.addSrc(Operand::mem(addr, classify(addr)));
        dest_int(inst.rd, static_cast<int32_t>(memory_.read32(addr)));
        break;
      }
      case Opcode::Sw: {
        int32_t value = src_int(inst.rt);
        uint64_t addr = mem_addr(inst.rs, inst.imm);
        memory_.write32(addr, static_cast<uint32_t>(value));
        rec.dest = Operand::mem(addr, classify(addr));
        rec.createsValue = true;
        break;
      }
      case Opcode::Ld: {
        uint64_t addr = mem_addr(inst.rs, inst.imm);
        rec.addSrc(Operand::mem(addr, classify(addr)));
        dest_fp(inst.rd, memory_.readDouble(addr));
        break;
      }
      case Opcode::Sd: {
        double value = src_fp(inst.rt);
        uint64_t addr = mem_addr(inst.rs, inst.imm);
        memory_.writeDouble(addr, value);
        rec.dest = Operand::mem(addr, classify(addr));
        rec.createsValue = true;
        break;
      }
      case Opcode::FAdd:
        dest_fp(inst.rd, src_fp(inst.rs) + src_fp(inst.rt));
        break;
      case Opcode::FSub:
        dest_fp(inst.rd, src_fp(inst.rs) - src_fp(inst.rt));
        break;
      case Opcode::FMul:
        dest_fp(inst.rd, src_fp(inst.rs) * src_fp(inst.rt));
        break;
      case Opcode::FDiv:
        dest_fp(inst.rd, src_fp(inst.rs) / src_fp(inst.rt));
        break;
      case Opcode::FSqrt:
        dest_fp(inst.rd, std::sqrt(src_fp(inst.rs)));
        break;
      case Opcode::FNeg:
        dest_fp(inst.rd, -src_fp(inst.rs));
        break;
      case Opcode::FMov:
        dest_fp(inst.rd, src_fp(inst.rs));
        break;
      case Opcode::CvtDW:
        dest_fp(inst.rd, static_cast<double>(src_int(inst.rs)));
        break;
      case Opcode::CvtWD:
        dest_int(inst.rd, clampToInt32(src_fp(inst.rs)));
        break;
      case Opcode::FCLt:
        dest_int(inst.rd, src_fp(inst.rs) < src_fp(inst.rt) ? 1 : 0);
        break;
      case Opcode::FCLe:
        dest_int(inst.rd, src_fp(inst.rs) <= src_fp(inst.rt) ? 1 : 0);
        break;
      case Opcode::FCEq:
        dest_int(inst.rd, src_fp(inst.rs) == src_fp(inst.rt) ? 1 : 0);
        break;
      case Opcode::Beq:
        rec.isCondBranch = true;
        rec.branchTaken = src_int(inst.rs) == src_int(inst.rt);
        if (rec.branchTaken)
            next_pc = static_cast<uint64_t>(inst.imm);
        break;
      case Opcode::Bne:
        rec.isCondBranch = true;
        rec.branchTaken = src_int(inst.rs) != src_int(inst.rt);
        if (rec.branchTaken)
            next_pc = static_cast<uint64_t>(inst.imm);
        break;
      case Opcode::Blez:
        rec.isCondBranch = true;
        rec.branchTaken = src_int(inst.rs) <= 0;
        if (rec.branchTaken)
            next_pc = static_cast<uint64_t>(inst.imm);
        break;
      case Opcode::Bgtz:
        rec.isCondBranch = true;
        rec.branchTaken = src_int(inst.rs) > 0;
        if (rec.branchTaken)
            next_pc = static_cast<uint64_t>(inst.imm);
        break;
      case Opcode::Bltz:
        rec.isCondBranch = true;
        rec.branchTaken = src_int(inst.rs) < 0;
        if (rec.branchTaken)
            next_pc = static_cast<uint64_t>(inst.imm);
        break;
      case Opcode::Bgez:
        rec.isCondBranch = true;
        rec.branchTaken = src_int(inst.rs) >= 0;
        if (rec.branchTaken)
            next_pc = static_cast<uint64_t>(inst.imm);
        break;
      case Opcode::J:
        next_pc = static_cast<uint64_t>(inst.imm);
        break;
      case Opcode::Jal:
        // jal creates a value: the return address in ra.
        dest_int(isa::regRa, static_cast<int32_t>(pc_ + 1));
        next_pc = static_cast<uint64_t>(inst.imm);
        break;
      case Opcode::Jr:
        next_pc = static_cast<uint64_t>(
            static_cast<uint32_t>(src_int(inst.rs)));
        break;
      case Opcode::Jalr:
        next_pc = static_cast<uint64_t>(
            static_cast<uint32_t>(src_int(inst.rs)));
        dest_int(inst.rd, static_cast<int32_t>(pc_ + 1));
        break;
      case Opcode::SysCall:
        doSysCall(rec);
        break;
      case Opcode::Nop:
        break;
      default:
        PARA_PANIC("unimplemented opcode %d", static_cast<int>(inst.op));
    }

    pc_ = next_pc;
    ++executed_;
    return true;
}

void
Machine::doSysCall(TraceRecord &rec)
{
    rec.isSysCall = true;
    rec.addSrc(Operand::intReg(isa::regV0));
    auto service =
        static_cast<SysCallService>(static_cast<int32_t>(intRegs_[isa::regV0]));
    switch (service) {
      case SysCallService::PrintInt:
        rec.addSrc(Operand::intReg(isa::regA0));
        intOutput_.push_back(static_cast<int32_t>(intRegs_[isa::regA0]));
        break;
      case SysCallService::PrintDouble:
        rec.addSrc(Operand::fpReg(12));
        fpOutput_.push_back(fpRegs_[12]);
        break;
      case SysCallService::ReadInt: {
        int32_t v = intInputPos_ < intInput_.size()
                        ? intInput_[intInputPos_++]
                        : 0;
        intRegs_[isa::regV0] = static_cast<uint32_t>(v);
        rec.dest = Operand::intReg(isa::regV0);
        rec.createsValue = true;
        break;
      }
      case SysCallService::ReadDouble: {
        double v = fpInputPos_ < fpInput_.size() ? fpInput_[fpInputPos_++]
                                                 : 0.0;
        fpRegs_[0] = v;
        rec.dest = Operand::fpReg(0);
        rec.createsValue = true;
        break;
      }
      case SysCallService::Exit:
        rec.addSrc(Operand::intReg(isa::regA0));
        exitCode_ = static_cast<int32_t>(intRegs_[isa::regA0]);
        exited_ = true;
        break;
      case SysCallService::Sbrk: {
        rec.addSrc(Operand::intReg(isa::regA0));
        uint64_t old = brk_;
        uint64_t bytes =
            (static_cast<uint32_t>(intRegs_[isa::regA0]) + 7ull) & ~7ull;
        brk_ += bytes;
        if (brk_ >= Memory::stackFloor)
            PARA_FATAL("heap overflow: brk past stack floor");
        intRegs_[isa::regV0] = static_cast<uint32_t>(old);
        rec.dest = Operand::intReg(isa::regV0);
        rec.createsValue = true;
        break;
      }
      default:
        PARA_FATAL("unknown syscall service %d",
                   static_cast<int32_t>(intRegs_[isa::regV0]));
    }
}

uint64_t
Machine::run(uint64_t max_instructions)
{
    TraceRecord rec;
    uint64_t n = 0;
    while ((max_instructions == 0 || n < max_instructions) && step(rec))
        ++n;
    return n;
}

MachineTraceSource::MachineTraceSource(const casm::Program &program,
                                       std::vector<int32_t> int_input,
                                       std::vector<double> fp_input,
                                       std::string name)
    : program_(program),
      intInput_(std::move(int_input)),
      fpInput_(std::move(fp_input)),
      name_(std::move(name)),
      machine_(program)
{
    machine_.setIntInput(intInput_);
    machine_.setFpInput(fpInput_);
}

bool
MachineTraceSource::next(trace::TraceRecord &rec)
{
    return machine_.step(rec);
}

void
MachineTraceSource::reset()
{
    machine_.reset();
    machine_.setIntInput(intInput_);
    machine_.setFpInput(fpInput_);
}

} // namespace sim
} // namespace paragraph
