#include "sim/memory.hpp"

#include <algorithm>
#include <cstring>

namespace paragraph {
namespace sim {

uint8_t *
Memory::pageFor(uint64_t addr)
{
    uint64_t page = addr / pageSize;
    if (uint32_t *idx = pageIndex_.find(page))
        return pages_[*idx].get();
    auto fresh = std::make_unique<uint8_t[]>(pageSize);
    std::memset(fresh.get(), 0, pageSize);
    pages_.push_back(std::move(fresh));
    uint32_t idx = static_cast<uint32_t>(pages_.size() - 1);
    pageIndex_.insertOrAssign(page, idx);
    return pages_[idx].get();
}

void
Memory::readBytes(uint64_t addr, uint8_t *out, size_t n)
{
    while (n > 0) {
        uint64_t off = addr % pageSize;
        size_t chunk = static_cast<size_t>(
            std::min<uint64_t>(n, pageSize - off));
        std::memcpy(out, pageFor(addr) + off, chunk);
        addr += chunk;
        out += chunk;
        n -= chunk;
    }
}

void
Memory::writeBytes(uint64_t addr, const uint8_t *in, size_t n)
{
    while (n > 0) {
        uint64_t off = addr % pageSize;
        size_t chunk = static_cast<size_t>(
            std::min<uint64_t>(n, pageSize - off));
        std::memcpy(pageFor(addr) + off, in, chunk);
        addr += chunk;
        in += chunk;
        n -= chunk;
    }
}

void
Memory::loadImage(uint64_t base, const std::vector<uint8_t> &image)
{
    if (!image.empty())
        writeBytes(base, image.data(), image.size());
}

uint32_t
Memory::read32(uint64_t addr)
{
    uint32_t v;
    uint64_t off = addr % pageSize;
    if (off + 4 <= pageSize) {
        std::memcpy(&v, pageFor(addr) + off, 4);
    } else {
        readBytes(addr, reinterpret_cast<uint8_t *>(&v), 4);
    }
    return v;
}

void
Memory::write32(uint64_t addr, uint32_t value)
{
    uint64_t off = addr % pageSize;
    if (off + 4 <= pageSize) {
        std::memcpy(pageFor(addr) + off, &value, 4);
    } else {
        writeBytes(addr, reinterpret_cast<const uint8_t *>(&value), 4);
    }
}

uint64_t
Memory::read64(uint64_t addr)
{
    uint64_t v;
    uint64_t off = addr % pageSize;
    if (off + 8 <= pageSize) {
        std::memcpy(&v, pageFor(addr) + off, 8);
    } else {
        readBytes(addr, reinterpret_cast<uint8_t *>(&v), 8);
    }
    return v;
}

void
Memory::write64(uint64_t addr, uint64_t value)
{
    uint64_t off = addr % pageSize;
    if (off + 8 <= pageSize) {
        std::memcpy(pageFor(addr) + off, &value, 8);
    } else {
        writeBytes(addr, reinterpret_cast<const uint8_t *>(&value), 8);
    }
}

void
Memory::clear()
{
    pageIndex_.clear();
    pages_.clear();
}

} // namespace sim
} // namespace paragraph
