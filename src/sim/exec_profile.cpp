#include "sim/exec_profile.hpp"

#include <algorithm>
#include <numeric>

#include "isa/instruction.hpp"
#include "support/ascii_table.hpp"
#include "support/string_utils.hpp"

namespace paragraph {
namespace sim {

size_t
ExecutionProfile::touched() const
{
    return static_cast<size_t>(
        std::count_if(counts_.begin(), counts_.end(),
                      [](uint64_t c) { return c > 0; }));
}

std::vector<uint64_t>
ExecutionProfile::hottest(size_t n) const
{
    std::vector<uint64_t> idx(counts_.size());
    std::iota(idx.begin(), idx.end(), 0);
    if (n > idx.size())
        n = idx.size();
    std::partial_sort(idx.begin(), idx.begin() + static_cast<long>(n),
                      idx.end(), [this](uint64_t a, uint64_t b) {
                          if (counts_[a] != counts_[b])
                              return counts_[a] > counts_[b];
                          return a < b;
                      });
    idx.resize(n);
    while (!idx.empty() && counts_[idx.back()] == 0)
        idx.pop_back();
    return idx;
}

double
ExecutionProfile::coverage(size_t n) const
{
    if (total_ == 0)
        return 0.0;
    uint64_t covered = 0;
    for (uint64_t pc : hottest(n))
        covered += counts_[pc];
    return static_cast<double>(covered) / static_cast<double>(total_);
}

void
ExecutionProfile::printHot(std::ostream &os, const casm::Program &program,
                           size_t n) const
{
    AsciiTable table;
    table.addColumn("PC");
    table.addColumn("Count");
    table.addColumn("% Dyn");
    table.addColumn("Instruction", AsciiTable::Align::Left);
    for (uint64_t pc : hottest(n)) {
        table.beginRow();
        table.cell(pc);
        table.cell(counts_[pc]);
        table.cell(strFormat("%5.2f%%",
                             100.0 * static_cast<double>(counts_[pc]) /
                                 static_cast<double>(total_)));
        table.cell(pc < program.text.size()
                       ? isa::disassemble(program.text[pc])
                       : std::string("?"));
    }
    table.print(os);
    os << strFormat(
        "%s dynamic instructions over %zu touched static sites; top %zu "
        "cover %.1f%%\n",
        AsciiTable::withCommas(total_).c_str(), touched(), n,
        100.0 * coverage(n));
}

} // namespace sim
} // namespace paragraph
