#include "engine/scheduler.hpp"

#include <system_error>
#include <utility>

#include "support/failpoint.hpp"
#include "support/panic.hpp"

namespace paragraph {
namespace engine {

SweepScheduler::SweepScheduler(TraceRepository &repo)
    : SweepScheduler(repo, Options())
{
}

SweepScheduler::SweepScheduler(TraceRepository &repo, Options opt)
    : repo_(repo),
      opt_(opt),
      workers_(opt.jobs ? opt.jobs : std::thread::hardware_concurrency())
{
    if (workers_ == 0) // hardware_concurrency() may report 0
        workers_ = 1;
    if (opt_.groupSize == 0)
        opt_.groupSize = 1;
    execOpt_.maxRetries = opt_.maxRetries;
    execOpt_.cellDeadlineSeconds = opt_.cellDeadlineSeconds;
    pool_.reserve(workers_);
    for (unsigned t = 0; t < workers_; ++t) {
        // Worker-startup fault containment: a thread that cannot start
        // (resource exhaustion, or the injected site) shrinks the pool
        // instead of killing the scheduler. The first worker is exempt so
        // the pool can always make progress.
        if (t > 0 && PARA_FAILPOINT("scheduler.worker.start")) {
            PARA_WARN("scheduler: worker %u failed to start (injected); "
                      "continuing with %zu workers",
                      t, pool_.size());
            continue;
        }
        try {
            pool_.emplace_back([this] { workerLoop(); });
        } catch (const std::system_error &e) {
            if (pool_.empty())
                throw; // zero workers would deadlock every submit
            PARA_WARN("scheduler: worker %u failed to start (%s); "
                      "continuing with %zu workers",
                      t, e.what(), pool_.size());
            break;
        }
    }
    workers_ = static_cast<unsigned>(pool_.size());
}

SweepScheduler::~SweepScheduler() { stop(); }

std::shared_ptr<SweepScheduler::Batch>
SweepScheduler::submit(std::vector<SweepJob> jobs,
                       std::function<void(SweepCell &)> onCell)
{
    auto batch = std::make_shared<Batch>();
    batch->cells_.resize(jobs.size());
    batch->onCell_ = std::move(onCell);
    batch->remaining_ = jobs.size();
    for (size_t i = 0; i < jobs.size(); ++i)
        batch->cells_[i].job = std::move(jobs[i]);

    bool rejected;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        rejected = stopping_;
        if (!rejected) {
            for (size_t i = 0; i < batch->cells_.size(); ++i) {
                const std::string &input = batch->cells_[i].job.input;
                auto [it, fresh] = pendingByInput_.try_emplace(input);
                if (fresh)
                    inputOrder_.push_back(input);
                it->second.push_back(Item{batch, i});
            }
        }
    }
    if (rejected) {
        for (SweepCell &cell : batch->cells_) {
            cell.status = SweepCell::Status::Failed;
            cell.errorMessage = "scheduler stopped";
            cell.attempts = 0;
        }
        // Deliver outside any scheduler lock, same as the worker path.
        for (size_t i = 0; i < batch->cells_.size(); ++i)
            deliver(Item{batch, i});
    } else {
        cv_.notify_all();
    }
    return batch;
}

void
SweepScheduler::stop()
{
    std::vector<Item> orphans;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_ && pool_.empty())
            return;
        stopping_ = true;
        for (auto &bucket : pendingByInput_) {
            for (Item &item : bucket.second)
                orphans.push_back(std::move(item));
        }
        pendingByInput_.clear();
        inputOrder_.clear();
    }
    cv_.notify_all();
    for (const Item &item : orphans) {
        SweepCell &cell = item.batch->cells_[item.index];
        cell.status = SweepCell::Status::Failed;
        cell.errorMessage = "scheduler stopped";
        cell.attempts = 0;
        deliver(item);
    }
    for (std::thread &t : pool_)
        t.join();
    pool_.clear();
}

size_t
SweepScheduler::pendingCells() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t pending = 0;
    for (const auto &bucket : pendingByInput_)
        pending += bucket.second.size();
    return pending;
}

void
SweepScheduler::deliver(const Item &item) const
{
    Batch &batch = *item.batch;
    SweepCell &cell = batch.cells_[item.index];
    std::lock_guard<std::mutex> lock(batch.mutex_);
    if (batch.onCell_) {
        try {
            batch.onCell_(cell);
        } catch (const std::exception &e) {
            PARA_WARN("scheduler cell callback threw (%s)", e.what());
        } catch (...) {
            PARA_WARN("scheduler cell callback threw");
        }
    }
    if (--batch.remaining_ == 0)
        batch.cv_.notify_all();
}

void
SweepScheduler::workerLoop()
{
    for (;;) {
        std::vector<Item> group;
        std::string input;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] {
                return stopping_ || !inputOrder_.empty();
            });
            if (inputOrder_.empty())
                return; // stopping, queue drained

            // Peel one fused group off the front bucket: same input, at
            // most groupSize cells, cut early by the memory budget.
            input = inputOrder_.front();
            std::deque<Item> &bucket = pendingByInput_[input];
            size_t bytes = 0;
            while (!bucket.empty() && group.size() < opt_.groupSize) {
                const Item &item = bucket.front();
                size_t need = configFootprint(
                    item.batch->cells_[item.index].job.config);
                if (!group.empty() && bytes + need > opt_.groupMemoryBudget)
                    break;
                bytes += need;
                group.push_back(std::move(bucket.front()));
                bucket.pop_front();
            }
            if (bucket.empty()) {
                pendingByInput_.erase(input);
                inputOrder_.pop_front();
            } else {
                // Group cut early: the bucket still holds cells, and the
                // submit-time notification has already been consumed.
                // Wake a peer to take the remainder; the bucket stays at
                // the front so this trace drains before the queue moves
                // on.
                cv_.notify_one();
            }
        }

        // Hold the capture for the duration of the group so a bounded
        // repository cannot evict (and later re-capture) it mid-pass. A
        // capture failure is not handled here — the per-cell attempts
        // loop will surface it as each cell's error.
        TracePin pin;
        if (!repo_.streamingInput(input)) {
            try {
                pin = repo_.pin(input);
            } catch (const std::exception &) {
            }
        }

        if (group.size() == 1) {
            SweepCell &cell =
                group.front().batch->cells_[group.front().index];
            runCellSolo(repo_, cell, execOpt_);
            deliver(group.front());
        } else {
            std::vector<SweepCell *> cells;
            cells.reserve(group.size());
            for (const Item &item : group)
                cells.push_back(&item.batch->cells_[item.index]);
            runFusedCells(repo_, cells, execOpt_, [&](SweepCell &cell) {
                for (const Item &item : group) {
                    if (&item.batch->cells_[item.index] == &cell) {
                        deliver(item);
                        return;
                    }
                }
                PARA_WARN("scheduler: finished cell not found in group");
            });
        }
    }
}

} // namespace engine
} // namespace paragraph
