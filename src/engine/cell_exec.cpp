#include "engine/cell_exec.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/cancel_token.hpp"
#include "core/multi.hpp"
#include "core/shard.hpp"
#include "trace/shared_decode.hpp"

namespace paragraph {
namespace engine {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

/**
 * Wraps a streaming source, accumulating the wall time spent producing
 * records — the decode share of a solo streamed cell without a shared
 * decode pool (`.ptrz`: stateful delta decode, one private decoder per
 * pass).
 */
class TimedSource : public trace::TraceSource
{
  public:
    explicit TimedSource(std::unique_ptr<trace::TraceSource> inner)
        : inner_(std::move(inner))
    {
    }

    bool
    next(trace::TraceRecord &rec) override
    {
        auto t0 = std::chrono::steady_clock::now();
        bool ok = inner_->next(rec);
        seconds_ += secondsSince(t0);
        return ok;
    }

    size_t
    nextBatch(trace::TraceRecord *out, size_t max) override
    {
        auto t0 = std::chrono::steady_clock::now();
        size_t n = inner_->nextBatch(out, max);
        seconds_ += secondsSince(t0);
        return n;
    }

    void reset() override { inner_->reset(); }
    std::string name() const override { return inner_->name(); }
    double seconds() const { return seconds_; }

  private:
    std::unique_ptr<trace::TraceSource> inner_;
    double seconds_ = 0.0;
};

/**
 * Solo analysis fed block-by-block off the shared decode pool: zero
 * per-record virtual dispatch, blocks decoded once across every concurrent
 * consumer of the input. Block waits (decode or contention) accumulate
 * into @p decodeSeconds.
 */
core::AnalysisResult
analyzePooledSolo(std::shared_ptr<trace::SharedDecodePool> pool,
                  const core::AnalysisConfig &cfg, double *decodeSeconds)
{
    core::Paragraph analyzer(cfg);
    analyzer.begin();
    trace::SharedDecodeCursor cursor(std::move(pool));
    while (!analyzer.done()) {
        const trace::TraceRecord *records = nullptr;
        auto t0 = std::chrono::steady_clock::now();
        size_t n = cursor.next(&records);
        *decodeSeconds += secondsSince(t0);
        if (n == 0)
            break;
        analyzer.processAll(records, n);
    }
    return analyzer.finish();
}

/**
 * Firewall-point sharded analysis of a pooled streamed input: plan cuts
 * after stalling syscalls, run the segments on up to @p shards threads
 * (each engine thread-private, fed block slices from the shared pool),
 * and stitch the exact solo-equivalent result. Returns false — leaving
 * @p cell untouched — when the trace offers no interior cut; the caller
 * falls back to the solo pass. Throws what a segment run throws
 * (CancelledError included), for the caller's attempts loop.
 */
bool
analyzeSharded(const std::shared_ptr<trace::SharedDecodePool> &pool,
               const core::AnalysisConfig &cfg, unsigned shards,
               SweepCell &cell)
{
    uint64_t limit = pool->recordCount();
    if (cfg.maxInstructions && cfg.maxInstructions < limit)
        limit = cfg.maxInstructions;
    if (limit < 2)
        return false;
    const size_t blockRecords = pool->blockRecords();

    // Plan pass: scan decoded blocks for candidate cuts (the record after
    // each syscall). The scan also warms the pool's block cache for the
    // segment runs right behind it.
    double decode = 0.0;
    std::vector<size_t> candidates;
    {
        uint64_t pos = 0;
        size_t blockIdx = 0;
        while (pos < limit) {
            auto t0 = std::chrono::steady_clock::now();
            std::shared_ptr<const trace::DecodedBlock> blk =
                pool->block(blockIdx++);
            decode += secondsSince(t0);
            const size_t n = blk->records.size();
            if (n == 0)
                break;
            for (size_t i = 0; i < n && pos + i + 1 < limit; ++i) {
                if (blk->records[i].isSysCall)
                    candidates.push_back(static_cast<size_t>(pos + i + 1));
            }
            pos += n;
        }
    }
    std::vector<size_t> cuts = core::selectShardCuts(
        candidates, static_cast<size_t>(limit), shards);
    if (cuts.empty()) {
        cell.decodeSeconds += decode; // the scan still decoded the trace
        return false;
    }

    std::vector<uint64_t> bounds;
    bounds.reserve(cuts.size() + 2);
    bounds.push_back(0);
    for (size_t c : cuts)
        bounds.push_back(c);
    bounds.push_back(limit);
    const size_t nSegments = bounds.size() - 1;

    std::vector<core::SegmentRun> segments(nSegments);
    std::vector<double> segDecode(nSegments, 0.0);
    std::atomic<size_t> nextSeg{0};
    std::mutex errMutex;
    std::exception_ptr firstError;

    auto runOne = [&](size_t s) {
        core::AnalysisConfig seg_cfg = cfg;
        seg_cfg.maxInstructions = 0; // the bounds slice exact spans
        core::Paragraph engine(seg_cfg);
        engine.beginSegment(&segments[s].log);
        uint64_t pos = bounds[s];
        const uint64_t hi = bounds[s + 1];
        while (pos < hi) {
            size_t b = static_cast<size_t>(pos / blockRecords);
            auto t0 = std::chrono::steady_clock::now();
            std::shared_ptr<const trace::DecodedBlock> blk = pool->block(b);
            segDecode[s] += secondsSince(t0);
            size_t off = static_cast<size_t>(
                pos - static_cast<uint64_t>(b) * blockRecords);
            size_t len = static_cast<size_t>(std::min<uint64_t>(
                hi - pos, blk->records.size() - off));
            engine.processAll(blk->records.data() + off, len);
            pos += len;
        }
        segments[s].result = engine.finish();
    };

    auto segmentWorker = [&]() {
        for (;;) {
            size_t s = nextSeg.fetch_add(1, std::memory_order_relaxed);
            if (s >= nSegments)
                return;
            try {
                runOne(s);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errMutex);
                if (!firstError)
                    firstError = std::current_exception();
            }
        }
    };

    unsigned nThreads =
        static_cast<unsigned>(std::min<size_t>(shards, nSegments));
    if (nThreads <= 1) {
        segmentWorker();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(nThreads);
        for (unsigned t = 0; t < nThreads; ++t)
            threads.emplace_back(segmentWorker);
        for (std::thread &t : threads)
            t.join();
    }
    for (double d : segDecode)
        decode += d;
    cell.decodeSeconds += decode;
    if (firstError)
        std::rethrow_exception(firstError);

    cell.result = core::stitchSegments(cfg, segments);
    cell.shardSegments = static_cast<unsigned>(nSegments);
    return true;
}

} // namespace

size_t
configFootprint(const core::AnalysisConfig &cfg)
{
    size_t bytes = size_t(8) << 20;
    bytes += static_cast<size_t>(cfg.windowSize) * 8;
    bytes += cfg.profileBins * 40;
    return bytes;
}

void
runCellSolo(TraceRepository &repo, SweepCell &cell,
            const CellExecOptions &opt)
{
    unsigned maxAttempts = 1 + opt.maxRetries;
    for (unsigned attempt = 1; attempt <= maxAttempts; ++attempt) {
        cell.attempts = attempt;
        cell.decodeSeconds = 0.0;
        cell.shardSegments = 0;
        try {
            core::AnalysisConfig cfg = cell.job.config;
            core::CancelToken deadline;
            if (opt.cellDeadlineSeconds > 0.0) {
                deadline.setDeadline(opt.cellDeadlineSeconds);
                deadline.chain(cfg.cancel);
                cfg.cancel = &deadline;
            }
            auto cellStart = std::chrono::steady_clock::now();
            if (repo.streamingInput(cell.job.input)) {
                std::shared_ptr<trace::SharedDecodePool> pool =
                    repo.decodePool(cell.job.input);
                bool done = false;
                if (pool && opt.shards > 1 && core::shardableConfig(cfg))
                    done = analyzeSharded(pool, cfg, opt.shards, cell);
                if (!done && pool) {
                    cell.result = analyzePooledSolo(std::move(pool), cfg,
                                                    &cell.decodeSeconds);
                } else if (!done) {
                    TimedSource src(repo.makeSource(cell.job.input));
                    core::Paragraph analyzer(cfg);
                    cell.result = analyzer.analyze(src);
                    cell.decodeSeconds = src.seconds();
                }
            } else {
                // Analyze the shared capture directly (bulk path): no
                // cursor object, no virtual dispatch per record.
                std::shared_ptr<const trace::TraceBuffer> buffer =
                    repo.get(cell.job.input);
                core::Paragraph analyzer(cfg);
                cell.result = analyzer.analyze(*buffer);
            }
            cell.wallSeconds = secondsSince(cellStart);
            cell.minstrPerSec =
                cell.wallSeconds > 0.0
                    ? static_cast<double>(cell.result.instructions) / 1e6 /
                          cell.wallSeconds
                    : 0.0;
            cell.status = SweepCell::Status::Ok;
            cell.errorMessage.clear();
            break;
        } catch (const core::CancelledError &e) {
            // Deadline / cancellation: final, never retried —
            // a second attempt would just burn the deadline again.
            cell.status = SweepCell::Status::Failed;
            cell.errorMessage = e.what();
            cell.result = core::AnalysisResult();
            break;
        } catch (const std::exception &e) {
            cell.status = SweepCell::Status::Failed;
            cell.errorMessage = e.what();
            cell.result = core::AnalysisResult();
        }
    }
}

void
runFusedCells(TraceRepository &repo,
              const std::vector<SweepCell *> &cells,
              const CellExecOptions &opt,
              const std::function<void(SweepCell &)> &finish)
{
    const std::string &input = cells.front()->job.input;

    std::deque<core::CancelToken> deadlines;
    std::vector<core::AnalysisConfig> cfgs;
    cfgs.reserve(cells.size());
    for (SweepCell *cell : cells) {
        core::AnalysisConfig cfg = cell->job.config;
        if (opt.cellDeadlineSeconds > 0.0) {
            deadlines.emplace_back();
            deadlines.back().setDeadline(opt.cellDeadlineSeconds);
            deadlines.back().chain(cfg.cancel);
            cfg.cancel = &deadlines.back();
        }
        cfgs.push_back(std::move(cfg));
    }

    std::vector<core::MultiOutcome> outcomes;
    bool groupFailed = false;
    try {
        if (repo.streamingInput(input)) {
            // Pooled `.ptrc`: the fused pass pulls whole decoded blocks
            // off the shared pool — blocks decoded once across every
            // group and solo cell on this input.
            std::shared_ptr<trace::SharedDecodePool> pool =
                repo.decodePool(input);
            if (pool) {
                trace::SharedDecodeCursor cursor(std::move(pool));
                outcomes = core::analyzeManyGuarded(cursor, cfgs);
            } else {
                std::unique_ptr<trace::TraceSource> src =
                    repo.makeSource(input);
                outcomes = core::analyzeManyGuarded(*src, cfgs);
            }
        } else {
            std::shared_ptr<const trace::TraceBuffer> buffer =
                repo.get(input);
            outcomes = core::analyzeManyGuarded(*buffer, cfgs);
        }
    } catch (const std::exception &) {
        groupFailed = true;
    }

    for (size_t k = 0; k < cells.size(); ++k) {
        SweepCell &cell = *cells[k];
        if (!groupFailed && !outcomes[k].error) {
            cell.result = std::move(outcomes[k].result);
            cell.status = SweepCell::Status::Ok;
            cell.errorMessage.clear();
            cell.attempts = 1;
            cell.wallSeconds = outcomes[k].engineSeconds;
            cell.decodeSeconds = outcomes[k].decodeSeconds;
            cell.shardSegments = 0;
            cell.minstrPerSec =
                cell.wallSeconds > 0.0
                    ? static_cast<double>(cell.result.instructions) / 1e6 /
                          cell.wallSeconds
                    : 0.0;
            finish(cell);
            continue;
        }
        if (!groupFailed) {
            try {
                std::rethrow_exception(outcomes[k].error);
            } catch (const core::CancelledError &e) {
                // Cancellation is final in either mode: a solo re-run
                // would just burn the deadline a second time.
                cell.status = SweepCell::Status::Failed;
                cell.errorMessage = e.what();
                cell.result = core::AnalysisResult();
                cell.attempts = 1;
                finish(cell);
                continue;
            } catch (const std::exception &) {
                // Ordinary failure: fall through to the solo re-run (the
                // demotion itself consumes no attempt).
            }
        }
        runCellSolo(repo, cell, opt);
        finish(cell);
    }
}

} // namespace engine
} // namespace paragraph
