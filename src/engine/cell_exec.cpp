#include "engine/cell_exec.hpp"

#include <chrono>
#include <deque>
#include <memory>

#include "core/cancel_token.hpp"
#include "core/multi.hpp"

namespace paragraph {
namespace engine {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

} // namespace

size_t
configFootprint(const core::AnalysisConfig &cfg)
{
    size_t bytes = size_t(8) << 20;
    bytes += static_cast<size_t>(cfg.windowSize) * 8;
    bytes += cfg.profileBins * 40;
    return bytes;
}

void
runCellSolo(TraceRepository &repo, SweepCell &cell,
            const CellExecOptions &opt)
{
    unsigned maxAttempts = 1 + opt.maxRetries;
    for (unsigned attempt = 1; attempt <= maxAttempts; ++attempt) {
        cell.attempts = attempt;
        try {
            core::AnalysisConfig cfg = cell.job.config;
            core::CancelToken deadline;
            if (opt.cellDeadlineSeconds > 0.0) {
                deadline.setDeadline(opt.cellDeadlineSeconds);
                deadline.chain(cfg.cancel);
                cfg.cancel = &deadline;
            }
            core::Paragraph analyzer(cfg);
            auto cellStart = std::chrono::steady_clock::now();
            if (repo.streamingInput(cell.job.input)) {
                std::unique_ptr<trace::TraceSource> src =
                    repo.makeSource(cell.job.input);
                cell.result = analyzer.analyze(*src);
            } else {
                // Analyze the shared capture directly (bulk path): no
                // cursor object, no virtual dispatch per record.
                std::shared_ptr<const trace::TraceBuffer> buffer =
                    repo.get(cell.job.input);
                cell.result = analyzer.analyze(*buffer);
            }
            cell.wallSeconds = secondsSince(cellStart);
            cell.minstrPerSec =
                cell.wallSeconds > 0.0
                    ? static_cast<double>(cell.result.instructions) / 1e6 /
                          cell.wallSeconds
                    : 0.0;
            cell.status = SweepCell::Status::Ok;
            cell.errorMessage.clear();
            break;
        } catch (const core::CancelledError &e) {
            // Deadline / cancellation: final, never retried —
            // a second attempt would just burn the deadline again.
            cell.status = SweepCell::Status::Failed;
            cell.errorMessage = e.what();
            cell.result = core::AnalysisResult();
            break;
        } catch (const std::exception &e) {
            cell.status = SweepCell::Status::Failed;
            cell.errorMessage = e.what();
            cell.result = core::AnalysisResult();
        }
    }
}

void
runFusedCells(TraceRepository &repo,
              const std::vector<SweepCell *> &cells,
              const CellExecOptions &opt,
              const std::function<void(SweepCell &)> &finish)
{
    const std::string &input = cells.front()->job.input;

    std::deque<core::CancelToken> deadlines;
    std::vector<core::AnalysisConfig> cfgs;
    cfgs.reserve(cells.size());
    for (SweepCell *cell : cells) {
        core::AnalysisConfig cfg = cell->job.config;
        if (opt.cellDeadlineSeconds > 0.0) {
            deadlines.emplace_back();
            deadlines.back().setDeadline(opt.cellDeadlineSeconds);
            deadlines.back().chain(cfg.cancel);
            cfg.cancel = &deadlines.back();
        }
        cfgs.push_back(std::move(cfg));
    }

    std::vector<core::MultiOutcome> outcomes;
    bool groupFailed = false;
    try {
        if (repo.streamingInput(input)) {
            std::unique_ptr<trace::TraceSource> src = repo.makeSource(input);
            outcomes = core::analyzeManyGuarded(*src, cfgs);
        } else {
            std::shared_ptr<const trace::TraceBuffer> buffer =
                repo.get(input);
            outcomes = core::analyzeManyGuarded(*buffer, cfgs);
        }
    } catch (const std::exception &) {
        groupFailed = true;
    }

    for (size_t k = 0; k < cells.size(); ++k) {
        SweepCell &cell = *cells[k];
        if (!groupFailed && !outcomes[k].error) {
            cell.result = std::move(outcomes[k].result);
            cell.status = SweepCell::Status::Ok;
            cell.errorMessage.clear();
            cell.attempts = 1;
            cell.wallSeconds = outcomes[k].engineSeconds;
            cell.minstrPerSec =
                cell.wallSeconds > 0.0
                    ? static_cast<double>(cell.result.instructions) / 1e6 /
                          cell.wallSeconds
                    : 0.0;
            finish(cell);
            continue;
        }
        if (!groupFailed) {
            try {
                std::rethrow_exception(outcomes[k].error);
            } catch (const core::CancelledError &e) {
                // Cancellation is final in either mode: a solo re-run
                // would just burn the deadline a second time.
                cell.status = SweepCell::Status::Failed;
                cell.errorMessage = e.what();
                cell.result = core::AnalysisResult();
                cell.attempts = 1;
                finish(cell);
                continue;
            } catch (const std::exception &) {
                // Ordinary failure: fall through to the solo re-run (the
                // demotion itself consumes no attempt).
            }
        }
        runCellSolo(repo, cell, opt);
        finish(cell);
    }
}

} // namespace engine
} // namespace paragraph
