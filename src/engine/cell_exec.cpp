#include "engine/cell_exec.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/cancel_token.hpp"
#include "core/multi.hpp"
#include "core/shard.hpp"
#include "trace/shared_decode.hpp"

namespace paragraph {
namespace engine {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

/**
 * Wraps a streaming source, accumulating the wall time spent producing
 * records — the decode share of a solo streamed cell without a shared
 * decode pool (`.ptrz`: stateful delta decode, one private decoder per
 * pass).
 */
class TimedSource : public trace::TraceSource
{
  public:
    explicit TimedSource(std::unique_ptr<trace::TraceSource> inner)
        : inner_(std::move(inner))
    {
    }

    bool
    next(trace::TraceRecord &rec) override
    {
        auto t0 = std::chrono::steady_clock::now();
        bool ok = inner_->next(rec);
        seconds_ += secondsSince(t0);
        return ok;
    }

    size_t
    nextBatch(trace::TraceRecord *out, size_t max) override
    {
        auto t0 = std::chrono::steady_clock::now();
        size_t n = inner_->nextBatch(out, max);
        seconds_ += secondsSince(t0);
        return n;
    }

    void reset() override { inner_->reset(); }
    std::string name() const override { return inner_->name(); }
    double seconds() const { return seconds_; }

  private:
    std::unique_ptr<trace::TraceSource> inner_;
    double seconds_ = 0.0;
};

/**
 * Solo analysis fed block-by-block off the shared decode pool: zero
 * per-record virtual dispatch, blocks decoded once across every concurrent
 * consumer of the input. Block waits (decode or contention) accumulate
 * into @p decodeSeconds.
 */
core::AnalysisResult
analyzePooledSolo(std::shared_ptr<trace::SharedDecodePool> pool,
                  const core::AnalysisConfig &cfg, double *decodeSeconds)
{
    core::Paragraph analyzer(cfg);
    analyzer.begin();
    trace::SharedDecodeCursor cursor(std::move(pool));
    while (!analyzer.done()) {
        const trace::TraceRecord *records = nullptr;
        auto t0 = std::chrono::steady_clock::now();
        size_t n = cursor.next(&records);
        *decodeSeconds += secondsSince(t0);
        if (n == 0)
            break;
        analyzer.processAll(records, n);
    }
    return analyzer.finish();
}

/** Run @p nSegments segment jobs on up to @p shards threads, capturing the
 *  first exception (rethrown by the caller after joins). */
template <typename RunOne>
std::exception_ptr
runSegmentsParallel(size_t nSegments, unsigned shards, const RunOne &runOne)
{
    std::atomic<size_t> nextSeg{0};
    std::mutex errMutex;
    std::exception_ptr firstError;
    auto segmentWorker = [&]() {
        for (;;) {
            size_t s = nextSeg.fetch_add(1, std::memory_order_relaxed);
            if (s >= nSegments)
                return;
            try {
                runOne(s);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errMutex);
                if (!firstError)
                    firstError = std::current_exception();
            }
        }
    };
    unsigned nThreads =
        static_cast<unsigned>(std::min<size_t>(shards, nSegments));
    if (nThreads <= 1) {
        segmentWorker();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(nThreads);
        for (unsigned t = 0; t < nThreads; ++t)
            threads.emplace_back(segmentWorker);
        for (std::thread &t : threads)
            t.join();
    }
    return firstError;
}

/**
 * Split-and-patch sharded analysis of a pooled streamed input: plan cuts
 * (after stalling syscalls and mispredicted branches; plain tiles when the
 * trace offers neither), run the segments on up to @p shards threads (each
 * engine thread-private, fed block slices from the shared pool), and patch
 * the exact solo-equivalent result — splicing boundaries whose validity
 * conditions hold and replaying the rest sequentially (core/shard.hpp).
 * Returns false — leaving @p cell untouched — when the trace is too small
 * to cut; the caller falls back to the solo pass. Throws what a segment
 * run throws (CancelledError included), for the caller's attempts loop.
 */
bool
analyzeSharded(const std::shared_ptr<trace::SharedDecodePool> &pool,
               const core::AnalysisConfig &cfg, unsigned shards,
               SweepCell &cell)
{
    uint64_t limit = pool->recordCount();
    if (cfg.maxInstructions && cfg.maxInstructions < limit)
        limit = cfg.maxInstructions;
    if (limit < 2 || shards < 2)
        return false;
    const size_t blockRecords = pool->blockRecords();
    const bool modeled =
        cfg.branchPredictor != core::PredictorKind::Perfect;

    // Plan pass: scan decoded blocks for candidate cuts — the record after
    // each stalling syscall and after each mispredicted branch, the latter
    // found by the sequential predictor pre-pass that also precomputes the
    // cut-invariant mispredict bitvector for the segment runs. The scan
    // warms the pool's block cache for those runs right behind it.
    double decode = 0.0;
    std::vector<size_t> candidates;
    std::vector<uint64_t> blockBranchPrefix;
    core::PredictorPrepass pre(cfg);
    {
        uint64_t pos = 0;
        size_t blockIdx = 0;
        while (pos < limit) {
            auto t0 = std::chrono::steady_clock::now();
            std::shared_ptr<const trace::DecodedBlock> blk =
                pool->block(blockIdx++);
            decode += secondsSince(t0);
            const size_t n = blk->records.size();
            if (n == 0)
                break;
            const size_t use =
                static_cast<size_t>(std::min<uint64_t>(n, limit - pos));
            if (modeled) {
                blockBranchPrefix.push_back(pre.branches());
                pre.feed(blk->records.data(), use);
            }
            if (cfg.sysCallsStall) {
                for (size_t i = 0; i < use && pos + i + 1 < limit; ++i) {
                    if (blk->records[i].isSysCall)
                        candidates.push_back(
                            static_cast<size_t>(pos + i + 1));
                }
            }
            pos += use;
        }
    }
    if (modeled) {
        for (size_t c : pre.mispredictCuts) {
            if (c > 0 && c < limit)
                candidates.push_back(c);
        }
        std::sort(candidates.begin(), candidates.end());
        candidates.erase(
            std::unique(candidates.begin(), candidates.end()),
            candidates.end());
    }
    const bool naturalCuts = !candidates.empty();
    std::vector<size_t> cuts = core::selectShardCuts(
        candidates, static_cast<size_t>(limit), shards);
    if (cuts.empty()) {
        // No natural boundary anywhere: plain equal tiles. The patch
        // validates every splice and replays on failure, so the cut
        // choice only affects speed, never correctness.
        for (unsigned k = 1; k < shards; ++k) {
            size_t p = static_cast<size_t>(limit * k / shards);
            if (p > 0 && p < limit)
                cuts.push_back(p);
        }
        cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    }
    if (cuts.empty()) {
        cell.decodeSeconds += decode; // the scan still decoded the trace
        return false;
    }

    std::vector<uint64_t> bounds;
    bounds.reserve(cuts.size() + 2);
    bounds.push_back(0);
    for (size_t c : cuts)
        bounds.push_back(c);
    bounds.push_back(limit);
    const size_t nSegments = bounds.size() - 1;

    // Per-segment branch ordinals (modeled predictors): conditional
    // branches before the segment's first record, from the block prefix
    // counts plus one in-block scan per cut (those blocks are cached).
    std::vector<uint64_t> branchBase(nSegments, 0);
    if (modeled) {
        for (size_t s = 1; s < nSegments; ++s) {
            size_t bi = static_cast<size_t>(bounds[s] / blockRecords);
            auto t0 = std::chrono::steady_clock::now();
            std::shared_ptr<const trace::DecodedBlock> blk =
                pool->block(bi);
            decode += secondsSince(t0);
            uint64_t base = blockBranchPrefix[bi];
            size_t off = static_cast<size_t>(
                bounds[s] - static_cast<uint64_t>(bi) * blockRecords);
            for (size_t i = 0; i < off; ++i) {
                if (blk->records[i].isCondBranch)
                    ++base;
            }
            branchBase[s] = base;
        }
    }

    std::vector<core::SegmentRun> segments(nSegments);
    std::vector<double> segDecode(nSegments, 0.0);

    auto feedSpan = [&](core::Paragraph &engine, size_t s,
                        double *decodeOut) {
        uint64_t pos = bounds[s];
        const uint64_t hi = bounds[s + 1];
        while (pos < hi) {
            size_t b = static_cast<size_t>(pos / blockRecords);
            auto t0 = std::chrono::steady_clock::now();
            std::shared_ptr<const trace::DecodedBlock> blk = pool->block(b);
            *decodeOut += secondsSince(t0);
            size_t off = static_cast<size_t>(
                pos - static_cast<uint64_t>(b) * blockRecords);
            size_t len = static_cast<size_t>(std::min<uint64_t>(
                hi - pos, blk->records.size() - off));
            engine.processAll(blk->records.data() + off, len);
            pos += len;
        }
    };

    auto runOne = [&](size_t s) {
        core::AnalysisConfig seg_cfg = cfg;
        seg_cfg.maxInstructions = 0; // the bounds slice exact spans
        core::Paragraph engine(seg_cfg);
        engine.beginSegment(&segments[s].log);
        segments[s].log.reserve(
            static_cast<size_t>(bounds[s + 1] - bounds[s]));
        if (modeled)
            engine.feedMispredicts(pre.bits.words.data(), branchBase[s]);
        feedSpan(engine, s, &segDecode[s]);
        segments[s].result = engine.finish();
    };

    std::exception_ptr firstError =
        runSegmentsParallel(nSegments, shards, runOne);
    for (double d : segDecode)
        decode += d;
    cell.decodeSeconds += decode;
    if (firstError)
        std::rethrow_exception(firstError);

    core::PatchOutcome outcome;
    if (core::shardableConfig(cfg) && naturalCuts) {
        // Firewall fast path: every stall cut is a total firewall, so all
        // splices validate by construction — skip the per-boundary checks.
        cell.result = core::stitchSegments(cfg, segments);
        outcome.spliced = static_cast<unsigned>(nSegments);
    } else {
        double replayDecode = 0.0;
        auto replay = [&](core::Paragraph &engine, size_t s) {
            feedSpan(engine, s, &replayDecode);
        };
        cell.result = core::patchSegments(
            cfg, segments, replay, modeled ? &pre.bits : nullptr,
            modeled ? &branchBase : nullptr, &outcome);
        cell.decodeSeconds += replayDecode;
    }
    cell.shardSegments = static_cast<unsigned>(nSegments);
    cell.shardSpliced = outcome.spliced;
    cell.shardReplayed = outcome.replayed;
    return true;
}

/**
 * Split-and-patch sharded analysis of a shared capture (contiguous
 * records): the same plan → parallel segments → validate-or-replay patch
 * as the streamed path, minus the block bookkeeping. Returns false when
 * the capture is too small to cut.
 */
bool
analyzeShardedCapture(const trace::TraceBuffer &buffer,
                      const core::AnalysisConfig &cfg, unsigned shards,
                      SweepCell &cell)
{
    uint64_t limit = buffer.size();
    if (cfg.maxInstructions && cfg.maxInstructions < limit)
        limit = cfg.maxInstructions;
    if (limit < 2 || shards < 2)
        return false;
    const trace::TraceRecord *records = buffer.records().data();
    const size_t n = static_cast<size_t>(limit);
    const bool modeled =
        cfg.branchPredictor != core::PredictorKind::Perfect;

    core::PatchPlan plan = core::planPatchPlan(cfg, records, n, shards);
    if (plan.cuts.empty())
        return false;

    std::vector<size_t> bounds;
    bounds.reserve(plan.cuts.size() + 2);
    bounds.push_back(0);
    for (size_t c : plan.cuts)
        bounds.push_back(c);
    bounds.push_back(n);
    const size_t nSegments = bounds.size() - 1;

    std::vector<core::SegmentRun> segments(nSegments);
    auto runOne = [&](size_t s) {
        core::runSegment(cfg, records + bounds[s],
                         bounds[s + 1] - bounds[s], segments[s],
                         modeled ? &plan.bits : nullptr,
                         modeled ? plan.branchBase[s] : 0);
    };
    std::exception_ptr firstError =
        runSegmentsParallel(nSegments, shards, runOne);
    if (firstError)
        std::rethrow_exception(firstError);

    core::PatchOutcome outcome;
    auto replay = [&](core::Paragraph &engine, size_t s) {
        engine.processAll(records + bounds[s], bounds[s + 1] - bounds[s]);
    };
    cell.result = core::patchSegments(
        cfg, segments, replay, modeled ? &plan.bits : nullptr,
        modeled ? &plan.branchBase : nullptr, &outcome);
    cell.shardSegments = static_cast<unsigned>(nSegments);
    cell.shardSpliced = outcome.spliced;
    cell.shardReplayed = outcome.replayed;
    return true;
}

} // namespace

size_t
configFootprint(const core::AnalysisConfig &cfg)
{
    size_t bytes = size_t(8) << 20;
    bytes += static_cast<size_t>(cfg.windowSize) * 8;
    bytes += cfg.profileBins * 40;
    return bytes;
}

void
runCellSolo(TraceRepository &repo, SweepCell &cell,
            const CellExecOptions &opt)
{
    unsigned maxAttempts = 1 + opt.maxRetries;
    for (unsigned attempt = 1; attempt <= maxAttempts; ++attempt) {
        cell.attempts = attempt;
        cell.decodeSeconds = 0.0;
        cell.shardSegments = 0;
        cell.shardSpliced = 0;
        cell.shardReplayed = 0;
        try {
            core::AnalysisConfig cfg = cell.job.config;
            core::CancelToken deadline;
            if (opt.cellDeadlineSeconds > 0.0) {
                deadline.setDeadline(opt.cellDeadlineSeconds);
                deadline.chain(cfg.cancel);
                cfg.cancel = &deadline;
            }
            auto cellStart = std::chrono::steady_clock::now();
            if (repo.streamingInput(cell.job.input)) {
                std::shared_ptr<trace::SharedDecodePool> pool =
                    repo.decodePool(cell.job.input);
                bool done = false;
                if (pool && opt.shards > 1)
                    done = analyzeSharded(pool, cfg, opt.shards, cell);
                if (!done && pool) {
                    cell.result = analyzePooledSolo(std::move(pool), cfg,
                                                    &cell.decodeSeconds);
                } else if (!done) {
                    TimedSource src(repo.makeSource(cell.job.input));
                    core::Paragraph analyzer(cfg);
                    cell.result = analyzer.analyze(src);
                    cell.decodeSeconds = src.seconds();
                }
            } else {
                // Analyze the shared capture directly (bulk path): no
                // cursor object, no virtual dispatch per record.
                std::shared_ptr<const trace::TraceBuffer> buffer =
                    repo.get(cell.job.input);
                bool done = false;
                if (opt.shards > 1) {
                    done = analyzeShardedCapture(*buffer, cfg, opt.shards,
                                                 cell);
                }
                if (!done) {
                    core::Paragraph analyzer(cfg);
                    cell.result = analyzer.analyze(*buffer);
                }
            }
            cell.wallSeconds = secondsSince(cellStart);
            cell.minstrPerSec =
                cell.wallSeconds > 0.0
                    ? static_cast<double>(cell.result.instructions) / 1e6 /
                          cell.wallSeconds
                    : 0.0;
            cell.status = SweepCell::Status::Ok;
            cell.errorMessage.clear();
            break;
        } catch (const core::CancelledError &e) {
            // Deadline / cancellation: final, never retried —
            // a second attempt would just burn the deadline again.
            cell.status = SweepCell::Status::Failed;
            cell.errorMessage = e.what();
            cell.result = core::AnalysisResult();
            break;
        } catch (const std::exception &e) {
            cell.status = SweepCell::Status::Failed;
            cell.errorMessage = e.what();
            cell.result = core::AnalysisResult();
        }
    }
}

void
runFusedCells(TraceRepository &repo,
              const std::vector<SweepCell *> &cells,
              const CellExecOptions &opt,
              const std::function<void(SweepCell &)> &finish)
{
    const std::string &input = cells.front()->job.input;

    std::deque<core::CancelToken> deadlines;
    std::vector<core::AnalysisConfig> cfgs;
    cfgs.reserve(cells.size());
    for (SweepCell *cell : cells) {
        core::AnalysisConfig cfg = cell->job.config;
        if (opt.cellDeadlineSeconds > 0.0) {
            deadlines.emplace_back();
            deadlines.back().setDeadline(opt.cellDeadlineSeconds);
            deadlines.back().chain(cfg.cancel);
            cfg.cancel = &deadlines.back();
        }
        cfgs.push_back(std::move(cfg));
    }

    std::vector<core::MultiOutcome> outcomes;
    bool groupFailed = false;
    try {
        if (repo.streamingInput(input)) {
            // Pooled `.ptrc`: the fused pass pulls whole decoded blocks
            // off the shared pool — blocks decoded once across every
            // group and solo cell on this input.
            std::shared_ptr<trace::SharedDecodePool> pool =
                repo.decodePool(input);
            if (pool) {
                trace::SharedDecodeCursor cursor(std::move(pool));
                outcomes = core::analyzeManyGuarded(cursor, cfgs);
            } else {
                std::unique_ptr<trace::TraceSource> src =
                    repo.makeSource(input);
                outcomes = core::analyzeManyGuarded(*src, cfgs);
            }
        } else {
            std::shared_ptr<const trace::TraceBuffer> buffer =
                repo.get(input);
            outcomes = core::analyzeManyGuarded(*buffer, cfgs);
        }
    } catch (const std::exception &) {
        groupFailed = true;
    }

    for (size_t k = 0; k < cells.size(); ++k) {
        SweepCell &cell = *cells[k];
        if (!groupFailed && !outcomes[k].error) {
            cell.result = std::move(outcomes[k].result);
            cell.status = SweepCell::Status::Ok;
            cell.errorMessage.clear();
            cell.attempts = 1;
            cell.wallSeconds = outcomes[k].engineSeconds;
            cell.decodeSeconds = outcomes[k].decodeSeconds;
            cell.shardSegments = 0;
            cell.shardSpliced = 0;
            cell.shardReplayed = 0;
            cell.minstrPerSec =
                cell.wallSeconds > 0.0
                    ? static_cast<double>(cell.result.instructions) / 1e6 /
                          cell.wallSeconds
                    : 0.0;
            finish(cell);
            continue;
        }
        if (!groupFailed) {
            try {
                std::rethrow_exception(outcomes[k].error);
            } catch (const core::CancelledError &e) {
                // Cancellation is final in either mode: a solo re-run
                // would just burn the deadline a second time.
                cell.status = SweepCell::Status::Failed;
                cell.errorMessage = e.what();
                cell.result = core::AnalysisResult();
                cell.attempts = 1;
                finish(cell);
                continue;
            } catch (const std::exception &) {
                // Ordinary failure: fall through to the solo re-run (the
                // demotion itself consumes no attempt).
            }
        }
        runCellSolo(repo, cell, opt);
        finish(cell);
    }
}

} // namespace engine
} // namespace paragraph
