/**
 * @file
 * SweepEngine: a threaded (trace × config) grid runner.
 *
 * The paper's headline experiments are grids — Figure 8 re-extracts the DDG
 * once per window size per benchmark ("approximately 10 hours on a
 * DECstation 3100" per point), Table 4 crosses renaming switches with
 * benchmarks. Each grid cell is one independent core::Paragraph::analyze
 * run. Scheduling is trace-major: pending cells are grouped by input spec
 * into fused groups (at most Options::groupSize configs per group, clamped
 * by Options::groupMemoryBudget), one group is dispatched per worker
 * thread, and a group's cells run in a single block-major pass over the
 * shared trace (core::analyzeManyGuarded) — the trace is walked once per
 * group instead of once per cell. Inputs are captured once into shared
 * immutable buffers (TraceRepository) or, for streaming trace files,
 * decoded per pass on a pipelined background thread. Every core::Paragraph
 * is thread-private, so workers share no mutable analysis state. Results
 * are stored by grid position, making sweep output independent of worker
 * count, grouping, and completion order (a tested invariant).
 *
 * Cells are fault-isolated: a cell whose capture or analysis throws is
 * recorded as SweepCell::Status::Failed with its error text, and the rest
 * of the grid still runs — at the paper's hours-per-point scale, one bad
 * benchmark must not void a night of compute. Fusion never weakens that
 * isolation: a cell whose engine throws mid-group is demoted to a solo
 * re-run through the ordinary per-cell attempts loop (the demotion itself
 * consumes no attempt), so retries, journaling, and resume semantics are
 * byte-identical to an ungrouped sweep. Failed attempts can be retried
 * (Options::maxRetries), runaway cells cut off by a cooperative per-cell
 * deadline (Options::cellDeadlineSeconds), and completed cells journaled
 * to a JSONL checkpoint file (Options::journalPath) so an interrupted
 * sweep resumes without redoing finished work.
 */

#ifndef PARAGRAPH_ENGINE_SWEEP_HPP
#define PARAGRAPH_ENGINE_SWEEP_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/paragraph.hpp"
#include "engine/trace_repository.hpp"

namespace paragraph {
namespace engine {

struct JournalData;

/** One grid cell: analyze @p input under @p config. */
struct SweepJob
{
    std::string input;          ///< TraceRepository input spec
    core::AnalysisConfig config;
    std::string configLabel;    ///< short axis label, e.g. "window=64"
    size_t inputIndex = 0;      ///< position on the input axis
    size_t configIndex = 0;     ///< position on the config axis
};

/** One completed cell. */
struct SweepCell
{
    /**
     * Ok: analysis ran to completion and `result` is valid.
     * Failed: every attempt threw; `errorMessage` holds the last error and
     *         `result` is empty.
     * Skipped: satisfied from a resume journal without re-running;
     *          `journalText` holds the journaled cell JSON.
     */
    enum class Status { Ok, Failed, Skipped };

    SweepJob job;
    core::AnalysisResult result;

    Status status = Status::Ok;

    /** Last error text; only meaningful when status == Failed. */
    std::string errorMessage;

    /** Analysis attempts consumed (1 unless retries were needed). */
    unsigned attempts = 1;

    /** Pre-rendered cell JSON from the journal (status == Skipped only). */
    std::string journalText;

    /** Wall-clock seconds for this cell's analysis alone. */
    double wallSeconds = 0.0;

    /** Of which, seconds spent producing trace records: private stream
     *  decode, or waits on the shared decode pool (cumulative across
     *  shard threads). 0 for captured inputs — their capture is paid
     *  once, up front, in SweepResult::captureSeconds. */
    double decodeSeconds = 0.0;

    /** Split-and-patch shard segments this cell ran as (0 = unsharded). */
    unsigned shardSegments = 0;

    /** Of the shard segments, how many the patch merged with the
     *  O(boundary episodes) splice vs replayed sequentially
     *  (core/shard.hpp validate-or-replay). Spliced + replayed ==
     *  shardSegments when the cell was sharded. */
    unsigned shardSpliced = 0;
    unsigned shardReplayed = 0;

    /** Analysis throughput of this cell, in million instructions/sec. */
    double minstrPerSec = 0.0;

    bool ok() const { return status != Status::Failed; }
};

/** A finished sweep: cells in grid order plus aggregate bookkeeping. */
struct SweepResult
{
    std::vector<SweepCell> cells;

    /** Cells whose every attempt failed (error or deadline). */
    size_t cellsFailed = 0;

    /** Cells satisfied from the resume journal without re-running. */
    size_t cellsSkipped = 0;

    /** Worker threads the sweep ran on. */
    unsigned jobs = 0;

    /** Wall-clock seconds for the whole sweep (captures + analyses). */
    double wallSeconds = 0.0;

    /** Of which, seconds spent capturing the inputs (serial, paid once). */
    double captureSeconds = 0.0;

    /** Total instructions analyzed across all cells. */
    uint64_t totalInstructions = 0;

    /** Fused groups the pending cells were scheduled as (passes over the
     *  inputs, before any mid-group fault demotes cells to solo). */
    size_t fusedGroups = 0;

    /** Aggregate throughput: totalInstructions / wallSeconds / 1e6. */
    double aggregateMinstrPerSec = 0.0;
};

/**
 * Progress observer, called (serialized) after each cell completes:
 * cells done, cells total, aggregate million instructions/sec so far.
 * A throwing observer is disabled after its first throw (with a warning);
 * it can never abort the sweep.
 */
using SweepProgressFn =
    std::function<void(size_t done, size_t total, double minstrPerSec)>;

class SweepEngine
{
  public:
    struct Options
    {
        /** Worker threads; 0 = std::thread::hardware_concurrency(). */
        unsigned jobs = 0;

        /** Configs fused into one pass over a shared trace. 1 = no fusion
         *  (every cell is its own pass, the pre-grouping behavior);
         *  0 = auto, ceil(pending / jobs) so each worker's share of an
         *  input becomes a single pass — except over decode-gated
         *  streamed inputs, where the share is taken over the decoder
         *  cap instead of the worker count. Always clamped by
         *  groupMemoryBudget. */
        unsigned groupSize = 1;

        /** Cap on the estimated live analysis state (windows, profiles,
         *  live wells) resident in one fused group; a group is cut early
         *  rather than exceed it. */
        size_t groupMemoryBudget = size_t(1) << 30;

        /** Re-run a failed cell up to this many extra times. Cancelled /
         *  deadline-expired attempts are final and never retried. */
        unsigned maxRetries = 0;

        /** Per-attempt cooperative deadline in seconds; a cell past it is
         *  cut off at the next cancellation checkpoint and marked Failed.
         *  0 = no deadline. */
        double cellDeadlineSeconds = 0.0;

        /** Split each solo cell's trace into up to this many segments
         *  analyzed on that many threads and patched into the exact solo
         *  result (core/shard.hpp split-and-patch): how ONE trace × ONE
         *  config uses more than one core. Applies to every config, over
         *  pooled `.ptrc` inputs and shared captures alike; 1 = off. */
        unsigned shards = 1;

        /** Append one JSONL line per completed cell to this file (plus a
         *  header line when the file is new). Empty = no journal. */
        std::string journalPath;

        /** Include profile buckets in journaled cell JSON. Must match the
         *  profiles setting of the final report for resume splicing. */
        bool journalProfiles = true;

        /** Cells already completed in a previous run: matching ok entries
         *  are skipped and their journaled JSON reused. Not owned. */
        const JournalData *resume = nullptr;

        /** Optional progress observer (never called concurrently). */
        SweepProgressFn progress;
    };

    SweepEngine();
    explicit SweepEngine(Options opt);

    /** Worker threads run() will use. */
    unsigned jobs() const { return jobs_; }

    /**
     * Run the full cross product @p inputs × @p configs.
     *
     * Cells come back in input-major grid order: cell i*configs.size()+j
     * holds inputs[i] under configs[j]. @p configLabels (optional, parallel
     * to @p configs) annotates each config axis point for reports.
     */
    SweepResult run(TraceRepository &repo,
                    const std::vector<std::string> &inputs,
                    const std::vector<core::AnalysisConfig> &configs,
                    const std::vector<std::string> &configLabels = {}) const;

    /** Run an explicit job list; cells come back in job order. */
    SweepResult runJobs(TraceRepository &repo,
                        std::vector<SweepJob> jobs) const;

  private:
    Options opt_;
    unsigned jobs_;
};

} // namespace engine
} // namespace paragraph

#endif // PARAGRAPH_ENGINE_SWEEP_HPP
