/**
 * @file
 * SweepScheduler: a persistent cell-execution service for long-lived hosts.
 *
 * SweepEngine owns one grid: it builds its groups up front, runs them on a
 * transient pool, and returns. A daemon cannot work that way — jobs arrive
 * over time from independent clients, and the trace-major fusion win is
 * largest exactly when two clients ask about the same trace. The scheduler
 * therefore keeps one standing worker pool and a pending queue bucketed by
 * input spec; workers peel groups of up to Options::groupSize cells (cut
 * early by Options::groupMemoryBudget) off one bucket at a time, so cells
 * from *different* submissions fuse into a single block-major pass whenever
 * they share a trace. Execution itself is engine/cell_exec.hpp — the same
 * attempts / deadline / demotion semantics as SweepEngine, which is what
 * lets the serve layer cache a scheduler-produced cell and replay it
 * byte-identically against a paragraph-sweep run.
 *
 * While a group runs, its trace is held through TraceRepository::pin(), so
 * a budget-bounded repository can never drop (and re-capture) a trace that
 * a fused pass is still reading.
 */

#ifndef PARAGRAPH_ENGINE_SCHEDULER_HPP
#define PARAGRAPH_ENGINE_SCHEDULER_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/cell_exec.hpp"
#include "engine/sweep.hpp"
#include "engine/trace_repository.hpp"

namespace paragraph {
namespace engine {

class SweepScheduler
{
  public:
    struct Options
    {
        /** Worker threads; 0 = std::thread::hardware_concurrency(). */
        unsigned jobs = 0;

        /** Most cells fused into one pass over a shared trace (clamped by
         *  groupMemoryBudget). Unlike SweepEngine there is no grid to
         *  divide up front, so there is no auto mode; the default keeps a
         *  pass wide enough to amortize the trace walk without letting one
         *  client's burst monopolize a worker. */
        unsigned groupSize = 8;

        /** Cap on the estimated live analysis state in one fused group. */
        size_t groupMemoryBudget = size_t(1) << 30;

        /** Re-run a failed cell up to this many extra times (cancelled /
         *  deadline-expired attempts are final). */
        unsigned maxRetries = 0;

        /** Per-attempt cooperative deadline in seconds; 0 = none. */
        double cellDeadlineSeconds = 0.0;
    };

    /**
     * One submission: owns its cells (in job order) for the scheduler to
     * fill in. Obtain from submit(), then wait() for completion; cells()
     * is stable storage but individual cells may only be read after the
     * per-cell callback has seen them (or after wait()).
     */
    class Batch
    {
      public:
        /** Block until every cell in this batch has a final status. */
        void
        wait()
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return remaining_ == 0; });
        }

        /** Cells in submission order. Fully final only after wait(). */
        std::vector<SweepCell> &cells() { return cells_; }

      private:
        friend class SweepScheduler;

        std::vector<SweepCell> cells_;
        std::function<void(SweepCell &)> onCell_;
        std::mutex mutex_;
        std::condition_variable cv_;
        size_t remaining_ = 0;
    };

    explicit SweepScheduler(TraceRepository &repo);
    SweepScheduler(TraceRepository &repo, Options opt);
    ~SweepScheduler();

    SweepScheduler(const SweepScheduler &) = delete;
    SweepScheduler &operator=(const SweepScheduler &) = delete;

    /**
     * Queue @p jobs for execution. @p onCell (optional) is invoked once
     * per cell, from a worker thread, as soon as that cell's status is
     * final; calls are serialized per batch (but not across batches).
     * The callback must not re-enter the scheduler. Cells the callback
     * has seen may thereafter be read freely through cells().
     *
     * After stop(), submissions complete immediately with every cell
     * Failed ("scheduler stopped").
     */
    std::shared_ptr<Batch> submit(std::vector<SweepJob> jobs,
                                  std::function<void(SweepCell &)> onCell =
                                      {});

    /**
     * Fail all queued-but-unstarted cells ("scheduler stopped", zero
     * attempts), wait for in-flight groups to finish, and join the pool.
     * To cut in-flight analyses short too, cancel a token chained into the
     * submitted configs before calling (the daemon's SIGTERM path does).
     * Idempotent.
     */
    void stop();

    /** Worker threads in the pool. */
    unsigned workers() const { return workers_; }

    /** Cells queued but not yet picked up by a worker (health probe). */
    size_t pendingCells() const;

  private:
    /** One queued cell: which batch, which slot. */
    struct Item
    {
        std::shared_ptr<Batch> batch;
        size_t index = 0;
    };

    void workerLoop();
    void deliver(const Item &item) const;

    TraceRepository &repo_;
    Options opt_;
    unsigned workers_;
    CellExecOptions execOpt_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;

    /** Pending cells bucketed by input spec; inputOrder_ keeps first-seen
     *  dispatch order over the non-empty buckets. */
    std::map<std::string, std::deque<Item>> pendingByInput_;
    std::deque<std::string> inputOrder_;

    std::vector<std::thread> pool_;
};

} // namespace engine
} // namespace paragraph

#endif // PARAGRAPH_ENGINE_SCHEDULER_HPP
