/**
 * @file
 * Explorer: adaptive design-space exploration with provably sound pruning.
 *
 * The paper's experiments enumerate (trace × config) grids, but most grid
 * cells carry no information: parallelism curves are monotone along the
 * window/rename/FU/predictor axes (the fuzz oracle's proven theorems,
 * src/fuzz/invariant_oracle.hpp) and flat past each benchmark's knee. The
 * Explorer exploits exactly those theorems — and nothing weaker — to find
 * the per-trace Pareto frontier of available parallelism vs. hardware cost
 * while measuring only a fraction of the grid:
 *
 *   - Window-knee bisection. Within each unlimited-FU stratum (fixed
 *     rename / syscall / predictor point) the window axis is a chain: par
 *     is nondecreasing in window size (window-monotonicity: W1 <= W2 =>
 *     cp(W1) >= cp(W2), and placed-ops-conservation: placedOps is window-
 *     invariant, so par = placedOps / cp is antitone in cp). The Explorer
 *     measures the chain endpoints, collapses a bracket whose endpoint
 *     parallelisms agree to within `kneeTol` (interior cells are then
 *     provably on the same plateau), and otherwise bisects toward the
 *     knee.
 *
 *   - Sound dominance pruning. A cell c is skipped only when a measured
 *     *bounding* cell b proves par(c) <= par(b) — b differs from c only
 *     along axes where a monotonicity theorem applies, each moved in the
 *     parallelism-nondecreasing direction — and a measured *dominating*
 *     cell d satisfies cost(d) <= cost(c), par(d) >= par(b), with at
 *     least one strict (so c cannot tie its way onto the frontier). The
 *     proof (axes, direction, bound, dominator) is recorded as a
 *     certificate in the output and can be re-verified from the measured
 *     cells alone.
 *
 *   - Successive halving. Unresolved cells compete for measurement in
 *     rungs: every rung re-runs the prune sweep, then measures the most
 *     promising half of the survivors (bound-maximal corners first — they
 *     provide the upper bounds everything else needs — then cheapest
 *     first, since cheap cells make the strongest dominators). Traces
 *     whose cells are all resolved drop out of later rungs, so the
 *     measurement budget concentrates on traces that are still
 *     undominated.
 *
 * Why the syscall axis never bounds: syscall-monotonicity proves
 * cp(stall) >= cp(ignore), but placedOps(stall) = placedOps(ignore) +
 * value-creating syscalls — placed ops are NOT conserved across that
 * axis, so neither direction of par = placedOps / cp is provable (a
 * syscall-only trace has par(stall) = 1 > par(ignore) = 0; a mixed trace
 * can order them the other way). Syscall points therefore partition the
 * grid into strata: a bound must match its cell's syscall coordinate
 * exactly. Likewise, finite FU limits only bound against fu=0: the proven
 * fu-monotonicity theorem compares limited against unlimited, and greedy
 * placement under two different finite limits is not covered by it.
 * Stronger still, the window/rename/predictor theorems themselves are
 * pointwise inductions that only close when ops place exactly at their
 * issue level — i.e. with unlimited FUs. Under a finite limit the greedy
 * throttle admits Graham-style scheduling anomalies (fuzzed
 * counterexample: a larger window lowering parallelism under fu=2), so
 * those axes only bound toward fu=0 configs (boundLeq's anomaly gate;
 * the proof chains through relaxing the FU limit first) and finite-FU
 * strata are enumerated, not pruned against each other.
 *
 * With kneeTol == 0 (the default) every prune is exact and the frontier
 * equals the full grid's frontier cell-for-cell — executed cells render
 * byte-identically to their grid twins (cellToJson), which is what the
 * soundness suite and the bench explore-vs-grid leg verify. kneeTol > 0
 * trades exactness for fewer measurements: brackets collapse early and
 * their certificates are marked approximate ("exact": false in the
 * document).
 */

#ifndef PARAGRAPH_ENGINE_EXPLORER_HPP
#define PARAGRAPH_ENGINE_EXPLORER_HPP

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "engine/sweep.hpp"
#include "engine/sweep_args.hpp"
#include "engine/sweep_json.hpp"

namespace paragraph {
namespace engine {

/**
 * Deterministic scalar hardware cost of one config point: the "price" axis
 * of the Pareto frontier. Integer by construction so frontier comparisons
 * are exact:
 *
 *   window     bit-width of the window size (64 for unlimited)
 *   rename     2 per Table-4 step: none=0, regs=2, stack=4, data=6
 *   predictor  wrong/static=0, taken/nottaken=1, bimodal=2, perfect=8
 *   fus        bit-width of the FU limit (32 for unlimited)
 *
 * The syscall switch contributes nothing: it models an analysis
 * assumption, not hardware spent.
 */
int exploreCost(const core::AnalysisConfig &cfg);

/**
 * The oracle-to-pruner contract, as data: which monotone-bounding moves
 * the pruner may use, each backed by one proven fuzz-oracle property.
 * Flipping a flag replaces that relation with its unsound mirror — the
 * mutation-audit seam (tests/engine/explore_test.cpp) flips each one and
 * asserts the soundness suite catches the resulting bogus prunes. The
 * default-constructed model is the sound one; certificates are always
 * re-verified against the sound model regardless of what explored.
 */
struct ExploreModel
{
    /** par(c) <= par(c with a larger window)   [window-monotonicity +
     *  placed-ops-conservation]. Flipped: smaller windows bound. */
    bool windowLarger = true;

    /** par(c) <= par(c with more renaming)     [rename-monotonicity +
     *  conservation]. Flipped: less renaming bounds. */
    bool renameMore = true;

    /** par(c, finite fu) <= par(c, fu=0)       [fu-monotonicity +
     *  conservation; finite-vs-finite is NOT proven]. Flipped: fu=0 is
     *  bounded by finite limits. */
    bool fuUnlimited = true;

    /** par is monotone in mispredict-set inclusion: wrong ⊒ {bimodal,
     *  taken, nottaken} ⊒ perfect              [predictor-bound +
     *  conservation]. Flipped: the chain reverses. */
    bool predictorBetter = true;

    /** The syscall axis is a stratum boundary, never a bounding move
     *  (placed ops are not conserved across it). Flipped: stall is
     *  bounded by ignore. */
    bool syscallStratum = true;
};

/** The recorded proof that a skipped cell is dominated. */
struct ExploreCertificate
{
    /** Axes the bounding move crosses ("window", "rename", "predictor",
     *  "fus" — and "syscalls" only if the seam was flipped), each in the
     *  parallelism-nondecreasing direction. */
    std::vector<std::string> axes;

    size_t boundConfigIndex = 0;     ///< measured cell with par >= par(c)
    double boundParallelism = 0.0;
    size_t dominatorConfigIndex = 0; ///< measured cell beating the bound
    double dominatorParallelism = 0.0;
    int dominatorCost = 0;

    /** True when the prune leaned on kneeTol > 0 (par(d) >= bound - tol
     *  instead of >= bound): sound only up to the tolerance. */
    bool approximate = false;
};

/** One pruned (never-measured) cell with its proof. */
struct ExplorePruned
{
    size_t configIndex = 0;
    int cost = 0;
    std::string label;
    ExploreCertificate certificate;
};

/** Everything the Explorer learned about one trace. */
struct ExploreTrace
{
    std::string input;
    size_t inputIndex = 0;

    /** Executed cells in config-index order (Ok, Failed, or Skipped when
     *  a daemon served them from its result store). */
    std::vector<SweepCell> cells;

    /** Config indices of the Pareto-frontier cells, sorted by
     *  (cost, config index). Every entry is a measured-ok cell. */
    std::vector<size_t> frontier;

    /** Skipped cells, config-index order, each with its certificate. */
    std::vector<ExplorePruned> pruned;

    size_t cellsFailed = 0;
};

struct ExploreResult
{
    std::vector<ExploreTrace> traces;

    /** The grid's config axis (identical to buildSweepConfigAxis output:
     *  config indices below address into these). */
    std::vector<core::AnalysisConfig> configs;
    std::vector<std::string> labels;
    SweepAxes axes;

    double kneeTol = 0.0;
    bool exact = true; ///< no certificate leaned on the tolerance

    size_t cellsTotal = 0;
    size_t cellsExecuted = 0;
    size_t cellsPruned = 0;
    size_t cellsFailed = 0;
    size_t rounds = 0; ///< measurement rungs the exploration took

    double wallSeconds = 0.0;
    unsigned jobs = 0;
};

class Explorer
{
  public:
    struct Options
    {
        /** Bracket-collapse tolerance in parallelism units; 0 = exact. */
        double kneeTol = 0.0;

        /** Tie-break seed for rung ordering and midpoint selection.
         *  Callers thread support/test_seed.hpp's testSeed() through here
         *  so PARAGRAPH_TEST_SEED steers exploration deterministically;
         *  the frontier is seed-independent, the executed-cell set is
         *  deterministic per seed. */
        uint64_t seed = 0x70617261676f6eULL;

        /** Monotonicity relations the pruner may use (mutation-audit test
         *  seam; leave defaulted for sound exploration). */
        ExploreModel model;
    };

    /**
     * Measurement backend: run @p jobs and return their cells in job
     * order. The CLI wraps SweepEngine::runJobs; the daemon wraps its
     * standing scheduler plus the content-addressed result store (cached
     * cells come back Skipped with their stored JSON).
     */
    using Runner =
        std::function<std::vector<SweepCell>(std::vector<SweepJob>)>;

    Explorer() : opt_() {}
    explicit Explorer(Options opt) : opt_(opt) {}

    /**
     * Explore @p inputs × the grid spanned by @p axes. @p configs and
     * @p labels must be the buildSweepConfigAxis expansion of @p axes so
     * config indices mean the same thing they would in a full sweep.
     */
    ExploreResult explore(const std::vector<std::string> &inputs,
                          const SweepAxes &axes,
                          const std::vector<core::AnalysisConfig> &configs,
                          const std::vector<std::string> &labels,
                          const Runner &runner) const;

  private:
    Options opt_;
};

/** Measured-ok test for an executed cell (Ok, or store-served Skipped
 *  text whose status is "ok"). */
bool exploreCellOk(const SweepCell &cell);

/** Available parallelism of a measured cell; store-served Skipped cells
 *  are parsed from their stored JSON (jsonDouble round-trips exactly, so
 *  the parsed value equals the fresh computation's bit-for-bit). */
double exploreCellParallelism(const SweepCell &cell);

/**
 * Pareto frontier over @p ok-flagged points: indices of every point no
 * other point strictly dominates (cost <=, par >=, one strict), sorted by
 * (cost, index). Shared by the Explorer, the soundness tests, and the
 * bench explore leg so "frontier of a full grid" means exactly one thing.
 */
std::vector<size_t> paretoFrontier(const std::vector<int> &costs,
                                   const std::vector<double> &pars,
                                   const std::vector<bool> &ok);

/**
 * Re-verify every certificate in @p result against the sound model and
 * the measured cells it names: the bound must be measured-ok and reachable
 * from the pruned cell by sound parallelism-nondecreasing moves, the
 * dominator measured-ok with cost(d) <= cost(c), par(d) >= bound (minus
 * kneeTol for approximate certificates), one strict. @return false with
 * @p diag naming the first bad certificate.
 */
bool verifyExploreCertificates(const ExploreResult &result,
                               std::string &diag);

/**
 * The ground-truth soundness check: @p grid must be the full
 * inputs × configs sweep of the same axes. Verifies (a) certificates
 * (verifyExploreCertificates), (b) every executed cell renders
 * byte-identically to its grid twin under @p jsonOpt, (c) the explorer's
 * frontier equals the grid's frontier, and (d) no pruned cell is actually
 * non-dominated in the grid (within kneeTol for approximate runs).
 * @return false with @p diag describing the first divergence.
 */
bool verifyExploreAgainstGrid(const ExploreResult &result,
                              const SweepResult &grid,
                              const SweepJsonOptions &jsonOpt,
                              std::string &diag);

/** Write @p result as a "paragraph-explore-v1" JSON document. Executed
 *  cells are embedded verbatim via cellToJson (timing stripped), so each
 *  is byte-identical to its full-grid twin. */
void writeExploreJson(std::ostream &os, const ExploreResult &result,
                      const SweepJsonOptions &opt);

/** writeExploreJson into a string. */
std::string exploreToJson(const ExploreResult &result,
                          const SweepJsonOptions &opt);

} // namespace engine
} // namespace paragraph

#endif // PARAGRAPH_ENGINE_EXPLORER_HPP
