#include "engine/sweep_args.hpp"

#include <cstdlib>

#include "support/string_utils.hpp"

namespace paragraph {
namespace engine {

namespace {

bool
parseIntList(const std::string &list, const char *flag,
             std::vector<uint64_t> &out, std::string &error)
{
    for (const std::string &piece : splitAndTrim(list, ',')) {
        int64_t n = 0;
        if (!parseInt(piece, n) || n < 0) {
            error = strFormat("bad %s value '%s'", flag, piece.c_str());
            return false;
        }
        out.push_back(static_cast<uint64_t>(n));
    }
    if (out.empty()) {
        error = strFormat("empty %s list", flag);
        return false;
    }
    return true;
}

/** Expand one point of the rename axis into config switches. */
bool
applyRename(core::AnalysisConfig &cfg, const std::string &value,
            std::string &error)
{
    if (value == "none") {
        cfg.renameRegisters = false;
        cfg.renameStack = false;
        cfg.renameData = false;
    } else if (value == "regs") {
        cfg.renameRegisters = true;
        cfg.renameStack = false;
        cfg.renameData = false;
    } else if (value == "stack") { // regs + stack (Table 4 column 3)
        cfg.renameRegisters = true;
        cfg.renameStack = true;
        cfg.renameData = false;
    } else if (value == "data" || value == "all") { // regs + all memory
        cfg.renameRegisters = true;
        cfg.renameStack = true;
        cfg.renameData = true;
    } else {
        error = strFormat("bad --rename value '%s'", value.c_str());
        return false;
    }
    return true;
}

bool
applyPredictor(core::AnalysisConfig &cfg, const std::string &value,
               std::string &error)
{
    if (value == "perfect")
        cfg.branchPredictor = core::PredictorKind::Perfect;
    else if (value == "bimodal")
        cfg.branchPredictor = core::PredictorKind::Bimodal;
    else if (value == "taken")
        cfg.branchPredictor = core::PredictorKind::AlwaysTaken;
    else if (value == "nottaken")
        cfg.branchPredictor = core::PredictorKind::NeverTaken;
    else if (value == "wrong")
        cfg.branchPredictor = core::PredictorKind::AlwaysWrong;
    else {
        error = strFormat("bad --predictors value '%s'", value.c_str());
        return false;
    }
    return true;
}

} // namespace

bool
parseSweepArgs(const std::vector<std::string> &args, SweepArgs &opt,
               std::string &error)
{
    for (const std::string &arg : args) {
        int64_t n = 0;
        if (arg == "--list") {
            opt.listRequested = true;
        } else if (startsWith(arg, "--inputs=")) {
            for (const std::string &s : splitAndTrim(arg.substr(9), ','))
                if (!s.empty())
                    opt.inputs.push_back(s);
        } else if (startsWith(arg, "--windows=")) {
            opt.windows.clear();
            if (!parseIntList(arg.substr(10), "--windows", opt.windows,
                              error))
                return false;
        } else if (startsWith(arg, "--rename=")) {
            opt.renames = splitAndTrim(arg.substr(9), ',');
        } else if (startsWith(arg, "--syscalls=")) {
            opt.syscalls = splitAndTrim(arg.substr(11), ',');
        } else if (startsWith(arg, "--predictors=")) {
            opt.predictors = splitAndTrim(arg.substr(13), ',');
        } else if (startsWith(arg, "--fus=")) {
            std::vector<uint64_t> raw;
            if (!parseIntList(arg.substr(6), "--fus", raw, error))
                return false;
            opt.fus.clear();
            for (uint64_t v : raw)
                opt.fus.push_back(static_cast<uint32_t>(v));
        } else if (startsWith(arg, "--jobs=") &&
                   parseInt(arg.substr(7), n) && n > 0) {
            opt.jobs = static_cast<unsigned>(n);
        } else if (startsWith(arg, "--group=") &&
                   parseInt(arg.substr(8), n) && n >= 0) {
            opt.group = static_cast<unsigned>(n);
        } else if (startsWith(arg, "--shard=") &&
                   parseInt(arg.substr(8), n) && n > 0) {
            opt.shards = static_cast<unsigned>(n);
        } else if (startsWith(arg, "--max=") && parseInt(arg.substr(6), n) &&
                   n >= 0) {
            opt.maxInstructions = static_cast<uint64_t>(n);
        } else if (startsWith(arg, "--out=")) {
            opt.outPath = arg.substr(6);
        } else if (startsWith(arg, "--retries=") &&
                   parseInt(arg.substr(10), n) && n >= 0) {
            opt.retries = static_cast<unsigned>(n);
        } else if (startsWith(arg, "--deadline=")) {
            char *end = nullptr;
            opt.deadlineSeconds = std::strtod(arg.c_str() + 11, &end);
            if (!end || *end != '\0' || opt.deadlineSeconds < 0.0) {
                error = strFormat("bad --deadline value '%s'",
                                  arg.c_str() + 11);
                return false;
            }
        } else if (startsWith(arg, "--journal=")) {
            opt.journalPath = arg.substr(10);
        } else if (startsWith(arg, "--resume=")) {
            opt.resumePath = arg.substr(9);
        } else if (arg == "--explore") {
            opt.explore = true;
        } else if (startsWith(arg, "--knee-tol=")) {
            char *end = nullptr;
            opt.kneeTol = std::strtod(arg.c_str() + 11, &end);
            if (!end || *end != '\0' || opt.kneeTol < 0.0 ||
                opt.kneeTol != opt.kneeTol) {
                error = strFormat("bad --knee-tol value '%s'",
                                  arg.c_str() + 11);
                return false;
            }
        } else if (arg == "--small") {
            opt.small = true;
        } else if (arg == "--stream") {
            opt.stream = true;
        } else if (arg == "--stats") {
            opt.json.stats = true;
        } else if (arg == "--no-timing") {
            opt.json.timing = false;
        } else if (arg == "--no-profiles") {
            opt.json.profiles = false;
        } else if (arg == "--quiet") {
            opt.quiet = true;
        } else if (!startsWith(arg, "--")) {
            opt.inputs.push_back(arg);
        } else {
            error = strFormat("bad argument '%s'", arg.c_str());
            return false;
        }
    }
    if (opt.inputs.empty() && !opt.listRequested) {
        error = "no inputs given";
        return false;
    }
    return true;
}

SweepAxes
defaultedSweepAxes(const SweepArgs &opt)
{
    SweepAxes axes;
    axes.windows =
        opt.windows.empty() ? std::vector<uint64_t>{0} : opt.windows;
    axes.renames =
        opt.renames.empty() ? std::vector<std::string>{"data"} : opt.renames;
    axes.syscalls = opt.syscalls.empty() ? std::vector<std::string>{"stall"}
                                         : opt.syscalls;
    axes.predictors = opt.predictors.empty()
                          ? std::vector<std::string>{"perfect"}
                          : opt.predictors;
    axes.fus = opt.fus.empty() ? std::vector<uint32_t>{0} : opt.fus;
    return axes;
}

bool
buildSweepConfigAxis(const SweepArgs &opt,
                     std::vector<core::AnalysisConfig> &configs,
                     std::vector<std::string> &labels, std::string &error)
{
    SweepAxes axes = defaultedSweepAxes(opt);
    const std::vector<uint64_t> &windows = axes.windows;
    const std::vector<std::string> &renames = axes.renames;
    const std::vector<std::string> &syscalls = axes.syscalls;
    const std::vector<std::string> &predictors = axes.predictors;
    const std::vector<uint32_t> &fus = axes.fus;

    for (uint64_t w : windows) {
        for (const std::string &ren : renames) {
            for (const std::string &sys : syscalls) {
                for (const std::string &pred : predictors) {
                    for (uint32_t fu : fus) {
                        core::AnalysisConfig cfg;
                        cfg.windowSize = w;
                        if (!applyRename(cfg, ren, error))
                            return false;
                        if (sys != "stall" && sys != "ignore") {
                            error = strFormat("bad --syscalls value '%s'",
                                              sys.c_str());
                            return false;
                        }
                        cfg.sysCallsStall = (sys == "stall");
                        if (!applyPredictor(cfg, pred, error))
                            return false;
                        cfg.totalFuLimit = fu;
                        cfg.maxInstructions = opt.maxInstructions;
                        configs.push_back(cfg);

                        std::string label = "window=" +
                                            (w ? std::to_string(w)
                                               : std::string("unlimited"));
                        label += " rename=" + ren;
                        if (syscalls.size() > 1 || sys != "stall")
                            label += " syscalls=" + sys;
                        if (predictors.size() > 1 || pred != "perfect")
                            label += " predictor=" + pred;
                        if (fus.size() > 1 || fu != 0)
                            label += " fus=" + std::to_string(fu);
                        labels.push_back(label);
                    }
                }
            }
        }
    }
    return true;
}

} // namespace engine
} // namespace paragraph
