/**
 * @file
 * Stable machine-readable JSON for sweep results.
 *
 * One object per grid cell: config echo, critical path, available
 * parallelism, profile buckets, timing. Key order, number formatting, and
 * cell order (grid order, not completion order) are all deterministic, so
 * two sweeps of the same grid produce byte-identical documents regardless
 * of worker count — the timing fields are segregated under "timing" keys
 * and can be omitted (`timing = false`) for such comparisons, and for
 * `BENCH_*.json` trajectories that diff runs.
 */

#ifndef PARAGRAPH_ENGINE_SWEEP_JSON_HPP
#define PARAGRAPH_ENGINE_SWEEP_JSON_HPP

#include <ostream>
#include <string>

#include "engine/sweep.hpp"

namespace paragraph {
namespace engine {

struct SweepJsonOptions
{
    /** Include wall-clock / throughput fields (never deterministic). */
    bool timing = true;

    /** Include the per-cell parallelism-profile bucket series. */
    bool profiles = true;

    /** Break each cell's wall time into decode vs analyze shares and
     *  report shard-segment counts (inside "timing", so `timing = false`
     *  documents stay deterministic and journal splicing is unaffected). */
    bool stats = false;
};

/** Write @p sweep as a JSON document. */
void writeSweepJson(std::ostream &os, const SweepResult &sweep,
                    const SweepJsonOptions &opt = {});

/**
 * Render one cell exactly as it appears inside the "cells" array. The
 * checkpoint journal stores this text so a resumed sweep can splice it
 * back verbatim (byte-identical to an uninterrupted run).
 */
std::string cellToJson(const SweepCell &cell, const SweepJsonOptions &opt);

/** writeSweepJson into a string. */
std::string sweepToJson(const SweepResult &sweep,
                        const SweepJsonOptions &opt = {});

/** Shortest round-trip decimal rendering of @p v (JSON number syntax). */
std::string jsonDouble(double v);

/** JSON string literal (quotes and escapes @p s). */
std::string jsonString(const std::string &s);

} // namespace engine
} // namespace paragraph

#endif // PARAGRAPH_ENGINE_SWEEP_JSON_HPP
