#include "engine/explorer.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>

#include "support/panic.hpp"
#include "support/prng.hpp"
#include "support/string_utils.hpp"

namespace paragraph {
namespace engine {

namespace {

/** Bit width of @p v (0 -> 0): the integer log-cost of a sized resource. */
int
bitWidth(uint64_t v)
{
    int bits = 0;
    while (v) {
        ++bits;
        v >>= 1;
    }
    return bits;
}

int
renameRank(const core::AnalysisConfig &cfg)
{
    // Table 4 chain: none < regs < regs+stack < regs+stack+data.
    return (cfg.renameRegisters ? 1 : 0) + (cfg.renameStack ? 1 : 0) +
           (cfg.renameData ? 1 : 0);
}

/**
 * Position of a predictor in the mispredict-set inclusion order: a
 * predictor whose mispredict set contains another's places every firewall
 * the other places (and more), so its critical path is no shorter —
 * par is nondecreasing toward perfect. The three modeled/static
 * predictors share rank 1 but are pairwise incomparable (their mispredict
 * sets are not nested).
 */
int
predictorUpRank(core::PredictorKind kind)
{
    switch (kind) {
      case core::PredictorKind::Perfect:
        return 2;
      case core::PredictorKind::AlwaysWrong:
        return 0;
      default:
        return 1;
    }
}

/** Effective window size for ordering (0 = unlimited sorts above all). */
uint64_t
windowRank(uint64_t window)
{
    return window == 0 ? std::numeric_limits<uint64_t>::max() : window;
}

/** SplitMix64 of @p x: deterministic tie-break hashing. */
uint64_t
mix64(uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

/**
 * Does the model prove par(a) <= par(b)? When yes and @p axes is given,
 * append the names of the axes where the two configs differ. The sound
 * (default) model only accepts moves backed by an oracle theorem; the
 * mutation-audit seam flips individual relations into their unsound
 * mirrors.
 *
 * The window/rename/predictor theorems are *pointwise*: they show every
 * op places at the same or a later level, and that induction only
 * closes when ops place exactly at their issue level — i.e. with
 * unlimited FUs. Under a finite FU limit the greedy throttle admits
 * Graham-style scheduling anomalies (displacing one op later frees its
 * level for a later op, which can shorten the critical path), so a
 * larger window can *lower* parallelism. Those axes therefore only
 * bound toward configs whose FUs are unlimited; the proof chains
 * a -> (a with unlimited FUs) -> axis steps at unlimited FUs -> b.
 * Relaxing a finite FU limit itself is pointwise-sound under any other
 * settings (placements only move later), so the pure FU move stays.
 */
bool
boundLeq(const core::AnalysisConfig &a, const core::AnalysisConfig &b,
         const ExploreModel &model, std::vector<std::string> *axes)
{
    bool movedNonFu = false;
    if (windowRank(a.windowSize) != windowRank(b.windowSize)) {
        bool up = windowRank(a.windowSize) < windowRank(b.windowSize);
        if (up != model.windowLarger)
            return false;
        movedNonFu = true;
        if (axes)
            axes->push_back("window");
    }
    if (renameRank(a) != renameRank(b)) {
        bool up = renameRank(a) < renameRank(b);
        if (up != model.renameMore)
            return false;
        movedNonFu = true;
        if (axes)
            axes->push_back("rename");
    }
    if (a.sysCallsStall != b.sysCallsStall) {
        if (model.syscallStratum)
            return false; // placed ops differ: no theorem either way
        if (!a.sysCallsStall)
            return false; // flipped mirror claims par(stall) <= par(ignore)
        movedNonFu = true;
        if (axes)
            axes->push_back("syscalls");
    }
    if (a.branchPredictor != b.branchPredictor) {
        int ra = predictorUpRank(a.branchPredictor);
        int rb = predictorUpRank(b.branchPredictor);
        if (ra == rb)
            return false; // taken/nottaken/bimodal are incomparable
        bool up = ra < rb;
        if (up != model.predictorBetter)
            return false;
        movedNonFu = true;
        if (axes)
            axes->push_back("predictor");
    }
    if (a.totalFuLimit != b.totalFuLimit) {
        // Only the limited-vs-unlimited comparison is a proven theorem;
        // greedy placement under two different finite limits is not.
        bool toUnlimited = b.totalFuLimit == 0;
        bool fromUnlimited = a.totalFuLimit == 0;
        bool up = toUnlimited && !fromUnlimited;
        bool down = fromUnlimited && !toUnlimited;
        if (model.fuUnlimited ? !up : !down)
            return false;
        if (axes)
            axes->push_back("fus");
    }
    // Anomaly gate (see above): any non-FU move must land on an
    // unlimited-FU bound, or the pointwise induction does not close.
    if (movedNonFu && b.totalFuLimit != 0)
        return false;
    return true;
}

/** One grid slot of one trace during exploration. */
struct Slot
{
    enum class State { Unknown, Scheduled, Measured, Pruned, Failed };
    State state = State::Unknown;
    bool ok = false;  ///< Measured and usable (status ok)
    double par = 0.0; ///< available parallelism (Measured && ok)
};

struct Bracket
{
    size_t chain = 0; ///< index into TraceState::chains
    size_t lo = 0;    ///< positions within the chain
    size_t hi = 0;
};

struct TraceState
{
    std::string input;
    size_t inputIndex = 0;
    std::vector<Slot> slots;
    std::vector<SweepCell> cells; ///< filled for Measured/Failed slots
    std::vector<ExplorePruned> pruned;
    std::vector<std::vector<size_t>> chains; ///< window chains per stratum
    std::vector<Bracket> brackets;
    std::vector<size_t> scheduled; ///< config indices for this rung
};

} // namespace

int
exploreCost(const core::AnalysisConfig &cfg)
{
    int windowCost =
        cfg.windowSize == 0 ? 64 : bitWidth(cfg.windowSize);
    int fuCost = cfg.totalFuLimit == 0 ? 32 : bitWidth(cfg.totalFuLimit);
    int renameCost = 2 * renameRank(cfg);
    int predictorCost = 0;
    switch (cfg.branchPredictor) {
      case core::PredictorKind::Perfect:
        predictorCost = 8;
        break;
      case core::PredictorKind::Bimodal:
        predictorCost = 2;
        break;
      case core::PredictorKind::AlwaysTaken:
      case core::PredictorKind::NeverTaken:
        predictorCost = 1;
        break;
      case core::PredictorKind::AlwaysWrong:
        predictorCost = 0;
        break;
    }
    return windowCost + fuCost + renameCost + predictorCost;
}

bool
exploreCellOk(const SweepCell &cell)
{
    if (cell.status == SweepCell::Status::Ok)
        return true;
    if (cell.status == SweepCell::Status::Skipped)
        return cell.journalText.find("\"status\": \"ok\"") !=
               std::string::npos;
    return false;
}

double
exploreCellParallelism(const SweepCell &cell)
{
    if (cell.status == SweepCell::Status::Ok)
        return cell.result.availableParallelism;
    if (cell.status == SweepCell::Status::Skipped) {
        // Store-served cells carry their rendered JSON; jsonDouble emits
        // the shortest round-trip form, so strtod recovers the exact
        // double a fresh analysis would report.
        static const char *anchor = "\"available_parallelism\": ";
        size_t at = cell.journalText.find(anchor);
        if (at != std::string::npos)
            return std::strtod(
                cell.journalText.c_str() + at + std::strlen(anchor),
                nullptr);
    }
    return 0.0;
}

std::vector<size_t>
paretoFrontier(const std::vector<int> &costs, const std::vector<double> &pars,
               const std::vector<bool> &ok)
{
    PARA_ASSERT(costs.size() == pars.size() && costs.size() == ok.size());
    std::vector<size_t> frontier;
    for (size_t i = 0; i < costs.size(); ++i) {
        if (!ok[i])
            continue;
        bool dominated = false;
        for (size_t j = 0; j < costs.size() && !dominated; ++j) {
            if (j == i || !ok[j])
                continue;
            dominated = costs[j] <= costs[i] && pars[j] >= pars[i] &&
                        (costs[j] < costs[i] || pars[j] > pars[i]);
        }
        if (!dominated)
            frontier.push_back(i);
    }
    std::sort(frontier.begin(), frontier.end(),
              [&](size_t a, size_t b) {
                  if (costs[a] != costs[b])
                      return costs[a] < costs[b];
                  return a < b;
              });
    return frontier;
}

ExploreResult
Explorer::explore(const std::vector<std::string> &inputs,
                  const SweepAxes &axes,
                  const std::vector<core::AnalysisConfig> &configs,
                  const std::vector<std::string> &labels,
                  const Runner &runner) const
{
    PARA_ASSERT(configs.size() == axes.points(),
                "configs must be the buildSweepConfigAxis expansion of axes");
    PARA_ASSERT(labels.size() == configs.size());
    auto started = std::chrono::steady_clock::now();

    const size_t C = configs.size();
    ExploreResult result;
    result.configs = configs;
    result.labels = labels;
    result.axes = axes;
    result.kneeTol = opt_.kneeTol;
    result.cellsTotal = inputs.size() * C;

    std::vector<int> cost(C);
    for (size_t j = 0; j < C; ++j)
        cost[j] = exploreCost(configs[j]);

    // Bound-maximal configs have no provable upper bound in this grid, so
    // they can never be pruned — measure them first: they are the bounds
    // everything else prunes against.
    std::vector<bool> maximal(C, true);
    for (size_t j = 0; j < C; ++j) {
        for (size_t k = 0; k < C && maximal[j]; ++k) {
            std::vector<std::string> moved;
            if (k != j && boundLeq(configs[j], configs[k], opt_.model,
                                   &moved) &&
                !moved.empty())
                maximal[j] = false;
        }
    }

    // Window chains: config indices per stratum (every non-window
    // coordinate fixed), ordered by effective window size. The config
    // cross product nests fus innermost, so the stratum of config j is
    // j % strideW where strideW = C / |windows|, and the chain is
    // {stratum + w * strideW}.
    const size_t strideW = C / axes.windows.size();
    std::vector<size_t> windowOrder(axes.windows.size());
    for (size_t w = 0; w < axes.windows.size(); ++w)
        windowOrder[w] = w;
    std::stable_sort(windowOrder.begin(), windowOrder.end(),
                     [&](size_t a, size_t b) {
                         return windowRank(axes.windows[a]) <
                                windowRank(axes.windows[b]);
                     });

    std::vector<TraceState> traces(inputs.size());
    for (size_t t = 0; t < inputs.size(); ++t) {
        TraceState &ts = traces[t];
        ts.input = inputs[t];
        ts.inputIndex = t;
        ts.slots.resize(C);
        ts.cells.resize(C);
        for (size_t s = 0; s < strideW; ++s) {
            std::vector<size_t> chain;
            chain.reserve(axes.windows.size());
            for (size_t w : windowOrder)
                chain.push_back(s + w * strideW);
            if (chain.size() >= 2) {
                Bracket b;
                b.chain = ts.chains.size();
                b.lo = 0;
                b.hi = chain.size() - 1;
                ts.brackets.push_back(b);
            }
            ts.chains.push_back(std::move(chain));
        }
    }

    // A cell is pruned only with a certificate: a measured bound proving
    // par(c) <= par(b), and a measured dominator beating that bound.
    bool sawApproximate = false;
    auto tryPrune = [&](TraceState &ts, size_t c) -> bool {
        size_t boundIdx = C;
        double boundPar = 0.0;
        std::vector<std::string> boundAxes;
        for (size_t m = 0; m < C; ++m) {
            const Slot &slot = ts.slots[m];
            if (slot.state != Slot::State::Measured || !slot.ok)
                continue;
            std::vector<std::string> moved;
            if (!boundLeq(configs[c], configs[m], opt_.model, &moved))
                continue;
            if (boundIdx == C || slot.par < boundPar) {
                boundIdx = m;
                boundPar = slot.par;
                boundAxes = std::move(moved);
            }
        }
        if (boundIdx == C)
            return false;
        size_t domIdx = C;
        bool approximate = false;
        for (size_t d = 0; d < C && domIdx == C; ++d) {
            const Slot &slot = ts.slots[d];
            if (slot.state != Slot::State::Measured || !slot.ok)
                continue;
            if (cost[d] > cost[c])
                continue;
            if (slot.par >= boundPar &&
                (cost[d] < cost[c] || slot.par > boundPar))
                domIdx = d;
        }
        if (domIdx == C && opt_.kneeTol > 0.0) {
            // Approximate mode: accept a dominator within the tolerance
            // of the bound (strictly cheaper, so the prune still cannot
            // manufacture a fake frontier tie).
            for (size_t d = 0; d < C && domIdx == C; ++d) {
                const Slot &slot = ts.slots[d];
                if (slot.state != Slot::State::Measured || !slot.ok)
                    continue;
                if (cost[d] < cost[c] && slot.par >= boundPar - opt_.kneeTol) {
                    domIdx = d;
                    approximate = true;
                }
            }
        }
        if (domIdx == C)
            return false;
        ExplorePruned pruned;
        pruned.configIndex = c;
        pruned.cost = cost[c];
        pruned.label = labels[c];
        pruned.certificate.axes = std::move(boundAxes);
        pruned.certificate.boundConfigIndex = boundIdx;
        pruned.certificate.boundParallelism = boundPar;
        pruned.certificate.dominatorConfigIndex = domIdx;
        pruned.certificate.dominatorParallelism = ts.slots[domIdx].par;
        pruned.certificate.dominatorCost = cost[domIdx];
        pruned.certificate.approximate = approximate;
        sawApproximate = sawApproximate || approximate;
        ts.pruned.push_back(std::move(pruned));
        ts.slots[c].state = Slot::State::Pruned;
        return true;
    };

    auto schedule = [&](TraceState &ts, size_t c) {
        if (ts.slots[c].state != Slot::State::Unknown)
            return;
        ts.slots[c].state = Slot::State::Scheduled;
        ts.scheduled.push_back(c);
    };

    // Bisection bookkeeping: shrink a bracket past resolved endpoints,
    // collapse it when the knee cannot lie inside, or split at the
    // midpoint. Returns brackets still waiting on measurements.
    auto refineBrackets = [&](TraceState &ts) {
        std::vector<Bracket> pending;
        std::vector<Bracket> work = std::move(ts.brackets);
        ts.brackets.clear();
        while (!work.empty()) {
            Bracket b = work.back();
            work.pop_back();
            const std::vector<size_t> &chain = ts.chains[b.chain];
            // Endpoints pruned by the generic sweep: the bracket narrows
            // to the unresolved core (its certificate already covers the
            // dropped end).
            while (b.lo < b.hi &&
                   ts.slots[chain[b.lo]].state == Slot::State::Pruned)
                ++b.lo;
            while (b.hi > b.lo &&
                   ts.slots[chain[b.hi]].state == Slot::State::Pruned)
                --b.hi;
            if (b.lo >= b.hi) {
                size_t c = chain[b.lo];
                if (ts.slots[c].state == Slot::State::Unknown &&
                    !tryPrune(ts, c))
                    schedule(ts, c);
                continue;
            }
            Slot &lo = ts.slots[chain[b.lo]];
            Slot &hi = ts.slots[chain[b.hi]];
            if (lo.state == Slot::State::Unknown)
                schedule(ts, chain[b.lo]);
            if (hi.state == Slot::State::Unknown)
                schedule(ts, chain[b.hi]);
            if (lo.state == Slot::State::Scheduled ||
                hi.state == Slot::State::Scheduled) {
                pending.push_back(b); // endpoints still in flight
                continue;
            }
            bool endpointsUsable = lo.state == Slot::State::Measured &&
                                   lo.ok &&
                                   hi.state == Slot::State::Measured &&
                                   hi.ok;
            bool collapsed =
                endpointsUsable && hi.par - lo.par <= opt_.kneeTol;
            if (collapsed || b.hi - b.lo <= 1) {
                // Plateau (or nothing between): interiors are dominated
                // through the hi bound — prune, measuring any stragglers
                // the cost model cannot strictly separate.
                for (size_t p = b.lo + 1; p < b.hi; ++p) {
                    size_t c = chain[p];
                    if (ts.slots[c].state == Slot::State::Unknown &&
                        !tryPrune(ts, c))
                        schedule(ts, c);
                }
                continue;
            }
            if (!endpointsUsable) {
                // A failed endpoint cannot anchor the knee search; fall
                // back to measuring the interval (pruning what it can).
                for (size_t p = b.lo + 1; p < b.hi; ++p) {
                    size_t c = chain[p];
                    if (ts.slots[c].state == Slot::State::Unknown &&
                        !tryPrune(ts, c))
                        schedule(ts, c);
                }
                continue;
            }
            // Split at the unresolved interior nearest the center; the
            // seeded bit breaks exact-distance ties deterministically.
            double center = (static_cast<double>(b.lo) + b.hi) / 2.0;
            size_t mid = b.hi;
            double best = -1.0;
            for (size_t p = b.lo + 1; p < b.hi; ++p) {
                if (ts.slots[chain[p]].state == Slot::State::Pruned ||
                    ts.slots[chain[p]].state == Slot::State::Failed)
                    continue;
                double dist =
                    center > p ? center - p : static_cast<double>(p) - center;
                if (mid == b.hi || dist < best ||
                    (dist == best &&
                     (mix64(opt_.seed ^ ts.inputIndex * 0x9e3779b9ULL ^
                            chain[p]) &
                      1))) {
                    mid = p;
                    best = dist;
                }
            }
            if (mid == b.hi)
                continue; // every interior already resolved
            if (ts.slots[chain[mid]].state == Slot::State::Unknown)
                schedule(ts, chain[mid]);
            Bracket lower{b.chain, b.lo, mid};
            Bracket upper{b.chain, mid, b.hi};
            pending.push_back(lower);
            pending.push_back(upper);
        }
        ts.brackets = std::move(pending);
    };

    // Successive halving over cells no bracket will resolve (window
    // chains of length one, e.g. a pure FU or predictor grid): measure
    // the most promising half each rung — bound-maximal corners first,
    // then cheapest (the strongest dominators), seeded tie-break.
    auto halve = [&](TraceState &ts) {
        if (!ts.scheduled.empty() || !ts.brackets.empty())
            return;
        std::vector<size_t> candidates;
        for (size_t c = 0; c < C; ++c)
            if (ts.slots[c].state == Slot::State::Unknown)
                candidates.push_back(c);
        if (candidates.empty())
            return;
        std::sort(candidates.begin(), candidates.end(),
                  [&](size_t a, size_t b) {
                      if (maximal[a] != maximal[b])
                          return static_cast<bool>(maximal[a]);
                      if (cost[a] != cost[b])
                          return cost[a] < cost[b];
                      uint64_t ha = mix64(opt_.seed ^
                                          (ts.inputIndex << 32) ^ a);
                      uint64_t hb = mix64(opt_.seed ^
                                          (ts.inputIndex << 32) ^ b);
                      if (ha != hb)
                          return ha < hb;
                      return a < b;
                  });
        size_t take = (candidates.size() + 1) / 2;
        for (size_t i = 0; i < take; ++i)
            schedule(ts, candidates[i]);
    };

    for (;;) {
        // Prune sweep first: every new measurement can retire cells that
        // would otherwise be scheduled below.
        for (TraceState &ts : traces)
            for (size_t c = 0; c < C; ++c)
                if (ts.slots[c].state == Slot::State::Unknown)
                    tryPrune(ts, c);
        for (TraceState &ts : traces) {
            // Refine to a fixpoint: a pass can split a bracket whose
            // midpoint is already measured without scheduling anything —
            // keep going until the pass schedules work or changes nothing.
            for (;;) {
                std::vector<Bracket> before = ts.brackets;
                refineBrackets(ts);
                bool same =
                    ts.brackets.size() == before.size() &&
                    std::equal(ts.brackets.begin(), ts.brackets.end(),
                               before.begin(),
                               [](const Bracket &a, const Bracket &b) {
                                   return a.chain == b.chain &&
                                          a.lo == b.lo && a.hi == b.hi;
                               });
                if (same || !ts.scheduled.empty())
                    break;
            }
            halve(ts);
        }

        std::vector<SweepJob> jobs;
        std::vector<std::pair<size_t, size_t>> jobSlot; // (trace, config)
        for (TraceState &ts : traces) {
            std::sort(ts.scheduled.begin(), ts.scheduled.end());
            for (size_t c : ts.scheduled) {
                SweepJob job;
                job.input = ts.input;
                job.config = configs[c];
                job.configLabel = labels[c];
                job.inputIndex = ts.inputIndex;
                job.configIndex = c;
                jobs.push_back(std::move(job));
                jobSlot.emplace_back(ts.inputIndex, c);
            }
            ts.scheduled.clear();
        }
        if (jobs.empty())
            break;

        ++result.rounds;
        std::vector<SweepCell> cells = runner(std::move(jobs));
        PARA_ASSERT(cells.size() == jobSlot.size(),
                    "explore runner must return one cell per job");
        for (size_t k = 0; k < cells.size(); ++k) {
            TraceState &ts = traces[jobSlot[k].first];
            size_t c = jobSlot[k].second;
            Slot &slot = ts.slots[c];
            slot.ok = exploreCellOk(cells[k]);
            slot.state = slot.ok ? Slot::State::Measured
                                 : Slot::State::Failed;
            if (slot.ok)
                slot.par = exploreCellParallelism(cells[k]);
            ts.cells[c] = std::move(cells[k]);
        }
    }

    result.exact = !sawApproximate;
    for (TraceState &ts : traces) {
        ExploreTrace out;
        out.input = ts.input;
        out.inputIndex = ts.inputIndex;
        std::vector<double> pars(C, 0.0);
        std::vector<bool> ok(C, false);
        for (size_t c = 0; c < C; ++c) {
            switch (ts.slots[c].state) {
              case Slot::State::Measured:
                ok[c] = ts.slots[c].ok;
                pars[c] = ts.slots[c].par;
                out.cells.push_back(std::move(ts.cells[c]));
                break;
              case Slot::State::Failed:
                ++out.cellsFailed;
                out.cells.push_back(std::move(ts.cells[c]));
                break;
              case Slot::State::Pruned:
                break;
              case Slot::State::Unknown:
              case Slot::State::Scheduled:
                PARA_PANIC("unresolved cell after exploration");
            }
        }
        out.frontier = paretoFrontier(cost, pars, ok);
        std::sort(ts.pruned.begin(), ts.pruned.end(),
                  [](const ExplorePruned &a, const ExplorePruned &b) {
                      return a.configIndex < b.configIndex;
                  });
        out.pruned = std::move(ts.pruned);
        result.cellsExecuted += out.cells.size();
        result.cellsPruned += out.pruned.size();
        result.cellsFailed += out.cellsFailed;
        result.traces.push_back(std::move(out));
    }
    result.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
    return result;
}

namespace {

/** Measured-cell lookup for certificate verification. */
struct MeasuredMap
{
    std::vector<bool> ok;
    std::vector<double> par;

    explicit MeasuredMap(size_t configs)
        : ok(configs, false), par(configs, 0.0)
    {
    }
};

MeasuredMap
measuredOf(const ExploreTrace &trace, size_t configs)
{
    MeasuredMap map(configs);
    for (const SweepCell &cell : trace.cells) {
        size_t j = cell.job.configIndex;
        if (j < configs && exploreCellOk(cell)) {
            map.ok[j] = true;
            map.par[j] = exploreCellParallelism(cell);
        }
    }
    return map;
}

} // namespace

bool
verifyExploreCertificates(const ExploreResult &result, std::string &diag)
{
    const size_t C = result.configs.size();
    const ExploreModel sound; // certificates must hold under the theorems
    for (const ExploreTrace &trace : result.traces) {
        MeasuredMap measured = measuredOf(trace, C);
        for (const ExplorePruned &p : trace.pruned) {
            const ExploreCertificate &cert = p.certificate;
            if (p.configIndex >= C || cert.boundConfigIndex >= C ||
                cert.dominatorConfigIndex >= C) {
                diag = strFormat("trace %zu: certificate for cell %zu "
                                 "references out-of-grid indices",
                                 trace.inputIndex, p.configIndex);
                return false;
            }
            if (!measured.ok[cert.boundConfigIndex] ||
                !measured.ok[cert.dominatorConfigIndex]) {
                diag = strFormat("trace %zu cell %zu: bound %zu or "
                                 "dominator %zu is not a measured-ok cell",
                                 trace.inputIndex, p.configIndex,
                                 cert.boundConfigIndex,
                                 cert.dominatorConfigIndex);
                return false;
            }
            std::vector<std::string> axes;
            if (!boundLeq(result.configs[p.configIndex],
                          result.configs[cert.boundConfigIndex], sound,
                          &axes)) {
                diag = strFormat("trace %zu cell %zu: bound %zu is not "
                                 "reachable by sound monotone moves",
                                 trace.inputIndex, p.configIndex,
                                 cert.boundConfigIndex);
                return false;
            }
            if (axes != cert.axes) {
                diag = strFormat("trace %zu cell %zu: certificate axes do "
                                 "not match the actual bound move",
                                 trace.inputIndex, p.configIndex);
                return false;
            }
            double boundPar = measured.par[cert.boundConfigIndex];
            double domPar = measured.par[cert.dominatorConfigIndex];
            int cellCost = exploreCost(result.configs[p.configIndex]);
            int domCost =
                exploreCost(result.configs[cert.dominatorConfigIndex]);
            if (cert.boundParallelism != boundPar ||
                cert.dominatorParallelism != domPar ||
                cert.dominatorCost != domCost || p.cost != cellCost) {
                diag = strFormat("trace %zu cell %zu: certificate values "
                                 "disagree with the measured cells",
                                 trace.inputIndex, p.configIndex);
                return false;
            }
            bool dominated;
            if (cert.approximate) {
                dominated = result.kneeTol > 0.0 && domCost < cellCost &&
                            domPar >= boundPar - result.kneeTol;
            } else {
                dominated = domCost <= cellCost && domPar >= boundPar &&
                            (domCost < cellCost || domPar > boundPar);
            }
            if (!dominated) {
                diag = strFormat(
                    "trace %zu cell %zu: dominator %zu (cost %d, par %s) "
                    "does not dominate the bound (par %s)",
                    trace.inputIndex, p.configIndex,
                    cert.dominatorConfigIndex, domCost,
                    jsonDouble(domPar).c_str(),
                    jsonDouble(boundPar).c_str());
                return false;
            }
        }
    }
    return true;
}

bool
verifyExploreAgainstGrid(const ExploreResult &result, const SweepResult &grid,
                         const SweepJsonOptions &jsonOpt, std::string &diag)
{
    const size_t C = result.configs.size();
    if (grid.cells.size() != result.traces.size() * C) {
        diag = strFormat("grid has %zu cells; explore grid is %zu x %zu",
                         grid.cells.size(), result.traces.size(), C);
        return false;
    }
    if (!verifyExploreCertificates(result, diag))
        return false;

    std::vector<int> cost(C);
    for (size_t j = 0; j < C; ++j)
        cost[j] = exploreCost(result.configs[j]);

    for (const ExploreTrace &trace : result.traces) {
        const SweepCell *gridRow = &grid.cells[trace.inputIndex * C];
        std::vector<double> gridPar(C, 0.0);
        std::vector<bool> gridOk(C, false);
        for (size_t j = 0; j < C; ++j) {
            gridOk[j] = exploreCellOk(gridRow[j]);
            if (gridOk[j])
                gridPar[j] = exploreCellParallelism(gridRow[j]);
        }

        for (const SweepCell &cell : trace.cells) {
            size_t j = cell.job.configIndex;
            if (j >= C) {
                diag = strFormat("trace %zu: executed cell has config "
                                 "index %zu outside the grid",
                                 trace.inputIndex, j);
                return false;
            }
            std::string mine = cellToJson(cell, jsonOpt);
            std::string twin = cellToJson(gridRow[j], jsonOpt);
            if (mine != twin) {
                diag = strFormat("trace %zu config %zu: executed cell "
                                 "JSON differs from its grid twin",
                                 trace.inputIndex, j);
                return false;
            }
        }

        // Exact mode (no certificate leaned on the tolerance): dominance
        // through pruned cells is transitive to their measured
        // dominators, so the frontiers must agree cell-for-cell.
        if (result.exact) {
            std::vector<size_t> expect =
                paretoFrontier(cost, gridPar, gridOk);
            if (expect != trace.frontier) {
                diag = strFormat("trace %zu: explorer frontier (%zu cells) "
                                 "!= grid frontier (%zu cells)",
                                 trace.inputIndex, trace.frontier.size(),
                                 expect.size());
                return false;
            }
        }

        for (const ExplorePruned &p : trace.pruned) {
            if (!gridOk[p.configIndex])
                continue; // grid twin failed: nothing to compare
            double actual = gridPar[p.configIndex];
            double slack = p.certificate.approximate ? result.kneeTol : 0.0;
            // The theorem's claim, checked empirically: the pruned cell's
            // true parallelism may not exceed its recorded bound.
            if (actual > p.certificate.boundParallelism + slack) {
                diag = strFormat(
                    "trace %zu cell %zu: measured par %s exceeds its "
                    "certificate bound %s — unsound prune",
                    trace.inputIndex, p.configIndex,
                    jsonDouble(actual).c_str(),
                    jsonDouble(p.certificate.boundParallelism).c_str());
                return false;
            }
            double domPar = p.certificate.dominatorParallelism;
            int domCost = p.certificate.dominatorCost;
            bool dominated = domCost <= p.cost &&
                             domPar + slack >= actual &&
                             (domCost < p.cost || domPar > actual);
            if (!dominated) {
                diag = strFormat("trace %zu cell %zu: pruned cell is not "
                                 "actually dominated (par %s, cost %d)",
                                 trace.inputIndex, p.configIndex,
                                 jsonDouble(actual).c_str(), p.cost);
                return false;
            }
        }
    }
    return true;
}

void
writeExploreJson(std::ostream &os, const ExploreResult &result,
                 const SweepJsonOptions &opt)
{
    // Executed cells must stay byte-identical to their full-grid twins,
    // so cell fragments are rendered through the exact writer the sweep
    // document and the daemon's result store use — timing excluded, which
    // is the form grids are diffed in.
    SweepJsonOptions cellOpt = opt;
    cellOpt.timing = false;
    cellOpt.stats = false;

    os << "{\n";
    os << "  \"schema\": \"paragraph-explore-v1\",\n";
    os << "  \"knee_tol\": " << jsonDouble(result.kneeTol) << ",\n";
    os << "  \"exact\": " << (result.exact ? "true" : "false") << ",\n";
    os << "  \"inputs\": " << result.traces.size() << ",\n";
    os << "  \"configs\": " << result.configs.size() << ",\n";
    os << "  \"cells_total\": " << result.cellsTotal << ",\n";
    os << "  \"cells_executed\": " << result.cellsExecuted << ",\n";
    os << "  \"cells_pruned\": " << result.cellsPruned << ",\n";
    os << "  \"cells_failed\": " << result.cellsFailed << ",\n";
    os << "  \"rounds\": " << result.rounds << ",\n";
    if (opt.timing) {
        os << "  \"jobs\": " << result.jobs << ",\n";
        os << "  \"timing\": {\"wall_seconds\": "
           << jsonDouble(result.wallSeconds) << "},\n";
    }
    os << "  \"traces\": [";
    bool firstTrace = true;
    for (const ExploreTrace &trace : result.traces) {
        os << (firstTrace ? "" : ",") << "\n";
        firstTrace = false;
        os << "    {\n";
        os << "      \"input\": " << jsonString(trace.input) << ",\n";
        os << "      \"input_index\": " << trace.inputIndex << ",\n";
        os << "      \"cells_total\": " << result.configs.size() << ",\n";
        os << "      \"cells_executed\": " << trace.cells.size() << ",\n";
        os << "      \"cells_pruned\": " << trace.pruned.size() << ",\n";
        os << "      \"cells_failed\": " << trace.cellsFailed << ",\n";
        os << "      \"cells\": [";
        bool first = true;
        for (const SweepCell &cell : trace.cells) {
            os << (first ? "" : ",") << "\n";
            os << cellToJson(cell, cellOpt);
            first = false;
        }
        if (!first)
            os << "\n      ";
        os << "],\n";
        os << "      \"frontier\": [";
        first = true;
        for (size_t j : trace.frontier) {
            os << (first ? "" : ",") << "\n";
            os << "        {\"config_index\": " << j
               << ", \"label\": " << jsonString(result.labels[j])
               << ", \"cost\": " << exploreCost(result.configs[j]);
            for (const SweepCell &cell : trace.cells) {
                if (cell.job.configIndex == j) {
                    os << ", \"parallelism\": "
                       << jsonDouble(exploreCellParallelism(cell));
                    break;
                }
            }
            os << "}";
            first = false;
        }
        if (!first)
            os << "\n      ";
        os << "],\n";
        os << "      \"pruned\": [";
        first = true;
        for (const ExplorePruned &p : trace.pruned) {
            const ExploreCertificate &cert = p.certificate;
            os << (first ? "" : ",") << "\n";
            os << "        {\"config_index\": " << p.configIndex
               << ", \"label\": " << jsonString(p.label)
               << ", \"cost\": " << p.cost << ",\n";
            os << "         \"certificate\": {\"axes\": [";
            for (size_t a = 0; a < cert.axes.size(); ++a)
                os << (a ? ", " : "") << jsonString(cert.axes[a]);
            os << "], \"direction\": \"up\",\n";
            os << "          \"bound_config_index\": "
               << cert.boundConfigIndex << ", \"bound_parallelism\": "
               << jsonDouble(cert.boundParallelism) << ",\n";
            os << "          \"dominator_config_index\": "
               << cert.dominatorConfigIndex << ", \"dominator_cost\": "
               << cert.dominatorCost << ", \"dominator_parallelism\": "
               << jsonDouble(cert.dominatorParallelism)
               << ", \"approximate\": "
               << (cert.approximate ? "true" : "false") << "}}";
            first = false;
        }
        if (!first)
            os << "\n      ";
        os << "]\n";
        os << "    }";
    }
    if (!firstTrace)
        os << "\n  ";
    os << "]\n";
    os << "}\n";
}

std::string
exploreToJson(const ExploreResult &result, const SweepJsonOptions &opt)
{
    std::ostringstream oss;
    writeExploreJson(oss, result, opt);
    return oss.str();
}

} // namespace engine
} // namespace paragraph
