#include "engine/sweep_json.hpp"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "support/string_utils.hpp"

namespace paragraph {
namespace engine {

std::string
jsonDouble(double v)
{
    if (!std::isfinite(v)) // JSON has no inf/nan
        return "null";
    for (int prec = 1; prec <= 17; ++prec) {
        std::string s = strFormat("%.*g", prec, v);
        if (std::strtod(s.c_str(), nullptr) == v)
            return s;
    }
    return strFormat("%.17g", v);
}

std::string
jsonString(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strFormat("\\u%04x", c);
            else
                out += c;
        }
    }
    out += '"';
    return out;
}

namespace {

const char *
predictorJsonName(core::PredictorKind kind)
{
    return core::predictorKindName(kind);
}

void
writeConfig(std::ostream &os, const SweepJob &job, const char *ind)
{
    const core::AnalysisConfig &cfg = job.config;
    os << ind << "\"config\": {\n";
    os << ind << "  \"label\": " << jsonString(job.configLabel) << ",\n";
    os << ind << "  \"syscalls\": \""
       << (cfg.sysCallsStall ? "stall" : "ignore") << "\",\n";
    os << ind << "  \"rename_regs\": "
       << (cfg.renameRegisters ? "true" : "false") << ",\n";
    os << ind << "  \"rename_stack\": "
       << (cfg.renameStack ? "true" : "false") << ",\n";
    os << ind << "  \"rename_data\": " << (cfg.renameData ? "true" : "false")
       << ",\n";
    os << ind << "  \"window\": " << cfg.windowSize << ",\n";
    os << ind << "  \"predictor\": \""
       << predictorJsonName(cfg.branchPredictor) << "\",\n";
    os << ind << "  \"total_fus\": " << cfg.totalFuLimit << ",\n";
    os << ind << "  \"pipelined_fus\": "
       << (cfg.pipelinedFus ? "true" : "false") << ",\n";
    os << ind << "  \"max_instructions\": " << cfg.maxInstructions << "\n";
    os << ind << "}";
}

void
writeProfile(std::ostream &os, const BucketedProfile &profile,
             const char *ind)
{
    os << ind << "\"profile\": [";
    bool first = true;
    for (const BucketedProfile::Point &p : profile.series()) {
        os << (first ? "" : ",") << "\n"
           << ind << "  {\"first_level\": " << p.firstLevel
           << ", \"last_level\": " << p.lastLevel
           << ", \"ops_per_level\": " << jsonDouble(p.opsPerLevel) << "}";
        first = false;
    }
    if (!first)
        os << "\n" << ind;
    os << "]";
}

void
writeCell(std::ostream &os, const SweepCell &cell,
          const SweepJsonOptions &opt)
{
    // Cells satisfied from a resume journal carry their original rendering;
    // splicing it verbatim is what makes a resumed document byte-identical
    // to an uninterrupted run's.
    if (cell.status == SweepCell::Status::Skipped &&
        !cell.journalText.empty()) {
        os << cell.journalText;
        return;
    }

    const core::AnalysisResult &r = cell.result;
    os << "    {\n";
    os << "      \"input\": " << jsonString(cell.job.input) << ",\n";
    os << "      \"input_index\": " << cell.job.inputIndex << ",\n";
    os << "      \"config_index\": " << cell.job.configIndex << ",\n";
    writeConfig(os, cell.job, "      ");
    os << ",\n";
    if (cell.status == SweepCell::Status::Failed) {
        os << "      \"status\": \"failed\",\n";
        os << "      \"error\": " << jsonString(cell.errorMessage) << ",\n";
        os << "      \"attempts\": " << cell.attempts << "\n";
        os << "    }";
        return;
    }
    os << "      \"status\": \"ok\",\n";
    if (cell.attempts > 1)
        os << "      \"attempts\": " << cell.attempts << ",\n";
    os << "      \"instructions\": " << r.instructions << ",\n";
    os << "      \"placed_ops\": " << r.placedOps << ",\n";
    os << "      \"critical_path\": " << r.criticalPathLength << ",\n";
    os << "      \"available_parallelism\": "
       << jsonDouble(r.availableParallelism) << ",\n";
    os << "      \"syscalls\": " << r.sysCalls << ",\n";
    os << "      \"firewalls\": " << r.firewalls << ",\n";
    os << "      \"pre_existing_values\": " << r.preExistingValues << ",\n";
    os << "      \"storage_delayed_ops\": " << r.storageDelayedOps << ",\n";
    os << "      \"fu_delayed_ops\": " << r.fuDelayedOps << ",\n";
    os << "      \"cond_branches\": " << r.condBranches << ",\n";
    os << "      \"branch_mispredictions\": " << r.branchMispredictions
       << ",\n";
    os << "      \"live_well_peak\": " << r.liveWellPeak << ",\n";
    os << "      \"live_well_final\": " << r.liveWellFinal << ",\n";
    os << "      \"lifetime_mean\": " << jsonDouble(r.lifetimes.mean())
       << ",\n";
    os << "      \"sharing_mean\": " << jsonDouble(r.sharing.mean());
    if (opt.profiles) {
        os << ",\n";
        writeProfile(os, r.profile, "      ");
    }
    if (opt.timing) {
        os << ",\n";
        os << "      \"timing\": {\"wall_seconds\": "
           << jsonDouble(cell.wallSeconds)
           << ", \"minstr_per_sec\": " << jsonDouble(cell.minstrPerSec);
        if (opt.stats) {
            double analyze = cell.wallSeconds - cell.decodeSeconds;
            if (analyze < 0.0) // shard threads decode concurrently
                analyze = 0.0;
            os << ",\n        \"decode_seconds\": "
               << jsonDouble(cell.decodeSeconds)
               << ", \"analyze_seconds\": " << jsonDouble(analyze)
               << ", \"shard_segments\": " << cell.shardSegments
               << ", \"shard_spliced\": " << cell.shardSpliced
               << ", \"shard_replayed\": " << cell.shardReplayed;
        }
        os << "}";
    }
    os << "\n    }";
}

} // namespace

void
writeSweepJson(std::ostream &os, const SweepResult &sweep,
               const SweepJsonOptions &opt)
{
    size_t failed = 0;
    for (const SweepCell &cell : sweep.cells) {
        if (cell.status == SweepCell::Status::Failed)
            ++failed;
    }
    os << "{\n";
    os << "  \"schema\": \"paragraph-sweep-v3\",\n";
    os << "  \"cells_total\": " << sweep.cells.size() << ",\n";
    os << "  \"cells_failed\": " << failed << ",\n";
    if (opt.timing) {
        os << "  \"jobs\": " << sweep.jobs << ",\n";
        os << "  \"timing\": {\"wall_seconds\": "
           << jsonDouble(sweep.wallSeconds)
           << ", \"capture_seconds\": " << jsonDouble(sweep.captureSeconds)
           << ", \"total_instructions\": " << sweep.totalInstructions
           << ", \"aggregate_minstr_per_sec\": "
           << jsonDouble(sweep.aggregateMinstrPerSec);
        if (opt.stats) {
            double decode = 0.0;
            for (const SweepCell &cell : sweep.cells)
                decode += cell.decodeSeconds;
            os << ",\n    \"decode_seconds\": " << jsonDouble(decode);
        }
        os << "},\n";
    }
    os << "  \"cells\": [";
    bool first = true;
    for (const SweepCell &cell : sweep.cells) {
        os << (first ? "" : ",") << "\n";
        writeCell(os, cell, opt);
        first = false;
    }
    if (!first)
        os << "\n  ";
    os << "]\n";
    os << "}\n";
}

std::string
cellToJson(const SweepCell &cell, const SweepJsonOptions &opt)
{
    std::ostringstream oss;
    writeCell(oss, cell, opt);
    return oss.str();
}

std::string
sweepToJson(const SweepResult &sweep, const SweepJsonOptions &opt)
{
    std::ostringstream oss;
    writeSweepJson(oss, sweep, opt);
    return oss.str();
}

} // namespace engine
} // namespace paragraph
