/**
 * @file
 * Config fingerprinting: a canonical, content-addressed key for an
 * AnalysisConfig.
 *
 * The sweep journal, and the paragraph-serve result cache built on top of
 * it, need to answer "is this the same analysis?" without trusting the
 * human-readable axis label. configKey() serializes every analysis-relevant
 * field of core::AnalysisConfig into one canonical text form (fixed field
 * order, fixed encodings, independent of how the config was constructed)
 * and hashes it with the same CRC-32 the trace tier uses — so a cell
 * computed under a config is identified by (trace CRC-32, config key)
 * forever, across processes, clients, and daemon restarts.
 *
 * Excluded by design: AnalysisConfig::cancel (a runtime control channel,
 * not part of what is computed). Everything else — the paper switches, the
 * latency table, FU limits, instruction caps, and the metric-collection
 * flags that change which numbers exist — participates, because any of
 * them changes the rendered cell JSON.
 */

#ifndef PARAGRAPH_ENGINE_CONFIG_KEY_HPP
#define PARAGRAPH_ENGINE_CONFIG_KEY_HPP

#include <cstdint>
#include <string>

#include "core/config.hpp"

namespace paragraph {
namespace engine {

/** The canonical serialization configKey() hashes (stable across releases
 *  of this repo; bump the leading version tag if a field is ever added). */
std::string canonicalConfigText(const core::AnalysisConfig &cfg);

/** CRC-32 of canonicalConfigText(). Equal configs — however constructed —
 *  produce equal keys. */
uint32_t configKey(const core::AnalysisConfig &cfg);

/** configKey() as fixed-width lowercase hex (8 chars), the form stored in
 *  journal lines and result-store keys. */
std::string configKeyHex(const core::AnalysisConfig &cfg);

} // namespace engine
} // namespace paragraph

#endif // PARAGRAPH_ENGINE_CONFIG_KEY_HPP
