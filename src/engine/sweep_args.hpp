/**
 * @file
 * paragraph-sweep argument parsing as a library.
 *
 * Extracted from tools/sweep_main.cpp so the parser (a) can be fuzzed —
 * the PARAGRAPH_FUZZ libFuzzer target drives parseSweepArgs() with
 * adversarial argument vectors, which a parser that printed-and-exited
 * could never survive — and (b) reports errors as values: every failure
 * path returns false with a message instead of calling exit(), leaving
 * usage text and process exit codes to the CLI shell.
 */

#ifndef PARAGRAPH_ENGINE_SWEEP_ARGS_HPP
#define PARAGRAPH_ENGINE_SWEEP_ARGS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "engine/sweep_json.hpp"

namespace paragraph {
namespace engine {

/** Everything the paragraph-sweep command line can express. */
struct SweepArgs
{
    std::vector<std::string> inputs;
    std::vector<uint64_t> windows;
    std::vector<std::string> renames;
    std::vector<std::string> syscalls;
    std::vector<std::string> predictors;
    std::vector<uint32_t> fus;
    uint64_t maxInstructions = 0;
    unsigned jobs = 0;
    unsigned group = 0;  // 0 = auto (one fused pass per worker share)
    unsigned shards = 1; // split-and-patch segments per solo cell
    unsigned retries = 0;
    double deadlineSeconds = 0.0;
    bool small = false;
    bool stream = false;
    bool quiet = false;
    bool listRequested = false; ///< --list: print workloads and exit
    bool explore = false;       ///< adaptive exploration instead of the grid
    double kneeTol = 0.0;       ///< --knee-tol: parallelism tolerance for
                                ///< window-knee bracket collapse (0 = exact)
    std::string outPath;
    std::string journalPath;
    std::string resumePath;
    SweepJsonOptions json;
};

/**
 * The defaulted axis point lists behind one sweep grid: what
 * buildSweepConfigAxis crosses, in cross-product nesting order
 * (windows → renames → syscalls → predictors → fus). The explorer needs
 * the individual axes — not just the flattened config list — to decompose
 * a config index back into axis coordinates for its monotonicity
 * reasoning.
 */
struct SweepAxes
{
    std::vector<uint64_t> windows;
    std::vector<std::string> renames;
    std::vector<std::string> syscalls;
    std::vector<std::string> predictors;
    std::vector<uint32_t> fus;

    /** Grid size: the product of the axis lengths. */
    size_t points() const
    {
        return windows.size() * renames.size() * syscalls.size() *
               predictors.size() * fus.size();
    }
};

/** The axis lists @p opt expands to, with unspecified axes replaced by
 *  their single default point (the lists buildSweepConfigAxis crosses). */
SweepAxes defaultedSweepAxes(const SweepArgs &opt);

/**
 * Parse @p args (argv[1..]) into @p out. Never prints or exits.
 * @return false with @p error set on any malformed argument (including a
 *         grid with no inputs, unless --list was requested).
 */
bool parseSweepArgs(const std::vector<std::string> &args, SweepArgs &out,
                    std::string &error);

/**
 * Expand the parsed axes into the config cross product with one label per
 * cell. Unspecified axes contribute their single default point.
 * @return false with @p error set on a bad axis value.
 */
bool buildSweepConfigAxis(const SweepArgs &opt,
                          std::vector<core::AnalysisConfig> &configs,
                          std::vector<std::string> &labels,
                          std::string &error);

} // namespace engine
} // namespace paragraph

#endif // PARAGRAPH_ENGINE_SWEEP_ARGS_HPP
