#include "engine/config_key.hpp"

#include "core/branch_predictor.hpp"
#include "support/crc32.hpp"
#include "support/string_utils.hpp"

namespace paragraph {
namespace engine {

std::string
canonicalConfigText(const core::AnalysisConfig &cfg)
{
    // Fixed field order, fixed encodings. The text is versioned so a future
    // field addition changes every key instead of silently colliding with
    // pre-existing stores.
    std::string s = "paragraph-config-v1";
    auto flag = [&s](const char *name, bool v) {
        s += ';';
        s += name;
        s += v ? "=1" : "=0";
    };
    auto num = [&s](const char *name, uint64_t v) {
        s += ';';
        s += name;
        s += '=';
        s += std::to_string(v);
    };

    flag("syscalls_stall", cfg.sysCallsStall);
    flag("rename_regs", cfg.renameRegisters);
    flag("rename_data", cfg.renameData);
    flag("rename_stack", cfg.renameStack);
    num("window", cfg.windowSize);
    s += ";predictor=";
    s += core::predictorKindName(cfg.branchPredictor);
    num("predictor_bits", cfg.predictorTableBits);
    s += ";fu_limit=";
    for (size_t i = 0; i < cfg.fuLimit.size(); ++i) {
        if (i)
            s += ',';
        s += std::to_string(cfg.fuLimit[i]);
    }
    num("total_fus", cfg.totalFuLimit);
    flag("pipelined_fus", cfg.pipelinedFus);
    s += ";latency=";
    for (size_t i = 0; i < cfg.latency.size(); ++i) {
        if (i)
            s += ',';
        s += std::to_string(cfg.latency[i]);
    }
    num("max_instructions", cfg.maxInstructions);
    num("profile_bins", cfg.profileBins);
    flag("lifetimes", cfg.collectLifetimes);
    flag("sharing", cfg.collectSharing);
    flag("storage_profile", cfg.collectStorageProfile);
    flag("last_use_eviction", cfg.useLastUseEviction);
    return s;
}

uint32_t
configKey(const core::AnalysisConfig &cfg)
{
    std::string text = canonicalConfigText(cfg);
    return crc32Of(text.data(), text.size());
}

std::string
configKeyHex(const core::AnalysisConfig &cfg)
{
    return strFormat("%08x", configKey(cfg));
}

} // namespace engine
} // namespace paragraph
