/**
 * @file
 * Cell execution: the fault-isolated solo and fused analysis paths shared
 * by SweepEngine (one-shot grids) and SweepScheduler (the daemon's
 * cross-client submission queue).
 *
 * These functions own the semantics both callers must agree on exactly —
 * the per-cell attempts loop, per-attempt deadline tokens, the rule that
 * cancellation is final while ordinary failures retry, and the fused-group
 * demotion rule (an engine that throws mid-group re-runs its cell solo
 * without consuming an attempt; a group-level input error demotes every
 * member). Keeping them in one place is what makes a daemon-served cell
 * byte-identical to the same cell from a paragraph-sweep run.
 */

#ifndef PARAGRAPH_ENGINE_CELL_EXEC_HPP
#define PARAGRAPH_ENGINE_CELL_EXEC_HPP

#include <functional>
#include <vector>

#include "engine/sweep.hpp"
#include "engine/trace_repository.hpp"

namespace paragraph {
namespace engine {

/** The slice of SweepEngine::Options cell execution depends on. */
struct CellExecOptions
{
    /** Re-run a failed cell up to this many extra times (cancelled or
     *  deadline-expired attempts are final). */
    unsigned maxRetries = 0;

    /** Per-attempt cooperative deadline in seconds; 0 = none. */
    double cellDeadlineSeconds = 0.0;

    /** Split a solo cell's trace into up to this many independently-
     *  analyzed segments, run on that many threads and patched into the
     *  exact solo result (core/shard.hpp split-and-patch). Applies to
     *  every config — cuts are planned at stall syscalls and mispredicted
     *  branches (plain tiles when the trace offers neither), and each
     *  boundary is validated and spliced, or replayed sequentially when
     *  its splice conditions fail. 1 = off. */
    unsigned shards = 1;
};

/**
 * Run @p cell's attempts loop: guarded capture + analysis, retries for
 * ordinary failures, no retry after cancellation. On return the cell's
 * status, result, attempts, error text, and timing are final. Never
 * throws.
 */
void runCellSolo(TraceRepository &repo, SweepCell &cell,
                 const CellExecOptions &opt);

/**
 * Run @p cells — all carrying jobs for the same input — as one block-major
 * fused pass over the shared trace, applying the demotion rule for
 * failures. @p finish is invoked exactly once per cell, after that cell's
 * status is final (in group order). Never throws.
 */
void runFusedCells(TraceRepository &repo,
                   const std::vector<SweepCell *> &cells,
                   const CellExecOptions &opt,
                   const std::function<void(SweepCell &)> &finish);

/** Rough live-state bytes one engine with this config keeps resident:
 *  base live well + ordering window + profile/lifetime buckets. Used to
 *  clamp fused-group size against a memory budget. */
size_t configFootprint(const core::AnalysisConfig &cfg);

} // namespace engine
} // namespace paragraph

#endif // PARAGRAPH_ENGINE_CELL_EXEC_HPP
