#include "engine/sweep.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <utility>

namespace paragraph {
namespace engine {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

} // namespace

SweepEngine::SweepEngine() : SweepEngine(Options{}) {}

SweepEngine::SweepEngine(Options opt)
    : jobs_(opt.jobs ? opt.jobs : std::thread::hardware_concurrency()),
      progress_(std::move(opt.progress))
{
    if (jobs_ == 0) // hardware_concurrency() may report 0
        jobs_ = 1;
}

SweepResult
SweepEngine::run(TraceRepository &repo,
                 const std::vector<std::string> &inputs,
                 const std::vector<core::AnalysisConfig> &configs,
                 const std::vector<std::string> &configLabels) const
{
    std::vector<SweepJob> grid;
    grid.reserve(inputs.size() * configs.size());
    for (size_t i = 0; i < inputs.size(); ++i) {
        for (size_t j = 0; j < configs.size(); ++j) {
            SweepJob job;
            job.input = inputs[i];
            job.config = configs[j];
            if (j < configLabels.size())
                job.configLabel = configLabels[j];
            else
                job.configLabel = configs[j].describe();
            job.inputIndex = i;
            job.configIndex = j;
            grid.push_back(std::move(job));
        }
    }
    return runJobs(repo, std::move(grid));
}

SweepResult
SweepEngine::runJobs(TraceRepository &repo, std::vector<SweepJob> jobs) const
{
    auto sweepStart = std::chrono::steady_clock::now();

    SweepResult sweep;
    sweep.jobs = jobs_;
    sweep.cells.resize(jobs.size());

    // Capture every distinct input up front, serially: simulation and
    // decompression are the parts that cannot be split across cells, and
    // doing it here (rather than lazily from the pool) keeps the workers'
    // wall-time numbers pure analysis.
    for (const SweepJob &job : jobs)
        repo.get(job.input);
    sweep.captureSeconds = secondsSince(sweepStart);

    std::atomic<size_t> nextJob{0};
    std::atomic<uint64_t> instructionsDone{0};
    std::mutex progressMutex;
    size_t cellsDone = 0;

    auto worker = [&]() {
        for (;;) {
            size_t i = nextJob.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                return;
            SweepCell &cell = sweep.cells[i];
            cell.job = std::move(jobs[i]);

            // Analyze the shared capture directly (bulk path): no cursor
            // object, no virtual dispatch per record.
            std::shared_ptr<const trace::TraceBuffer> buffer =
                repo.get(cell.job.input);
            core::Paragraph analyzer(cell.job.config);
            auto cellStart = std::chrono::steady_clock::now();
            cell.result = analyzer.analyze(*buffer);
            cell.wallSeconds = secondsSince(cellStart);
            cell.minstrPerSec =
                cell.wallSeconds > 0.0
                    ? static_cast<double>(cell.result.instructions) / 1e6 /
                          cell.wallSeconds
                    : 0.0;

            uint64_t total = instructionsDone.fetch_add(
                                 cell.result.instructions,
                                 std::memory_order_relaxed) +
                             cell.result.instructions;
            if (progress_) {
                std::lock_guard<std::mutex> lock(progressMutex);
                ++cellsDone;
                double elapsed = secondsSince(sweepStart);
                progress_(cellsDone, sweep.cells.size(),
                          elapsed > 0.0
                              ? static_cast<double>(total) / 1e6 / elapsed
                              : 0.0);
            }
        }
    };

    unsigned nThreads =
        static_cast<unsigned>(std::min<size_t>(jobs_, jobs.size()));
    if (nThreads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(nThreads);
        for (unsigned t = 0; t < nThreads; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    sweep.wallSeconds = secondsSince(sweepStart);
    sweep.totalInstructions = instructionsDone.load();
    sweep.aggregateMinstrPerSec =
        sweep.wallSeconds > 0.0
            ? static_cast<double>(sweep.totalInstructions) / 1e6 /
                  sweep.wallSeconds
            : 0.0;
    return sweep;
}

} // namespace engine
} // namespace paragraph
