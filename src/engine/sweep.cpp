#include "engine/sweep.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "core/cancel_token.hpp"
#include "engine/journal.hpp"
#include "engine/sweep_json.hpp"
#include "support/panic.hpp"

namespace paragraph {
namespace engine {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

} // namespace

SweepEngine::SweepEngine() : SweepEngine(Options{}) {}

SweepEngine::SweepEngine(Options opt)
    : opt_(std::move(opt)),
      jobs_(opt_.jobs ? opt_.jobs : std::thread::hardware_concurrency())
{
    if (jobs_ == 0) // hardware_concurrency() may report 0
        jobs_ = 1;
}

SweepResult
SweepEngine::run(TraceRepository &repo,
                 const std::vector<std::string> &inputs,
                 const std::vector<core::AnalysisConfig> &configs,
                 const std::vector<std::string> &configLabels) const
{
    std::vector<SweepJob> grid;
    grid.reserve(inputs.size() * configs.size());
    for (size_t i = 0; i < inputs.size(); ++i) {
        for (size_t j = 0; j < configs.size(); ++j) {
            SweepJob job;
            job.input = inputs[i];
            job.config = configs[j];
            if (j < configLabels.size())
                job.configLabel = configLabels[j];
            else
                job.configLabel = configs[j].describe();
            job.inputIndex = i;
            job.configIndex = j;
            grid.push_back(std::move(job));
        }
    }
    return runJobs(repo, std::move(grid));
}

SweepResult
SweepEngine::runJobs(TraceRepository &repo, std::vector<SweepJob> jobs) const
{
    auto sweepStart = std::chrono::steady_clock::now();

    SweepResult sweep;
    sweep.jobs = jobs_;
    sweep.cells.resize(jobs.size());

    std::unique_ptr<SweepJournal> journal;
    if (!opt_.journalPath.empty()) {
        journal = std::make_unique<SweepJournal>(opt_.journalPath,
                                                 opt_.journalProfiles);
    }
    SweepJsonOptions journalOpt;
    journalOpt.timing = false; // journaled cells must splice byte-identically
    journalOpt.profiles = opt_.journalProfiles;

    // Satisfy cells from the resume journal first, and collect the rest as
    // the pending work list.
    std::vector<size_t> pending;
    pending.reserve(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        const JournalEntry *done =
            opt_.resume ? opt_.resume->findOk(i, jobs[i]) : nullptr;
        if (done) {
            SweepCell &cell = sweep.cells[i];
            cell.job = jobs[i];
            cell.status = SweepCell::Status::Skipped;
            cell.attempts = done->attempts;
            cell.journalText = done->cellJson;
            ++sweep.cellsSkipped;
        } else {
            pending.push_back(i);
        }
    }

    // Warm the repository cache for every pending input up front, serially:
    // simulation and decompression are the parts that cannot be split
    // across cells, and doing it here (rather than lazily from the pool)
    // keeps the workers' wall-time numbers pure analysis. Failures are
    // deliberately swallowed — a bad input surfaces as a per-cell error
    // below, where it can be attributed (and retried) per cell instead of
    // aborting the whole grid.
    for (size_t i : pending) {
        try {
            repo.get(jobs[i].input);
        } catch (const std::exception &) {
        }
    }
    sweep.captureSeconds = secondsSince(sweepStart);

    std::atomic<size_t> nextSlot{0};
    std::atomic<uint64_t> instructionsDone{0};
    std::mutex progressMutex;
    size_t cellsDone = sweep.cellsSkipped;
    bool progressBroken = false;

    auto worker = [&]() {
        for (;;) {
            size_t slot = nextSlot.fetch_add(1, std::memory_order_relaxed);
            if (slot >= pending.size())
                return;
            size_t i = pending[slot];
            SweepCell &cell = sweep.cells[i];
            cell.job = std::move(jobs[i]);

            // Every attempt is fully guarded: a throwing capture or
            // analysis marks this cell Failed and the grid keeps going.
            unsigned maxAttempts = 1 + opt_.maxRetries;
            for (unsigned attempt = 1; attempt <= maxAttempts; ++attempt) {
                cell.attempts = attempt;
                try {
                    // Analyze the shared capture directly (bulk path): no
                    // cursor object, no virtual dispatch per record.
                    std::shared_ptr<const trace::TraceBuffer> buffer =
                        repo.get(cell.job.input);
                    core::AnalysisConfig cfg = cell.job.config;
                    core::CancelToken deadline;
                    if (opt_.cellDeadlineSeconds > 0.0) {
                        deadline.setDeadline(opt_.cellDeadlineSeconds);
                        deadline.chain(cfg.cancel);
                        cfg.cancel = &deadline;
                    }
                    core::Paragraph analyzer(cfg);
                    auto cellStart = std::chrono::steady_clock::now();
                    cell.result = analyzer.analyze(*buffer);
                    cell.wallSeconds = secondsSince(cellStart);
                    cell.minstrPerSec =
                        cell.wallSeconds > 0.0
                            ? static_cast<double>(cell.result.instructions) /
                                  1e6 / cell.wallSeconds
                            : 0.0;
                    cell.status = SweepCell::Status::Ok;
                    cell.errorMessage.clear();
                    break;
                } catch (const core::CancelledError &e) {
                    // Deadline / cancellation: final, never retried —
                    // a second attempt would just burn the deadline again.
                    cell.status = SweepCell::Status::Failed;
                    cell.errorMessage = e.what();
                    cell.result = core::AnalysisResult();
                    break;
                } catch (const std::exception &e) {
                    cell.status = SweepCell::Status::Failed;
                    cell.errorMessage = e.what();
                    cell.result = core::AnalysisResult();
                }
            }

            if (journal) {
                std::string cellJson;
                if (cell.status == SweepCell::Status::Ok)
                    cellJson = cellToJson(cell, journalOpt);
                journal->record(i, cell, cellJson);
            }

            uint64_t total = instructionsDone.fetch_add(
                                 cell.result.instructions,
                                 std::memory_order_relaxed) +
                             cell.result.instructions;
            if (opt_.progress) {
                std::lock_guard<std::mutex> lock(progressMutex);
                ++cellsDone;
                if (!progressBroken) {
                    double elapsed = secondsSince(sweepStart);
                    try {
                        opt_.progress(cellsDone, sweep.cells.size(),
                                      elapsed > 0.0
                                          ? static_cast<double>(total) /
                                                1e6 / elapsed
                                          : 0.0);
                    } catch (const std::exception &e) {
                        progressBroken = true;
                        PARA_WARN("sweep progress callback threw (%s); "
                                  "further progress reports disabled",
                                  e.what());
                    } catch (...) {
                        progressBroken = true;
                        PARA_WARN("sweep progress callback threw; further "
                                  "progress reports disabled");
                    }
                }
            }
        }
    };

    unsigned nThreads =
        static_cast<unsigned>(std::min<size_t>(jobs_, pending.size()));
    if (nThreads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(nThreads);
        for (unsigned t = 0; t < nThreads; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    for (const SweepCell &cell : sweep.cells) {
        if (cell.status == SweepCell::Status::Failed)
            ++sweep.cellsFailed;
    }
    sweep.wallSeconds = secondsSince(sweepStart);
    sweep.totalInstructions = instructionsDone.load();
    sweep.aggregateMinstrPerSec =
        sweep.wallSeconds > 0.0
            ? static_cast<double>(sweep.totalInstructions) / 1e6 /
                  sweep.wallSeconds
            : 0.0;
    return sweep;
}

} // namespace engine
} // namespace paragraph
