#include "engine/sweep.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "engine/cell_exec.hpp"
#include "engine/journal.hpp"
#include "engine/sweep_json.hpp"
#include "support/panic.hpp"

namespace paragraph {
namespace engine {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

} // namespace

SweepEngine::SweepEngine() : SweepEngine(Options{}) {}

SweepEngine::SweepEngine(Options opt)
    : opt_(std::move(opt)),
      jobs_(opt_.jobs ? opt_.jobs : std::thread::hardware_concurrency())
{
    if (jobs_ == 0) // hardware_concurrency() may report 0
        jobs_ = 1;
}

SweepResult
SweepEngine::run(TraceRepository &repo,
                 const std::vector<std::string> &inputs,
                 const std::vector<core::AnalysisConfig> &configs,
                 const std::vector<std::string> &configLabels) const
{
    std::vector<SweepJob> grid;
    grid.reserve(inputs.size() * configs.size());
    for (size_t i = 0; i < inputs.size(); ++i) {
        for (size_t j = 0; j < configs.size(); ++j) {
            SweepJob job;
            job.input = inputs[i];
            job.config = configs[j];
            if (j < configLabels.size())
                job.configLabel = configLabels[j];
            else
                job.configLabel = configs[j].describe();
            job.inputIndex = i;
            job.configIndex = j;
            grid.push_back(std::move(job));
        }
    }
    return runJobs(repo, std::move(grid));
}

SweepResult
SweepEngine::runJobs(TraceRepository &repo, std::vector<SweepJob> jobs) const
{
    auto sweepStart = std::chrono::steady_clock::now();

    SweepResult sweep;
    sweep.jobs = jobs_;
    sweep.cells.resize(jobs.size());

    std::unique_ptr<SweepJournal> journal;
    if (!opt_.journalPath.empty()) {
        journal = std::make_unique<SweepJournal>(opt_.journalPath,
                                                 opt_.journalProfiles);
    }
    SweepJsonOptions journalOpt;
    journalOpt.timing = false; // journaled cells must splice byte-identically
    journalOpt.profiles = opt_.journalProfiles;

    // Satisfy cells from the resume journal first, and collect the rest as
    // the pending work list.
    std::vector<size_t> pending;
    pending.reserve(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        const JournalEntry *done =
            opt_.resume ? opt_.resume->findOk(i, jobs[i]) : nullptr;
        if (done) {
            SweepCell &cell = sweep.cells[i];
            cell.job = jobs[i];
            cell.status = SweepCell::Status::Skipped;
            cell.attempts = done->attempts;
            cell.journalText = done->cellJson;
            ++sweep.cellsSkipped;
        } else {
            pending.push_back(i);
        }
    }

    // Warm the repository cache for every pending captured input up front,
    // serially: simulation and decompression are the parts that cannot be
    // split across cells, and doing it here (rather than lazily from the
    // pool) keeps the workers' wall-time numbers pure analysis. Streaming
    // inputs are skipped — their decode happens per pass, by design.
    // Failures are deliberately swallowed — a bad input surfaces as a
    // per-cell error below, where it can be attributed (and retried) per
    // cell instead of aborting the whole grid.
    for (size_t i : pending) {
        if (repo.streamingInput(jobs[i].input))
            continue;
        try {
            repo.get(jobs[i].input);
        } catch (const std::exception &) {
        }
    }
    sweep.captureSeconds = secondsSince(sweepStart);

    // Decoder cap for the group claiming below. A plain take-a-ticket
    // counter let 8 workers open 8 private decoders on the same compressed
    // trace — BENCH_sweep.json showed that streamed `--jobs=8` run
    // *slower* than `--jobs=1` (the decoders thrash each other's cache and
    // the disk). Pooled `.ptrc` inputs share one decode and are immune;
    // for the rest (`.ptrz`: stateful delta decode, one private decoder
    // per pass) concurrent passes per input are capped at this.
    constexpr unsigned kMaxDecodersPerInput = 2;

    // Trace-major grouping: bucket pending cells by input spec (first-seen
    // order) and cut each bucket into fused groups of at most a per-input
    // target, cutting early rather than exceeding the memory budget. A
    // group's cells run as one block-major pass over the shared trace.
    //
    // Auto target (--group=0): one pass per worker's share of the grid —
    // except over decode-gated inputs, where at most kMaxDecodersPerInput
    // passes can run at once no matter how many workers exist. Dividing
    // such a bucket among all workers yields near-solo passes that
    // serialize cap-at-a-time behind the decoder gate, each paying a full
    // decode for a sliver of analysis (streamed --jobs=8 --group=0 ran at
    // 0.74x of --group=2); dividing it among the decoders that can
    // actually run restores full fusion per pass.
    size_t autoTarget = (pending.size() + jobs_ - 1) / jobs_;
    if (autoTarget == 0)
        autoTarget = 1;
    const size_t gatedShare =
        std::max<size_t>(std::min<size_t>(jobs_, kMaxDecodersPerInput), 1);

    std::vector<std::vector<size_t>> groups;
    std::map<std::string, bool> decodeGated;
    {
        std::vector<const std::string *> inputOrder;
        std::map<std::string, std::vector<size_t>> byInput;
        for (size_t i : pending) {
            auto [it, fresh] = byInput.try_emplace(jobs[i].input);
            if (fresh)
                inputOrder.push_back(&it->first);
            it->second.push_back(i);
        }
        for (const std::string *input : inputOrder) {
            const std::vector<size_t> &bucket = byInput[*input];
            bool gated = false;
            if (repo.streamingInput(*input)) {
                try {
                    gated = repo.decodePool(*input) == nullptr;
                } catch (const std::exception &) {
                    // A corrupt file fails pool construction here; the
                    // per-cell attempt will re-raise it where it can be
                    // attributed.
                    gated = true;
                }
            }
            decodeGated[*input] = gated;
            size_t groupTarget = opt_.groupSize;
            if (groupTarget == 0) {
                groupTarget =
                    gated ? (bucket.size() + gatedShare - 1) / gatedShare
                          : autoTarget;
            }
            std::vector<size_t> group;
            size_t bytes = 0;
            for (size_t i : bucket) {
                size_t need = configFootprint(jobs[i].config);
                if (!group.empty() && (group.size() >= groupTarget ||
                                       bytes + need > opt_.groupMemoryBudget)) {
                    groups.push_back(std::move(group));
                    group.clear();
                    bytes = 0;
                }
                group.push_back(i);
                bytes += need;
            }
            if (!group.empty())
                groups.push_back(std::move(group));
        }
    }

    sweep.fusedGroups = groups.size();

    // Group claiming: a mutex-guarded scan against the per-input decoder
    // cap, parking surplus workers on a condvar until a pass over that
    // input retires or an ungated group shows up.
    std::vector<std::string> groupInput(groups.size());
    for (size_t g = 0; g < groups.size(); ++g)
        groupInput[g] = jobs[groups[g].front()].input;

    std::mutex claimMutex;
    std::condition_variable claimCv;
    std::vector<char> groupTaken(groups.size(), 0);
    std::map<std::string, unsigned> activeDecoders;
    size_t groupsLeft = groups.size();

    auto claimGroup = [&](size_t &out) {
        std::unique_lock<std::mutex> lock(claimMutex);
        for (;;) {
            if (groupsLeft == 0)
                return false;
            for (size_t g = 0; g < groups.size(); ++g) {
                if (groupTaken[g])
                    continue;
                const std::string &input = groupInput[g];
                bool gated = decodeGated.find(input)->second;
                if (gated &&
                    activeDecoders[input] >= kMaxDecodersPerInput)
                    continue;
                groupTaken[g] = 1;
                if (gated)
                    ++activeDecoders[input];
                if (--groupsLeft == 0)
                    claimCv.notify_all(); // wake waiters so they can exit
                out = g;
                return true;
            }
            claimCv.wait(lock);
        }
    };

    auto releaseGroup = [&](size_t g) {
        const std::string &input = groupInput[g];
        if (!decodeGated.find(input)->second)
            return;
        std::lock_guard<std::mutex> lock(claimMutex);
        --activeDecoders[input];
        claimCv.notify_all();
    };

    std::atomic<uint64_t> instructionsDone{0};
    std::mutex progressMutex;
    size_t cellsDone = sweep.cellsSkipped;
    bool progressBroken = false;

    CellExecOptions execOpt;
    execOpt.maxRetries = opt_.maxRetries;
    execOpt.cellDeadlineSeconds = opt_.cellDeadlineSeconds;
    execOpt.shards = opt_.shards;

    // Journal + aggregate + progress bookkeeping, exactly once per cell,
    // after its status is final.
    auto finishCell = [&](size_t i, SweepCell &cell) {
        if (journal) {
            std::string cellJson;
            if (cell.status == SweepCell::Status::Ok)
                cellJson = cellToJson(cell, journalOpt);
            journal->record(i, cell, cellJson);
        }

        uint64_t total =
            instructionsDone.fetch_add(cell.result.instructions,
                                       std::memory_order_relaxed) +
            cell.result.instructions;
        if (opt_.progress) {
            std::lock_guard<std::mutex> lock(progressMutex);
            ++cellsDone;
            if (!progressBroken) {
                double elapsed = secondsSince(sweepStart);
                try {
                    opt_.progress(cellsDone, sweep.cells.size(),
                                  elapsed > 0.0
                                      ? static_cast<double>(total) / 1e6 /
                                            elapsed
                                      : 0.0);
                } catch (const std::exception &e) {
                    progressBroken = true;
                    PARA_WARN("sweep progress callback threw (%s); "
                              "further progress reports disabled",
                              e.what());
                } catch (...) {
                    progressBroken = true;
                    PARA_WARN("sweep progress callback threw; further "
                              "progress reports disabled");
                }
            }
        }
    };

    auto worker = [&]() {
        size_t g;
        while (claimGroup(g)) {
            const std::vector<size_t> &group = groups[g];
            if (group.size() == 1) {
                size_t i = group.front();
                SweepCell &cell = sweep.cells[i];
                cell.job = std::move(jobs[i]);
                runCellSolo(repo, cell, execOpt);
                finishCell(i, cell);
            } else {
                std::vector<SweepCell *> cells;
                cells.reserve(group.size());
                for (size_t i : group) {
                    sweep.cells[i].job = std::move(jobs[i]);
                    cells.push_back(&sweep.cells[i]);
                }
                runFusedCells(repo, cells, execOpt, [&](SweepCell &cell) {
                    finishCell(static_cast<size_t>(&cell -
                                                   sweep.cells.data()),
                               cell);
                });
            }
            releaseGroup(g);
        }
    };

    unsigned nThreads =
        static_cast<unsigned>(std::min<size_t>(jobs_, groups.size()));
    if (nThreads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(nThreads);
        for (unsigned t = 0; t < nThreads; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    for (const SweepCell &cell : sweep.cells) {
        if (cell.status == SweepCell::Status::Failed)
            ++sweep.cellsFailed;
    }
    sweep.wallSeconds = secondsSince(sweepStart);
    sweep.totalInstructions = instructionsDone.load();
    sweep.aggregateMinstrPerSec =
        sweep.wallSeconds > 0.0
            ? static_cast<double>(sweep.totalInstructions) / 1e6 /
                  sweep.wallSeconds
            : 0.0;
    return sweep;
}

} // namespace engine
} // namespace paragraph
