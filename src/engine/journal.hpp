/**
 * @file
 * Sweep checkpoint journal: one JSONL line per completed grid cell.
 *
 * A multi-hour sweep that dies at cell 47 of 48 should not start over. The
 * engine appends a self-describing line to the journal as each cell
 * finishes (header first, then one object per cell), flushing after every
 * line so a crash loses at most the in-flight cell. `paragraph-sweep
 * --resume=FILE` reloads the journal, skips cells whose journaled entry is
 * ok and matches the requested grid position, and splices the journaled
 * cell JSON verbatim into the final report — so a resumed sweep's document
 * is byte-identical to an uninterrupted run's (timing excluded).
 *
 * Line schema (paragraph-sweep-journal-v1):
 *   {"schema": "paragraph-sweep-journal-v1", "profiles": <bool>}
 *   {"index": N, "input": S, "config_label": S, "config_key": S,
 *    "status": "ok", "attempts": N, "cell": S}   // S = cell JSON, escaped
 *   {"index": N, "input": S, "config_label": S, "config_key": S,
 *    "status": "failed", "attempts": N, "error": S}
 *
 * config_key is engine::configKeyHex() of the cell's AnalysisConfig — the
 * same content-addressed fingerprint the paragraph-serve result cache is
 * keyed by — so a journal entry matches on what was actually computed, not
 * just the human-readable axis label. Entries without the field (journals
 * written before it existed) still match on (index, input, label).
 *
 * Loading is tolerant: malformed or truncated lines (a crash mid-write)
 * are skipped with a warning, and a later entry for the same index wins,
 * so re-running with the same --journal file accumulates correctly.
 */

#ifndef PARAGRAPH_ENGINE_JOURNAL_HPP
#define PARAGRAPH_ENGINE_JOURNAL_HPP

#include <cstdio>
#include <map>
#include <mutex>
#include <string>

#include "engine/sweep.hpp"

namespace paragraph {
namespace engine {

/** One journaled cell, as read back by loadJournal. */
struct JournalEntry
{
    size_t index = 0;
    std::string input;
    std::string configLabel;
    std::string configKey; ///< configKeyHex() fingerprint; may be empty
    std::string status;   ///< "ok" or "failed"
    unsigned attempts = 1;
    std::string error;    ///< failed entries only
    std::string cellJson; ///< ok entries only: rendered cell JSON text
};

/** A loaded journal: header flags plus the last entry seen per index. */
struct JournalData
{
    bool profiles = true;
    std::map<size_t, JournalEntry> entries;

    /** The ok entry for @p job's grid position, or nullptr. An entry only
     *  matches if its input, config label, and (when recorded) config
     *  fingerprint agree with the job's — a journal from a different grid
     *  never silently satisfies a cell. */
    const JournalEntry *findOk(size_t index, const SweepJob &job) const;
};

/** Parse @p path; throws FatalError if unreadable or the header schema is
 *  wrong, warns and skips individually malformed lines. */
JournalData loadJournal(const std::string &path);

/** Append-mode journal writer; record() is thread-safe. */
class SweepJournal
{
  public:
    /** Open @p path for appending (header line written only when the file
     *  is empty); throws FatalError on failure. */
    SweepJournal(const std::string &path, bool profiles);
    ~SweepJournal();

    SweepJournal(const SweepJournal &) = delete;
    SweepJournal &operator=(const SweepJournal &) = delete;

    /**
     * Append @p cell's journal line and flush. @p cellJson is the rendered
     * cell JSON (ok cells; ignored for failed ones). Never throws: a
     * journal write failure degrades to a warning — losing a checkpoint
     * must not fail the sweep itself.
     */
    void record(size_t index, const SweepCell &cell,
                const std::string &cellJson);

  private:
    std::string path_;
    std::FILE *file_ = nullptr;
    std::mutex mutex_;
    bool writeFailed_ = false;
};

} // namespace engine
} // namespace paragraph

#endif // PARAGRAPH_ENGINE_JOURNAL_HPP
