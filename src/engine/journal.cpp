#include "engine/journal.hpp"

#include <fstream>

#include "engine/config_key.hpp"
#include "engine/sweep_json.hpp"
#include "support/failpoint.hpp"
#include "support/json_line.hpp"
#include "support/panic.hpp"

namespace paragraph {
namespace engine {

namespace {

constexpr const char *journalSchema = "paragraph-sweep-journal-v1";

} // namespace

const JournalEntry *
JournalData::findOk(size_t index, const SweepJob &job) const
{
    auto it = entries.find(index);
    if (it == entries.end())
        return nullptr;
    const JournalEntry &e = it->second;
    if (e.status != "ok" || e.input != job.input ||
        e.configLabel != job.configLabel)
        return nullptr;
    // Entries that recorded a config fingerprint must also match on it —
    // the label is only a human-readable alias, the key is the content.
    if (!e.configKey.empty() && e.configKey != configKeyHex(job.config))
        return nullptr;
    return &e;
}

JournalData
loadJournal(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        PARA_FATAL("cannot open sweep journal: %s", path.c_str());

    JournalData data;
    std::string line;
    size_t lineNo = 0;
    bool sawHeader = false;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        JsonLineParser p(line);
        if (!p.parse()) {
            PARA_WARN("journal %s line %zu is malformed; skipped",
                      path.c_str(), lineNo);
            continue;
        }
        if (!sawHeader) {
            const std::string *schema = p.str("schema");
            if (!schema || *schema != journalSchema) {
                PARA_FATAL("%s is not a sweep journal (expected schema %s)",
                           path.c_str(), journalSchema);
            }
            p.boolean("profiles", data.profiles);
            sawHeader = true;
            continue;
        }
        JournalEntry e;
        uint64_t index = 0;
        const std::string *input = p.str("input");
        const std::string *label = p.str("config_label");
        const std::string *status = p.str("status");
        if (!p.num("index", index) || !input || !label || !status ||
            (*status != "ok" && *status != "failed")) {
            PARA_WARN("journal %s line %zu has missing fields; skipped",
                      path.c_str(), lineNo);
            continue;
        }
        e.index = static_cast<size_t>(index);
        e.input = *input;
        e.configLabel = *label;
        e.status = *status;
        if (const std::string *key = p.str("config_key"))
            e.configKey = *key;
        uint64_t attempts = 1;
        p.num("attempts", attempts);
        e.attempts = static_cast<unsigned>(attempts);
        if (const std::string *err = p.str("error"))
            e.error = *err;
        const std::string *cell = p.str("cell");
        if (e.status == "ok") {
            if (!cell) {
                PARA_WARN("journal %s line %zu: ok entry without cell "
                          "JSON; skipped",
                          path.c_str(), lineNo);
                continue;
            }
            e.cellJson = *cell;
        }
        data.entries[e.index] = std::move(e); // last entry per index wins
    }
    if (!sawHeader)
        PARA_FATAL("sweep journal %s is empty or has no header line",
                   path.c_str());
    return data;
}

SweepJournal::SweepJournal(const std::string &path, bool profiles)
    : path_(path)
{
    file_ = std::fopen(path.c_str(), "ab");
    if (!file_)
        PARA_FATAL("cannot open sweep journal for append: %s", path.c_str());
    if (std::fseek(file_, 0, SEEK_END) != 0) {
        std::fclose(file_);
        file_ = nullptr;
        PARA_FATAL("cannot seek sweep journal: %s", path.c_str());
    }
    if (std::ftell(file_) == 0) {
        std::string header = std::string("{\"schema\": \"") + journalSchema +
                             "\", \"profiles\": " +
                             (profiles ? "true" : "false") + "}\n";
        if (std::fwrite(header.data(), 1, header.size(), file_) !=
                header.size() ||
            std::fflush(file_) != 0) {
            std::fclose(file_);
            file_ = nullptr;
            PARA_FATAL("cannot write sweep journal header: %s",
                       path.c_str());
        }
    }
}

SweepJournal::~SweepJournal()
{
    if (file_)
        std::fclose(file_);
}

void
SweepJournal::record(size_t index, const SweepCell &cell,
                     const std::string &cellJson)
{
    bool failed = cell.status == SweepCell::Status::Failed;
    std::string line = "{\"index\": " + std::to_string(index) +
                       ", \"input\": " + jsonString(cell.job.input) +
                       ", \"config_label\": " +
                       jsonString(cell.job.configLabel) +
                       ", \"config_key\": \"" +
                       configKeyHex(cell.job.config) + "\", \"status\": \"" +
                       (failed ? "failed" : "ok") + "\", \"attempts\": " +
                       std::to_string(cell.attempts);
    if (failed)
        line += ", \"error\": " + jsonString(cell.errorMessage);
    else
        line += ", \"cell\": " + jsonString(cellJson);
    line += "}\n";

    std::lock_guard<std::mutex> lock(mutex_);
    if (!file_ || writeFailed_)
        return;
    if (PARA_FAILPOINT("journal.write") ||
        std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
        std::fflush(file_) != 0) {
        writeFailed_ = true;
        PARA_WARN("sweep journal write failed: %s (checkpointing disabled "
                  "for the rest of the sweep)",
                  path_.c_str());
    }
}

} // namespace engine
} // namespace paragraph
