#include "engine/journal.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>

#include "engine/sweep_json.hpp"
#include "support/panic.hpp"

namespace paragraph {
namespace engine {

namespace {

/**
 * Minimal scanner for one journal line: a flat JSON object whose values
 * are strings, unsigned integers, or booleans. Strict about what the
 * journal emits, so any line damaged by a crash fails to parse (and is
 * skipped by the loader) instead of yielding garbage fields.
 */
class LineParser
{
  public:
    explicit LineParser(const std::string &line) : s_(line) {}

    bool
    parse()
    {
        skipWs();
        if (!eat('{'))
            return false;
        skipWs();
        if (eat('}'))
            return true;
        for (;;) {
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (!eat(':'))
                return false;
            skipWs();
            if (!parseValue(key))
                return false;
            skipWs();
            if (eat('}'))
                break;
            if (!eat(','))
                return false;
            skipWs();
        }
        skipWs();
        return p_ == s_.size();
    }

    const std::string *
    str(const char *key) const
    {
        auto it = strs_.find(key);
        return it == strs_.end() ? nullptr : &it->second;
    }

    bool
    num(const char *key, uint64_t &out) const
    {
        auto it = nums_.find(key);
        if (it == nums_.end())
            return false;
        out = it->second;
        return true;
    }

    bool
    boolean(const char *key, bool &out) const
    {
        auto it = bools_.find(key);
        if (it == bools_.end())
            return false;
        out = it->second;
        return true;
    }

  private:
    const std::string &s_;
    size_t p_ = 0;
    std::map<std::string, std::string> strs_;
    std::map<std::string, uint64_t> nums_;
    std::map<std::string, bool> bools_;

    void
    skipWs()
    {
        while (p_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[p_])))
            ++p_;
    }

    bool
    eat(char c)
    {
        if (p_ < s_.size() && s_[p_] == c) {
            ++p_;
            return true;
        }
        return false;
    }

    bool
    parseString(std::string &out)
    {
        if (!eat('"'))
            return false;
        out.clear();
        while (p_ < s_.size()) {
            char c = s_[p_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (p_ >= s_.size())
                return false;
            char e = s_[p_++];
            switch (e) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'n':  out += '\n'; break;
              case 't':  out += '\t'; break;
              case 'r':  out += '\r'; break;
              case 'u': {
                if (p_ + 4 > s_.size())
                    return false;
                unsigned v = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = s_[p_++];
                    v <<= 4;
                    if (h >= '0' && h <= '9')
                        v |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        v |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        v |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return false;
                }
                if (v > 0xff) // the journal only escapes control bytes
                    return false;
                out += static_cast<char>(v);
                break;
              }
              default:
                return false;
            }
        }
        return false; // unterminated
    }

    bool
    parseValue(const std::string &key)
    {
        if (p_ < s_.size() && s_[p_] == '"') {
            std::string v;
            if (!parseString(v))
                return false;
            strs_[key] = std::move(v);
            return true;
        }
        if (s_.compare(p_, 4, "true") == 0) {
            p_ += 4;
            bools_[key] = true;
            return true;
        }
        if (s_.compare(p_, 5, "false") == 0) {
            p_ += 5;
            bools_[key] = false;
            return true;
        }
        size_t start = p_;
        while (p_ < s_.size() &&
               std::isdigit(static_cast<unsigned char>(s_[p_])))
            ++p_;
        if (p_ == start)
            return false;
        nums_[key] = std::strtoull(s_.substr(start, p_ - start).c_str(),
                                   nullptr, 10);
        return true;
    }
};

constexpr const char *journalSchema = "paragraph-sweep-journal-v1";

} // namespace

const JournalEntry *
JournalData::findOk(size_t index, const SweepJob &job) const
{
    auto it = entries.find(index);
    if (it == entries.end())
        return nullptr;
    const JournalEntry &e = it->second;
    if (e.status != "ok" || e.input != job.input ||
        e.configLabel != job.configLabel)
        return nullptr;
    return &e;
}

JournalData
loadJournal(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        PARA_FATAL("cannot open sweep journal: %s", path.c_str());

    JournalData data;
    std::string line;
    size_t lineNo = 0;
    bool sawHeader = false;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        LineParser p(line);
        if (!p.parse()) {
            PARA_WARN("journal %s line %zu is malformed; skipped",
                      path.c_str(), lineNo);
            continue;
        }
        if (!sawHeader) {
            const std::string *schema = p.str("schema");
            if (!schema || *schema != journalSchema) {
                PARA_FATAL("%s is not a sweep journal (expected schema %s)",
                           path.c_str(), journalSchema);
            }
            p.boolean("profiles", data.profiles);
            sawHeader = true;
            continue;
        }
        JournalEntry e;
        uint64_t index = 0;
        const std::string *input = p.str("input");
        const std::string *label = p.str("config_label");
        const std::string *status = p.str("status");
        if (!p.num("index", index) || !input || !label || !status ||
            (*status != "ok" && *status != "failed")) {
            PARA_WARN("journal %s line %zu has missing fields; skipped",
                      path.c_str(), lineNo);
            continue;
        }
        e.index = static_cast<size_t>(index);
        e.input = *input;
        e.configLabel = *label;
        e.status = *status;
        uint64_t attempts = 1;
        p.num("attempts", attempts);
        e.attempts = static_cast<unsigned>(attempts);
        if (const std::string *err = p.str("error"))
            e.error = *err;
        const std::string *cell = p.str("cell");
        if (e.status == "ok") {
            if (!cell) {
                PARA_WARN("journal %s line %zu: ok entry without cell "
                          "JSON; skipped",
                          path.c_str(), lineNo);
                continue;
            }
            e.cellJson = *cell;
        }
        data.entries[e.index] = std::move(e); // last entry per index wins
    }
    if (!sawHeader)
        PARA_FATAL("sweep journal %s is empty or has no header line",
                   path.c_str());
    return data;
}

SweepJournal::SweepJournal(const std::string &path, bool profiles)
    : path_(path)
{
    file_ = std::fopen(path.c_str(), "ab");
    if (!file_)
        PARA_FATAL("cannot open sweep journal for append: %s", path.c_str());
    if (std::fseek(file_, 0, SEEK_END) != 0) {
        std::fclose(file_);
        file_ = nullptr;
        PARA_FATAL("cannot seek sweep journal: %s", path.c_str());
    }
    if (std::ftell(file_) == 0) {
        std::string header = std::string("{\"schema\": \"") + journalSchema +
                             "\", \"profiles\": " +
                             (profiles ? "true" : "false") + "}\n";
        if (std::fwrite(header.data(), 1, header.size(), file_) !=
                header.size() ||
            std::fflush(file_) != 0) {
            std::fclose(file_);
            file_ = nullptr;
            PARA_FATAL("cannot write sweep journal header: %s",
                       path.c_str());
        }
    }
}

SweepJournal::~SweepJournal()
{
    if (file_)
        std::fclose(file_);
}

void
SweepJournal::record(size_t index, const SweepCell &cell,
                     const std::string &cellJson)
{
    bool failed = cell.status == SweepCell::Status::Failed;
    std::string line = "{\"index\": " + std::to_string(index) +
                       ", \"input\": " + jsonString(cell.job.input) +
                       ", \"config_label\": " +
                       jsonString(cell.job.configLabel) + ", \"status\": \"" +
                       (failed ? "failed" : "ok") + "\", \"attempts\": " +
                       std::to_string(cell.attempts);
    if (failed)
        line += ", \"error\": " + jsonString(cell.errorMessage);
    else
        line += ", \"cell\": " + jsonString(cellJson);
    line += "}\n";

    std::lock_guard<std::mutex> lock(mutex_);
    if (!file_ || writeFailed_)
        return;
    if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
        std::fflush(file_) != 0) {
        writeFailed_ = true;
        PARA_WARN("sweep journal write failed: %s (checkpointing disabled "
                  "for the rest of the sweep)",
                  path_.c_str());
    }
}

} // namespace engine
} // namespace paragraph
