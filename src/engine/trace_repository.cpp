#include "engine/trace_repository.hpp"

#include <fstream>
#include <sstream>
#include <utility>

#include "casm/assembler.hpp"
#include "minic/compiler.hpp"
#include "sim/machine.hpp"
#include "support/panic.hpp"
#include "trace/compressed_io.hpp"
#include "trace/file_io.hpp"

namespace paragraph {
namespace engine {

namespace {

bool
hasSuffix(const std::string &s, const char *suffix)
{
    std::string_view suf(suffix);
    return s.size() >= suf.size() &&
           s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        PARA_FATAL("cannot open %s", path.c_str());
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

} // namespace

void
TracePin::release()
{
    if (repo_) {
        repo_->unpin(spec_);
        repo_ = nullptr;
    }
    buffer_.reset();
}

TraceRepository::Entry &
TraceRepository::fetch(const std::string &spec)
{
    auto it = cache_.find(spec);
    if (it == cache_.end()) {
        Entry entry;
        entry.buffer = capture(spec);
        entry.bytes =
            entry.buffer->size() * sizeof(trace::TraceRecord);
        it = cache_.emplace(spec, std::move(entry)).first;
        cachedBytes_ += it->second.bytes;
        it->second.lastUse = ++useCounter_;
        // Hold the new entry through its own eviction pass: a capture
        // larger than the whole budget overshoots instead of being evicted
        // out from under the caller (the reference below must stay valid).
        ++it->second.pins;
        enforceBudget();
        --it->second.pins;
    } else {
        it->second.lastUse = ++useCounter_;
    }
    return it->second;
}

void
TraceRepository::enforceBudget()
{
    if (opt_.memoryBudget == 0)
        return;
    // Decoded-block pools share the budget: when captures alone would not
    // fit, drop every pool block no analysis currently references before
    // evicting captures. In-flight readers keep their blocks alive via
    // shared_ptr, exactly like evicted captures.
    size_t poolBytes = 0;
    for (auto &kv : pools_)
        poolBytes += kv.second->cachedBytes();
    if (cachedBytes_ + poolBytes > opt_.memoryBudget && poolBytes > 0) {
        for (auto &kv : pools_)
            kv.second->trim();
    }
    while (cachedBytes_ > opt_.memoryBudget) {
        // Drop the least-recently-used unpinned capture. In-flight
        // analyses are unaffected: they co-own the buffer via shared_ptr.
        auto victim = cache_.end();
        for (auto it = cache_.begin(); it != cache_.end(); ++it) {
            if (it->second.pins > 0)
                continue;
            if (victim == cache_.end() ||
                it->second.lastUse < victim->second.lastUse)
                victim = it;
        }
        if (victim == cache_.end())
            return; // everything left is pinned; allow the overshoot
        cachedBytes_ -= victim->second.bytes;
        cache_.erase(victim);
    }
}

std::shared_ptr<const trace::TraceBuffer>
TraceRepository::get(const std::string &spec)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return fetch(spec).buffer;
}

TracePin
TraceRepository::pin(const std::string &spec)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Entry &entry = fetch(spec);
    ++entry.pins;
    return TracePin(this, spec, entry.buffer);
}

void
TraceRepository::unpin(const std::string &spec)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(spec);
    if (it == cache_.end() || it->second.pins == 0)
        return;
    if (--it->second.pins == 0)
        enforceBudget(); // pins may have been holding the budget open
}

std::unique_ptr<trace::TraceSource>
TraceRepository::makeSource(const std::string &spec)
{
    if (streamingInput(spec)) {
        std::unique_ptr<trace::TraceSource> src = trace::openTraceFile(spec);
        if (opt_.maxRecords == 0)
            return src;
        // Match a capped capture exactly: the source ends at maxRecords.
        return std::make_unique<trace::LimitedSource>(std::move(src),
                                                      opt_.maxRecords);
    }
    return std::make_unique<trace::SharedBufferSource>(get(spec), spec);
}

bool
TraceRepository::streamingInput(const std::string &spec) const
{
    return opt_.streamFiles &&
           (hasSuffix(spec, ".ptrc") || hasSuffix(spec, ".ptrz"));
}

std::shared_ptr<trace::SharedDecodePool>
TraceRepository::decodePool(const std::string &spec)
{
    // Only uncompressed `.ptrc` files support random block access; `.ptrz`
    // decode is stateful (delta-coded) and stays on the pipeline path.
    if (!streamingInput(spec) || !hasSuffix(spec, ".ptrc"))
        return nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = pools_.find(spec);
        if (it != pools_.end())
            return it->second;
    }
    // Map and validate outside the lock: the eager payload-CRC pass over a
    // multi-GB trace must not stall every other worker.
    std::shared_ptr<trace::MmapTraceFile> file =
        trace::MmapTraceFile::tryOpen(spec);
    if (!file)
        return nullptr;
    trace::SharedDecodePool::Options popt;
    popt.maxRecords = opt_.maxRecords;
    // A capped read never reaches the final records, so (like the
    // sequential reader, whose CRC check fires only at end-of-stream) a
    // capped pool skips whole-payload verification.
    popt.verifyPayload =
        opt_.maxRecords == 0 || opt_.maxRecords >= file->recordCount();
    auto pool =
        std::make_shared<trace::SharedDecodePool>(std::move(file), popt);
    std::lock_guard<std::mutex> lock(mutex_);
    return pools_.emplace(spec, std::move(pool)).first->second;
}

uint32_t
TraceRepository::traceCrc(const std::string &spec)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = crcs_.find(spec);
        if (it != crcs_.end())
            return it->second;
    }
    // Compute outside the lock: the CRC pass over a large capture must not
    // stall every other worker's get().
    std::shared_ptr<const trace::TraceBuffer> buffer;
    if (streamingInput(spec)) {
        // A streamed input is never resident; CRC it through a one-off
        // bounded capture so the value matches the captured form exactly.
        auto tmp = std::make_shared<trace::TraceBuffer>();
        std::unique_ptr<trace::TraceSource> src = makeSource(spec);
        tmp->capture(*src, opt_.maxRecords);
        buffer = std::move(tmp);
    } else {
        buffer = get(spec);
    }
    uint32_t crc = trace::traceBufferCrc(*buffer);
    std::lock_guard<std::mutex> lock(mutex_);
    crcs_.emplace(spec, crc);
    return crc;
}

void
TraceRepository::release(const std::string &spec)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(spec);
    if (it == cache_.end() || it->second.pins > 0)
        return;
    cachedBytes_ -= it->second.bytes;
    cache_.erase(it);
}

void
TraceRepository::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &kv : pools_)
        kv.second->trim();
    for (auto it = cache_.begin(); it != cache_.end();) {
        if (it->second.pins > 0) {
            ++it;
        } else {
            cachedBytes_ -= it->second.bytes;
            it = cache_.erase(it);
        }
    }
}

size_t
TraceRepository::cachedInputs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cache_.size();
}

size_t
TraceRepository::cachedBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cachedBytes_;
}

std::shared_ptr<const trace::TraceBuffer>
TraceRepository::capture(const std::string &spec) const
{
    auto buf = std::make_shared<trace::TraceBuffer>();
    if (hasSuffix(spec, ".ptrc") || hasSuffix(spec, ".ptrz")) {
        std::unique_ptr<trace::TraceSource> src = trace::openTraceFile(spec);
        buf->capture(*src, opt_.maxRecords);
    } else if (hasSuffix(spec, ".s")) {
        casm::Program program = casm::assemble(readFile(spec));
        sim::MachineTraceSource src(program, {}, {}, spec);
        buf->capture(src, opt_.maxRecords);
    } else if (hasSuffix(spec, ".mc") || hasSuffix(spec, ".c")) {
        casm::Program program = minic::compile(readFile(spec));
        sim::MachineTraceSource src(program, {}, {}, spec);
        buf->capture(src, opt_.maxRecords);
    } else {
        auto &suite = workloads::WorkloadSuite::instance();
        const workloads::Workload &w = suite.find(spec);
        std::unique_ptr<sim::MachineTraceSource> src =
            suite.makeSource(w, opt_.scale);
        buf->capture(*src, opt_.maxRecords);
    }
    return buf;
}

} // namespace engine
} // namespace paragraph
