#include "engine/trace_repository.hpp"

#include <fstream>
#include <sstream>
#include <utility>

#include "casm/assembler.hpp"
#include "minic/compiler.hpp"
#include "sim/machine.hpp"
#include "support/panic.hpp"
#include "trace/compressed_io.hpp"

namespace paragraph {
namespace engine {

namespace {

bool
hasSuffix(const std::string &s, const char *suffix)
{
    std::string_view suf(suffix);
    return s.size() >= suf.size() &&
           s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        PARA_FATAL("cannot open %s", path.c_str());
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

} // namespace

std::shared_ptr<const trace::TraceBuffer>
TraceRepository::get(const std::string &spec)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(spec);
    if (it != cache_.end())
        return it->second;
    std::shared_ptr<const trace::TraceBuffer> buf = capture(spec);
    cache_.emplace(spec, buf);
    return buf;
}

std::unique_ptr<trace::TraceSource>
TraceRepository::makeSource(const std::string &spec)
{
    if (streamingInput(spec)) {
        std::unique_ptr<trace::TraceSource> src = trace::openTraceFile(spec);
        if (opt_.maxRecords == 0)
            return src;
        // Match a capped capture exactly: the source ends at maxRecords.
        return std::make_unique<trace::LimitedSource>(std::move(src),
                                                      opt_.maxRecords);
    }
    return std::make_unique<trace::SharedBufferSource>(get(spec), spec);
}

bool
TraceRepository::streamingInput(const std::string &spec) const
{
    return opt_.streamFiles &&
           (hasSuffix(spec, ".ptrc") || hasSuffix(spec, ".ptrz"));
}

void
TraceRepository::release(const std::string &spec)
{
    std::lock_guard<std::mutex> lock(mutex_);
    cache_.erase(spec);
}

void
TraceRepository::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    cache_.clear();
}

size_t
TraceRepository::cachedInputs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cache_.size();
}

std::shared_ptr<const trace::TraceBuffer>
TraceRepository::capture(const std::string &spec) const
{
    auto buf = std::make_shared<trace::TraceBuffer>();
    if (hasSuffix(spec, ".ptrc") || hasSuffix(spec, ".ptrz")) {
        std::unique_ptr<trace::TraceSource> src = trace::openTraceFile(spec);
        buf->capture(*src, opt_.maxRecords);
    } else if (hasSuffix(spec, ".s")) {
        casm::Program program = casm::assemble(readFile(spec));
        sim::MachineTraceSource src(program, {}, {}, spec);
        buf->capture(src, opt_.maxRecords);
    } else if (hasSuffix(spec, ".mc") || hasSuffix(spec, ".c")) {
        casm::Program program = minic::compile(readFile(spec));
        sim::MachineTraceSource src(program, {}, {}, spec);
        buf->capture(src, opt_.maxRecords);
    } else {
        auto &suite = workloads::WorkloadSuite::instance();
        const workloads::Workload &w = suite.find(spec);
        std::unique_ptr<sim::MachineTraceSource> src =
            suite.makeSource(w, opt_.scale);
        buf->capture(*src, opt_.maxRecords);
    }
    return buf;
}

} // namespace engine
} // namespace paragraph
