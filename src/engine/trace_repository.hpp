/**
 * @file
 * TraceRepository: capture each sweep input once, share it with all workers.
 *
 * A (trace × config) sweep re-analyzes the same trace many times. Trace
 * *generation* — functional simulation of a workload or MiniC program,
 * assembly, or `.ptrc`/`.ptrz` decompression — is the expensive, inherently
 * serial part, so the repository performs it exactly once per input and
 * stores the result in an immutable, shared in-memory trace::TraceBuffer.
 * Workers replay the capture through trace::SharedBufferSource instances
 * that carry only a private cursor, so any number of analyses can run over
 * one capture concurrently without synchronization.
 */

#ifndef PARAGRAPH_ENGINE_TRACE_REPOSITORY_HPP
#define PARAGRAPH_ENGINE_TRACE_REPOSITORY_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "trace/buffer.hpp"
#include "trace/source.hpp"
#include "workloads/workload.hpp"

namespace paragraph {
namespace engine {

class TraceRepository
{
  public:
    struct Options
    {
        /** Scale used when an input names a bundled workload. */
        workloads::Scale scale = workloads::Scale::Full;

        /** Capture at most this many records per input; 0 = whole trace.
         *  Set this to the sweep's maxInstructions so memory stays bounded
         *  by what any analysis will actually consume. */
        uint64_t maxRecords = 0;

        /** Stream `.ptrc`/`.ptrz` trace-file inputs instead of capturing
         *  them: makeSource() re-opens the file per request (capped at
         *  maxRecords). Trades the one-time capture's memory footprint
         *  for a decode per analysis pass — the trace-major sweep
         *  scheduler amortizes that decode across every config fused
         *  into the pass. Non-file inputs (workloads, assembly, MiniC)
         *  are always captured, and get() still captures a trace file
         *  if asked directly. */
        bool streamFiles = false;
    };

    TraceRepository() = default;
    explicit TraceRepository(Options opt) : opt_(opt) {}

    TraceRepository(const TraceRepository &) = delete;
    TraceRepository &operator=(const TraceRepository &) = delete;

    /**
     * The shared capture for @p spec, producing it on first request.
     *
     * @p spec is resolved exactly like the `paragraph` CLI input argument:
     * `.ptrc`/`.ptrz` trace files are read back, `.s` assembly and
     * `.mc`/`.c` MiniC programs are simulated for their trace, and anything
     * else names a bundled workload analog. Thread-safe; throws FatalError
     * for unknown inputs.
     */
    std::shared_ptr<const trace::TraceBuffer> get(const std::string &spec);

    /** A fresh replayable source for @p spec: a cursor over the shared
     *  capture, or (for a streaming input) a re-opened trace file. */
    std::unique_ptr<trace::TraceSource> makeSource(const std::string &spec);

    /** True when @p spec is served by streaming (Options::streamFiles and
     *  the spec names a trace file). */
    bool streamingInput(const std::string &spec) const;

    /** Drop the cached capture for @p spec (in-flight sources keep theirs). */
    void release(const std::string &spec);

    /** Drop every cached capture. */
    void clear();

    /** Number of inputs currently cached. */
    size_t cachedInputs() const;

  private:
    Options opt_;
    mutable std::mutex mutex_;
    std::map<std::string, std::shared_ptr<const trace::TraceBuffer>> cache_;

    /** Generate/load and capture one input (called with mutex_ held). */
    std::shared_ptr<const trace::TraceBuffer>
    capture(const std::string &spec) const;
};

} // namespace engine
} // namespace paragraph

#endif // PARAGRAPH_ENGINE_TRACE_REPOSITORY_HPP
