/**
 * @file
 * TraceRepository: capture each sweep input once, share it with all workers.
 *
 * A (trace × config) sweep re-analyzes the same trace many times. Trace
 * *generation* — functional simulation of a workload or MiniC program,
 * assembly, or `.ptrc`/`.ptrz` decompression — is the expensive, inherently
 * serial part, so the repository performs it exactly once per input and
 * stores the result in an immutable, shared in-memory trace::TraceBuffer.
 * Workers replay the capture through trace::SharedBufferSource instances
 * that carry only a private cursor, so any number of analyses can run over
 * one capture concurrently without synchronization.
 *
 * Long-running holders (the paragraph-serve daemon keeps one repository
 * alive across every client's sweeps) bound the resident set with
 * Options::memoryBudget: least-recently-used captures are dropped from the
 * cache when a new capture would exceed the budget. Eviction is always
 * safe mid-analysis — get() hands out shared_ptrs, so an in-flight
 * analysis keeps its capture alive even after the cache lets go — and
 * entries pinned through pin() (held for the duration of a fused group)
 * are never evicted, so a group's trace cannot be captured twice by the
 * same request. traceCrc() exposes each capture's content identity (CRC-32
 * of the packed records, the value a trace-file header would carry), the
 * trace half of the serve result cache's content address.
 */

#ifndef PARAGRAPH_ENGINE_TRACE_REPOSITORY_HPP
#define PARAGRAPH_ENGINE_TRACE_REPOSITORY_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "trace/buffer.hpp"
#include "trace/shared_decode.hpp"
#include "trace/source.hpp"
#include "workloads/workload.hpp"

namespace paragraph {
namespace engine {

class TraceRepository;

/**
 * RAII pin on one cached capture: while alive, the entry cannot be
 * LRU-evicted (and the shared buffer is referenced regardless). Returned
 * by TraceRepository::pin(); release order does not matter.
 */
class TracePin
{
  public:
    TracePin() = default;
    TracePin(TracePin &&other) noexcept { *this = std::move(other); }
    TracePin &
    operator=(TracePin &&other) noexcept
    {
        release();
        repo_ = other.repo_;
        spec_ = std::move(other.spec_);
        buffer_ = std::move(other.buffer_);
        other.repo_ = nullptr;
        return *this;
    }
    TracePin(const TracePin &) = delete;
    TracePin &operator=(const TracePin &) = delete;
    ~TracePin() { release(); }

    /** The pinned capture (null for a default-constructed pin). */
    const std::shared_ptr<const trace::TraceBuffer> &buffer() const
    {
        return buffer_;
    }

    void release();

  private:
    friend class TraceRepository;
    TracePin(TraceRepository *repo, std::string spec,
             std::shared_ptr<const trace::TraceBuffer> buffer)
        : repo_(repo), spec_(std::move(spec)), buffer_(std::move(buffer)) {}

    TraceRepository *repo_ = nullptr;
    std::string spec_;
    std::shared_ptr<const trace::TraceBuffer> buffer_;
};

class TraceRepository
{
  public:
    struct Options
    {
        /** Scale used when an input names a bundled workload. */
        workloads::Scale scale = workloads::Scale::Full;

        /** Capture at most this many records per input; 0 = whole trace.
         *  Set this to the sweep's maxInstructions so memory stays bounded
         *  by what any analysis will actually consume. */
        uint64_t maxRecords = 0;

        /** Stream `.ptrc`/`.ptrz` trace-file inputs instead of capturing
         *  them: makeSource() re-opens the file per request (capped at
         *  maxRecords). Trades the one-time capture's memory footprint
         *  for a decode per analysis pass — the trace-major sweep
         *  scheduler amortizes that decode across every config fused
         *  into the pass. Non-file inputs (workloads, assembly, MiniC)
         *  are always captured, and get() still captures a trace file
         *  if asked directly. */
        bool streamFiles = false;

        /** Byte budget for cached captures; 0 = unlimited (the one-shot
         *  sweep CLI default). When a new capture would exceed it, the
         *  least-recently-used unpinned captures are dropped first. A
         *  single capture larger than the budget, or a budget fully
         *  occupied by pins, is allowed to overshoot — eviction never
         *  blocks and never touches pinned entries. */
        size_t memoryBudget = 0;
    };

    TraceRepository() = default;
    explicit TraceRepository(Options opt) : opt_(opt) {}

    TraceRepository(const TraceRepository &) = delete;
    TraceRepository &operator=(const TraceRepository &) = delete;

    /**
     * The shared capture for @p spec, producing it on first request.
     *
     * @p spec is resolved exactly like the `paragraph` CLI input argument:
     * `.ptrc`/`.ptrz` trace files are read back, `.s` assembly and
     * `.mc`/`.c` MiniC programs are simulated for their trace, and anything
     * else names a bundled workload analog. Thread-safe; throws FatalError
     * for unknown inputs.
     */
    std::shared_ptr<const trace::TraceBuffer> get(const std::string &spec);

    /** get() plus an eviction pin: the cache entry survives any budget
     *  pressure until the returned pin is released. */
    TracePin pin(const std::string &spec);

    /** A fresh replayable source for @p spec: a cursor over the shared
     *  capture, or (for a streaming input) a re-opened trace file. */
    std::unique_ptr<trace::TraceSource> makeSource(const std::string &spec);

    /** True when @p spec is served by streaming (Options::streamFiles and
     *  the spec names a trace file). */
    bool streamingInput(const std::string &spec) const;

    /**
     * The shared decode pool for a streamed `.ptrc` input: every consumer
     * (fused group, solo cell, shard segment, serve client) of the same
     * input shares one mmap and decodes each block exactly once between
     * them. Returns nullptr when @p spec is not a streamed `.ptrc` (or
     * cannot be mapped) — callers then fall back to makeSource().
     * Thread-safe; the pool is cached for the repository's lifetime and
     * its block cache counts toward the byte budget via trim().
     */
    std::shared_ptr<trace::SharedDecodePool>
    decodePool(const std::string &spec);

    /** CRC-32 of @p spec's records in packed on-disk form (capturing the
     *  input on first request). Remembered per spec even after the capture
     *  itself is evicted. */
    uint32_t traceCrc(const std::string &spec);

    /** Drop the cached capture for @p spec (in-flight sources keep theirs;
     *  pinned entries are not droppable until unpinned). */
    void release(const std::string &spec);

    /** Drop every unpinned cached capture. */
    void clear();

    /** Number of inputs currently cached. */
    size_t cachedInputs() const;

    /** Bytes of trace records currently cached. */
    size_t cachedBytes() const;

  private:
    friend class TracePin;

    struct Entry
    {
        std::shared_ptr<const trace::TraceBuffer> buffer;
        size_t bytes = 0;
        uint64_t lastUse = 0;
        unsigned pins = 0;
    };

    Options opt_;
    mutable std::mutex mutex_;
    std::map<std::string, Entry> cache_;
    std::map<std::string, std::shared_ptr<trace::SharedDecodePool>> pools_;
    std::map<std::string, uint32_t> crcs_;
    uint64_t useCounter_ = 0;
    size_t cachedBytes_ = 0;

    /** Look up / produce the entry for @p spec (mutex_ held), bumping its
     *  LRU stamp and evicting as needed on insert. */
    Entry &fetch(const std::string &spec);

    /** Evict unpinned LRU entries until the budget holds (mutex_ held). */
    void enforceBudget();

    void unpin(const std::string &spec);

    /** Generate/load and capture one input (called with mutex_ held). */
    std::shared_ptr<const trace::TraceBuffer>
    capture(const std::string &spec) const;
};

} // namespace engine
} // namespace paragraph

#endif // PARAGRAPH_ENGINE_TRACE_REPOSITORY_HPP
