/**
 * @file
 * InvariantOracle: the paper's placement theorems as executable checks.
 *
 * Every property below is a consequence of the placement rule of Section
 * 3.2 (see paragraph.hpp) or of the analyses being independent re-reads of
 * one trace, so each must hold on EVERY valid trace — which is what makes
 * them usable as fuzzing oracles: no golden outputs, just relations between
 * runs under systematically varied switches (metamorphic testing) and
 * between independent implementations (differential testing against
 * core::CriticalPathAnalyzer).
 *
 * The catalogue (names are stable identifiers used in repro JSON and docs):
 *
 *   fused-solo-identity        analyzeMany == one analyze() per config
 *   stream-bulk-identity       analyze(TraceSource&) == analyze(TraceBuffer&)
 *   determinism                same trace + config twice == identical result
 *   baseline-agreement         CriticalPathAnalyzer cp == Paragraph cp
 *   window-monotonicity        W1 <= W2  =>  cp(W1) >= cp(W2) >= cp(inf)
 *   window-firewall-bound      no DDG level holds more than W operations
 *   rename-monotonicity        more renaming => cp can only shrink
 *   rename-removes-storage-deps  all renaming on => storageDelayedOps == 0
 *   syscall-monotonicity       cp(stall) >= cp(ignore); placed-op delta ==
 *                              value-creating syscalls
 *   fu-monotonicity            cp(fu=k) >= cp(unlimited); placedOps equal
 *   placed-ops-conservation    placedOps invariant across all switch axes
 *                              and == value-creating records in the trace
 *   profile-conservation       profile/lifetime/sharing totals match
 *                              placedOps; profile depth matches cp
 *   predictor-bound            misses <= branches; cp(wrong) >= cp(perfect)
 *   critical-path-lower-bound  cp >= max placed latency; peak >= final
 *   file-round-trip            .ptrc and .ptrz round-trip to identical
 *                              records
 *   shard-stitch-identity      firewall-cut segments stitch to the exact
 *                              solo result (stall + perfect prediction)
 *   split-and-patch-identity   arbitrary-cut segments patch
 *                              (validate-or-replay) to the exact solo
 *                              result under EVERY matrix config
 *
 * check() runs one trace through core::Paragraph (solo, streamed, fused via
 * core::analyzeMany) and core::CriticalPathAnalyzer under a fixed config
 * matrix and reports every violated property with a diagnostic.
 */

#ifndef PARAGRAPH_FUZZ_INVARIANT_ORACLE_HPP
#define PARAGRAPH_FUZZ_INVARIANT_ORACLE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/result.hpp"
#include "trace/buffer.hpp"

namespace paragraph {
namespace fuzz {

struct OracleOptions
{
    /** Window pair for the monotonicity / firewall-bound checks. */
    uint64_t windowSmall = 16;
    uint64_t windowLarge = 64;

    /** Total-FU limit for the resource-monotonicity check. */
    uint32_t fuLimit = 2;

    /** Run the `.ptrc`/`.ptrz` round-trip property (touches the
     *  filesystem; the harness samples it rather than paying file I/O
     *  every iteration). */
    bool checkRoundTrip = false;

    /** Directory for round-trip scratch files; empty = system temp dir. */
    std::string tempDir;

    /**
     * Self-test hook: report one guaranteed "self-test" violation. Lets the
     * harness tests (and users) exercise the repro-dump / replay / minimize
     * machinery without needing a real engine bug.
     */
    bool forceFailure = false;
};

/** One catalogue entry: stable name + the paper fact it derives from. */
struct PropertyInfo
{
    const char *name;
    const char *derivation;
};

/** The full property catalogue (order is the checking order). */
const std::vector<PropertyInfo> &propertyCatalogue();

/** One violated property. */
struct Violation
{
    std::string property; ///< catalogue name
    std::string message;  ///< what diverged, with values
};

struct OracleReport
{
    std::vector<Violation> violations;
    size_t propertiesChecked = 0;

    bool ok() const { return violations.empty(); }

    /** "prop: message; prop: message" (diagnostics, repro JSON). */
    std::string summary() const;
};

class InvariantOracle
{
  public:
    explicit InvariantOracle(OracleOptions opt = {});

    const OracleOptions &options() const { return opt_; }

    /** Check every catalogue property against @p trace. */
    OracleReport check(const trace::TraceBuffer &trace) const;

  private:
    OracleOptions opt_;
};

namespace detail {

/** Exact comparison of every deterministic AnalysisResult field
 *  (analysisSeconds and liveWellPeakBytes excluded). On mismatch @p diff
 *  names the first diverging field with both values. */
bool resultsEqual(const core::AnalysisResult &a,
                  const core::AnalysisResult &b, std::string *diff);

} // namespace detail

} // namespace fuzz
} // namespace paragraph

#endif // PARAGRAPH_FUZZ_INVARIANT_ORACLE_HPP
