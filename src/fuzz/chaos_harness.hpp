/**
 * @file
 * ChaosHarness: randomized failure-injection runs against a real
 * paragraph-serve daemon.
 *
 * Each round forks the actual daemon binary onto an ephemeral socket —
 * sometimes with startup failpoints in its environment — arms a random
 * failpoint schedule over the store/decode/socket sites through the
 * protocol's failpoint op, and drives a stream of sweep requests at it.
 * Injected failures are allowed to fail individual requests; what they are
 * never allowed to do is corrupt state. Between rounds the harness
 * restarts the daemon (gracefully or with SIGKILL mid-job, including
 * after a simulated crash) and verifies the durability contract:
 *
 *   - every clean serve of a grid is byte-identical to the first clean
 *     serve of that grid, across any number of faults and restarts;
 *   - once a grid has been served cleanly by a fault-free daemon, every
 *     later daemon serves it entirely from the store (zero recomputed
 *     cells) — i.e. no acknowledged store entry is ever lost;
 *   - a daemon killed at an arbitrary point always restarts over the
 *     store it left behind (torn appends seal; damage never spreads).
 *
 * The failpoint schedule is a pure function of the run seed, so a failing
 * run replays from its seed. Kill *timing* is wall-clock and jitters, but
 * the invariants hold for every interleaving, so replay still fails if
 * the underlying bug is real.
 */

#ifndef PARAGRAPH_FUZZ_CHAOS_HARNESS_HPP
#define PARAGRAPH_FUZZ_CHAOS_HARNESS_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace paragraph {
namespace fuzz {

struct ChaosOptions
{
    /** Run seed; the failpoint schedule derives from it deterministically. */
    uint64_t seed = 1;

    /** Total chaos sweep requests across the run. */
    unsigned iterations = 200;

    /** Sweeps per round; each round ends in a restart + verification
     *  pass over every reference grid. */
    unsigned roundLength = 50;

    /** Path to the paragraph-serve binary to fork. */
    std::string serveBinary;

    /** Directory for the socket, store, and scratch files. */
    std::string workDir;

    /** Trace inputs (file paths or workload specs) the grids draw from. */
    std::vector<std::string> inputs;

    /** Per-sweep probability of a SIGKILL mid-job + restart. */
    double killProbability = 0.1;

    /** Instruction cap per cell, keeps chaos cells cheap. */
    uint64_t maxInstructions = 20000;

    /** Log each round's progress to stderr. */
    bool verbose = false;
};

struct ChaosReport
{
    unsigned iterations = 0;     ///< chaos sweeps attempted
    unsigned cleanSweeps = 0;    ///< sweeps that completed with 0 failures
    unsigned faultedSweeps = 0;  ///< sweeps with injected cell failures
    unsigned requestErrors = 0;  ///< dropped connections / error responses
    unsigned busyResponses = 0;  ///< admission-control rejections observed
    unsigned kills = 0;          ///< SIGKILLs delivered mid-job
    unsigned restarts = 0;       ///< daemon (re)starts, all causes
    unsigned referenceGrids = 0; ///< distinct grids with a recorded doc
    unsigned verifiedGrids = 0;  ///< byte-identity re-checks that passed
    uint64_t failpointFires = 0; ///< totalFires reported by health probes

    /** Invariant violations — all must stay zero. */
    unsigned mismatches = 0;     ///< clean doc differed from the reference
    unsigned lostEntries = 0;    ///< durable grid needed recomputation
    unsigned corruptRestarts = 0; ///< daemon failed to restart on its store

    std::string firstFailure; ///< description of the first violation

    bool
    ok() const
    {
        return mismatches == 0 && lostEntries == 0 && corruptRestarts == 0;
    }
};

/** Run the chaos schedule; throws FatalError on harness-level errors
 *  (missing binary, unusable work dir), never on invariant violations —
 *  those are reported in the ChaosReport. */
ChaosReport runChaos(const ChaosOptions &opt);

/** One-line paragraph-chaos-v1 JSON rendering of @p report. */
std::string chaosReportJson(const ChaosOptions &opt,
                            const ChaosReport &report);

} // namespace fuzz
} // namespace paragraph

#endif // PARAGRAPH_FUZZ_CHAOS_HARNESS_HPP
