// libFuzzer entry point for the paragraph-sweep argument parser
// (PARAGRAPH_FUZZ=ON).
//
// engine::parseSweepArgs / buildSweepConfigAxis exist as library functions
// precisely so this target can drive them: any argument vector must either
// parse into a well-formed grid or be rejected through the error string —
// no exits, no prints, no UB. Input bytes are split on newlines into one
// argument per line.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/sweep_args.hpp"
#include "support/panic.hpp"

extern "C" int
LLVMFuzzerTestOneInput(const uint8_t *data, size_t size)
{
    using namespace paragraph;

    std::vector<std::string> args;
    std::string cur;
    for (size_t i = 0; i < size; ++i) {
        char c = static_cast<char>(data[i]);
        if (c == '\n') {
            args.push_back(cur);
            cur.clear();
        } else if (c != '\0') {
            cur += c;
        }
    }
    if (!cur.empty())
        args.push_back(cur);
    if (args.size() > 64)
        args.resize(64); // bound the grid cross product

    engine::SweepArgs parsed;
    std::string error;
    if (!engine::parseSweepArgs(args, parsed, error))
        return 0;
    // Bound each axis so the cross product stays small.
    auto cap = [](auto &v) {
        if (v.size() > 4)
            v.resize(4);
    };
    cap(parsed.windows);
    cap(parsed.renames);
    cap(parsed.syscalls);
    cap(parsed.predictors);
    cap(parsed.fus);

    std::vector<core::AnalysisConfig> configs;
    std::vector<std::string> labels;
    if (engine::buildSweepConfigAxis(parsed, configs, labels, error)) {
        if (configs.size() != labels.size())
            PARA_PANIC("config/label count mismatch: %zu vs %zu",
                       configs.size(), labels.size());
        if (configs.empty())
            PARA_PANIC("buildSweepConfigAxis succeeded with an empty grid");
    }
    return 0;
}
