#include "fuzz/trace_fuzzer.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "support/crc32.hpp"
#include "support/panic.hpp"
#include "support/string_utils.hpp"
#include "trace/file_io.hpp"

namespace paragraph {
namespace fuzz {

using trace::Operand;
using trace::Segment;
using trace::TraceBuffer;
using trace::TraceRecord;

const char *
mutationName(Mutation m)
{
    switch (m) {
      case Mutation::Truncate:        return "truncate";
      case Mutation::DuplicateRun:    return "duplicate-run";
      case Mutation::SelfDependence:  return "self-dependence";
      case Mutation::DeepChain:       return "deep-chain";
      case Mutation::SyscallBurst:    return "syscall-burst";
      case Mutation::UniqueDestFlood: return "unique-dest-flood";
      case Mutation::SegmentShuffle:  return "segment-shuffle";
      case Mutation::SourceStorm:     return "source-storm";
      default:                        return "none";
    }
}

TraceFuzzer::TraceFuzzer(FuzzerOptions opt) : opt_(opt), prng_(opt.seed) {}

namespace {

/** Segment base addresses keep the three universes visually distinct while
 *  still letting the alias machinery reuse the same numeric address across
 *  segments. */
uint64_t
segmentBase(Segment seg)
{
    switch (seg) {
      case Segment::Stack: return 0x7fff0000ULL;
      case Segment::Heap:  return 0x00200000ULL;
      default:             return 0x00010000ULL;
    }
}

Segment
rollSegment(Prng &prng)
{
    return static_cast<Segment>(1 + prng.nextBelow(3));
}

/** Value-creating classes a generic computation record can carry. */
const isa::OpClass kIntClasses[] = {isa::OpClass::IntAlu,
                                    isa::OpClass::IntAlu,
                                    isa::OpClass::IntAlu};
const isa::OpClass kLongClasses[] = {isa::OpClass::IntMul,
                                     isa::OpClass::IntDiv};
const isa::OpClass kFpClasses[] = {isa::OpClass::FpAddSub,
                                   isa::OpClass::FpMul, isa::OpClass::FpDiv};

} // namespace

Operand
TraceFuzzer::randomMemOperand(Prng &prng, uint64_t lastMemAddr)
{
    Segment seg = rollSegment(prng);
    if (lastMemAddr != 0 && prng.nextBelow(100) < opt_.aliasPct) {
        // Stack/heap aliasing: the same word re-appears under another
        // rolled segment, so the renaming switches see the address in
        // several storage classes over the trace.
        return Operand::mem(lastMemAddr, seg);
    }
    uint64_t word = prng.nextBelow(opt_.memWords ? opt_.memWords : 1);
    return Operand::mem(segmentBase(seg) + 8 * word, seg);
}

Operand
TraceFuzzer::randomOperand(Prng &prng, uint64_t lastMemAddr)
{
    switch (prng.nextBelow(3)) {
      case 0:
        return Operand::intReg(static_cast<uint8_t>(
            1 + prng.nextBelow(opt_.intRegs ? opt_.intRegs : 1)));
      case 1:
        return Operand::fpReg(static_cast<uint8_t>(
            prng.nextBelow(opt_.fpRegs ? opt_.fpRegs : 1)));
      default:
        return randomMemOperand(prng, lastMemAddr);
    }
}

TraceBuffer
TraceFuzzer::generate()
{
    TraceBuffer buf;
    Operand lastDest;
    uint64_t lastMemAddr = 0;

    const unsigned branchEnd = opt_.syscalls
                                   ? opt_.syscallPct + opt_.branchPct
                                   : opt_.branchPct;
    const unsigned memEnd = branchEnd + opt_.loadStorePct;
    const unsigned fpEnd = memEnd + opt_.fpPct;
    const unsigned longEnd = fpEnd + opt_.longLatencyPct;

    for (size_t i = 0; i < opt_.length; ++i) {
        TraceRecord rec;
        rec.pc = i;
        const uint64_t roll = prng_.nextBelow(100);

        if (opt_.syscalls && roll < opt_.syscallPct) {
            rec.cls = isa::OpClass::SysCall;
            rec.createsValue = true;
            rec.isSysCall = true;
            rec.addSrc(Operand::intReg(2));
            rec.dest = Operand::intReg(2);
        } else if (roll < branchEnd) {
            rec.cls = isa::OpClass::Control;
            rec.createsValue = false;
            rec.isCondBranch = prng_.nextBelow(4) != 0;
            rec.branchTaken = prng_.nextBelow(2) != 0;
            rec.addSrc(Operand::intReg(static_cast<uint8_t>(
                1 + prng_.nextBelow(opt_.intRegs ? opt_.intRegs : 1))));
        } else if (roll < memEnd) {
            // Memory traffic: half loads, half stores.
            Operand mem = randomMemOperand(prng_, lastMemAddr);
            lastMemAddr = mem.id;
            if (prng_.nextBelow(2) == 0) {
                rec.cls = isa::OpClass::Load;
                rec.createsValue = true;
                if (prng_.nextBelow(2) == 0) {
                    rec.addSrc(Operand::intReg(static_cast<uint8_t>(
                        1 +
                        prng_.nextBelow(opt_.intRegs ? opt_.intRegs : 1))));
                }
                rec.addSrc(mem);
                rec.dest = Operand::intReg(static_cast<uint8_t>(
                    1 + prng_.nextBelow(opt_.intRegs ? opt_.intRegs : 1)));
            } else {
                rec.cls = isa::OpClass::Store;
                rec.createsValue = true;
                Operand src =
                    (lastDest.valid() &&
                     prng_.nextBelow(100) < opt_.chainPct)
                        ? lastDest
                        : randomOperand(prng_, lastMemAddr);
                rec.addSrc(src);
                rec.dest = mem;
            }
        } else {
            if (roll < fpEnd) {
                rec.cls = kFpClasses[prng_.nextBelow(3)];
            } else if (roll < longEnd) {
                rec.cls = kLongClasses[prng_.nextBelow(2)];
            } else {
                rec.cls = kIntClasses[prng_.nextBelow(3)];
            }
            rec.createsValue = true;
            const int nsrcs = 1 + static_cast<int>(prng_.nextBelow(2));
            for (int s = 0; s < nsrcs; ++s) {
                // Dependence chains: reuse the previous destination so deep
                // serial structure (long critical paths) actually occurs.
                if (lastDest.valid() &&
                    prng_.nextBelow(100) < opt_.chainPct) {
                    rec.addSrc(lastDest);
                } else {
                    Operand op = randomOperand(prng_, lastMemAddr);
                    if (op.isMem())
                        lastMemAddr = op.id;
                    rec.addSrc(op);
                }
            }
            rec.dest = randomOperand(prng_, lastMemAddr);
            if (rec.dest.isMem())
                lastMemAddr = rec.dest.id;
        }
        if (rec.createsValue)
            lastDest = rec.dest;
        buf.push(rec);
    }
    return buf;
}

TraceBuffer
TraceFuzzer::mutate(const TraceBuffer &base, uint64_t seed,
                    Mutation *applied)
{
    Prng prng(seed);
    const size_t n = base.size();
    Mutation m = static_cast<Mutation>(
        prng.nextBelow(static_cast<uint64_t>(Mutation::NumMutations)));
    if (applied)
        *applied = m;
    if (n == 0)
        return base;

    TraceBuffer out = base;
    auto spanStart = [&](size_t len) {
        return static_cast<size_t>(prng.nextBelow(n - len + 1));
    };

    switch (m) {
      case Mutation::Truncate: {
        // Keep a non-empty prefix or suffix.
        size_t keep = 1 + static_cast<size_t>(prng.nextBelow(n));
        std::vector<TraceRecord> recs;
        if (prng.nextBelow(2) == 0) {
            recs.assign(base.records().begin(),
                        base.records().begin() +
                            static_cast<ptrdiff_t>(keep));
        } else {
            recs.assign(base.records().end() - static_cast<ptrdiff_t>(keep),
                        base.records().end());
        }
        return TraceBuffer(std::move(recs));
      }
      case Mutation::DuplicateRun: {
        size_t len = 1 + static_cast<size_t>(
                             prng.nextBelow(std::min<size_t>(n, 64)));
        size_t at = spanStart(len);
        std::vector<TraceRecord> recs = base.records();
        recs.insert(recs.begin() + static_cast<ptrdiff_t>(at + len),
                    base.records().begin() + static_cast<ptrdiff_t>(at),
                    base.records().begin() +
                        static_cast<ptrdiff_t>(at + len));
        return TraceBuffer(std::move(recs));
      }
      case Mutation::SelfDependence: {
        // Records that read the value they overwrite: the tightest storage
        // dependence (and a renaming edge case — Ddest from its own dest).
        size_t edits = 1 + static_cast<size_t>(prng.nextBelow(16));
        for (size_t e = 0; e < edits; ++e) {
            TraceRecord &rec = out[static_cast<size_t>(prng.nextBelow(n))];
            if (!rec.createsValue || !rec.dest.valid())
                continue;
            if (rec.numSrcs == 0)
                rec.addSrc(rec.dest);
            else
                rec.srcs[prng.nextBelow(rec.numSrcs)] = rec.dest;
        }
        return out;
      }
      case Mutation::DeepChain: {
        // Rewrite a span into one serial dependence chain through a single
        // register: critical path grows to ~the span length.
        size_t len = std::min<size_t>(
            n, 2 + static_cast<size_t>(prng.nextBelow(256)));
        size_t at = spanStart(len);
        uint8_t reg = static_cast<uint8_t>(
            1 + prng.nextBelow(opt_.intRegs ? opt_.intRegs : 1));
        for (size_t i = at; i < at + len; ++i) {
            TraceRecord &rec = out[i];
            rec.cls = isa::OpClass::IntAlu;
            rec.createsValue = true;
            rec.isSysCall = false;
            rec.isCondBranch = false;
            rec.numSrcs = 0;
            rec.lastUseMask = 0;
            rec.srcs[0] = rec.srcs[1] = rec.srcs[2] = Operand{};
            rec.addSrc(Operand::intReg(reg));
            rec.dest = Operand::intReg(reg);
        }
        return out;
      }
      case Mutation::SyscallBurst: {
        size_t burst = 3 + static_cast<size_t>(prng.nextBelow(14));
        size_t at = static_cast<size_t>(prng.nextBelow(n + 1));
        TraceRecord sys;
        sys.cls = isa::OpClass::SysCall;
        sys.createsValue = true;
        sys.isSysCall = true;
        sys.addSrc(Operand::intReg(2));
        sys.dest = Operand::intReg(2);
        std::vector<TraceRecord> recs = base.records();
        recs.insert(recs.begin() + static_cast<ptrdiff_t>(at), burst, sys);
        return TraceBuffer(std::move(recs));
      }
      case Mutation::UniqueDestFlood: {
        // A span of independent stores to never-reused addresses: with a
        // W-window every level must still respect the firewall bound.
        size_t len = std::min<size_t>(
            n, 8 + static_cast<size_t>(prng.nextBelow(512)));
        size_t at = spanStart(len);
        for (size_t i = at; i < at + len; ++i) {
            TraceRecord &rec = out[i];
            rec.cls = isa::OpClass::Store;
            rec.createsValue = true;
            rec.isSysCall = false;
            rec.isCondBranch = false;
            rec.numSrcs = 0;
            rec.lastUseMask = 0;
            rec.srcs[0] = rec.srcs[1] = rec.srcs[2] = Operand{};
            rec.dest =
                Operand::mem(0x90000000ULL + 8 * i, Segment::Data);
        }
        return out;
      }
      case Mutation::SegmentShuffle: {
        // A fixed permutation of the three segments across the whole trace
        // (the rename-stack/rename-data switches see traffic migrate).
        Segment perm[3] = {Segment::Data, Segment::Heap, Segment::Stack};
        std::swap(perm[prng.nextBelow(3)], perm[prng.nextBelow(3)]);
        auto remap = [&perm](Operand &op) {
            if (op.isMem())
                op.seg = perm[static_cast<size_t>(op.seg) - 1];
        };
        for (size_t i = 0; i < n; ++i) {
            for (int s = 0; s < out[i].numSrcs; ++s)
                remap(out[i].srcs[s]);
            remap(out[i].dest);
        }
        return out;
      }
      case Mutation::SourceStorm:
      default: {
        // Max out source counts with duplicated operands: duplicate-source
        // resolution and the degree-of-sharing accounting both stress.
        size_t edits = 1 + static_cast<size_t>(prng.nextBelow(32));
        for (size_t e = 0; e < edits; ++e) {
            TraceRecord &rec = out[static_cast<size_t>(prng.nextBelow(n))];
            if (rec.numSrcs == 0)
                continue;
            Operand dup = rec.srcs[prng.nextBelow(rec.numSrcs)];
            while (rec.numSrcs < trace::maxSrcs)
                rec.addSrc(dup);
        }
        return out;
      }
    }
}

bool
TraceFuzzer::validRecord(const TraceRecord &rec, std::string *why)
{
    auto bad = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };
    if (static_cast<uint8_t>(rec.cls) >=
        static_cast<uint8_t>(isa::OpClass::NumClasses))
        return bad(strFormat("bad op class %u",
                             static_cast<unsigned>(rec.cls)));
    if (rec.numSrcs > trace::maxSrcs)
        return bad(strFormat("bad source count %u", rec.numSrcs));
    if (rec.lastUseMask & ~((1u << rec.numSrcs) - 1))
        return bad(strFormat("last-use mask 0x%x names missing sources",
                             rec.lastUseMask));
    auto validOperand = [&](const Operand &op, const char *what) {
        switch (op.kind) {
          case Operand::Kind::None:
            if (op.seg != Segment::None)
                return bad(strFormat("%s: empty operand with a segment",
                                     what));
            return true;
          case Operand::Kind::IntReg:
          case Operand::Kind::FpReg:
            if (op.seg != Segment::None)
                return bad(strFormat("%s: register with a segment", what));
            if (op.id > 0xff)
                return bad(strFormat("%s: register index %llu too large",
                                     what,
                                     static_cast<unsigned long long>(
                                         op.id)));
            return true;
          case Operand::Kind::Mem:
            if (op.seg == Segment::None)
                return bad(strFormat("%s: memory operand without a segment",
                                     what));
            return true;
          default:
            return bad(strFormat("%s: bad operand kind", what));
        }
    };
    for (int s = 0; s < rec.numSrcs; ++s) {
        if (!rec.srcs[s].valid())
            return bad(strFormat("source %d missing below numSrcs", s));
        if (!validOperand(rec.srcs[s], "source"))
            return false;
    }
    for (int s = rec.numSrcs; s < trace::maxSrcs; ++s) {
        if (rec.srcs[s].valid())
            return bad(strFormat("source %d present above numSrcs", s));
    }
    if (!validOperand(rec.dest, "destination"))
        return false;
    if (rec.createsValue && !rec.dest.valid())
        return bad("value-creating record without a destination");
    return true;
}

bool
TraceFuzzer::validTrace(const TraceBuffer &buf, std::string *why)
{
    for (size_t i = 0; i < buf.size(); ++i) {
        std::string msg;
        if (!validRecord(buf[i], &msg)) {
            if (why)
                *why = strFormat("record %zu: %s", i, msg.c_str());
            return false;
        }
    }
    return true;
}

TraceBuffer
writeTraceWithFieldEdit(const TraceBuffer &buf, const std::string &path,
                        uint64_t seed)
{
    PARA_ASSERT(!buf.empty(), "field edit needs a non-empty trace");
    {
        trace::TraceFileWriter writer(path);
        for (const TraceRecord &rec : buf.records())
            writer.write(rec);
        writer.close();
    }

    Prng prng(seed);
    const size_t target = static_cast<size_t>(prng.nextBelow(buf.size()));
    const long recordOffset = static_cast<long>(
        sizeof(trace::TraceFileHeader) +
        target * sizeof(trace::PackedRecord));

    std::FILE *f = std::fopen(path.c_str(), "r+b");
    if (!f)
        PARA_FATAL("cannot reopen %s for the field edit", path.c_str());

    trace::PackedRecord packed;
    if (std::fseek(f, recordOffset, SEEK_SET) != 0 ||
        std::fread(&packed, sizeof(packed), 1, f) != 1) {
        std::fclose(f);
        PARA_FATAL("cannot read record %zu of %s", target, path.c_str());
    }

    // One in-range field edit the checksums cannot flag once repaired: the
    // reader's range validation plus decode determinism are all that stand
    // between this and silent corruption.
    switch (prng.nextBelow(4)) {
      case 0:
        packed.cls = static_cast<uint8_t>(
            (packed.cls + 1 + prng.nextBelow(isa::numOpClasses - 1)) %
            isa::numOpClasses);
        break;
      case 1:
        packed.pc ^= 1 + prng.nextBelow(0xffff);
        break;
      case 2:
        packed.flags ^= 0x08; // branchTaken: always within the valid mask
        break;
      default:
        packed.operandIds[3] ^= 8 * (1 + prng.nextBelow(0xff));
        break;
    }

    if (std::fseek(f, recordOffset, SEEK_SET) != 0 ||
        std::fwrite(&packed, sizeof(packed), 1, f) != 1) {
        std::fclose(f);
        PARA_FATAL("cannot rewrite record %zu of %s", target, path.c_str());
    }

    // Repair the payload CRC over the edited byte stream, then the header
    // CRC over the repaired header.
    uint32_t payloadCrc = 0;
    if (std::fseek(f, sizeof(trace::TraceFileHeader), SEEK_SET) != 0) {
        std::fclose(f);
        PARA_FATAL("seek failed in %s", path.c_str());
    }
    trace::PackedRecord scan;
    for (size_t i = 0; i < buf.size(); ++i) {
        if (std::fread(&scan, sizeof(scan), 1, f) != 1) {
            std::fclose(f);
            PARA_FATAL("payload rescan failed in %s", path.c_str());
        }
        payloadCrc = crc32Update(payloadCrc, &scan, sizeof(scan));
    }
    trace::TraceFileHeader hdr;
    if (std::fseek(f, 0, SEEK_SET) != 0 ||
        std::fread(&hdr, sizeof(hdr), 1, f) != 1) {
        std::fclose(f);
        PARA_FATAL("header reread failed in %s", path.c_str());
    }
    hdr.payloadCrc = payloadCrc;
    hdr.headerCrc = trace::traceHeaderCrc(hdr);
    if (std::fseek(f, 0, SEEK_SET) != 0 ||
        std::fwrite(&hdr, sizeof(hdr), 1, f) != 1 || std::fflush(f) != 0) {
        std::fclose(f);
        PARA_FATAL("header rewrite failed in %s", path.c_str());
    }
    std::fclose(f);

    // The expected decode: the same edit applied in memory. Any divergence
    // between this and what the reader returns is a found bug.
    TraceBuffer expected = buf;
    expected[target] = trace::unpackRecord(packed);
    return expected;
}

} // namespace fuzz
} // namespace paragraph
