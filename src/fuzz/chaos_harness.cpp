#include "fuzz/chaos_harness.hpp"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <map>
#include <thread>

#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "support/panic.hpp"
#include "support/prng.hpp"
#include "support/string_utils.hpp"

namespace paragraph {
namespace fuzz {

namespace {

void
sleepMs(unsigned ms)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/** Failpoint sites safe to arm inside a serving daemon. Store and decode
 *  sites may use any policy; socket sites stay probabilistic so a round
 *  can always make *some* progress. */
constexpr const char *kStoreSites[] = {
    "store.append.fail", "store.append.torn", "store.sync",
    "store.compact",     "trace.decode.block",
};
constexpr const char *kSocketSites[] = {
    "serve.read",
    "serve.write",
    "serve.accept",
};

std::string
randomPolicy(Prng &rng, bool socketSite)
{
    unsigned kind = static_cast<unsigned>(rng.nextBelow(socketSite ? 2 : 4));
    switch (kind) {
      case 0:
        return strFormat("prob:0.%02u",
                         static_cast<unsigned>(rng.nextBelow(31) + 5));
      case 1:
        return strFormat("once:%u",
                         static_cast<unsigned>(rng.nextBelow(8)));
      case 2:
        return strFormat("after:%u",
                         static_cast<unsigned>(rng.nextBelow(16) + 4));
      default:
        return "once";
    }
}

std::string
randomSpec(Prng &rng)
{
    unsigned count = 2 + static_cast<unsigned>(rng.nextBelow(2));
    std::string spec;
    for (unsigned i = 0; i < count; ++i) {
        bool socketSite = rng.nextBelow(3) == 0; // sockets chaos, sparingly
        const char *site =
            socketSite
                ? kSocketSites[rng.nextBelow(std::size(kSocketSites))]
                : kStoreSites[rng.nextBelow(std::size(kStoreSites))];
        if (spec.find(site) != std::string::npos)
            continue; // one policy per site
        if (!spec.empty())
            spec += ';';
        spec += site;
        spec += '=';
        spec += randomPolicy(rng, socketSite);
    }
    return spec;
}

/** The forked paragraph-serve daemon under test. */
struct DaemonProc
{
    std::string binary;
    std::string socketPath;
    std::string storePath;
    pid_t pid = -1;

    /** Fork + exec the daemon, optionally with startup failpoints in its
     *  environment, and wait for it to bind its socket. */
    bool
    start(const std::string &envSpec, uint64_t envSeed, std::string &error)
    {
        ::unlink(socketPath.c_str());
        pid = ::fork();
        if (pid < 0) {
            error = "fork failed";
            return false;
        }
        if (pid == 0) {
            if (envSpec.empty()) {
                ::unsetenv("PARAGRAPH_FAILPOINTS");
                ::unsetenv("PARAGRAPH_FAILPOINT_SEED");
            } else {
                ::setenv("PARAGRAPH_FAILPOINTS", envSpec.c_str(), 1);
                ::setenv("PARAGRAPH_FAILPOINT_SEED",
                         std::to_string(envSeed).c_str(), 1);
            }
            std::string sockArg = "--socket=" + socketPath;
            std::string storeArg = "--store=" + storePath;
            ::execl(binary.c_str(), binary.c_str(), sockArg.c_str(),
                    storeArg.c_str(), "--jobs=2", "--quiet",
                    "--allow-failpoints", "--store-sync=interval",
                    "--store-sync-interval=0.05", "--store-compact-every=64",
                    "--io-timeout=30", "--max-request=1048576",
                    "--max-pending=8", "--max-clients=16",
                    static_cast<char *>(nullptr));
            _exit(127); // exec failed
        }
        struct stat st;
        for (int i = 0; i < 1000; ++i) {
            if (::stat(socketPath.c_str(), &st) == 0)
                return true;
            int status = 0;
            if (::waitpid(pid, &status, WNOHANG) == pid) {
                pid = -1;
                error = strFormat("daemon exited during startup "
                                  "(status 0x%x)",
                                  status);
                return false;
            }
            sleepMs(10);
        }
        error = "daemon never bound its socket";
        return false;
    }

    bool
    alive()
    {
        if (pid < 0)
            return false;
        int status = 0;
        if (::waitpid(pid, &status, WNOHANG) == pid) {
            pid = -1;
            return false;
        }
        return true;
    }

    void
    kill9()
    {
        if (pid < 0)
            return;
        ::kill(pid, SIGKILL);
        int status = 0;
        ::waitpid(pid, &status, 0);
        pid = -1;
    }

    /** SIGTERM and reap; true iff the daemon exited cleanly (status 0)
     *  within ~10 seconds. */
    bool
    stopGracefully()
    {
        if (pid < 0)
            return true;
        ::kill(pid, SIGTERM);
        int status = 0;
        for (int i = 0; i < 1000; ++i) {
            pid_t r = ::waitpid(pid, &status, WNOHANG);
            if (r == pid) {
                pid = -1;
                return WIFEXITED(status) && WEXITSTATUS(status) == 0;
            }
            sleepMs(10);
        }
        kill9(); // wedged past the deadline: that is itself a failure
        return false;
    }

    ~DaemonProc()
    {
        kill9();
        ::unlink(socketPath.c_str());
    }
};

enum class Outcome { Ok, Busy, Error, Dropped };

/** One request/response round trip on a fresh connection. Busy responses
 *  are retried with the daemon's own hint, a few times. */
Outcome
request(const std::string &socketPath, const std::string &line,
        serve::ServeResponse &resp, unsigned *busySeen = nullptr)
{
    for (int attempt = 0; attempt < 10; ++attempt) {
        serve::ServeClient client(socketPath);
        client.setTimeout(60.0);
        std::string error;
        if (!client.connect(error))
            return Outcome::Dropped;
        std::string respLine;
        if (!client.roundTrip(line, respLine, error))
            return Outcome::Dropped;
        if (!serve::parseServeResponse(respLine, resp, error))
            return Outcome::Error;
        if (resp.busy()) {
            if (busySeen)
                ++*busySeen;
            uint64_t waitMs = resp.retryAfterMs > 200 ? 200
                                                      : resp.retryAfterMs;
            sleepMs(static_cast<unsigned>(waitMs ? waitMs : 50));
            continue;
        }
        return resp.ok() ? Outcome::Ok : Outcome::Error;
    }
    return Outcome::Busy; // still shedding load after every retry
}

} // namespace

ChaosReport
runChaos(const ChaosOptions &opt)
{
    if (opt.inputs.empty())
        PARA_FATAL("chaos: no trace inputs to sweep");
    if (::access(opt.serveBinary.c_str(), X_OK) != 0)
        PARA_FATAL("chaos: cannot execute serve binary: %s",
                   opt.serveBinary.c_str());
    if (::mkdir(opt.workDir.c_str(), 0755) != 0 && errno != EEXIST)
        PARA_FATAL("chaos: cannot create work dir: %s", opt.workDir.c_str());

    DaemonProc daemon;
    daemon.binary = opt.serveBinary;
    daemon.socketPath = opt.workDir + "/chaos.sock";
    daemon.storePath = opt.workDir + "/chaos-store.jsonl";
    std::remove(daemon.storePath.c_str()); // every run starts cold

    // The grid pool: single- and double-input requests over a few window
    // sets, all instruction-capped so chaos cells stay cheap.
    std::vector<serve::ServeRequest> grids;
    const std::vector<std::vector<uint64_t>> windowSets = {
        {16}, {64}, {16, 64}};
    for (size_t i = 0; i < opt.inputs.size(); ++i) {
        for (const auto &windows : windowSets) {
            serve::ServeRequest req;
            req.op = serve::ServeRequest::Op::Sweep;
            req.inputs = {opt.inputs[i]};
            if (windows.size() > 1 && opt.inputs.size() > 1)
                req.inputs.push_back(
                    opt.inputs[(i + 1) % opt.inputs.size()]);
            req.windows = windows;
            req.maxInstructions = opt.maxInstructions;
            grids.push_back(std::move(req));
        }
    }

    Prng rng(opt.seed);
    ChaosReport report;
    std::map<std::string, std::string> reference; // grid key -> clean doc
    std::map<std::string, bool> durable; // proven fully stored once
    auto violation = [&](const std::string &what) {
        if (report.firstFailure.empty())
            report.firstFailure = what;
        if (opt.verbose)
            std::fprintf(stderr, "chaos: VIOLATION: %s\n", what.c_str());
    };
    unsigned mismatchDumps = 0;
    auto dumpMismatch = [&](const std::string &expected,
                            const std::string &actual) {
        // Keep the diverging documents around for post-mortem diffing.
        std::string base =
            strFormat("%s/mismatch-%u", opt.workDir.c_str(), mismatchDumps++);
        for (const auto &side :
             {std::make_pair(base + ".ref.json", &expected),
              std::make_pair(base + ".got.json", &actual)}) {
            if (std::FILE *f = std::fopen(side.first.c_str(), "w")) {
                std::fwrite(side.second->data(), 1, side.second->size(), f);
                std::fclose(f);
            }
        }
        if (opt.verbose)
            std::fprintf(stderr, "chaos: dumped %s.{ref,got}.json\n",
                         base.c_str());
    };

    auto restart = [&](bool allowStartupChaos) -> bool {
        // A quarter of the restarts also stress worker-pool startup.
        std::string envSpec;
        if (allowStartupChaos && rng.nextBelow(4) == 0)
            envSpec = "scheduler.worker.start=prob:0.50";
        std::string error;
        if (!daemon.start(envSpec, rng.next(), error)) {
            ++report.corruptRestarts;
            violation("daemon restart failed: " + error);
            return false;
        }
        ++report.restarts;
        return true;
    };

    // SIGKILL also discards the daemon's failpoint counters, so fold them
    // into the report while it is still breathing.
    auto probeFires = [&]() {
        serve::ServeRequest probe;
        probe.op = serve::ServeRequest::Op::Health;
        serve::ServeResponse health;
        if (request(daemon.socketPath, serve::renderServeRequest(probe),
                    health) == Outcome::Ok)
            report.failpointFires += health.failpointFires;
    };

    if (!restart(true))
        return report;

    unsigned done = 0;
    while (done < opt.iterations && report.ok()) {
        // ---- chaos segment: armed failpoints, tolerated failures ----
        std::string spec = randomSpec(rng);
        {
            serve::ServeRequest arm;
            arm.op = serve::ServeRequest::Op::Failpoint;
            arm.failpointSpec = spec;
            arm.failpointSeed = rng.next();
            arm.hasFailpointSeed = true;
            serve::ServeResponse resp;
            if (request(daemon.socketPath, serve::renderServeRequest(arm),
                        resp) != Outcome::Ok)
                ++report.requestErrors; // round runs unarmed; still valid
            else if (opt.verbose)
                std::fprintf(stderr, "chaos: armed [%s]\n", spec.c_str());
        }

        unsigned n = opt.roundLength;
        if (n > opt.iterations - done)
            n = opt.iterations - done;
        for (unsigned i = 0; i < n && report.ok(); ++i) {
            const serve::ServeRequest &grid =
                grids[rng.nextBelow(grids.size())];
            std::string key = serve::renderServeRequest(grid);
            serve::ServeResponse resp;
            ++done;
            ++report.iterations;
            switch (request(daemon.socketPath, key, resp,
                            &report.busyResponses)) {
              case Outcome::Ok:
                if (resp.cellsFailed == 0) {
                    auto it = reference.find(key);
                    if (it == reference.end()) {
                        reference.emplace(key, resp.document);
                        ++report.referenceGrids;
                    } else if (resp.document != it->second) {
                        ++report.mismatches;
                        dumpMismatch(it->second, resp.document);
                        violation("clean sweep diverged from its "
                                  "reference document: " +
                                  key);
                    }
                    ++report.cleanSweeps;
                } else {
                    ++report.faultedSweeps;
                }
                break;
              case Outcome::Busy:
                break; // already counted per busy line
              case Outcome::Error:
              case Outcome::Dropped:
                ++report.requestErrors;
                break;
            }

            if (!daemon.alive()) {
                // No injected fault is allowed to take the process down.
                ++report.corruptRestarts;
                violation("daemon died under failpoint chaos");
                break;
            }

            if (rng.nextDouble() < opt.killProbability) {
                // Fire a sweep and kill the daemon mid-job: whatever the
                // store absorbed must survive, whatever it lost must be
                // recomputable.
                serve::ServeClient mid(daemon.socketPath);
                std::string error;
                if (mid.connect(error)) {
                    mid.sendLine(
                        serve::renderServeRequest(
                            grids[rng.nextBelow(grids.size())]),
                        error);
                    sleepMs(static_cast<unsigned>(rng.nextBelow(30)));
                }
                probeFires();
                daemon.kill9();
                ++report.kills;
                if (!restart(true))
                    break;
                break; // re-arm at the top of the next segment
            }
        }
        if (!report.ok())
            break;

        // ---- verification segment: fresh fault-free daemon ----
        probeFires();
        bool killRestart = rng.nextBelow(2) == 0;
        if (killRestart) {
            daemon.kill9();
            ++report.kills;
        } else if (!daemon.stopGracefully()) {
            ++report.corruptRestarts;
            violation("daemon did not exit cleanly on SIGTERM");
            break;
        }
        if (!restart(false))
            break;

        for (auto &kv : reference) {
            serve::ServeResponse resp;
            if (request(daemon.socketPath, kv.first, resp,
                        &report.busyResponses) != Outcome::Ok ||
                resp.cellsFailed != 0) {
                ++report.lostEntries;
                violation("fault-free verification sweep failed: " +
                          kv.first);
                continue;
            }
            if (resp.document != kv.second) {
                ++report.mismatches;
                dumpMismatch(kv.second, resp.document);
                violation("re-served document is not byte-identical: " +
                          kv.first);
                continue;
            }
            ++report.verifiedGrids;
            if (durable[kv.first]) {
                // This grid was fully stored by an earlier round; a fresh
                // daemon over the surviving store must not recompute any
                // of it.
                if (resp.cellsComputed != 0) {
                    ++report.lostEntries;
                    violation(strFormat(
                        "store lost %llu acknowledged cells of a durable "
                        "grid",
                        static_cast<unsigned long long>(
                            resp.cellsComputed)));
                }
            } else {
                // First clean pass appended everything; an immediate
                // re-serve proves the store round-trip before we rely on
                // it across restarts.
                serve::ServeResponse again;
                if (request(daemon.socketPath, kv.first, again,
                            &report.busyResponses) == Outcome::Ok &&
                    again.cellsFailed == 0 && again.cellsComputed == 0 &&
                    again.document == kv.second) {
                    durable[kv.first] = true;
                } else {
                    ++report.lostEntries;
                    violation("immediate re-serve was not fully cached: " +
                              kv.first);
                }
            }
        }
        if (opt.verbose)
            std::fprintf(stderr,
                         "chaos: %u/%u sweeps, %u refs, %u durable, "
                         "%llu fires\n",
                         done, opt.iterations, report.referenceGrids,
                         static_cast<unsigned>(durable.size()),
                         static_cast<unsigned long long>(
                             report.failpointFires));
    }

    if (!daemon.stopGracefully() && report.ok()) {
        ++report.corruptRestarts;
        violation("daemon did not exit cleanly on final SIGTERM");
    }
    return report;
}

std::string
chaosReportJson(const ChaosOptions &opt, const ChaosReport &report)
{
    return strFormat(
        "{\"schema\": \"paragraph-chaos-v1\", \"seed\": %llu, "
        "\"iterations\": %u, \"clean_sweeps\": %u, \"faulted_sweeps\": %u, "
        "\"request_errors\": %u, \"busy_responses\": %u, \"kills\": %u, "
        "\"restarts\": %u, \"reference_grids\": %u, \"verified_grids\": %u, "
        "\"failpoint_fires\": %llu, \"mismatches\": %u, "
        "\"lost_entries\": %u, \"corrupt_restarts\": %u, \"ok\": %s}",
        static_cast<unsigned long long>(opt.seed), report.iterations,
        report.cleanSweeps, report.faultedSweeps, report.requestErrors,
        report.busyResponses, report.kills, report.restarts,
        report.referenceGrids, report.verifiedGrids,
        static_cast<unsigned long long>(report.failpointFires),
        report.mismatches, report.lostEntries, report.corruptRestarts,
        report.ok() ? "true" : "false");
}

} // namespace fuzz
} // namespace paragraph
