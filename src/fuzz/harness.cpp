#include "fuzz/harness.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "support/panic.hpp"
#include "support/string_utils.hpp"
#include "trace/compressed_io.hpp"
#include "trace/file_io.hpp"

namespace paragraph {
namespace fuzz {

namespace {

/** SplitMix64 combine: iteration seeds from the run seed. */
uint64_t
mixSeed(uint64_t a, uint64_t b)
{
    uint64_t z = a + b * 0x9e3779b97f4a7c15ULL + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strFormat("\\u%04x", c);
            else
                out += c;
        }
    }
    out += '"';
    return out;
}

/**
 * Extract the raw value token following `"key":` in a flat JSON object.
 * Only what the repro config needs: strings, integers, booleans, no
 * nesting inside values. @return false when the key is absent.
 */
bool
jsonField(const std::string &text, const std::string &key, std::string &out)
{
    std::string needle = "\"" + key + "\"";
    size_t pos = text.find(needle);
    if (pos == std::string::npos)
        return false;
    pos = text.find(':', pos + needle.size());
    if (pos == std::string::npos)
        return false;
    ++pos;
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t'))
        ++pos;
    if (pos >= text.size())
        return false;
    if (text[pos] == '"') {
        size_t end = pos + 1;
        std::string value;
        while (end < text.size() && text[end] != '"') {
            if (text[end] == '\\' && end + 1 < text.size()) {
                ++end;
                switch (text[end]) {
                  case 'n': value += '\n'; break;
                  case 'r': value += '\r'; break;
                  case 't': value += '\t'; break;
                  default: value += text[end];
                }
            } else {
                value += text[end];
            }
            ++end;
        }
        if (end >= text.size())
            return false;
        out = value;
        return true;
    }
    size_t end = pos;
    while (end < text.size() && text[end] != ',' && text[end] != '}' &&
           text[end] != '\n')
        ++end;
    out = std::string(trim(text.substr(pos, end - pos)));
    return !out.empty();
}

bool
jsonUint(const std::string &text, const std::string &key, uint64_t &out)
{
    std::string raw;
    int64_t v = 0;
    if (!jsonField(text, key, raw) || !parseInt(raw, v) || v < 0)
        return false;
    out = static_cast<uint64_t>(v);
    return true;
}

std::string
readWholeFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        PARA_FATAL("cannot open %s", path.c_str());
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return text;
}

std::string
scratchPath(const HarnessOptions &opt, const char *tag)
{
    std::string dir = opt.tempDir;
    if (dir.empty()) {
        const char *env = std::getenv("TMPDIR");
        dir = env && *env ? env : "/tmp";
    }
    return strFormat("%s/paragraph-fuzz-%s-%d.ptrc", dir.c_str(), tag,
                     static_cast<int>(::getpid()));
}

/** True when @p report still violates @p property. */
bool
violates(const OracleReport &report, const std::string &property)
{
    for (const Violation &v : report.violations)
        if (v.property == property)
            return true;
    return false;
}

} // namespace

std::string
FuzzSummary::toJson() const
{
    std::string out = "{\n";
    out += strFormat("  \"schema\": \"paragraph-fuzz-v1\",\n");
    out += strFormat("  \"iters_requested\": %llu,\n",
                     static_cast<unsigned long long>(itersRequested));
    out += strFormat("  \"iters_completed\": %llu,\n",
                     static_cast<unsigned long long>(itersCompleted));
    out += strFormat("  \"traces_checked\": %llu,\n",
                     static_cast<unsigned long long>(tracesChecked));
    out += strFormat("  \"mutants_checked\": %llu,\n",
                     static_cast<unsigned long long>(mutantsChecked));
    out += strFormat("  \"records_analyzed\": %llu,\n",
                     static_cast<unsigned long long>(recordsAnalyzed));
    out += strFormat("  \"round_trip_checks\": %llu,\n",
                     static_cast<unsigned long long>(roundTripChecks));
    out += strFormat("  \"field_edit_checks\": %llu,\n",
                     static_cast<unsigned long long>(fieldEditChecks));
    out += strFormat("  \"properties\": %zu,\n", propertiesChecked);
    out += strFormat("  \"violations\": %zu,\n",
                     failed ? failure.report.violations.size() : size_t{0});
    out += strFormat("  \"failed\": %s", failed ? "true" : "false");
    if (failed) {
        out += ",\n  \"failure\": {\n";
        out += strFormat("    \"iteration\": %llu,\n",
                         static_cast<unsigned long long>(failure.iteration));
        out += strFormat(
            "    \"seed\": %llu,\n",
            static_cast<unsigned long long>(failure.iterationSeed));
        out += strFormat("    \"stage\": %s,\n",
                         jsonEscape(failure.stage).c_str());
        out += strFormat("    \"property\": %s,\n",
                         jsonEscape(failure.property).c_str());
        out += strFormat("    \"message\": %s,\n",
                         jsonEscape(failure.report.summary()).c_str());
        out += strFormat("    \"records\": %zu,\n", failure.trace.size());
        out += strFormat("    \"original_records\": %zu,\n",
                         failure.originalRecords);
        out += strFormat("    \"repro_trace\": %s,\n",
                         jsonEscape(failure.reproTracePath).c_str());
        out += strFormat("    \"repro_config\": %s\n",
                         jsonEscape(failure.reproConfigPath).c_str());
        out += "  }";
    }
    out += "\n}\n";
    return out;
}

FuzzHarness::FuzzHarness(HarnessOptions opt) : opt_(std::move(opt))
{
    if (opt_.minLength < 2)
        opt_.minLength = 2;
    if (opt_.maxLength < opt_.minLength)
        opt_.maxLength = opt_.minLength;
    if (opt_.oracle.tempDir.empty())
        opt_.oracle.tempDir = opt_.tempDir;
}

bool
FuzzHarness::checkStage(const trace::TraceBuffer &trace, uint64_t iteration,
                        uint64_t iterSeed, const std::string &stage,
                        bool withRoundTrip, FuzzSummary &summary)
{
    OracleOptions oopt = opt_.oracle;
    oopt.checkRoundTrip = withRoundTrip;
    InvariantOracle oracle(oopt);
    OracleReport report = oracle.check(trace);
    summary.propertiesChecked = report.propertiesChecked;
    summary.recordsAnalyzed += trace.size();
    if (withRoundTrip)
        ++summary.roundTripChecks;
    if (report.ok())
        return true;
    recordFailure(trace, iteration, iterSeed, stage, std::move(report),
                  summary);
    return false;
}

void
FuzzHarness::recordFailure(const trace::TraceBuffer &trace,
                           uint64_t iteration, uint64_t iterSeed,
                           const std::string &stage, OracleReport report,
                           FuzzSummary &summary)
{
    summary.failed = true;
    FailureCase &f = summary.failure;
    f.iteration = iteration;
    f.iterationSeed = iterSeed;
    f.stage = stage;
    f.property = report.violations.front().property;
    f.report = std::move(report);
    f.trace = trace;
    f.originalRecords = trace.size();
    if (opt_.minimize && !trace.empty()) {
        f.trace = minimizeFailure(trace, f.property);
        // Re-check so the dumped report describes the minimized trace.
        OracleOptions oopt = opt_.oracle;
        oopt.checkRoundTrip = false;
        OracleReport minimized = InvariantOracle(oopt).check(f.trace);
        if (violates(minimized, f.property))
            f.report = std::move(minimized);
    }
    dumpRepro(f);
}

void
FuzzHarness::dumpRepro(FailureCase &failure) const
{
    if (opt_.reproDir.empty())
        return;
    const std::string base =
        strFormat("%s/repro-%llu", opt_.reproDir.c_str(),
                  static_cast<unsigned long long>(failure.iterationSeed));
    failure.reproTracePath = base + ".ptrc";
    failure.reproConfigPath = base + ".json";

    trace::TraceFileWriter writer(failure.reproTracePath);
    for (const trace::TraceRecord &rec : failure.trace.records())
        writer.write(rec);
    writer.close();

    std::FILE *f = std::fopen(failure.reproConfigPath.c_str(), "w");
    if (!f)
        PARA_FATAL("cannot write %s", failure.reproConfigPath.c_str());
    std::string json = "{\n";
    json += "  \"schema\": \"paragraph-fuzz-repro-v1\",\n";
    json += strFormat("  \"seed\": %llu,\n",
                      static_cast<unsigned long long>(failure.iterationSeed));
    json += strFormat("  \"iteration\": %llu,\n",
                      static_cast<unsigned long long>(failure.iteration));
    json += strFormat("  \"stage\": %s,\n", jsonEscape(failure.stage).c_str());
    json += strFormat("  \"property\": %s,\n",
                      jsonEscape(failure.property).c_str());
    json += strFormat("  \"message\": %s,\n",
                      jsonEscape(failure.report.summary()).c_str());
    json += strFormat("  \"window_small\": %llu,\n",
                      static_cast<unsigned long long>(opt_.oracle.windowSmall));
    json += strFormat("  \"window_large\": %llu,\n",
                      static_cast<unsigned long long>(opt_.oracle.windowLarge));
    json += strFormat("  \"fu_limit\": %u,\n", opt_.oracle.fuLimit);
    json += strFormat("  \"force_failure\": %s\n",
                      opt_.oracle.forceFailure ? "true" : "false");
    json += "}\n";
    if (std::fwrite(json.data(), 1, json.size(), f) != json.size()) {
        std::fclose(f);
        PARA_FATAL("short write to %s", failure.reproConfigPath.c_str());
    }
    std::fclose(f);
}

FuzzSummary
FuzzHarness::run()
{
    FuzzSummary summary;
    summary.itersRequested = opt_.iters;

    for (uint64_t i = 0; i < opt_.iters; ++i) {
        const uint64_t iterSeed = mixSeed(opt_.seed, i);
        Prng knobs(mixSeed(iterSeed, 0x6b6e6f62));

        FuzzerOptions fo;
        fo.seed = iterSeed;
        fo.length = opt_.minLength +
                    static_cast<size_t>(knobs.nextBelow(
                        opt_.maxLength - opt_.minLength + 1));
        fo.chainPct = 15 + static_cast<unsigned>(knobs.nextBelow(60));
        fo.aliasPct = static_cast<unsigned>(knobs.nextBelow(30));
        fo.syscalls = knobs.nextBelow(8) != 0;
        fo.branchPct = 4 + static_cast<unsigned>(knobs.nextBelow(20));

        TraceFuzzer fuzzer(fo);
        trace::TraceBuffer generated = fuzzer.generate();
        std::string why;
        if (!TraceFuzzer::validTrace(generated, &why)) {
            OracleReport rep;
            rep.violations.push_back(
                Violation{"fuzzer-validity", "generated trace invalid: " +
                                                 why});
            recordFailure(generated, i, iterSeed, "generated",
                          std::move(rep), summary);
            break;
        }

        const bool roundTrip =
            opt_.roundTripEvery != 0 && i % opt_.roundTripEvery == 0;
        ++summary.tracesChecked;
        if (!checkStage(generated, i, iterSeed, "generated", roundTrip,
                        summary))
            break;

        Mutation applied;
        trace::TraceBuffer mutant =
            fuzzer.mutate(generated, mixSeed(iterSeed, 0x6d757461), &applied);
        const char *stage = mutationName(applied);
        if (!TraceFuzzer::validTrace(mutant, &why)) {
            OracleReport rep;
            rep.violations.push_back(Violation{
                "fuzzer-validity",
                strFormat("%s mutant invalid: %s", stage, why.c_str())});
            recordFailure(mutant, i, iterSeed, stage, std::move(rep),
                          summary);
            break;
        }
        ++summary.mutantsChecked;
        if (!checkStage(mutant, i, iterSeed, stage, false, summary))
            break;

        if (opt_.fieldEditEvery != 0 && i % opt_.fieldEditEvery == 0 &&
            !generated.empty()) {
            const std::string path = scratchPath(opt_, "edit");
            trace::TraceBuffer expected = writeTraceWithFieldEdit(
                generated, path, mixSeed(iterSeed, 0x65646974));
            auto reader = trace::openTraceFile(path);
            trace::TraceBuffer decoded;
            decoded.capture(*reader);
            std::remove(path.c_str());
            ++summary.fieldEditChecks;
            bool same = decoded.size() == expected.size();
            for (size_t r = 0; same && r < decoded.size(); ++r)
                same = decoded[r] == expected[r];
            if (!same) {
                OracleReport rep;
                rep.violations.push_back(Violation{
                    "field-edit-decode",
                    strFormat("CRC-repaired field edit decoded to a "
                              "different trace (%zu vs %zu records)",
                              decoded.size(), expected.size())});
                recordFailure(expected, i, iterSeed, "field-edit",
                              std::move(rep), summary);
                break;
            }
        }

        ++summary.itersCompleted;
        if (opt_.progress)
            opt_.progress(i + 1, opt_.iters);
    }
    return summary;
}

trace::TraceBuffer
FuzzHarness::minimizeFailure(const trace::TraceBuffer &failing,
                             const std::string &property) const
{
    OracleOptions oopt = opt_.oracle;
    oopt.checkRoundTrip = false;
    InvariantOracle oracle(oopt);
    unsigned budget = opt_.minimizeBudget;

    auto stillFails = [&](const trace::TraceBuffer &candidate) {
        if (budget == 0)
            return false;
        --budget;
        return violates(oracle.check(candidate), property);
    };

    trace::TraceBuffer cur = failing;
    size_t chunk = cur.size() / 2;
    while (chunk >= 1 && budget > 0) {
        bool removedAny = false;
        size_t start = 0;
        while (start < cur.size() && budget > 0) {
            trace::TraceBuffer candidate;
            const auto &recs = cur.records();
            candidate.records().assign(recs.begin(),
                                       recs.begin() +
                                           static_cast<ptrdiff_t>(start));
            if (start + chunk < recs.size())
                candidate.records().insert(
                    candidate.records().end(),
                    recs.begin() + static_cast<ptrdiff_t>(start + chunk),
                    recs.end());
            if (!candidate.empty() && stillFails(candidate)) {
                cur = std::move(candidate);
                removedAny = true;
                // keep start: the next chunk slid into this position
            } else {
                start += chunk;
            }
        }
        if (!removedAny || chunk == 1)
            chunk /= 2;
    }
    return cur;
}

OracleReport
FuzzHarness::replay(const std::string &tracePath,
                    const std::string &configPath, std::string *stage,
                    std::string *property) const
{
    const std::string text = readWholeFile(configPath);
    std::string schema;
    if (!jsonField(text, "schema", schema) ||
        schema != "paragraph-fuzz-repro-v1")
        PARA_FATAL("%s: not a paragraph-fuzz-repro-v1 config",
                   configPath.c_str());

    OracleOptions oopt = opt_.oracle;
    uint64_t v = 0;
    if (jsonUint(text, "window_small", v))
        oopt.windowSmall = v;
    if (jsonUint(text, "window_large", v))
        oopt.windowLarge = v;
    if (jsonUint(text, "fu_limit", v))
        oopt.fuLimit = static_cast<uint32_t>(v);
    std::string raw;
    if (jsonField(text, "force_failure", raw))
        oopt.forceFailure = raw == "true";
    if (stage)
        jsonField(text, "stage", *stage);
    if (property)
        jsonField(text, "property", *property);

    auto reader = trace::openTraceFile(tracePath);
    trace::TraceBuffer buf;
    buf.capture(*reader);
    oopt.checkRoundTrip = true;
    return InvariantOracle(oopt).check(buf);
}

} // namespace fuzz
} // namespace paragraph
