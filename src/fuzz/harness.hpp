/**
 * @file
 * FuzzHarness: the fuzzing loop that ties TraceFuzzer to InvariantOracle.
 *
 * Each iteration derives a fresh seed from the run seed, generates a trace,
 * checks the full invariant catalogue against it, then applies one
 * structured mutation and checks the mutant too. File-level checks are
 * sampled: every Nth iteration the oracle also round-trips the trace
 * through `.ptrc`/`.ptrz`, and the CRC-preserving field-edit decode check
 * (trace_fuzzer.hpp) runs against the on-disk reader.
 *
 * The first violation stops the run: the failing trace is dumped as
 * `repro-<seed>.ptrc` plus a flat `repro-<seed>.json` describing the stage,
 * property, and oracle configuration, optionally after ddmin-style
 * minimization (greedy chunk removal that preserves the violated property).
 * replay() re-runs a dump and must reproduce the identical violation —
 * tested, and part of the acceptance criteria for this subsystem.
 */

#ifndef PARAGRAPH_FUZZ_HARNESS_HPP
#define PARAGRAPH_FUZZ_HARNESS_HPP

#include <cstdint>
#include <functional>
#include <string>

#include "fuzz/invariant_oracle.hpp"
#include "fuzz/trace_fuzzer.hpp"
#include "trace/buffer.hpp"

namespace paragraph {
namespace fuzz {

struct HarnessOptions
{
    /** Run seed: every iteration seed derives from it deterministically. */
    uint64_t seed = 1;

    /** Iterations (one generated trace + one mutant each). */
    uint64_t iters = 1000;

    /** Per-iteration trace length is drawn from [minLength, maxLength]. */
    size_t minLength = 64;
    size_t maxLength = 512;

    /** Run the oracle's file round-trip property every Nth iteration
     *  (0 = never). File I/O per check, hence sampled. */
    unsigned roundTripEvery = 8;

    /** Run the CRC-preserving field-edit decode check every Nth iteration
     *  (0 = never). */
    unsigned fieldEditEvery = 16;

    /** Where failure reproducers are written. Empty = don't dump. */
    std::string reproDir = ".";

    /** ddmin the failing trace before dumping it. */
    bool minimize = false;

    /** Upper bound on oracle evaluations the minimizer may spend. */
    unsigned minimizeBudget = 400;

    /** Scratch directory for file checks; empty = system temp dir. */
    std::string tempDir;

    /** Oracle knobs (window pair, FU limit, forceFailure self-test). */
    OracleOptions oracle;

    /** Progress callback, called once per completed iteration. */
    std::function<void(uint64_t done, uint64_t total)> progress;
};

/** The failing case, when a run found one. */
struct FailureCase
{
    uint64_t iteration = 0;      ///< 0-based iteration index
    uint64_t iterationSeed = 0;  ///< seed the iteration derived everything from
    std::string stage;           ///< "generated", a mutation name, "field-edit"
    std::string property;        ///< first violated property
    OracleReport report;         ///< all violations from the failing check
    trace::TraceBuffer trace;    ///< failing trace (minimized when requested)
    size_t originalRecords = 0;  ///< pre-minimization record count
    std::string reproTracePath;  ///< dumped `.ptrc` ("" if not dumped)
    std::string reproConfigPath; ///< dumped config JSON ("" if not dumped)
};

/** Aggregate outcome of one run(). */
struct FuzzSummary
{
    uint64_t itersRequested = 0;
    uint64_t itersCompleted = 0;
    uint64_t tracesChecked = 0;
    uint64_t mutantsChecked = 0;
    uint64_t recordsAnalyzed = 0;
    uint64_t roundTripChecks = 0;
    uint64_t fieldEditChecks = 0;
    size_t propertiesChecked = 0; ///< catalogue size exercised per check

    bool failed = false;
    FailureCase failure; ///< valid when failed

    /** The paragraph-fuzz-v1 summary document. */
    std::string toJson() const;
};

class FuzzHarness
{
  public:
    explicit FuzzHarness(HarnessOptions opt = {});

    const HarnessOptions &options() const { return opt_; }

    /** Fuzz until iters are exhausted or the first violation. */
    FuzzSummary run();

    /**
     * Re-run a reproducer: load the dumped trace and config JSON, re-check
     * the invariant catalogue, and return the report (which must contain
     * the dumped violation — the round-trip acceptance criterion).
     * @param stage receives the dumped stage string (optional).
     * @param property receives the dumped property (optional).
     */
    OracleReport replay(const std::string &tracePath,
                        const std::string &configPath,
                        std::string *stage = nullptr,
                        std::string *property = nullptr) const;

    /**
     * Greedy ddmin: repeatedly delete record chunks while the oracle still
     * reports @p property, halving the chunk size until single records.
     * Bounded by options().minimizeBudget oracle evaluations.
     */
    trace::TraceBuffer minimizeFailure(const trace::TraceBuffer &failing,
                                       const std::string &property) const;

  private:
    HarnessOptions opt_;

    bool checkStage(const trace::TraceBuffer &trace, uint64_t iteration,
                    uint64_t iterSeed, const std::string &stage,
                    bool withRoundTrip, FuzzSummary &summary);
    void recordFailure(const trace::TraceBuffer &trace, uint64_t iteration,
                       uint64_t iterSeed, const std::string &stage,
                       OracleReport report, FuzzSummary &summary);
    void dumpRepro(FailureCase &failure) const;
};

} // namespace fuzz
} // namespace paragraph

#endif // PARAGRAPH_FUZZ_HARNESS_HPP
