// libFuzzer entry point for trace::unpackRecord (PARAGRAPH_FUZZ=ON).
//
// The decoder's contract: any 48-byte pattern either unpacks into a valid
// TraceRecord or throws FatalError naming the defect — never UB, never a
// record that violates the structural invariants TraceFuzzer::validRecord
// checks. Run under ASan+UBSan:
//
//   clang++ ... -fsanitize=fuzzer,address,undefined
//   ./fuzz_unpack_record -max_len=4096 corpus/

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "fuzz/trace_fuzzer.hpp"
#include "support/panic.hpp"
#include "trace/file_io.hpp"

extern "C" int
LLVMFuzzerTestOneInput(const uint8_t *data, size_t size)
{
    using namespace paragraph;

    trace::PackedRecord packed;
    for (size_t off = 0; off + sizeof packed <= size; off += sizeof packed) {
        std::memcpy(&packed, data + off, sizeof packed);
        try {
            trace::TraceRecord rec = trace::unpackRecord(packed);
            // Anything accepted must satisfy the structural invariants —
            // and re-pack losslessly.
            std::string why;
            if (!fuzz::TraceFuzzer::validRecord(rec, &why))
                PARA_PANIC("unpackRecord accepted an invalid record: %s",
                           why.c_str());
            trace::PackedRecord again = trace::packRecord(rec);
            trace::TraceRecord rec2 = trace::unpackRecord(again);
            if (!(rec == rec2))
                PARA_PANIC("pack/unpack round-trip changed a record");
        } catch (const FatalError &) {
            // Rejection with a diagnostic is the correct outcome for
            // malformed bytes.
        }
    }
    return 0;
}
