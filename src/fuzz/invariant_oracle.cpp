#include "fuzz/invariant_oracle.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "core/baseline.hpp"
#include "core/multi.hpp"
#include "core/paragraph.hpp"
#include "core/shard.hpp"
#include "engine/explorer.hpp"
#include "engine/sweep.hpp"
#include "engine/sweep_args.hpp"
#include "isa/op_class.hpp"
#include "support/string_utils.hpp"
#include "trace/compressed_io.hpp"
#include "trace/file_io.hpp"

namespace paragraph {
namespace fuzz {

const std::vector<PropertyInfo> &
propertyCatalogue()
{
    // Derivations quote the placement rule: issue >= max(Lsrc + 1,
    // highestLevel, Ddest + 1), Ldest = issue + latency - 1 (Section 3.2).
    static const std::vector<PropertyInfo> catalogue = {
        {"fused-solo-identity",
         "analyzeMany shares one trace pass across engines that never "
         "interact; each must equal its solo analyze() exactly"},
        {"stream-bulk-identity",
         "streaming and bulk drives feed the same records to the same "
         "placement rule; results must be identical"},
        {"determinism",
         "the analysis has no hidden state: same trace + config twice "
         "must produce bit-identical results"},
        {"baseline-agreement",
         "the average-parallelism baseline computes max placement depth "
         "only; with matching switches its critical path must equal the "
         "full DDG engine's"},
        {"window-monotonicity",
         "a smaller window displaces operations earlier, leaving higher "
         "firewalls: W1 <= W2 implies cp(W1) >= cp(W2) >= cp(unlimited)"},
        {"window-firewall-bound",
         "displacement firewalls cap level occupancy: no DDG level may "
         "hold more than W operations, so placedOps <= cp * W"},
        {"rename-monotonicity",
         "renaming deletes Ddest terms from the placement max; every "
         "operation's level can only stay or sink, so cp is antitone in "
         "the renaming switches"},
        {"rename-removes-storage-deps",
         "with registers, data, and stack all renamed no storage "
         "dependency survives: storageDelayedOps must be zero"},
        {"syscall-monotonicity",
         "a stalling syscall adds a firewall at deepest+1; ignoring it "
         "deletes constraints, so cp(stall) >= cp(ignore), and the "
         "placed-op difference is exactly the value-creating syscalls"},
        {"fu-monotonicity",
         "a functional-unit limit can only push issue levels later: "
         "cp(limited) >= cp(unlimited), with identical placedOps"},
        {"placed-ops-conservation",
         "window, renaming, FU, and predictor switches move operations "
         "between levels but never add or remove them: placedOps equals "
         "the trace's value-creating record count under every such config"},
        {"profile-conservation",
         "the parallelism profile partitions the placed operations by "
         "level: totalOps == placedOps and deepest level + 1 == cp; every "
         "placed operation's value retires exactly once into the lifetime "
         "and sharing distributions"},
        {"predictor-bound",
         "mispredictions are a subset of conditional branches; an "
         "always-wrong predictor firewalls every branch, so its cp bounds "
         "the perfect predictor's from above"},
        {"critical-path-lower-bound",
         "Ldest = issue + latency - 1 puts any placed operation's class "
         "latency inside the path: cp >= max placed latency; parallelism "
         "is exactly placedOps / cp; live-well peak >= final population"},
        {"file-round-trip",
         ".ptrc and .ptrz encode losslessly: write + read back must "
         "reproduce every record bit-for-bit"},
        {"shard-stitch-identity",
         "a trace cut immediately after stalling syscalls analyzes "
         "segment-by-segment and stitches into the exact solo result "
         "(any config with stalling syscalls and perfect prediction)"},
        {"split-and-patch-identity",
         "a trace cut at arbitrary planner-chosen boundaries analyzes "
         "segment-by-segment and patches (splice where the boundary "
         "conditions hold, replay where they fail) into the exact solo "
         "result under every matrix config — modeled predictors, ignored "
         "syscalls, finite windows, and FU limits included"},
        {"explore-soundness",
         "the adaptive explorer prunes a cell only when the monotonicity "
         "theorems above prove a measured cell dominates it, so on any "
         "trace its Pareto frontier must equal the full grid's frontier "
         "and every dominance certificate must re-verify against the "
         "measured cells"},
    };
    return catalogue;
}

std::string
OracleReport::summary() const
{
    std::string out;
    for (const Violation &v : violations) {
        if (!out.empty())
            out += "; ";
        out += v.property;
        out += ": ";
        out += v.message;
    }
    return out;
}

namespace detail {

namespace {

bool
diffField(const char *name, uint64_t a, uint64_t b, std::string *diff)
{
    if (a == b)
        return true;
    if (diff)
        *diff = strFormat("%s: %llu vs %llu", name,
                          static_cast<unsigned long long>(a),
                          static_cast<unsigned long long>(b));
    return false;
}

bool
histogramsEqual(const char *what, const Histogram &a, const Histogram &b,
                std::string *diff)
{
    std::string field;
    if (!diffField("totalCount", a.totalCount(), b.totalCount(), &field) ||
        !diffField("overflowCount", a.overflowCount(), b.overflowCount(),
                   &field) ||
        !diffField("maxSample", a.maxSample(), b.maxSample(), &field) ||
        !diffField("exactRange", a.exactRange(), b.exactRange(), &field)) {
        if (diff)
            *diff = std::string(what) + "." + field;
        return false;
    }
    for (uint64_t v = 0; v < a.exactRange(); ++v) {
        if (a.count(v) != b.count(v)) {
            if (diff)
                *diff = strFormat("%s bin %llu: %llu vs %llu", what,
                                  static_cast<unsigned long long>(v),
                                  static_cast<unsigned long long>(a.count(v)),
                                  static_cast<unsigned long long>(b.count(v)));
            return false;
        }
    }
    return true;
}

} // namespace

bool
resultsEqual(const core::AnalysisResult &a, const core::AnalysisResult &b,
             std::string *diff)
{
    // Mirrors tests/core/equivalence_test.cpp: every deterministic field,
    // full profile bins, both histograms, the storage-profile series.
    // analysisSeconds (wall clock) and liveWellPeakBytes (representation-
    // specific by design) are exempt.
    if (!diffField("instructions", a.instructions, b.instructions, diff) ||
        !diffField("placedOps", a.placedOps, b.placedOps, diff) ||
        !diffField("sysCalls", a.sysCalls, b.sysCalls, diff) ||
        !diffField("firewalls", a.firewalls, b.firewalls, diff) ||
        !diffField("preExistingValues", a.preExistingValues,
                   b.preExistingValues, diff) ||
        !diffField("storageDelayedOps", a.storageDelayedOps,
                   b.storageDelayedOps, diff) ||
        !diffField("fuDelayedOps", a.fuDelayedOps, b.fuDelayedOps, diff) ||
        !diffField("condBranches", a.condBranches, b.condBranches, diff) ||
        !diffField("branchMispredictions", a.branchMispredictions,
                   b.branchMispredictions, diff) ||
        !diffField("criticalPathLength", a.criticalPathLength,
                   b.criticalPathLength, diff) ||
        !diffField("liveWellPeak", a.liveWellPeak, b.liveWellPeak, diff) ||
        !diffField("liveWellFinal", a.liveWellFinal, b.liveWellFinal, diff))
        return false;

    if (a.availableParallelism != b.availableParallelism) {
        if (diff)
            *diff = strFormat("availableParallelism: %.17g vs %.17g",
                              a.availableParallelism, b.availableParallelism);
        return false;
    }

    std::string field;
    if (!diffField("numBins", a.profile.numBins(), b.profile.numBins(),
                   &field) ||
        !diffField("totalOps", a.profile.totalOps(), b.profile.totalOps(),
                   &field) ||
        !diffField("maxLevel", a.profile.maxLevel(), b.profile.maxLevel(),
                   &field) ||
        !diffField("bucketWidth", a.profile.bucketWidth(),
                   b.profile.bucketWidth(), &field)) {
        if (diff)
            *diff = "profile." + field;
        return false;
    }
    for (size_t bin = 0; bin < a.profile.numBins(); ++bin) {
        if (a.profile.binCount(bin) != b.profile.binCount(bin)) {
            if (diff)
                *diff = strFormat(
                    "profile bin %zu: %llu vs %llu", bin,
                    static_cast<unsigned long long>(a.profile.binCount(bin)),
                    static_cast<unsigned long long>(b.profile.binCount(bin)));
            return false;
        }
    }

    if (!histogramsEqual("lifetimes", a.lifetimes, b.lifetimes, diff) ||
        !histogramsEqual("sharing", a.sharing, b.sharing, diff))
        return false;

    if (!diffField("intervals", a.storageProfile.intervals(),
                   b.storageProfile.intervals(), &field) ||
        !diffField("maxLevel", a.storageProfile.maxLevel(),
                   b.storageProfile.maxLevel(), &field) ||
        !diffField("bucketWidth", a.storageProfile.bucketWidth(),
                   b.storageProfile.bucketWidth(), &field) ||
        !diffField("peakLive", a.storageProfile.peakLive(),
                   b.storageProfile.peakLive(), &field)) {
        if (diff)
            *diff = "storageProfile." + field;
        return false;
    }
    if (a.storageProfile.meanLive() != b.storageProfile.meanLive()) {
        if (diff)
            *diff = strFormat("storageProfile.meanLive: %.17g vs %.17g",
                              a.storageProfile.meanLive(),
                              b.storageProfile.meanLive());
        return false;
    }
    auto aSeries = a.storageProfile.series();
    auto bSeries = b.storageProfile.series();
    if (aSeries.size() != bSeries.size()) {
        if (diff)
            *diff = strFormat("storageProfile series length: %zu vs %zu",
                              aSeries.size(), bSeries.size());
        return false;
    }
    for (size_t i = 0; i < aSeries.size(); ++i) {
        if (aSeries[i].firstLevel != bSeries[i].firstLevel ||
            aSeries[i].lastLevel != bSeries[i].lastLevel ||
            aSeries[i].liveValues != bSeries[i].liveValues) {
            if (diff)
                *diff = strFormat("storageProfile series entry %zu differs",
                                  i);
            return false;
        }
    }
    return true;
}

} // namespace detail

InvariantOracle::InvariantOracle(OracleOptions opt) : opt_(std::move(opt)) {}

namespace {

using core::AnalysisConfig;
using core::AnalysisResult;
using trace::TraceBuffer;
using trace::TraceRecord;

constexpr unsigned long long
ull(uint64_t v)
{
    return static_cast<unsigned long long>(v);
}

/** The fixed config matrix: one axis varied per entry, base first. */
struct ConfigCell
{
    const char *name;
    AnalysisConfig cfg;
};

std::vector<ConfigCell>
buildMatrix(const OracleOptions &opt)
{
    std::vector<ConfigCell> cells;
    AnalysisConfig base; // stall, all renaming, unlimited window, perfect

    cells.push_back({"base", base});

    AnalysisConfig w = base;
    w.windowSize = opt.windowSmall;
    cells.push_back({"window-small", w});
    w.windowSize = opt.windowLarge;
    cells.push_back({"window-large", w});

    AnalysisConfig rn = base;
    rn.renameRegisters = rn.renameData = rn.renameStack = false;
    cells.push_back({"rename-none", rn});
    rn.renameRegisters = true;
    cells.push_back({"rename-regs", rn});

    AnalysisConfig sc = base;
    sc.sysCallsStall = false;
    cells.push_back({"syscalls-ignore", sc});

    AnalysisConfig fu = base;
    fu.totalFuLimit = opt.fuLimit;
    cells.push_back({"fu-limited", fu});

    AnalysisConfig bp = base;
    bp.branchPredictor = core::PredictorKind::AlwaysWrong;
    cells.push_back({"predictor-always-wrong", bp});

    return cells;
}

// Matrix indices (keep in sync with buildMatrix).
enum : size_t
{
    kBase = 0,
    kWindowSmall,
    kWindowLarge,
    kRenameNone,
    kRenameRegs,
    kSyscallsIgnore,
    kFuLimited,
    kAlwaysWrong,
    kNumCells
};

std::string
roundTripScratchPath(const OracleOptions &opt, const char *ext)
{
    std::string dir = opt.tempDir;
    if (dir.empty()) {
        const char *env = std::getenv("TMPDIR");
        dir = env && *env ? env : "/tmp";
    }
    return strFormat("%s/paragraph-oracle-%d%s", dir.c_str(),
                     static_cast<int>(::getpid()), ext);
}

} // namespace

OracleReport
InvariantOracle::check(const TraceBuffer &trace) const
{
    OracleReport rep;
    auto fail = [&rep](const char *prop, std::string msg) {
        rep.violations.push_back(Violation{prop, std::move(msg)});
    };

    // Ground truth extracted from the trace itself.
    uint64_t creators = 0;
    uint64_t syscallCreators = 0;
    uint64_t condBranches = 0;
    uint64_t maxPlacedLatency = 0;
    for (const TraceRecord &rec : trace.records()) {
        if (rec.createsValue) {
            ++creators;
            if (rec.isSysCall)
                ++syscallCreators;
            uint32_t lat = isa::opLatency(rec.cls);
            if (lat > maxPlacedLatency)
                maxPlacedLatency = lat;
        }
        if (rec.isCondBranch)
            ++condBranches;
    }

    const std::vector<ConfigCell> matrix = buildMatrix(opt_);
    std::vector<AnalysisResult> solo;
    solo.reserve(matrix.size());
    for (const ConfigCell &cell : matrix)
        solo.push_back(core::Paragraph(cell.cfg).analyze(trace));

    std::string diff;

    // --- fused-solo-identity ---------------------------------------------
    {
        std::vector<AnalysisConfig> configs;
        for (const ConfigCell &cell : matrix)
            configs.push_back(cell.cfg);
        trace::BufferSource src(trace);
        std::vector<AnalysisResult> fused = core::analyzeMany(src, configs);
        for (size_t i = 0; i < matrix.size(); ++i) {
            if (!detail::resultsEqual(solo[i], fused[i], &diff))
                fail("fused-solo-identity",
                     strFormat("config %s: %s", matrix[i].name,
                               diff.c_str()));
        }
    }

    // --- stream-bulk-identity --------------------------------------------
    {
        trace::BufferSource src(trace);
        AnalysisResult streamed =
            core::Paragraph(matrix[kBase].cfg).analyze(src);
        if (!detail::resultsEqual(solo[kBase], streamed, &diff))
            fail("stream-bulk-identity", diff);
    }

    // --- determinism ------------------------------------------------------
    {
        AnalysisResult again =
            core::Paragraph(matrix[kBase].cfg).analyze(trace);
        if (!detail::resultsEqual(solo[kBase], again, &diff))
            fail("determinism", diff);
    }

    // --- baseline-agreement (configs inside the baseline's scope only:
    //     no window, no FU limit, perfect predictor) ------------------------
    for (size_t i : {size_t{kBase}, size_t{kRenameNone},
                     size_t{kSyscallsIgnore}}) {
        core::CriticalPathAnalyzer baseline(matrix[i].cfg);
        trace::BufferSource src(trace);
        core::BaselineResult b = baseline.analyze(src);
        if (b.instructions != solo[i].instructions ||
            b.placedOps != solo[i].placedOps ||
            b.criticalPathLength != solo[i].criticalPathLength ||
            b.availableParallelism != solo[i].availableParallelism)
            fail("baseline-agreement",
                 strFormat("config %s: baseline cp=%llu ops=%llu vs "
                           "engine cp=%llu ops=%llu",
                           matrix[i].name, ull(b.criticalPathLength),
                           ull(b.placedOps),
                           ull(solo[i].criticalPathLength),
                           ull(solo[i].placedOps)));
    }

    // --- window-monotonicity ---------------------------------------------
    if (solo[kWindowSmall].criticalPathLength <
            solo[kWindowLarge].criticalPathLength ||
        solo[kWindowLarge].criticalPathLength <
            solo[kBase].criticalPathLength)
        fail("window-monotonicity",
             strFormat("cp(W=%llu)=%llu cp(W=%llu)=%llu cp(inf)=%llu",
                       ull(opt_.windowSmall),
                       ull(solo[kWindowSmall].criticalPathLength),
                       ull(opt_.windowLarge),
                       ull(solo[kWindowLarge].criticalPathLength),
                       ull(solo[kBase].criticalPathLength)));

    // --- window-firewall-bound -------------------------------------------
    for (auto [idx, window] :
         {std::pair<size_t, uint64_t>{kWindowSmall, opt_.windowSmall},
          std::pair<size_t, uint64_t>{kWindowLarge, opt_.windowLarge}}) {
        const AnalysisResult &res = solo[idx];
        if (res.placedOps > res.criticalPathLength * window)
            fail("window-firewall-bound",
                 strFormat("W=%llu: placedOps %llu > cp %llu * W",
                           ull(window), ull(res.placedOps),
                           ull(res.criticalPathLength)));
        // Folded bins aggregate bucketWidth levels, each individually
        // capped at W.
        uint64_t binCap = res.profile.bucketWidth() * window;
        for (size_t bin = 0; bin < res.profile.numBins(); ++bin) {
            if (res.profile.binCount(bin) > binCap) {
                fail("window-firewall-bound",
                     strFormat("W=%llu: profile bin %zu holds %llu ops "
                               "(cap %llu)",
                               ull(window), bin,
                               ull(res.profile.binCount(bin)), ull(binCap)));
                break;
            }
        }
    }

    // --- rename-monotonicity ---------------------------------------------
    if (solo[kRenameNone].criticalPathLength <
            solo[kRenameRegs].criticalPathLength ||
        solo[kRenameRegs].criticalPathLength <
            solo[kBase].criticalPathLength)
        fail("rename-monotonicity",
             strFormat("cp(none)=%llu cp(regs)=%llu cp(all)=%llu",
                       ull(solo[kRenameNone].criticalPathLength),
                       ull(solo[kRenameRegs].criticalPathLength),
                       ull(solo[kBase].criticalPathLength)));

    // --- rename-removes-storage-deps -------------------------------------
    if (solo[kBase].storageDelayedOps != 0)
        fail("rename-removes-storage-deps",
             strFormat("all renaming on, yet storageDelayedOps=%llu",
                       ull(solo[kBase].storageDelayedOps)));

    // --- syscall-monotonicity --------------------------------------------
    if (solo[kBase].criticalPathLength <
        solo[kSyscallsIgnore].criticalPathLength)
        fail("syscall-monotonicity",
             strFormat("cp(stall)=%llu < cp(ignore)=%llu",
                       ull(solo[kBase].criticalPathLength),
                       ull(solo[kSyscallsIgnore].criticalPathLength)));
    if (solo[kBase].placedOps !=
        solo[kSyscallsIgnore].placedOps + syscallCreators)
        fail("syscall-monotonicity",
             strFormat("placedOps(stall)=%llu != placedOps(ignore)=%llu + "
                       "value-creating syscalls=%llu",
                       ull(solo[kBase].placedOps),
                       ull(solo[kSyscallsIgnore].placedOps),
                       ull(syscallCreators)));

    // --- fu-monotonicity --------------------------------------------------
    if (solo[kFuLimited].criticalPathLength < solo[kBase].criticalPathLength)
        fail("fu-monotonicity",
             strFormat("cp(fu=%u)=%llu < cp(unlimited)=%llu", opt_.fuLimit,
                       ull(solo[kFuLimited].criticalPathLength),
                       ull(solo[kBase].criticalPathLength)));
    if (solo[kBase].fuDelayedOps != 0)
        fail("fu-monotonicity",
             strFormat("unlimited FUs, yet fuDelayedOps=%llu",
                       ull(solo[kBase].fuDelayedOps)));

    // --- placed-ops-conservation -----------------------------------------
    for (size_t i = 0; i < matrix.size(); ++i) {
        if (i == kSyscallsIgnore)
            continue; // the one axis that legitimately removes ops
        if (solo[i].placedOps != creators ||
            solo[i].instructions != trace.size())
            fail("placed-ops-conservation",
                 strFormat("config %s: placedOps=%llu (trace creators "
                           "%llu), instructions=%llu (trace %zu)",
                           matrix[i].name, ull(solo[i].placedOps),
                           ull(creators), ull(solo[i].instructions),
                           trace.size()));
    }

    // --- profile-conservation --------------------------------------------
    for (size_t i = 0; i < matrix.size(); ++i) {
        const AnalysisResult &res = solo[i];
        if (res.profile.totalOps() != res.placedOps) {
            fail("profile-conservation",
                 strFormat("config %s: profile totalOps=%llu != "
                           "placedOps=%llu",
                           matrix[i].name, ull(res.profile.totalOps()),
                           ull(res.placedOps)));
            continue;
        }
        if (res.placedOps > 0 &&
            res.profile.maxLevel() + 1 != res.criticalPathLength)
            fail("profile-conservation",
                 strFormat("config %s: profile maxLevel=%llu + 1 != "
                           "cp=%llu",
                           matrix[i].name, ull(res.profile.maxLevel()),
                           ull(res.criticalPathLength)));
        // Every placed operation defines a value that retires exactly once
        // into both distributions (pre-existing values are excluded from
        // the statistics by design).
        uint64_t values = res.placedOps;
        if (res.lifetimes.totalCount() != values ||
            res.sharing.totalCount() != values)
            fail("profile-conservation",
                 strFormat("config %s: lifetimes=%llu sharing=%llu != "
                           "values created=%llu",
                           matrix[i].name, ull(res.lifetimes.totalCount()),
                           ull(res.sharing.totalCount()), ull(values)));
    }

    // --- predictor-bound --------------------------------------------------
    for (size_t i = 0; i < matrix.size(); ++i) {
        if (solo[i].condBranches != condBranches ||
            solo[i].branchMispredictions > solo[i].condBranches) {
            fail("predictor-bound",
                 strFormat("config %s: condBranches=%llu (trace %llu), "
                           "mispredictions=%llu",
                           matrix[i].name, ull(solo[i].condBranches),
                           ull(condBranches),
                           ull(solo[i].branchMispredictions)));
            break;
        }
    }
    if (solo[kBase].branchMispredictions != 0)
        fail("predictor-bound",
             strFormat("perfect predictor missed %llu branches",
                       ull(solo[kBase].branchMispredictions)));
    if (solo[kAlwaysWrong].branchMispredictions != condBranches)
        fail("predictor-bound",
             strFormat("always-wrong predictor missed %llu of %llu "
                       "branches",
                       ull(solo[kAlwaysWrong].branchMispredictions),
                       ull(condBranches)));
    if (solo[kAlwaysWrong].criticalPathLength <
        solo[kBase].criticalPathLength)
        fail("predictor-bound",
             strFormat("cp(always-wrong)=%llu < cp(perfect)=%llu",
                       ull(solo[kAlwaysWrong].criticalPathLength),
                       ull(solo[kBase].criticalPathLength)));
    // The explorer's pruner orders modeled predictors between the two
    // extremes (its mispredict set is a subset of always-wrong's and a
    // superset of perfect's, and firewalls are antitone in that set) — a
    // relation the fixed matrix alone never exercised. Check it with one
    // extra solo run so the pruning contract rests on a tested theorem.
    {
        AnalysisConfig bm = matrix[kBase].cfg;
        bm.branchPredictor = core::PredictorKind::Bimodal;
        AnalysisResult bimodal = core::Paragraph(bm).analyze(trace);
        if (bimodal.criticalPathLength < solo[kBase].criticalPathLength ||
            solo[kAlwaysWrong].criticalPathLength <
                bimodal.criticalPathLength)
            fail("predictor-bound",
                 strFormat("predictor chain broken: cp(perfect)=%llu "
                           "cp(bimodal)=%llu cp(always-wrong)=%llu",
                           ull(solo[kBase].criticalPathLength),
                           ull(bimodal.criticalPathLength),
                           ull(solo[kAlwaysWrong].criticalPathLength)));
        if (bimodal.placedOps != solo[kBase].placedOps ||
            bimodal.branchMispredictions > condBranches)
            fail("predictor-bound",
                 strFormat("bimodal: placedOps=%llu (perfect %llu), "
                           "mispredictions=%llu of %llu branches",
                           ull(bimodal.placedOps),
                           ull(solo[kBase].placedOps),
                           ull(bimodal.branchMispredictions),
                           ull(condBranches)));
    }

    // --- critical-path-lower-bound ---------------------------------------
    for (size_t i = 0; i < matrix.size(); ++i) {
        const AnalysisResult &res = solo[i];
        if (i != kSyscallsIgnore && res.criticalPathLength < maxPlacedLatency)
            fail("critical-path-lower-bound",
                 strFormat("config %s: cp=%llu < deepest placed "
                           "latency=%llu",
                           matrix[i].name, ull(res.criticalPathLength),
                           ull(maxPlacedLatency)));
        if (res.criticalPathLength > 0) {
            double expected = static_cast<double>(res.placedOps) /
                              static_cast<double>(res.criticalPathLength);
            if (res.availableParallelism != expected)
                fail("critical-path-lower-bound",
                     strFormat("config %s: availableParallelism=%.17g != "
                               "placedOps/cp=%.17g",
                               matrix[i].name, res.availableParallelism,
                               expected));
        }
        if (res.liveWellPeak < res.liveWellFinal)
            fail("critical-path-lower-bound",
                 strFormat("config %s: liveWellPeak=%llu < "
                           "liveWellFinal=%llu",
                           matrix[i].name, ull(res.liveWellPeak),
                           ull(res.liveWellFinal)));
    }

    // --- shard-stitch-identity --------------------------------------------
    // Firewall-point sharding (core/shard.hpp) through the fuzzer's traces:
    // whatever syscall pattern the generator or a mutation produced, the
    // stitched segment analysis must equal the solo pass bit-for-bit. A
    // trace with no interior syscall degenerates to one segment, which
    // still exercises the segment-mode engine (beginSegment + stitch).
    if (trace.size() > 0) {
        const TraceRecord *records = trace.records().data();
        size_t n = trace.size();
        std::vector<size_t> cuts = core::planShardCuts(records, n, 4);
        for (size_t i :
             {size_t{kBase}, size_t{kWindowSmall}, size_t{kRenameNone},
              size_t{kFuLimited}}) {
            if (!core::shardableConfig(matrix[i].cfg))
                continue;
            std::vector<size_t> bounds;
            bounds.push_back(0);
            bounds.insert(bounds.end(), cuts.begin(), cuts.end());
            bounds.push_back(n);
            std::vector<core::SegmentRun> segments(bounds.size() - 1);
            for (size_t k = 0; k + 1 < bounds.size(); ++k)
                core::runSegment(matrix[i].cfg, records + bounds[k],
                                 bounds[k + 1] - bounds[k], segments[k]);
            AnalysisResult stitched =
                core::stitchSegments(matrix[i].cfg, segments);
            if (!detail::resultsEqual(solo[i], stitched, &diff))
                fail("shard-stitch-identity",
                     strFormat("config %s (%zu segments): %s",
                               matrix[i].name, segments.size(),
                               diff.c_str()));
        }
    }

    // --- split-and-patch-identity -----------------------------------------
    // Arbitrary-boundary sharding (core/shard.hpp patchSegments) across the
    // FULL config matrix — modeled predictors, ignored syscalls, finite
    // windows, FU limits: whatever cuts the planner picked (stall points,
    // mispredict points, or plain tiles), the validate-or-replay patch must
    // equal the solo pass bit-for-bit.
    if (trace.size() > 0) {
        const TraceRecord *records = trace.records().data();
        size_t n = trace.size();
        for (size_t i = 0; i < matrix.size(); ++i) {
            const AnalysisConfig &cfg = matrix[i].cfg;
            core::PatchPlan plan = core::planPatchPlan(cfg, records, n, 4);
            const bool modeled =
                cfg.branchPredictor != core::PredictorKind::Perfect;
            std::vector<size_t> bounds;
            bounds.push_back(0);
            bounds.insert(bounds.end(), plan.cuts.begin(), plan.cuts.end());
            bounds.push_back(n);
            std::vector<core::SegmentRun> segments(bounds.size() - 1);
            for (size_t k = 0; k + 1 < bounds.size(); ++k) {
                core::runSegment(cfg, records + bounds[k],
                                 bounds[k + 1] - bounds[k], segments[k],
                                 modeled ? &plan.bits : nullptr,
                                 modeled ? plan.branchBase[k] : 0);
            }
            core::PatchOutcome outcome;
            AnalysisResult patched = core::patchSegments(
                cfg, segments,
                [&](core::Paragraph &engine, size_t k) {
                    engine.processAll(records + bounds[k],
                                      bounds[k + 1] - bounds[k]);
                },
                modeled ? &plan.bits : nullptr,
                modeled ? &plan.branchBase : nullptr, &outcome);
            if (!core::shardedResultsEqual(solo[i], patched, &diff))
                fail("split-and-patch-identity",
                     strFormat("config %s (%zu segments, %u spliced, "
                               "%u replayed): %s",
                               matrix[i].name, segments.size(),
                               outcome.spliced, outcome.replayed,
                               diff.c_str()));
        }
    }

    // --- explore-soundness -------------------------------------------------
    // The adaptive explorer's dominance pruning is built ON TOP of the
    // monotonicity theorems above; run it in anger against this trace. A
    // grid over the matrix's axis values is solo-analyzed, the explorer is
    // driven by a runner that serves cells from that grid (zero extra
    // analyses), and then: every dominance certificate must re-verify
    // against the measured cells, the explorer's Pareto frontier must
    // equal the grid frontier, and no pruned cell may beat its certified
    // parallelism bound.
    {
        engine::SweepArgs sweepArgs;
        sweepArgs.inputs = {"fuzz"};
        sweepArgs.windows = {opt_.windowSmall, opt_.windowLarge, 0};
        sweepArgs.renames = {"none", "all"};
        sweepArgs.predictors = {"wrong", "perfect"};
        sweepArgs.fus = {opt_.fuLimit, 0};
        engine::SweepAxes axes = engine::defaultedSweepAxes(sweepArgs);
        std::vector<AnalysisConfig> configs;
        std::vector<std::string> labels;
        std::string err;
        if (!engine::buildSweepConfigAxis(sweepArgs, configs, labels, err)) {
            fail("explore-soundness", "grid build failed: " + err);
        } else {
            std::vector<engine::SweepCell> grid(configs.size());
            std::vector<int> costs;
            std::vector<double> pars;
            for (size_t j = 0; j < configs.size(); ++j) {
                engine::SweepCell &cell = grid[j];
                cell.job.input = "fuzz";
                cell.job.config = configs[j];
                cell.job.configLabel = labels[j];
                cell.job.configIndex = j;
                cell.result = core::Paragraph(configs[j]).analyze(trace);
                costs.push_back(engine::exploreCost(configs[j]));
                pars.push_back(cell.result.availableParallelism);
            }
            engine::Explorer explorer;
            engine::ExploreResult explored = explorer.explore(
                {"fuzz"}, axes, configs, labels,
                [&grid](std::vector<engine::SweepJob> jobs) {
                    std::vector<engine::SweepCell> out;
                    out.reserve(jobs.size());
                    for (const engine::SweepJob &job : jobs)
                        out.push_back(grid[job.configIndex]);
                    return out;
                });
            std::string exploreDiag;
            if (!engine::verifyExploreCertificates(explored, exploreDiag))
                fail("explore-soundness", exploreDiag);
            std::vector<size_t> gridFrontier = engine::paretoFrontier(
                costs, pars, std::vector<bool>(configs.size(), true));
            if (explored.traces.size() != 1 ||
                explored.traces[0].frontier != gridFrontier)
                fail("explore-soundness",
                     strFormat("explorer frontier has %zu cells, grid "
                               "frontier has %zu",
                               explored.traces.empty()
                                   ? size_t{0}
                                   : explored.traces[0].frontier.size(),
                               gridFrontier.size()));
            else
                for (const engine::ExplorePruned &p :
                     explored.traces[0].pruned)
                    if (pars[p.configIndex] >
                        p.certificate.boundParallelism)
                        fail("explore-soundness",
                             strFormat("pruned config %zu has parallelism "
                                       "%.17g above its certified bound "
                                       "%.17g",
                                       p.configIndex, pars[p.configIndex],
                                       p.certificate.boundParallelism));
        }
    }

    // --- file-round-trip (sampled by the harness: file I/O per check) -----
    if (opt_.checkRoundTrip) {
        const std::string raw = roundTripScratchPath(opt_, ".ptrc");
        const std::string packed = roundTripScratchPath(opt_, ".ptrz");
        {
            trace::TraceFileWriter writer(raw);
            for (const TraceRecord &rec : trace.records())
                writer.write(rec);
            writer.close();
            trace::CompressedTraceWriter zwriter(packed);
            for (const TraceRecord &rec : trace.records())
                zwriter.write(rec);
            zwriter.close();
        }
        for (const std::string &path : {raw, packed}) {
            auto reader = trace::openTraceFile(path);
            TraceBuffer back;
            back.capture(*reader);
            if (back.size() != trace.size()) {
                fail("file-round-trip",
                     strFormat("%s: %zu records back, %zu written",
                               path.c_str(), back.size(), trace.size()));
            } else {
                for (size_t i = 0; i < trace.size(); ++i) {
                    if (!(back[i] == trace[i])) {
                        fail("file-round-trip",
                             strFormat("%s: record %zu differs after "
                                       "round-trip",
                                       path.c_str(), i));
                        break;
                    }
                }
            }
        }
        std::remove(raw.c_str());
        std::remove(packed.c_str());
    }

    rep.propertiesChecked =
        propertyCatalogue().size() - (opt_.checkRoundTrip ? 0 : 1);

    // --- self-test hook ----------------------------------------------------
    if (opt_.forceFailure)
        fail("self-test",
             "forced failure requested (OracleOptions::forceFailure) — "
             "exercises the repro/replay/minimize machinery");

    return rep;
}

} // namespace fuzz
} // namespace paragraph
