/**
 * @file
 * TraceFuzzer: seeded, deterministic generator of valid adversarial traces.
 *
 * The invariant oracle (invariant_oracle.hpp) converts the paper's placement
 * theorems into executable checks; this fuzzer supplies the inputs. Two
 * layers:
 *
 *  - generate() draws a structurally valid random trace from a tunable mix
 *    (register/memory/branch/syscall ratios, dependence-chain probability,
 *    stack/heap address aliasing) — denser and more adversarial than the
 *    bundled workload analogs, but always a legal TraceRecord stream.
 *
 *  - mutate() applies one seeded structured mutation to an existing trace
 *    (truncation, syscall bursts, deep dependence chains, unique-destination
 *    floods that stress the window firewall, duplicated runs, source storms,
 *    segment shuffles, self-dependences). Mutants stay valid traces: the
 *    oracle's metamorphic properties must hold on them too.
 *
 * All randomness flows through support/prng.hpp from one explicit seed, so
 * every failure is replayable from its seed alone (see support/test_seed.hpp
 * for the PARAGRAPH_TEST_SEED override).
 *
 * writeTraceWithFieldEdit() additionally exercises the on-disk ingestion
 * path: it captures a trace to a `.ptrc` file, rewrites one record field to
 * a different in-range value directly in the file bytes, then repairs the
 * payload CRC — a corruption the checksums cannot catch, which the reader
 * must nevertheless decode into exactly the edited records (range checks and
 * decode determinism are all that stand between such an edit and silent
 * analysis corruption).
 */

#ifndef PARAGRAPH_FUZZ_TRACE_FUZZER_HPP
#define PARAGRAPH_FUZZ_TRACE_FUZZER_HPP

#include <cstdint>
#include <string>

#include "support/prng.hpp"
#include "trace/buffer.hpp"
#include "trace/record.hpp"

namespace paragraph {
namespace fuzz {

/** Generation parameters: every knob is deterministic given the seed. */
struct FuzzerOptions
{
    uint64_t seed = 1;

    /** Records per generated trace. */
    size_t length = 2000;

    /** Register universe: int regs drawn from [1, intRegs]. */
    unsigned intRegs = 8;
    unsigned fpRegs = 4;

    /** Distinct word addresses per memory segment. */
    unsigned memWords = 48;

    // --- Instruction mix (percentages of the record roll) ----------------
    unsigned branchPct = 12;   ///< control records (some conditional)
    unsigned syscallPct = 2;   ///< system calls (firewall stress)
    unsigned loadStorePct = 28;///< memory traffic
    unsigned fpPct = 14;       ///< FP add/mul/div classes
    unsigned longLatencyPct = 8; ///< int mul/div (latency spread)

    // --- Structure ---------------------------------------------------------
    /** Chance a source reuses the previous record's destination
     *  (dependence chains — deep DDGs, long critical paths). */
    unsigned chainPct = 35;

    /** Chance a memory operand reuses a recently touched address under a
     *  rolled segment (stack/heap aliasing stress for the renaming
     *  switches; the same numeric address can appear in every segment). */
    unsigned aliasPct = 10;

    /** Generate syscalls at all (oracle needs both kinds of trace). */
    bool syscalls = true;
};

/** The structured mutations mutate() can apply. */
enum class Mutation : uint8_t
{
    Truncate,        ///< drop a random tail (or head) of the trace
    DuplicateRun,    ///< splice a copied run back in (storage-dep stress)
    SelfDependence,  ///< make records read their own destination
    DeepChain,       ///< rewrite a span into one serial dependence chain
    SyscallBurst,    ///< inject a run of back-to-back syscalls
    UniqueDestFlood, ///< span of never-reused destinations (window stress)
    SegmentShuffle,  ///< remap memory operand segments wholesale
    SourceStorm,     ///< max out source counts with duplicated operands
    NumMutations
};

/** Human-readable mutation name (stable; appears in repro JSON). */
const char *mutationName(Mutation m);

class TraceFuzzer
{
  public:
    explicit TraceFuzzer(FuzzerOptions opt = {});

    const FuzzerOptions &options() const { return opt_; }

    /** Deterministically generate a fresh trace from options().seed
     *  (advances the internal stream: successive calls differ). */
    trace::TraceBuffer generate();

    /**
     * Apply one seeded structured mutation to @p base.
     * @param applied receives the mutation chosen (optional).
     * @return a valid mutated trace (never empty unless @p base is).
     */
    trace::TraceBuffer mutate(const trace::TraceBuffer &base, uint64_t seed,
                              Mutation *applied = nullptr);

    /** Structural validity of one record (ranges, operand shapes).
     *  @param why receives a diagnostic when invalid. */
    static bool validRecord(const trace::TraceRecord &rec,
                            std::string *why = nullptr);

    /** validRecord over a whole buffer. */
    static bool validTrace(const trace::TraceBuffer &buf,
                           std::string *why = nullptr);

  private:
    FuzzerOptions opt_;
    Prng prng_;

    trace::Operand randomOperand(Prng &prng, uint64_t lastMemAddr);
    trace::Operand randomMemOperand(Prng &prng, uint64_t lastMemAddr);
};

/**
 * Write @p buf to @p path as a `.ptrc` file, then flip one record field to
 * a different in-range value in the file bytes and repair the payload CRC
 * (a "CRC-preserving field edit").
 *
 * @param seed   picks the record and field deterministically.
 * @return the expected decode: @p buf with the same edit applied in memory.
 *         Reading @p path back must yield exactly this buffer.
 */
trace::TraceBuffer writeTraceWithFieldEdit(const trace::TraceBuffer &buf,
                                           const std::string &path,
                                           uint64_t seed);

} // namespace fuzz
} // namespace paragraph

#endif // PARAGRAPH_FUZZ_TRACE_FUZZER_HPP
