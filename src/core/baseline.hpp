/**
 * @file
 * CriticalPathAnalyzer: the "previous work" baseline (paper Section 3.1).
 *
 * "These studies typically find the length of the critical path through the
 * computation, and compute the average parallelism as the total number of
 * instructions divided by the length of the critical path. ... Because they
 * are interested in only a single measure ... they do not need to construct
 * the entire DDG, or even parts of it."
 *
 * This analyzer keeps only a per-location availability level — no profile,
 * no lifetime/sharing accounting, no storage-dependency bookkeeping beyond
 * what the critical path itself needs. With matching configuration it must
 * report exactly the same critical path and available parallelism as the
 * full Paragraph engine (a differential test), while running faster and in
 * less memory (an ablation bench) — demonstrating what extra information the
 * full DDG analysis buys and what it costs.
 */

#ifndef PARAGRAPH_CORE_BASELINE_HPP
#define PARAGRAPH_CORE_BASELINE_HPP

#include <cstdint>

#include "core/branch_predictor.hpp"
#include "core/config.hpp"
#include "support/flat_hash_map.hpp"
#include "trace/record.hpp"
#include "trace/source.hpp"

namespace paragraph {
namespace core {

/** The two numbers the average-parallelism literature reports. */
struct BaselineResult
{
    uint64_t instructions = 0;
    uint64_t placedOps = 0;
    uint64_t criticalPathLength = 0;
    double availableParallelism = 0.0;
};

class CriticalPathAnalyzer
{
  public:
    /**
     * Only the dependence-affecting switches of @p cfg are honoured
     * (renaming flags, syscall assumption, latencies, maxInstructions);
     * windows and FU limits are outside this baseline's scope, as in the
     * cited studies' simplest configurations.
     */
    explicit CriticalPathAnalyzer(AnalysisConfig cfg = {});

    /** Run over a whole trace. */
    BaselineResult analyze(trace::TraceSource &src);

    // Incremental interface mirroring Paragraph's.
    void begin();
    void process(const trace::TraceRecord &rec);
    BaselineResult finish();

  private:
    /** Availability level of the value in a location, and the deepest level
     *  of any computation that accessed it (storage dependencies). */
    struct Slot
    {
        int64_t level;
        int64_t deepestAccess;
    };

    AnalysisConfig cfg_;
    BranchPredictor predictor_;
    FlatHashMap<uint64_t, Slot> levels_;
    BaselineResult result_;
    int64_t highestLevel_ = 0;
    int64_t deepestLevel_ = -1;
    bool done_ = false;

    bool destRenamed(const trace::Operand &op) const;
};

} // namespace core
} // namespace paragraph

#endif // PARAGRAPH_CORE_BASELINE_HPP
