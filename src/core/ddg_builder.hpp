/**
 * @file
 * DdgBuilder: materialize the dynamic dependency graph of a (small) trace.
 *
 * Paragraph never stores the DDG — the live well alone yields the level
 * metrics. For worked examples, debugging, and the paper's Figures 1-4, an
 * explicit graph with typed edges (true / storage / control / resource-free
 * placement) is invaluable. This builder mirrors Paragraph's placement rule
 * exactly while recording nodes and edges, and can export Graphviz DOT.
 *
 * Intended for traces of up to a few hundred thousand records; memory grows
 * with trace length.
 */

#ifndef PARAGRAPH_CORE_DDG_BUILDER_HPP
#define PARAGRAPH_CORE_DDG_BUILDER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/paragraph.hpp"
#include "trace/buffer.hpp"

namespace paragraph {
namespace core {

/** Dependence type of a DDG edge. */
enum class DepKind : uint8_t
{
    True,    ///< read-after-write
    Storage, ///< write-after-read / write-after-write (renaming off)
    Control, ///< ordered after a firewall (syscall or window displacement)
};

/** Human-readable edge-kind name. */
const char *depKindName(DepKind kind);

/** An explicit dynamic dependency graph. */
struct Ddg
{
    struct Node
    {
        uint64_t traceIndex; ///< index of the record in the input trace
        int64_t level;       ///< Ldest
        int64_t issueLevel;  ///< level - latency + 1
        isa::OpClass cls;
        std::string label;   ///< rendered operation text
    };

    struct Edge
    {
        uint32_t from; ///< producer node index (head)
        uint32_t to;   ///< consumer node index (tail depends on head)
        DepKind kind;
    };

    std::vector<Node> nodes;
    std::vector<Edge> edges;
    uint64_t criticalPathLength = 0;

    /** Number of edges of kind @p kind. */
    size_t countEdges(DepKind kind) const;

    /** Ops per level, dense from level 0 to the deepest level. */
    std::vector<uint64_t> levelHistogram() const;

    /** Render as Graphviz DOT, ranking nodes by DDG level. */
    std::string toDot() const;
};

/**
 * Build the explicit DDG of @p buffer under @p cfg.
 *
 * Placement (levels, critical path) matches Paragraph::analyze exactly;
 * additionally every dependence that constrained a node's placement is
 * recorded as a typed edge to the producing node.
 */
Ddg buildDdg(const trace::TraceBuffer &buffer, const AnalysisConfig &cfg);

} // namespace core
} // namespace paragraph

#endif // PARAGRAPH_CORE_DDG_BUILDER_HPP
