#include "core/shard.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <memory>

#include "core/window.hpp"
#include "support/panic.hpp"

namespace paragraph {
namespace core {

bool
shardableConfig(const AnalysisConfig &cfg)
{
    // Every stall cut is a total firewall (the floor clears the whole live
    // well) and prediction carries no table state: all splices validate.
    return cfg.sysCallsStall &&
           cfg.branchPredictor == PredictorKind::Perfect;
}

bool
fuLimitedConfig(const AnalysisConfig &cfg)
{
    if (cfg.totalFuLimit > 0)
        return true;
    for (uint32_t lim : cfg.fuLimit) {
        if (lim > 0)
            return true;
    }
    return false;
}

PredictorPrepass::PredictorPrepass(const AnalysisConfig &cfg)
    : predictor_(cfg.branchPredictor, cfg.predictorTableBits)
{
}

void
PredictorPrepass::feed(const trace::TraceRecord *records, size_t n)
{
    for (size_t i = 0; i < n; ++i) {
        if (!records[i].isCondBranch)
            continue;
        bool correct =
            predictor_.predictAndUpdate(records[i].pc,
                                        records[i].branchTaken);
        bits.push(!correct);
        if (!correct)
            mispredictCuts.push_back(offset_ + i + 1);
    }
    offset_ += n;
}

std::vector<size_t>
planShardCuts(const trace::TraceRecord *records, size_t n, unsigned shards)
{
    if (shards < 2 || n < 2)
        return {};
    // Candidate cuts: immediately after every syscall record (interior
    // positions only — a cut at 0 or n would make an empty segment).
    std::vector<size_t> candidates;
    for (size_t i = 0; i + 1 < n; ++i) {
        if (records[i].isSysCall)
            candidates.push_back(i + 1);
    }
    return selectShardCuts(candidates, n, shards);
}

std::vector<size_t>
selectShardCuts(const std::vector<size_t> &candidates, size_t n,
                unsigned shards)
{
    std::vector<size_t> cuts;
    if (shards < 2 || n < 2 || candidates.empty())
        return cuts;
    for (unsigned k = 1; k < shards; ++k) {
        size_t target = static_cast<size_t>(
            static_cast<uint64_t>(n) * k / shards);
        auto it = std::lower_bound(candidates.begin(), candidates.end(),
                                   target);
        size_t best;
        if (it == candidates.end())
            best = candidates.back();
        else if (it == candidates.begin())
            best = *it;
        else
            best = (*it - target < target - *(it - 1)) ? *it : *(it - 1);
        cuts.push_back(best);
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    return cuts;
}

PatchPlan
planPatchPlan(const AnalysisConfig &cfg, const trace::TraceRecord *records,
              size_t n, unsigned shards)
{
    PatchPlan plan;
    const bool modeled = cfg.branchPredictor != PredictorKind::Perfect;

    PredictorPrepass pre(cfg);
    if (modeled)
        pre.feed(records, n);

    if (shards >= 2 && n >= 2) {
        std::vector<size_t> candidates;
        if (cfg.sysCallsStall) {
            for (size_t i = 0; i + 1 < n; ++i) {
                if (records[i].isSysCall)
                    candidates.push_back(i + 1);
            }
        }
        if (modeled) {
            for (size_t pos : pre.mispredictCuts) {
                if (pos + 1 <= n && pos < n)
                    candidates.push_back(pos);
            }
        }
        std::sort(candidates.begin(), candidates.end());
        candidates.erase(
            std::unique(candidates.begin(), candidates.end()),
            candidates.end());
        if (!candidates.empty()) {
            plan.cuts = selectShardCuts(candidates, n, shards);
        } else {
            // No natural boundary anywhere: plain equal-spacing cuts. The
            // patch validates every splice and replays on failure, so the
            // cut choice only affects speed, never correctness.
            for (unsigned k = 1; k < shards; ++k) {
                size_t pos = static_cast<size_t>(
                    static_cast<uint64_t>(n) * k / shards);
                if (pos > 0 && pos < n)
                    plan.cuts.push_back(pos);
            }
            plan.cuts.erase(
                std::unique(plan.cuts.begin(), plan.cuts.end()),
                plan.cuts.end());
        }
    }

    if (modeled) {
        plan.bits = std::move(pre.bits);
        plan.branchBase.assign(plan.cuts.size() + 1, 0);
        size_t c = 0;
        uint64_t count = 0;
        for (size_t i = 0; i < n && c < plan.cuts.size(); ++i) {
            if (i == plan.cuts[c]) {
                plan.branchBase[c + 1] = count;
                ++c;
            }
            if (records[i].isCondBranch)
                ++count;
        }
    }
    return plan;
}

void
runSegment(const AnalysisConfig &cfg, const trace::TraceRecord *records,
           size_t n, SegmentRun &out, const MispredictBits *bits,
           uint64_t branch_base)
{
    AnalysisConfig seg_cfg = cfg;
    seg_cfg.maxInstructions = 0; // the caller slices exact spans
    Paragraph engine(seg_cfg);
    out.log.reserve(n);
    engine.beginSegment(&out.log);
    if (bits)
        engine.feedMispredicts(bits->words.data(), branch_base);
    engine.processAll(records, n);
    out.result = engine.finish();
}

namespace {

/**
 * The sequential patch walk's accumulator: the true (solo) state at the
 * current boundary plus the merged result so far. splice() is the exact
 * merge of one validated segment — the firewall stitch generalized to an
 * arbitrary boundary at floor off.
 */
struct Splicer
{
    const AnalysisConfig &cfg;
    AnalysisResult out;

    /** Carried live well: values alive across the current boundary, at
     *  absolute (solo) levels. Mirrors the solo run's well exactly. */
    LiveWell well;

    uint64_t watermarkPeak = 0; ///< solo well peak from segment watermarks
    uint64_t off = 0;           ///< true firewall floor at the boundary
    int64_t deepest = -1;       ///< true deepest level so far
    uint64_t peakBytes = 0;
    std::vector<int64_t> ring; ///< true window ring, oldest first

    /** FU-limited configs: throttle occupancy rows for the boundary span
     *  [off, deepest] (empty at a total firewall). An FU-limited splice
     *  requires its cut be a total firewall, so all occupancy reachable
     *  from the boundary comes from the last boundary-moving segment
     *  alone — its fuTail is the complete carry for a later replay. */
    std::vector<uint32_t> fuRows;

    std::vector<char> wasCarried;

    explicit Splicer(const AnalysisConfig &c) : cfg(c)
    {
        out.profile = BucketedProfile(cfg.profileBins);
        out.storageProfile = IntervalProfile(cfg.profileBins);
    }

    void
    retireInto(const LiveValue &lv)
    {
        if (lv.preExisting)
            return;
        if (cfg.collectLifetimes) {
            out.lifetimes.add(
                static_cast<uint64_t>(lv.deepestAccess - lv.level));
        }
        if (cfg.collectSharing)
            out.sharing.add(lv.useCount);
        if (cfg.collectStorageProfile && lv.level >= 0) {
            out.storageProfile.add(
                static_cast<uint64_t>(lv.level),
                static_cast<uint64_t>(lv.deepestAccess));
        }
    }

    void splice(SegmentRun &seg);
    AnalysisResult finish();
};

void
Splicer::splice(SegmentRun &seg)
{
    const AnalysisResult &r = seg.result;
    out.instructions += r.instructions;
    out.placedOps += r.placedOps;
    out.sysCalls += r.sysCalls;
    out.firewalls += r.firewalls;
    out.preExistingValues += r.preExistingValues;
    out.storageDelayedOps += r.storageDelayedOps;
    out.fuDelayedOps += r.fuDelayedOps;
    out.condBranches += r.condBranches;
    out.branchMispredictions += r.branchMispredictions;
    if (r.liveWellPeakBytes > peakBytes)
        peakBytes = r.liveWellPeakBytes;

    const SegmentLog &log = seg.log;

    // Boundary-episode walk. The solo well size at any instant is
    //   segment-relative size + carried - touchedCarried:
    // each first touch of a carried location adds a segment-local entry
    // where solo re-uses (read) or replaces in place (write) the carried
    // one. The watermarks between touches therefore reconstruct the solo
    // live-well peak exactly.
    uint64_t carried = well.size();
    uint64_t touched = 0;
    wasCarried.assign(log.imports.size(), 0);
    for (size_t i = 0; i < log.imports.size(); ++i) {
        const SegmentImport &im = log.imports[i];
        LiveValue *cv = well.find(im.key);
        wasCarried[i] = cv != nullptr;
        uint64_t cand = im.peakBefore + carried - touched;
        if (cand > watermarkPeak)
            watermarkPeak = cand;
        if (cv)
            ++touched;
        cand = im.sizeAfter + carried - touched;
        if (cand > watermarkPeak)
            watermarkPeak = cand;
        if (!cv)
            continue;
        if (im.viaRead) {
            // The segment entered a fresh pre-existing value where the
            // solo run read the carried one.
            --out.preExistingValues;
        }
        cv->useCount += im.useCount; // wraparound matches solo
        if (im.useCount > 0) {
            int64_t abs_read = static_cast<int64_t>(off) + im.maxReadRel;
            if (abs_read > cv->deepestAccess)
                cv->deepestAccess = abs_read;
        }
        if (im.died) {
            retireInto(*cv);
            well.killFound(im.key, cv);
        }
    }
    uint64_t cand = log.trailingPeak + carried - touched;
    if (cand > watermarkPeak)
        watermarkPeak = cand;

    // Segment-local distributions (levels re-based by the offset). The
    // ops profile is rebuilt from the log's exact per-level counts — the
    // segment's own BucketedProfile may have folded, and mergeShifted of
    // a folded profile is only bin-accurate.
    out.lifetimes.merge(r.lifetimes);
    out.sharing.merge(r.sharing);
    for (size_t lvl = 0; lvl < log.levelOps.size(); ++lvl) {
        if (log.levelOps[lvl])
            out.profile.add(off + lvl, log.levelOps[lvl]);
    }
    out.storageProfile.mergeShifted(r.storageProfile, off);

    // Fold the segment's final well into the carried well. A carried
    // location whose first-touch value is still open keeps its carried
    // entry (the read stats were folded above); everything else is the
    // solo well's content, shifted.
    for (const auto &kv : log.exports) {
        const uint64_t key = kv.first;
        const LiveValue &lv = kv.second;
        if (lv.preExisting) {
            if (const uint32_t *pos = log.index.find(key)) {
                const SegmentImport &im = log.imports[*pos];
                if (!im.died && wasCarried[*pos])
                    continue;
            }
        }
        LiveValue shifted = lv;
        shifted.level += static_cast<int64_t>(off);
        shifted.deepestAccess += static_cast<int64_t>(off);
        well.insertOrAssign(key, shifted);
    }

    if (log.relDeepest >= 0) {
        int64_t seg_deepest = static_cast<int64_t>(off) + log.relDeepest;
        if (seg_deepest > deepest)
            deepest = seg_deepest;
    }

    // Carry the true window ring: the segment's tail (shifted) appended to
    // the previous ring, trimmed to the last W entries.
    if (cfg.windowSize > 0) {
        for (int64_t lvl : log.windowTail) {
            ring.push_back(lvl == SlidingWindow::notPlaced
                               ? lvl
                               : lvl + static_cast<int64_t>(off));
        }
        const size_t w = static_cast<size_t>(cfg.windowSize);
        if (ring.size() > w)
            ring.erase(ring.begin(),
                       ring.begin() + static_cast<long>(ring.size() - w));
    }

    // A boundary-moving segment owns every level reachable from the new
    // boundary (its cut was a total firewall under FU limits); a segment
    // that moved neither the floor nor the deepest level leaves the
    // carried occupancy in force.
    if (log.relHighest > 0 || log.relDeepest >= 0)
        fuRows = std::move(seg.log.fuTail);

    off += static_cast<uint64_t>(log.relHighest);
}

AnalysisResult
Splicer::finish()
{
    well.forEach([&](uint64_t, const LiveValue &lv) { retireInto(lv); });
    out.liveWellFinal = well.size();
    // Watermarks cover every spliced instant; the well's own peak covers
    // replayed spans (it travels with the well through resume/suspend) and
    // never exceeds a true boundary population during splices.
    out.liveWellPeak =
        std::max(watermarkPeak, static_cast<uint64_t>(well.peakSize()));
    out.liveWellPeakBytes = peakBytes;
    out.criticalPathLength =
        deepest >= 0 ? static_cast<uint64_t>(deepest) + 1 : 0;
    out.availableParallelism =
        out.criticalPathLength
            ? static_cast<double>(out.placedOps) /
                  static_cast<double>(out.criticalPathLength)
            : 0.0;
    return out;
}

/**
 * The split-and-patch validity conditions for splicing @p seg onto the
 * true boundary state (floor @p F, deepest @p deepest, carried @p well,
 * window ring @p ring): true iff the fresh segment run is the solo run
 * shifted by F. Checked in trace-event order, so the first failing
 * condition is the first true divergence and the whole segment replays.
 */
bool
canSpliceAt(const AnalysisConfig &cfg, int64_t F, int64_t deepest,
            const LiveWell &well, const std::vector<int64_t> &ring,
            const SegmentRun &seg)
{
    const SegmentLog &log = seg.log;

    // Functional-unit limits: placement is shift-invariant only when no
    // pre-boundary occupancy can be probed again. Occupancy never extends
    // past the deepest level, and first-fit search starts at the floor —
    // a total firewall therefore isolates it for good.
    if (fuLimitedConfig(cfg) && F != deepest + 1)
        return false;

    // First stalling syscall: both runs re-anchor the floor at
    // deepest + 1. The anchors coincide iff the fresh deepest (shifted)
    // has caught up with the true deepest by then; afterwards alignment
    // is unconditional.
    if (log.firstStallDeepest != SegmentLog::noStall &&
        F + log.firstStallDeepest < deepest)
        return false;

    // Finite window: while the fresh window is still filling, the true
    // run displaces pre-boundary entries the fresh run cannot see; each
    // such raise must be a no-op against the true floor of that record.
    if (cfg.windowSize > 0) {
        const size_t w = static_cast<size_t>(cfg.windowSize);
        const size_t r = ring.size();
        const uint64_t n = seg.result.instructions;
        const size_t lim = static_cast<size_t>(
            std::min<uint64_t>(n, static_cast<uint64_t>(w)));
        for (size_t j = 0; j < lim; ++j) {
            if (r + j < w)
                continue; // true window not yet full: no displacement
            const size_t pos = r + j - w;
            int64_t lvl;
            if (pos < r) {
                lvl = ring[pos]; // pre-boundary entry, absolute level
            } else {
                lvl = log.headLevels[pos - r]; // segment-own, fresh level
                if (lvl != SlidingWindow::notPlaced)
                    lvl += F;
            }
            if (lvl == SlidingWindow::notPlaced)
                continue;
            if (lvl + 1 > F + log.headFloors[j])
                return false;
        }
    }

    // Carried-location first touches: the carried value must never bind —
    // neither as a data dependency at its first read nor as a storage
    // dependency at the episode's closing overwrite.
    for (const SegmentImport &im : log.imports) {
        const LiveValue *cv = well.find(im.key);
        if (!cv)
            continue;
        if (im.viaRead && cv->level + 1 > im.floorAtTouch + F)
            return false;
        if (im.closeIssue != SegmentImport::unconstrained &&
            cv->deepestAccess + 1 > im.closeIssue + F)
            return false;
    }
    return true;
}

} // namespace

AnalysisResult
stitchSegments(const AnalysisConfig &cfg, std::vector<SegmentRun> &segments)
{
    Splicer sp(cfg);
    for (SegmentRun &seg : segments)
        sp.splice(seg);
    return sp.finish();
}

AnalysisResult
patchSegments(const AnalysisConfig &cfg, std::vector<SegmentRun> &segments,
              const SegmentFeed &replay, const MispredictBits *bits,
              const std::vector<uint64_t> *branch_base,
              PatchOutcome *outcome)
{
    PARA_ASSERT(cfg.branchPredictor == PredictorKind::Perfect ||
                    bits != nullptr,
                "modeled predictors need the pre-pass bitvector");
    Splicer sp(cfg);
    PatchOutcome oc;

    // The replay engine is created on first use and kept across
    // non-adjacent replays (resumeSpan reseeds all state). While a replay
    // session is open the true state lives inside the engine; consecutive
    // failing segments share the session, preserving functional-unit and
    // window continuity across boundaries that are not total firewalls.
    std::unique_ptr<Paragraph> engine;
    bool inEngine = false;

    auto suspendInto = [&]() {
        PatchCarry carry;
        if (engine->liveWell().memoryBytes() > sp.peakBytes)
            sp.peakBytes = engine->liveWell().memoryBytes();
        engine->suspendSpan(sp.out, carry);
        sp.well = std::move(carry.well);
        sp.off = static_cast<uint64_t>(carry.floor);
        sp.deepest = carry.deepest;
        sp.ring = std::move(carry.windowRing);
        // Mid-walk suspension means the next segment's splice validated,
        // which under FU limits requires this boundary be a total
        // firewall: no throttle rows to carry.
        sp.fuRows.clear();
        inEngine = false;
    };

    for (size_t k = 0; k < segments.size(); ++k) {
        bool ok;
        if (inEngine) {
            ok = canSpliceAt(cfg, engine->highestLevel(),
                             engine->deepestLevel(), engine->liveWell(),
                             engine->windowRing(), segments[k]);
        } else {
            ok = canSpliceAt(cfg, static_cast<int64_t>(sp.off), sp.deepest,
                             sp.well, sp.ring, segments[k]);
        }
        if (ok) {
            if (inEngine)
                suspendInto();
            sp.splice(segments[k]);
            ++oc.spliced;
        } else {
            PARA_ASSERT(replay != nullptr,
                        "patch boundary failed validation with no replay "
                        "feed");
            if (!inEngine) {
                if (!engine) {
                    AnalysisConfig run_cfg = cfg;
                    run_cfg.maxInstructions = 0; // exact spans are fed
                    engine = std::make_unique<Paragraph>(run_cfg);
                }
                PatchCarry carry;
                carry.well = std::move(sp.well);
                carry.floor = static_cast<int64_t>(sp.off);
                carry.deepest = sp.deepest;
                carry.windowRing = std::move(sp.ring);
                carry.fuRows = std::move(sp.fuRows);
                engine->resumeSpan(std::move(sp.out), std::move(carry));
                inEngine = true;
            }
            if (bits) {
                engine->feedMispredicts(
                    bits->words.data(),
                    branch_base ? (*branch_base)[k] : 0);
            }
            replay(*engine, k);
            ++oc.replayed;
        }
    }
    if (inEngine)
        suspendInto();
    if (outcome)
        *outcome = oc;
    return sp.finish();
}

namespace {

void
appendDiff(std::string *diff, const char *field, uint64_t a, uint64_t b)
{
    if (!diff)
        return;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s%s: solo=%" PRIu64 " sharded=%" PRIu64,
                  diff->empty() ? "" : "; ", field, a, b);
    *diff += buf;
}

bool
equalU64(uint64_t a, uint64_t b, const char *field, std::string *diff)
{
    if (a == b)
        return true;
    appendDiff(diff, field, a, b);
    return false;
}

bool
histogramsEqual(const Histogram &a, const Histogram &b, const char *name,
                std::string *diff)
{
    std::string field(name);
    bool ok = true;
    ok &= equalU64(a.totalCount(), b.totalCount(),
                   (field + ".total").c_str(), diff);
    ok &= equalU64(a.overflowCount(), b.overflowCount(),
                   (field + ".overflow").c_str(), diff);
    ok &= equalU64(a.maxSample(), b.maxSample(),
                   (field + ".maxSample").c_str(), diff);
    size_t range = std::max(a.exactRange(), b.exactRange());
    for (size_t v = 0; v < range; ++v) {
        if (a.count(v) != b.count(v)) {
            appendDiff(diff, (field + ".bin").c_str(), a.count(v),
                       b.count(v));
            ok = false;
            break;
        }
    }
    return ok;
}

} // namespace

bool
shardedResultsEqual(const AnalysisResult &solo,
                    const AnalysisResult &stitched, std::string *diff)
{
    bool ok = true;
    ok &= equalU64(solo.instructions, stitched.instructions,
                   "instructions", diff);
    ok &= equalU64(solo.placedOps, stitched.placedOps, "placedOps", diff);
    ok &= equalU64(solo.sysCalls, stitched.sysCalls, "sysCalls", diff);
    ok &= equalU64(solo.firewalls, stitched.firewalls, "firewalls", diff);
    ok &= equalU64(solo.preExistingValues, stitched.preExistingValues,
                   "preExistingValues", diff);
    ok &= equalU64(solo.storageDelayedOps, stitched.storageDelayedOps,
                   "storageDelayedOps", diff);
    ok &= equalU64(solo.fuDelayedOps, stitched.fuDelayedOps,
                   "fuDelayedOps", diff);
    ok &= equalU64(solo.condBranches, stitched.condBranches,
                   "condBranches", diff);
    ok &= equalU64(solo.branchMispredictions,
                   stitched.branchMispredictions,
                   "branchMispredictions", diff);
    ok &= equalU64(solo.criticalPathLength, stitched.criticalPathLength,
                   "criticalPathLength", diff);
    ok &= equalU64(solo.liveWellPeak, stitched.liveWellPeak,
                   "liveWellPeak", diff);
    ok &= equalU64(solo.liveWellFinal, stitched.liveWellFinal,
                   "liveWellFinal", diff);
    if (solo.availableParallelism != stitched.availableParallelism) {
        appendDiff(diff, "availableParallelism",
                   static_cast<uint64_t>(solo.availableParallelism * 1e6),
                   static_cast<uint64_t>(stitched.availableParallelism *
                                         1e6));
        ok = false;
    }
    ok &= histogramsEqual(solo.lifetimes, stitched.lifetimes, "lifetimes",
                          diff);
    ok &= histogramsEqual(solo.sharing, stitched.sharing, "sharing", diff);
    ok &= equalU64(solo.profile.totalOps(), stitched.profile.totalOps(),
                   "profile.totalOps", diff);
    ok &= equalU64(solo.profile.maxLevel(), stitched.profile.maxLevel(),
                   "profile.maxLevel", diff);
    {
        // The patched ops profile is rebuilt from exact per-level counts,
        // so the rendered series must match the solo run bin-for-bin.
        std::vector<BucketedProfile::Point> a = solo.profile.series();
        std::vector<BucketedProfile::Point> b = stitched.profile.series();
        if (a.size() != b.size()) {
            appendDiff(diff, "profile.series.size", a.size(), b.size());
            ok = false;
        } else {
            for (size_t i = 0; i < a.size(); ++i) {
                if (a[i].firstLevel != b[i].firstLevel ||
                    a[i].lastLevel != b[i].lastLevel ||
                    a[i].opsPerLevel != b[i].opsPerLevel) {
                    appendDiff(diff, "profile.series.bin",
                               a[i].firstLevel, b[i].firstLevel);
                    ok = false;
                    break;
                }
            }
        }
    }
    ok &= equalU64(solo.storageProfile.intervals(),
                   stitched.storageProfile.intervals(),
                   "storageProfile.intervals", diff);
    ok &= equalU64(solo.storageProfile.totalLiveLevels(),
                   stitched.storageProfile.totalLiveLevels(),
                   "storageProfile.totalLiveLevels", diff);
    ok &= equalU64(solo.storageProfile.maxLevel(),
                   stitched.storageProfile.maxLevel(),
                   "storageProfile.maxLevel", diff);
    return ok;
}

} // namespace core
} // namespace paragraph
