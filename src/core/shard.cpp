#include "core/shard.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "support/flat_hash_map.hpp"

namespace paragraph {
namespace core {

bool
shardableConfig(const AnalysisConfig &cfg)
{
    // The cut theorem needs the conservative syscall firewall (so the
    // floor clears the whole live well at each cut) and perfect branch
    // prediction (a modeled predictor carries table state across cuts).
    return cfg.sysCallsStall &&
           cfg.branchPredictor == PredictorKind::Perfect;
}

std::vector<size_t>
planShardCuts(const trace::TraceRecord *records, size_t n, unsigned shards)
{
    if (shards < 2 || n < 2)
        return {};
    // Candidate cuts: immediately after every syscall record (interior
    // positions only — a cut at 0 or n would make an empty segment).
    std::vector<size_t> candidates;
    for (size_t i = 0; i + 1 < n; ++i) {
        if (records[i].isSysCall)
            candidates.push_back(i + 1);
    }
    return selectShardCuts(candidates, n, shards);
}

std::vector<size_t>
selectShardCuts(const std::vector<size_t> &candidates, size_t n,
                unsigned shards)
{
    std::vector<size_t> cuts;
    if (shards < 2 || n < 2 || candidates.empty())
        return cuts;
    for (unsigned k = 1; k < shards; ++k) {
        size_t target = static_cast<size_t>(
            static_cast<uint64_t>(n) * k / shards);
        auto it = std::lower_bound(candidates.begin(), candidates.end(),
                                   target);
        size_t best;
        if (it == candidates.end())
            best = candidates.back();
        else if (it == candidates.begin())
            best = *it;
        else
            best = (*it - target < target - *(it - 1)) ? *it : *(it - 1);
        cuts.push_back(best);
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    return cuts;
}

void
runSegment(const AnalysisConfig &cfg, const trace::TraceRecord *records,
           size_t n, SegmentRun &out)
{
    AnalysisConfig seg_cfg = cfg;
    seg_cfg.maxInstructions = 0; // the caller slices exact spans
    Paragraph engine(seg_cfg);
    engine.beginSegment(&out.log);
    engine.processAll(records, n);
    out.result = engine.finish();
}

AnalysisResult
stitchSegments(const AnalysisConfig &cfg, std::vector<SegmentRun> &segments)
{
    AnalysisResult out;
    out.profile = BucketedProfile(cfg.profileBins);
    out.storageProfile = IntervalProfile(cfg.profileBins);

    // The carried live well: values alive across the current cut, at
    // absolute (solo) levels. Mirrors the solo run's well contents at
    // every segment boundary.
    FlatHashMap<uint64_t, LiveValue> well;
    uint64_t peak = 0;
    uint64_t off = 0;
    int64_t deepest = -1;
    uint64_t peakBytes = 0;

    auto retireInto = [&](const LiveValue &lv) {
        if (lv.preExisting)
            return;
        if (cfg.collectLifetimes) {
            out.lifetimes.add(
                static_cast<uint64_t>(lv.deepestAccess - lv.level));
        }
        if (cfg.collectSharing)
            out.sharing.add(lv.useCount);
        if (cfg.collectStorageProfile && lv.level >= 0) {
            out.storageProfile.add(
                static_cast<uint64_t>(lv.level),
                static_cast<uint64_t>(lv.deepestAccess));
        }
    };

    std::vector<char> wasCarried;
    for (SegmentRun &seg : segments) {
        const AnalysisResult &r = seg.result;
        out.instructions += r.instructions;
        out.placedOps += r.placedOps;
        out.sysCalls += r.sysCalls;
        out.firewalls += r.firewalls;
        out.preExistingValues += r.preExistingValues;
        out.storageDelayedOps += r.storageDelayedOps;
        out.fuDelayedOps += r.fuDelayedOps;
        out.condBranches += r.condBranches;
        out.branchMispredictions += r.branchMispredictions;
        if (r.liveWellPeakBytes > peakBytes)
            peakBytes = r.liveWellPeakBytes;

        const SegmentLog &log = seg.log;

        // Boundary-episode walk. The solo well size at any instant is
        //   segment-relative size + carried - touchedCarried:
        // each first touch of a carried location adds a segment-local
        // entry where solo re-uses (read) or replaces in place (write)
        // the carried one. The watermarks between touches therefore
        // reconstruct the solo live-well peak exactly.
        uint64_t carried = well.size();
        uint64_t touched = 0;
        wasCarried.assign(log.imports.size(), 0);
        for (size_t i = 0; i < log.imports.size(); ++i) {
            const SegmentImport &im = log.imports[i];
            LiveValue *cv = well.find(im.key);
            wasCarried[i] = cv != nullptr;
            uint64_t cand = im.peakBefore + carried - touched;
            if (cand > peak)
                peak = cand;
            if (cv)
                ++touched;
            cand = im.sizeAfter + carried - touched;
            if (cand > peak)
                peak = cand;
            if (!cv)
                continue;
            if (im.viaRead) {
                // The segment entered a fresh pre-existing value where the
                // solo run read the carried one.
                --out.preExistingValues;
            }
            cv->useCount += im.useCount; // wraparound matches solo
            if (im.useCount > 0) {
                int64_t abs_read =
                    static_cast<int64_t>(off) + im.maxReadRel;
                if (abs_read > cv->deepestAccess)
                    cv->deepestAccess = abs_read;
            }
            if (im.died) {
                retireInto(*cv);
                well.erase(im.key);
            }
        }
        uint64_t cand = log.trailingPeak + carried - touched;
        if (cand > peak)
            peak = cand;

        // Segment-local distributions (levels re-based by the offset).
        // The ops profile is rebuilt from the log's exact per-level
        // counts — the segment's own BucketedProfile may have folded,
        // and mergeShifted of a folded profile is only bin-accurate.
        out.lifetimes.merge(r.lifetimes);
        out.sharing.merge(r.sharing);
        for (size_t lvl = 0; lvl < log.levelOps.size(); ++lvl) {
            if (log.levelOps[lvl])
                out.profile.add(off + lvl, log.levelOps[lvl]);
        }
        out.storageProfile.mergeShifted(r.storageProfile, off);

        // Fold the segment's final well into the carried well. A carried
        // location whose first-touch value is still open keeps its carried
        // entry (the read stats were folded above); everything else is the
        // solo well's content, shifted.
        for (const auto &kv : log.exports) {
            const uint64_t key = kv.first;
            const LiveValue &lv = kv.second;
            if (lv.preExisting) {
                if (const uint32_t *pos = log.index.find(key)) {
                    const SegmentImport &im = log.imports[*pos];
                    if (!im.died && wasCarried[*pos])
                        continue;
                }
            }
            LiveValue shifted = lv;
            shifted.level += static_cast<int64_t>(off);
            shifted.deepestAccess += static_cast<int64_t>(off);
            well.insertOrAssign(key, shifted);
        }

        if (log.relDeepest >= 0) {
            int64_t seg_deepest =
                static_cast<int64_t>(off) + log.relDeepest;
            if (seg_deepest > deepest)
                deepest = seg_deepest;
        }
        off += static_cast<uint64_t>(log.relHighest);
    }

    well.forEach([&](uint64_t, const LiveValue &lv) { retireInto(lv); });
    out.liveWellFinal = well.size();
    out.liveWellPeak = peak;
    out.liveWellPeakBytes = peakBytes;
    out.criticalPathLength =
        deepest >= 0 ? static_cast<uint64_t>(deepest) + 1 : 0;
    out.availableParallelism =
        out.criticalPathLength
            ? static_cast<double>(out.placedOps) /
                  static_cast<double>(out.criticalPathLength)
            : 0.0;
    return out;
}

namespace {

void
appendDiff(std::string *diff, const char *field, uint64_t a, uint64_t b)
{
    if (!diff)
        return;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s%s: solo=%" PRIu64 " sharded=%" PRIu64,
                  diff->empty() ? "" : "; ", field, a, b);
    *diff += buf;
}

bool
equalU64(uint64_t a, uint64_t b, const char *field, std::string *diff)
{
    if (a == b)
        return true;
    appendDiff(diff, field, a, b);
    return false;
}

bool
histogramsEqual(const Histogram &a, const Histogram &b, const char *name,
                std::string *diff)
{
    std::string field(name);
    bool ok = true;
    ok &= equalU64(a.totalCount(), b.totalCount(),
                   (field + ".total").c_str(), diff);
    ok &= equalU64(a.overflowCount(), b.overflowCount(),
                   (field + ".overflow").c_str(), diff);
    ok &= equalU64(a.maxSample(), b.maxSample(),
                   (field + ".maxSample").c_str(), diff);
    size_t range = std::max(a.exactRange(), b.exactRange());
    for (size_t v = 0; v < range; ++v) {
        if (a.count(v) != b.count(v)) {
            appendDiff(diff, (field + ".bin").c_str(), a.count(v),
                       b.count(v));
            ok = false;
            break;
        }
    }
    return ok;
}

} // namespace

bool
shardedResultsEqual(const AnalysisResult &solo,
                    const AnalysisResult &stitched, std::string *diff)
{
    bool ok = true;
    ok &= equalU64(solo.instructions, stitched.instructions,
                   "instructions", diff);
    ok &= equalU64(solo.placedOps, stitched.placedOps, "placedOps", diff);
    ok &= equalU64(solo.sysCalls, stitched.sysCalls, "sysCalls", diff);
    ok &= equalU64(solo.firewalls, stitched.firewalls, "firewalls", diff);
    ok &= equalU64(solo.preExistingValues, stitched.preExistingValues,
                   "preExistingValues", diff);
    ok &= equalU64(solo.storageDelayedOps, stitched.storageDelayedOps,
                   "storageDelayedOps", diff);
    ok &= equalU64(solo.fuDelayedOps, stitched.fuDelayedOps,
                   "fuDelayedOps", diff);
    ok &= equalU64(solo.condBranches, stitched.condBranches,
                   "condBranches", diff);
    ok &= equalU64(solo.branchMispredictions,
                   stitched.branchMispredictions,
                   "branchMispredictions", diff);
    ok &= equalU64(solo.criticalPathLength, stitched.criticalPathLength,
                   "criticalPathLength", diff);
    ok &= equalU64(solo.liveWellPeak, stitched.liveWellPeak,
                   "liveWellPeak", diff);
    ok &= equalU64(solo.liveWellFinal, stitched.liveWellFinal,
                   "liveWellFinal", diff);
    if (solo.availableParallelism != stitched.availableParallelism) {
        appendDiff(diff, "availableParallelism",
                   static_cast<uint64_t>(solo.availableParallelism * 1e6),
                   static_cast<uint64_t>(stitched.availableParallelism *
                                         1e6));
        ok = false;
    }
    ok &= histogramsEqual(solo.lifetimes, stitched.lifetimes, "lifetimes",
                          diff);
    ok &= histogramsEqual(solo.sharing, stitched.sharing, "sharing", diff);
    ok &= equalU64(solo.profile.totalOps(), stitched.profile.totalOps(),
                   "profile.totalOps", diff);
    ok &= equalU64(solo.profile.maxLevel(), stitched.profile.maxLevel(),
                   "profile.maxLevel", diff);
    {
        // The stitched ops profile is rebuilt from exact per-level counts,
        // so the rendered series must match the solo run bin-for-bin.
        std::vector<BucketedProfile::Point> a = solo.profile.series();
        std::vector<BucketedProfile::Point> b = stitched.profile.series();
        if (a.size() != b.size()) {
            appendDiff(diff, "profile.series.size", a.size(), b.size());
            ok = false;
        } else {
            for (size_t i = 0; i < a.size(); ++i) {
                if (a[i].firstLevel != b[i].firstLevel ||
                    a[i].lastLevel != b[i].lastLevel ||
                    a[i].opsPerLevel != b[i].opsPerLevel) {
                    appendDiff(diff, "profile.series.bin",
                               a[i].firstLevel, b[i].firstLevel);
                    ok = false;
                    break;
                }
            }
        }
    }
    ok &= equalU64(solo.storageProfile.intervals(),
                   stitched.storageProfile.intervals(),
                   "storageProfile.intervals", diff);
    ok &= equalU64(solo.storageProfile.totalLiveLevels(),
                   stitched.storageProfile.totalLiveLevels(),
                   "storageProfile.totalLiveLevels", diff);
    ok &= equalU64(solo.storageProfile.maxLevel(),
                   stitched.storageProfile.maxLevel(),
                   "storageProfile.maxLevel", diff);
    return ok;
}

} // namespace core
} // namespace paragraph
