#include "core/fu_throttle.hpp"

#include "support/panic.hpp"

namespace paragraph {
namespace core {

FuThrottle::FuThrottle(const AnalysisConfig &cfg)
    : pipelined_(cfg.pipelinedFus),
      totalLimit_(cfg.totalFuLimit),
      classLimit_(cfg.fuLimit)
{
    enabled_ = totalLimit_ > 0;
    for (uint32_t lim : classLimit_) {
        if (lim > 0)
            enabled_ = true;
    }
}

uint32_t
FuThrottle::at(const std::vector<uint32_t> &v, int64_t level)
{
    size_t idx = static_cast<size_t>(level);
    return idx < v.size() ? v[idx] : 0;
}

bool
FuThrottle::fits(isa::OpClass cls, int64_t issue, uint32_t span) const
{
    uint32_t levels = pipelined_ ? 1 : span;
    uint32_t class_limit = classLimit_[static_cast<size_t>(cls)];
    const auto &class_usage = usage_[static_cast<size_t>(cls)];
    for (uint32_t i = 0; i < levels; ++i) {
        int64_t level = issue + static_cast<int64_t>(i);
        if (class_limit > 0 && at(class_usage, level) >= class_limit)
            return false;
        if (totalLimit_ > 0 && at(totalUsage_, level) >= totalLimit_)
            return false;
    }
    return true;
}

void
FuThrottle::reserve(isa::OpClass cls, int64_t issue, uint32_t span)
{
    uint32_t levels = pipelined_ ? 1 : span;
    auto bump = [](std::vector<uint32_t> &v, int64_t level) {
        size_t idx = static_cast<size_t>(level);
        if (idx >= v.size())
            v.resize(idx + 1 + idx / 2, 0);
        ++v[idx];
    };
    bool class_limited = classLimit_[static_cast<size_t>(cls)] > 0;
    for (uint32_t i = 0; i < levels; ++i) {
        int64_t level = issue + static_cast<int64_t>(i);
        if (class_limited)
            bump(usage_[static_cast<size_t>(cls)], level);
        if (totalLimit_ > 0)
            bump(totalUsage_, level);
    }
}

int64_t
FuThrottle::place(isa::OpClass cls, int64_t min_issue, uint32_t span)
{
    if (!enabled_)
        return min_issue;
    PARA_ASSERT(min_issue >= 0 && span >= 1);
    int64_t issue = min_issue;
    // No operation can land below a saturated frontier.
    if (totalLimit_ > 0 && totalFrontier_ > issue)
        issue = totalFrontier_;
    uint32_t class_limit = classLimit_[static_cast<size_t>(cls)];
    if (class_limit > 0 && classFrontier_[static_cast<size_t>(cls)] > issue)
        issue = classFrontier_[static_cast<size_t>(cls)];
    while (!fits(cls, issue, span))
        ++issue;
    reserve(cls, issue, span);
    if (totalLimit_ > 0) {
        while (at(totalUsage_, totalFrontier_) >= totalLimit_)
            ++totalFrontier_;
    }
    if (class_limit > 0) {
        int64_t &frontier = classFrontier_[static_cast<size_t>(cls)];
        while (at(usage_[static_cast<size_t>(cls)], frontier) >= class_limit)
            ++frontier;
    }
    return issue;
}

void
FuThrottle::reset()
{
    for (auto &v : usage_)
        v.clear();
    totalUsage_.clear();
    totalFrontier_ = 0;
    classFrontier_.fill(0);
}

} // namespace core
} // namespace paragraph
