#include "core/fu_throttle.hpp"

#include "support/panic.hpp"

namespace paragraph {
namespace core {

FuThrottle::FuThrottle(const AnalysisConfig &cfg)
    : pipelined_(cfg.pipelinedFus),
      totalLimit_(cfg.totalFuLimit),
      classLimit_(cfg.fuLimit)
{
    enabled_ = totalLimit_ > 0;
    for (uint32_t lim : classLimit_) {
        if (lim > 0)
            enabled_ = true;
    }
}

uint32_t
FuThrottle::at(const std::vector<uint32_t> &v, int64_t level)
{
    size_t idx = static_cast<size_t>(level);
    return idx < v.size() ? v[idx] : 0;
}

int64_t
FuThrottle::nextFree(const std::vector<uint32_t> &usage, uint32_t limit,
                     std::vector<int64_t> &skip, int64_t level)
{
    auto full = [&](int64_t l) {
        size_t idx = static_cast<size_t>(l);
        return idx < usage.size() && usage[idx] >= limit;
    };
    auto hop = [&](int64_t l) {
        size_t idx = static_cast<size_t>(l);
        int64_t s = idx < skip.size() ? skip[idx] : 0;
        return s > l ? s : l + 1;
    };
    if (!full(level))
        return level;
    // First walk finds the answer; second walk path-compresses, pointing
    // every visited level straight at it so later searches hop the whole
    // saturated run in one step.
    int64_t result = level;
    while (full(result))
        result = hop(result);
    if (skip.size() < usage.size())
        skip.resize(usage.size(), 0);
    for (int64_t l = level; full(l);) {
        int64_t next = hop(l);
        skip[static_cast<size_t>(l)] = result;
        l = next;
    }
    return result;
}

void
FuThrottle::reserve(isa::OpClass cls, int64_t issue, uint32_t span)
{
    uint32_t levels = pipelined_ ? 1 : span;
    auto bump = [](std::vector<uint32_t> &v, int64_t level) {
        size_t idx = static_cast<size_t>(level);
        if (idx >= v.size())
            v.resize(idx + 1 + idx / 2, 0);
        ++v[idx];
    };
    bool class_limited = classLimit_[static_cast<size_t>(cls)] > 0;
    for (uint32_t i = 0; i < levels; ++i) {
        int64_t level = issue + static_cast<int64_t>(i);
        if (class_limited)
            bump(usage_[static_cast<size_t>(cls)], level);
        if (totalLimit_ > 0)
            bump(totalUsage_, level);
    }
}

int64_t
FuThrottle::place(isa::OpClass cls, int64_t min_issue, uint32_t span)
{
    if (!enabled_)
        return min_issue;
    PARA_ASSERT(min_issue >= 0 && span >= 1);
    int64_t issue = min_issue;
    // No operation can land below a saturated frontier.
    if (totalLimit_ > 0 && totalFrontier_ > issue)
        issue = totalFrontier_;
    uint32_t class_limit = classLimit_[static_cast<size_t>(cls)];
    auto &class_usage = usage_[static_cast<size_t>(cls)];
    auto &class_skip = classSkip_[static_cast<size_t>(cls)];
    if (class_limit > 0 && classFrontier_[static_cast<size_t>(cls)] > issue)
        issue = classFrontier_[static_cast<size_t>(cls)];
    // First-fit: the lowest level where every occupied level has a free unit
    // under both limits. Skip pointers jump saturated runs; when a window
    // level is full, no window starting at or below it can succeed, so the
    // search resumes past that run — identical placement to a linear scan.
    uint32_t levels = pipelined_ ? 1 : span;
    for (;;) {
        for (;;) { // fixed point: free under the total AND the class limit
            int64_t next = issue;
            if (totalLimit_ > 0)
                next = nextFree(totalUsage_, totalLimit_, totalSkip_, next);
            if (class_limit > 0)
                next = nextFree(class_usage, class_limit, class_skip, next);
            if (next == issue)
                break;
            issue = next;
        }
        uint32_t i = 1;
        for (; i < levels; ++i) {
            int64_t level = issue + static_cast<int64_t>(i);
            if ((class_limit > 0 && at(class_usage, level) >= class_limit) ||
                (totalLimit_ > 0 && at(totalUsage_, level) >= totalLimit_)) {
                issue = level; // blocked: restart the window past this run
                break;
            }
        }
        if (i == levels)
            break;
    }
    reserve(cls, issue, span);
    if (totalLimit_ > 0) {
        totalFrontier_ =
            nextFree(totalUsage_, totalLimit_, totalSkip_, totalFrontier_);
    }
    if (class_limit > 0) {
        int64_t &frontier = classFrontier_[static_cast<size_t>(cls)];
        frontier = nextFree(class_usage, class_limit, class_skip, frontier);
    }
    return issue;
}

std::vector<uint32_t>
FuThrottle::snapshotSpan(int64_t from, int64_t count) const
{
    std::vector<uint32_t> rows;
    if (!enabled_ || count <= 0)
        return rows;
    PARA_ASSERT(from >= 0);
    rows.assign(static_cast<size_t>(count) * rowWidth, 0);
    for (int64_t i = 0; i < count; ++i) {
        size_t base = static_cast<size_t>(i) * rowWidth;
        for (size_t c = 0; c < isa::numOpClasses; ++c)
            rows[base + c] = at(usage_[c], from + i);
        rows[base + isa::numOpClasses] = at(totalUsage_, from + i);
    }
    return rows;
}

void
FuThrottle::seedSpan(int64_t from, const std::vector<uint32_t> &rows)
{
    reset();
    if (!enabled_ || rows.empty())
        return;
    PARA_ASSERT(from >= 0 && rows.size() % rowWidth == 0);
    int64_t count = static_cast<int64_t>(rows.size() / rowWidth);
    auto put = [](std::vector<uint32_t> &v, int64_t level, uint32_t n) {
        if (n == 0)
            return;
        size_t idx = static_cast<size_t>(level);
        if (idx >= v.size())
            v.resize(idx + 1, 0);
        v[idx] = n;
    };
    for (int64_t i = 0; i < count; ++i) {
        size_t base = static_cast<size_t>(i) * rowWidth;
        for (size_t c = 0; c < isa::numOpClasses; ++c)
            put(usage_[c], from + i, rows[base + c]);
        put(totalUsage_, from + i, rows[base + isa::numOpClasses]);
    }
    // Frontiers and skip pointers stay at reset(): both are lower bounds
    // that searches re-derive, so zeroing them is correctness-neutral.
}

void
FuThrottle::reset()
{
    for (auto &v : usage_)
        v.clear();
    totalUsage_.clear();
    totalFrontier_ = 0;
    classFrontier_.fill(0);
    for (auto &v : classSkip_)
        v.clear();
    totalSkip_.clear();
}

} // namespace core
} // namespace paragraph
