/**
 * @file
 * CancelToken: cooperative cancellation / deadline for long analyses.
 *
 * The paper's grid points ran for hours each; a runaway cell must become a
 * diagnosed per-cell failure, not a hung sweep. A token is polled from
 * Paragraph's bulk record loop every few tens of thousands of records (one
 * atomic load; the clock is only read when a deadline is armed), and
 * checkpoint() throws CancelledError when the token has been cancelled or
 * its deadline passed. The sweep engine arms one token per cell attempt;
 * callers can also chain their own token through AnalysisConfig::cancel.
 */

#ifndef PARAGRAPH_CORE_CANCEL_TOKEN_HPP
#define PARAGRAPH_CORE_CANCEL_TOKEN_HPP

#include <atomic>
#include <chrono>
#include <string>
#include <utility>

#include "support/panic.hpp"

namespace paragraph {
namespace core {

/** Thrown from CancelToken::checkpoint(); FatalError so existing handlers
 *  catch it, but distinguishable (a cancelled/timed-out run is final — the
 *  sweep engine never retries it). */
class CancelledError : public FatalError
{
  public:
    using FatalError::FatalError;
};

class CancelToken
{
  public:
    CancelToken() = default;

    /** Cancel from any thread; @p reason becomes the CancelledError text. */
    void
    cancel(std::string reason = "analysis cancelled")
    {
        reason_ = std::move(reason);
        cancelled_.store(true, std::memory_order_release);
    }

    /**
     * Async-signal-safe cancel: only flips the atomic flag, leaving the
     * construction-time reason text in place. The CLIs' SIGINT/SIGTERM
     * handlers call this so an interrupted sweep stops at the next 32k-
     * record poll with its journal flushed, instead of dying mid-write.
     */
    void
    cancelFromSignal() noexcept
    {
        cancelled_.store(true, std::memory_order_release);
    }

    /** Pre-arm the CancelledError text cancelFromSignal() will surface.
     *  Call from ordinary code (e.g. before installing the handler) —
     *  not from the signal handler itself. */
    void setReason(std::string reason) { reason_ = std::move(reason); }

    /** Arm a deadline @p seconds from now (call before sharing the token). */
    void
    setDeadline(double seconds)
    {
        deadlineSeconds_ = seconds;
        deadline_ = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(seconds));
        hasDeadline_ = true;
    }

    /** Check another token too (the engine chains a caller's token behind
     *  its own per-cell deadline token). */
    void chain(const CancelToken *parent) { parent_ = parent; }

    /** True once cancelled or past the deadline. */
    bool
    expired() const
    {
        if (cancelled_.load(std::memory_order_acquire))
            return true;
        if (hasDeadline_ && std::chrono::steady_clock::now() > deadline_)
            return true;
        return parent_ && parent_->expired();
    }

    /** Throw CancelledError if expired; otherwise return. */
    void
    checkpoint() const
    {
        if (cancelled_.load(std::memory_order_acquire))
            throw CancelledError(reason_);
        if (hasDeadline_ && std::chrono::steady_clock::now() > deadline_) {
            throw CancelledError(
                detail::formatMessage("cell deadline exceeded (%gs)",
                                      deadlineSeconds_));
        }
        if (parent_)
            parent_->checkpoint();
    }

  private:
    std::atomic<bool> cancelled_{false};
    bool hasDeadline_ = false;
    double deadlineSeconds_ = 0.0;
    std::chrono::steady_clock::time_point deadline_{};
    std::string reason_ = "analysis cancelled";
    const CancelToken *parent_ = nullptr;
};

} // namespace core
} // namespace paragraph

#endif // PARAGRAPH_CORE_CANCEL_TOKEN_HPP
