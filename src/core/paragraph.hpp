/**
 * @file
 * Paragraph: the DDG extraction and analysis engine (paper Section 3.2).
 *
 * Paragraph consumes a serial execution trace one record at a time and
 * places every value-creating instruction into the dynamic dependency graph
 * using the live well. The DDG itself is never materialized — only its
 * topologically-sorted level structure, which suffices for the parallelism
 * profile, critical path, value lifetimes, and degree-of-sharing metrics.
 *
 * Placement rule (levels are 0-based; a value created by an operation of
 * latency t that issues at level i becomes available at Ldest = i + t - 1):
 *
 *     issue = MAX( MAX_over_sources(Lsrc) + 1,   true data dependencies
 *                  highestLevel,                 firewalls (syscalls, window)
 *                  Ddest + 1 )                   storage dependencies
 *
 * where Ddest is the deepest level of any computation that used (or created)
 * the previous value in the destination location, applied only when the
 * destination's storage class is not renamed. Sources absent from the live
 * well are pre-existing values, entered at highestLevel - 1 so they never
 * delay computation. Functional-unit limits slide the issue level further
 * down to the first level range with free units.
 */

#ifndef PARAGRAPH_CORE_PARAGRAPH_HPP
#define PARAGRAPH_CORE_PARAGRAPH_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "core/branch_predictor.hpp"
#include "core/config.hpp"
#include "core/fu_throttle.hpp"
#include "core/live_well.hpp"
#include "core/result.hpp"
#include "core/segment_log.hpp"
#include "core/window.hpp"
#include "trace/buffer.hpp"
#include "trace/record.hpp"
#include "trace/source.hpp"

namespace paragraph {
namespace core {

/**
 * Carried true-run state at a split-and-patch boundary (core/shard.hpp):
 * everything a sequential replay needs to continue a solo-equivalent
 * analysis mid-trace. Levels are absolute (solo) levels.
 */
struct PatchCarry
{
    LiveWell well;        ///< live values at absolute levels
    int64_t floor = 0;    ///< firewall floor (highestLevel)
    int64_t deepest = -1; ///< deepest DDG level so far
    /** Last min(W, records seen) levels, oldest first (finite windows). */
    std::vector<int64_t> windowRing;
    /** FU-limited configs only: throttle occupancy rows for absolute
     *  levels [floor, deepest] (FuThrottle::snapshotSpan layout). Empty
     *  at a total firewall, where no occupied level is ever probed
     *  again. */
    std::vector<uint32_t> fuRows;
};

class Paragraph
{
  public:
    explicit Paragraph(AnalysisConfig cfg = {});

    /** Active configuration. */
    const AnalysisConfig &config() const { return cfg_; }

    /** Run a complete analysis: begin(), drain @p src, finish(). */
    AnalysisResult analyze(trace::TraceSource &src);

    /**
     * Run a complete analysis over an in-memory capture. Skips the
     * TraceSource virtual-dispatch-per-record path: the record loop walks
     * the buffer's contiguous storage directly. Results are identical to
     * the streaming overload.
     */
    AnalysisResult analyze(const trace::TraceBuffer &buffer);

    // --- Incremental interface (drive record-by-record) ------------------

    /** Reset all state for a new trace. */
    void begin();

    /**
     * Like begin(), but analyze the upcoming records as one shard segment:
     * boundary episodes of every touched location are recorded into @p log
     * (cleared first), and finish() exports the final live well instead of
     * retiring it — carried values' lifetimes belong to the stitch
     * (core/shard.hpp). @p log must outlive the run.
     */
    void beginSegment(SegmentLog *log);

    /**
     * Consume precomputed branch-predictor outcomes instead of the live
     * model: bit @p next_ordinal of @p bits (LSB-first within each 64-bit
     * word, one bit per conditional branch in trace order, 1 = mispredict)
     * decides the next conditional branch. Predictors are deterministic
     * functions of the branch-record stream alone, so a sequential pre-pass
     * over the whole trace makes predictor state cut-invariant for
     * split-and-patch (core/shard.hpp). Call after begin(), beginSegment()
     * or resumeSpan(); each of those clears the feed. @p bits must outlive
     * the run.
     */
    void
    feedMispredicts(const uint64_t *bits, uint64_t next_ordinal)
    {
        misBits_ = bits;
        misCursor_ = next_ordinal;
    }

    /**
     * Like begin(), but continue a solo-equivalent analysis from carried
     * mid-trace state: @p acc holds the metrics accumulated so far (at
     * absolute levels) and @p carry the live well, firewall floor, deepest
     * level and window ring at the boundary. Used by the split-and-patch
     * replay of segments whose splice conditions fail. With functional-unit
     * limits the boundary must either be a total firewall (floor ==
     * deepest + 1: all throttle occupancy sits strictly below the floor
     * and is never probed again, so an empty throttle is exact) or carry
     * the occupancy rows for [floor, deepest] in carry.fuRows — issue
     * levels never probe below the floor, so those rows are the entire
     * reachable throttle state.
     */
    void resumeSpan(AnalysisResult &&acc, PatchCarry &&carry);

    /**
     * Inverse of resumeSpan(): hand the accumulated metrics and carried
     * state back without retiring the live well. The engine is hollow
     * until the next begin()/beginSegment()/resumeSpan().
     */
    void suspendSpan(AnalysisResult &acc, PatchCarry &carry);

    /** Consume one trace record. */
    void process(const trace::TraceRecord &rec);

    /** Consume every record in @p buffer (stops early at maxInstructions). */
    void processAll(const trace::TraceBuffer &buffer);

    /**
     * Consume @p n contiguous records (stops early at maxInstructions).
     * The bulk inner loop shared by the buffer overload and the fused
     * multi-config pass: prefetched, with the cancel token polled every
     * few tens of thousands of records.
     */
    void processAll(const trace::TraceRecord *records, size_t n);

    /** True once maxInstructions records have been consumed. */
    bool done() const { return done_; }

    /** Retire remaining live values and return the metrics. */
    AnalysisResult finish();

    // --- Introspection (tests and examples) ------------------------------

    /** Firewall floor: first level available for placement. */
    int64_t highestLevel() const { return highestLevel_; }

    /** Deepest DDG level used so far (-1 before any placement). */
    int64_t deepestLevel() const { return deepestLevel_; }

    /** Level the last processed record was placed at (-1 if not placed). */
    int64_t lastPlacedLevel() const { return lastPlacedLevel_; }

    /** The live well (read-only). */
    const LiveWell &liveWell() const { return liveWell_; }

    /** Window ring: last min(W, seen) levels, oldest first; empty for
     *  unbounded windows. */
    std::vector<int64_t> windowRing() const;

  private:
    AnalysisConfig cfg_;
    LiveWell liveWell_;
    FuThrottle throttle_;
    BranchPredictor predictor_;
    std::unique_ptr<SlidingWindow> window_;
    AnalysisResult result_;

    int64_t highestLevel_ = 0;
    int64_t deepestLevel_ = -1;
    int64_t lastPlacedLevel_ = -1;
    bool done_ = false;
    bool finished_ = false;

    /** Segment mode: boundary-episode log (null in normal runs). */
    SegmentLog *segLog_ = nullptr;
    /** Max well size since the last first-touch event (segment mode). */
    uint64_t segPeakWindow_ = 0;
    /** Records consumed since beginSegment() (head-window logging). */
    uint64_t segSeen_ = 0;

    /** Precomputed mispredict bitvector (null: live predictor model). */
    const uint64_t *misBits_ = nullptr;
    /** Ordinal of the next conditional branch within misBits_. */
    uint64_t misCursor_ = 0;

    static constexpr size_t numKinds = 4;    ///< trace::Operand::Kind values
    static constexpr size_t numSegments = 4; ///< trace::Segment values
    /** destRenamed() precomputed per (operand kind, segment); see begin(). */
    bool renamedByKind_[numKinds][numSegments] = {};

    /** Place a value-creating record; returns its Ldest. */
    int64_t placeRecord(const trace::TraceRecord &rec);

    /** process() minus the instruction counting (bulk loops count once). */
    void processBody(const trace::TraceRecord &rec);

    /** Prefetch the live-well slots @p rec's memory operands will probe. */
    void prefetchRecord(const trace::TraceRecord &rec) const;

    /** Predict a conditional branch; firewall at its resolution level on a
     *  miss. */
    void handleCondBranch(const trace::TraceRecord &rec);

    /** True when @p op's storage class has renaming enabled. */
    bool destRenamed(const trace::Operand &op) const;

    /** Record lifetime/sharing statistics for a dying value. Inline: runs
     *  once per overwritten or evicted value on the placement hot path. */
    void
    retire(const LiveValue &lv)
    {
        if (lv.preExisting)
            return;
        if (cfg_.collectLifetimes) {
            result_.lifetimes.add(
                static_cast<uint64_t>(lv.deepestAccess - lv.level));
        }
        if (cfg_.collectSharing)
            result_.sharing.add(lv.useCount);
        if (cfg_.collectStorageProfile && lv.level >= 0) {
            result_.storageProfile.add(
                static_cast<uint64_t>(lv.level),
                static_cast<uint64_t>(lv.deepestAccess));
        }
    }

    /** Raise the firewall floor to @p level (counts a firewall if raised). */
    void raiseFloor(int64_t level);

    // --- Segment-mode hooks (called only when segLog_ is set) -------------

    /** A value entered the well at @p key: log a first touch (read or
     *  write) or just advance the peak watermark for a later episode. For
     *  a write-first touch, @p close_issue is the touching op's
     *  post-data-dependency issue level (the carried value's storage
     *  dependency applies to it solo-side), or
     *  SegmentImport::unconstrained when the destination is renamed. */
    void noteWellInsert(uint64_t key, bool via_read, int64_t close_issue);

    /** A pre-existing occupant of @p key died: capture its read stats into
     *  the open first-touch episode (later episodes are shift-identical to
     *  the solo run and need nothing). @p close_issue as above, for the
     *  overwriting op (unconstrained for eviction deaths). */
    void closeImport(uint64_t key, const LiveValue &lv, int64_t close_issue);
};

} // namespace core
} // namespace paragraph

#endif // PARAGRAPH_CORE_PARAGRAPH_HPP
