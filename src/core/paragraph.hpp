/**
 * @file
 * Paragraph: the DDG extraction and analysis engine (paper Section 3.2).
 *
 * Paragraph consumes a serial execution trace one record at a time and
 * places every value-creating instruction into the dynamic dependency graph
 * using the live well. The DDG itself is never materialized — only its
 * topologically-sorted level structure, which suffices for the parallelism
 * profile, critical path, value lifetimes, and degree-of-sharing metrics.
 *
 * Placement rule (levels are 0-based; a value created by an operation of
 * latency t that issues at level i becomes available at Ldest = i + t - 1):
 *
 *     issue = MAX( MAX_over_sources(Lsrc) + 1,   true data dependencies
 *                  highestLevel,                 firewalls (syscalls, window)
 *                  Ddest + 1 )                   storage dependencies
 *
 * where Ddest is the deepest level of any computation that used (or created)
 * the previous value in the destination location, applied only when the
 * destination's storage class is not renamed. Sources absent from the live
 * well are pre-existing values, entered at highestLevel - 1 so they never
 * delay computation. Functional-unit limits slide the issue level further
 * down to the first level range with free units.
 */

#ifndef PARAGRAPH_CORE_PARAGRAPH_HPP
#define PARAGRAPH_CORE_PARAGRAPH_HPP

#include <cstdint>
#include <memory>

#include "core/branch_predictor.hpp"
#include "core/config.hpp"
#include "core/fu_throttle.hpp"
#include "core/live_well.hpp"
#include "core/result.hpp"
#include "core/segment_log.hpp"
#include "core/window.hpp"
#include "trace/buffer.hpp"
#include "trace/record.hpp"
#include "trace/source.hpp"

namespace paragraph {
namespace core {

class Paragraph
{
  public:
    explicit Paragraph(AnalysisConfig cfg = {});

    /** Active configuration. */
    const AnalysisConfig &config() const { return cfg_; }

    /** Run a complete analysis: begin(), drain @p src, finish(). */
    AnalysisResult analyze(trace::TraceSource &src);

    /**
     * Run a complete analysis over an in-memory capture. Skips the
     * TraceSource virtual-dispatch-per-record path: the record loop walks
     * the buffer's contiguous storage directly. Results are identical to
     * the streaming overload.
     */
    AnalysisResult analyze(const trace::TraceBuffer &buffer);

    // --- Incremental interface (drive record-by-record) ------------------

    /** Reset all state for a new trace. */
    void begin();

    /**
     * Like begin(), but analyze the upcoming records as one shard segment:
     * boundary episodes of every touched location are recorded into @p log
     * (cleared first), and finish() exports the final live well instead of
     * retiring it — carried values' lifetimes belong to the stitch
     * (core/shard.hpp). @p log must outlive the run.
     */
    void beginSegment(SegmentLog *log);

    /** Consume one trace record. */
    void process(const trace::TraceRecord &rec);

    /** Consume every record in @p buffer (stops early at maxInstructions). */
    void processAll(const trace::TraceBuffer &buffer);

    /**
     * Consume @p n contiguous records (stops early at maxInstructions).
     * The bulk inner loop shared by the buffer overload and the fused
     * multi-config pass: prefetched, with the cancel token polled every
     * few tens of thousands of records.
     */
    void processAll(const trace::TraceRecord *records, size_t n);

    /** True once maxInstructions records have been consumed. */
    bool done() const { return done_; }

    /** Retire remaining live values and return the metrics. */
    AnalysisResult finish();

    // --- Introspection (tests and examples) ------------------------------

    /** Firewall floor: first level available for placement. */
    int64_t highestLevel() const { return highestLevel_; }

    /** Deepest DDG level used so far (-1 before any placement). */
    int64_t deepestLevel() const { return deepestLevel_; }

    /** Level the last processed record was placed at (-1 if not placed). */
    int64_t lastPlacedLevel() const { return lastPlacedLevel_; }

    /** The live well (read-only). */
    const LiveWell &liveWell() const { return liveWell_; }

  private:
    AnalysisConfig cfg_;
    LiveWell liveWell_;
    FuThrottle throttle_;
    BranchPredictor predictor_;
    std::unique_ptr<SlidingWindow> window_;
    AnalysisResult result_;

    int64_t highestLevel_ = 0;
    int64_t deepestLevel_ = -1;
    int64_t lastPlacedLevel_ = -1;
    bool done_ = false;
    bool finished_ = false;

    /** Segment mode: boundary-episode log (null in normal runs). */
    SegmentLog *segLog_ = nullptr;
    /** Max well size since the last first-touch event (segment mode). */
    uint64_t segPeakWindow_ = 0;

    static constexpr size_t numKinds = 4;    ///< trace::Operand::Kind values
    static constexpr size_t numSegments = 4; ///< trace::Segment values
    /** destRenamed() precomputed per (operand kind, segment); see begin(). */
    bool renamedByKind_[numKinds][numSegments] = {};

    /** Place a value-creating record; returns its Ldest. */
    int64_t placeRecord(const trace::TraceRecord &rec);

    /** process() minus the instruction counting (bulk loops count once). */
    void processBody(const trace::TraceRecord &rec);

    /** Prefetch the live-well slots @p rec's memory operands will probe. */
    void prefetchRecord(const trace::TraceRecord &rec) const;

    /** Predict a conditional branch; firewall at its resolution level on a
     *  miss. */
    void handleCondBranch(const trace::TraceRecord &rec);

    /** True when @p op's storage class has renaming enabled. */
    bool destRenamed(const trace::Operand &op) const;

    /** Record lifetime/sharing statistics for a dying value. Inline: runs
     *  once per overwritten or evicted value on the placement hot path. */
    void
    retire(const LiveValue &lv)
    {
        if (lv.preExisting)
            return;
        if (cfg_.collectLifetimes) {
            result_.lifetimes.add(
                static_cast<uint64_t>(lv.deepestAccess - lv.level));
        }
        if (cfg_.collectSharing)
            result_.sharing.add(lv.useCount);
        if (cfg_.collectStorageProfile && lv.level >= 0) {
            result_.storageProfile.add(
                static_cast<uint64_t>(lv.level),
                static_cast<uint64_t>(lv.deepestAccess));
        }
    }

    /** Raise the firewall floor to @p level (counts a firewall if raised). */
    void raiseFloor(int64_t level);

    // --- Segment-mode hooks (called only when segLog_ is set) -------------

    /** A value entered the well at @p key: log a first touch (read or
     *  write) or just advance the peak watermark for a later episode. */
    void noteWellInsert(uint64_t key, bool via_read);

    /** A pre-existing occupant of @p key died: capture its read stats into
     *  the open first-touch episode (later episodes are shift-identical to
     *  the solo run and need nothing). */
    void closeImport(uint64_t key, const LiveValue &lv);
};

} // namespace core
} // namespace paragraph

#endif // PARAGRAPH_CORE_PARAGRAPH_HPP
