/**
 * @file
 * Report rendering for analysis results (text tables and plot-ready data).
 */

#ifndef PARAGRAPH_CORE_REPORT_HPP
#define PARAGRAPH_CORE_REPORT_HPP

#include <ostream>
#include <string>

#include "core/config.hpp"
#include "core/result.hpp"

namespace paragraph {
namespace core {

/** Print a one-result summary block (critical path, parallelism, etc.). */
void printSummary(std::ostream &os, const std::string &name,
                  const AnalysisConfig &cfg, const AnalysisResult &res);

/**
 * Print the parallelism profile as "level-range  ops/level" rows
 * (the data behind the paper's Figure 7 plots), at most @p max_rows rows.
 */
void printProfile(std::ostream &os, const AnalysisResult &res,
                  size_t max_rows = 64);

/**
 * Render the profile as a coarse ASCII area plot (rows = level buckets,
 * bar length proportional to ops/level), mirroring Figure 7's shape.
 */
void printProfilePlot(std::ostream &os, const AnalysisResult &res,
                      size_t rows = 32, size_t width = 60);

/** Print the value-lifetime and degree-of-sharing distributions. */
void printDistributions(std::ostream &os, const AnalysisResult &res);

/**
 * Print the storage (waiting-token) profile: values live per DDG level,
 * as an ASCII area plot — the temporary-storage requirement of an abstract
 * machine executing the DDG (paper Section 2.3).
 */
void printStorageProfile(std::ostream &os, const AnalysisResult &res,
                         size_t rows = 24, size_t width = 56);

} // namespace core
} // namespace paragraph

#endif // PARAGRAPH_CORE_REPORT_HPP
