#include "core/config.hpp"

#include <sstream>

namespace paragraph {
namespace core {

std::string
AnalysisConfig::describe() const
{
    std::ostringstream oss;
    oss << (sysCallsStall ? "syscalls=stall" : "syscalls=ignore");
    oss << " rename=";
    if (renameRegisters)
        oss << "R";
    if (renameStack)
        oss << "S";
    if (renameData)
        oss << "M";
    if (!renameRegisters && !renameStack && !renameData)
        oss << "none";
    if (windowSize)
        oss << " window=" << windowSize;
    else
        oss << " window=unlimited";
    if (totalFuLimit)
        oss << " fus=" << totalFuLimit;
    return oss.str();
}

AnalysisConfig
AnalysisConfig::dataflowConservative()
{
    AnalysisConfig cfg;
    cfg.sysCallsStall = true;
    cfg.renameRegisters = true;
    cfg.renameData = true;
    cfg.renameStack = true;
    cfg.windowSize = 0;
    return cfg;
}

AnalysisConfig
AnalysisConfig::dataflowOptimistic()
{
    AnalysisConfig cfg = dataflowConservative();
    cfg.sysCallsStall = false;
    return cfg;
}

AnalysisConfig
AnalysisConfig::noRenaming()
{
    AnalysisConfig cfg = dataflowConservative();
    cfg.renameRegisters = false;
    cfg.renameData = false;
    cfg.renameStack = false;
    return cfg;
}

AnalysisConfig
AnalysisConfig::regsRenamed()
{
    AnalysisConfig cfg = noRenaming();
    cfg.renameRegisters = true;
    return cfg;
}

AnalysisConfig
AnalysisConfig::regsStackRenamed()
{
    AnalysisConfig cfg = regsRenamed();
    cfg.renameStack = true;
    return cfg;
}

AnalysisConfig
AnalysisConfig::regsMemRenamed()
{
    return dataflowConservative();
}

AnalysisConfig
AnalysisConfig::windowed(uint64_t window_size)
{
    AnalysisConfig cfg = dataflowConservative();
    cfg.windowSize = window_size;
    return cfg;
}

} // namespace core
} // namespace paragraph
