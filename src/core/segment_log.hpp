/**
 * @file
 * SegmentLog: what a trace segment must export for the firewall stitch.
 *
 * A finite-window analysis whose config stalls on syscalls can be cut
 * immediately after any stalling syscall: at that point the firewall floor
 * sits one past the deepest level, every live value lies strictly below it,
 * and nothing placed later can interact with anything above the floor
 * except by *reading* a carried value (which never delays placement) or by
 * *overwriting* it (which kills it). Each segment therefore analyzes
 * independently — as if its first record started a fresh trace — and the
 * stitch (core/shard.hpp) replays only the per-location boundary episodes
 * recorded here to reproduce the solo run's counters exactly.
 *
 * For every storage location, only the FIRST touch in a segment can differ
 * from the solo run: a first read enters a pre-existing value where solo
 * would have used the carried one, and a first write kills the carried
 * value solo-side with zero segment-local reads. Every later episode of
 * the same location is shift-identical by induction. The log keeps one
 * SegmentImport per touched location (in touch order), the final live well
 * (exports), and the well-size watermarks between touches that let the
 * stitch reconstruct the solo live-well peak exactly.
 */

#ifndef PARAGRAPH_CORE_SEGMENT_LOG_HPP
#define PARAGRAPH_CORE_SEGMENT_LOG_HPP

#include <cstdint>
#include <utility>
#include <vector>

#include "core/live_well.hpp"
#include "support/flat_hash_map.hpp"

namespace paragraph {
namespace core {

/** Boundary episode of one storage location within a segment. */
struct SegmentImport
{
    uint64_t key = 0; ///< location key (LiveWell encoding)

    /** Reads of the first-touch value within the segment (solo: reads the
     *  carried value would have received). */
    uint32_t useCount = 0;

    /** Deepest segment-relative read level; meaningful iff useCount > 0. */
    int64_t maxReadRel = -1;

    /** First touch was a read (the segment entered a fresh pre-existing
     *  value; solo would have read the carried one instead). A first write
     *  kills the carried value with no reads. */
    bool viaRead = false;

    /** The first-touch episode ended inside the segment (overwrite or
     *  last-use eviction). When false the value survived to segment end
     *  and its fate belongs to a later segment or the final retire. */
    bool died = false;

    /** Bookkeeping: read stats captured (close happened or write-first). */
    bool closed = false;

    /** Max segment-relative well size since the previous first touch,
     *  excluding this touch's own insert. */
    uint64_t peakBefore = 0;

    /** Segment-relative well size just after this touch's insert. */
    uint64_t sizeAfter = 0;
};

/** Everything one segment run exports to the stitch. */
struct SegmentLog
{
    /** Boundary episodes, in first-touch order. */
    std::vector<SegmentImport> imports;

    /** key -> position in imports (touched-location set). */
    FlatHashMap<uint64_t, uint32_t> index;

    /** The segment's final live well, segment-relative levels. Carried
     *  locations whose first-touch value is still open appear here with
     *  the preExisting bit set; the stitch keeps the carried entry (with
     *  the import's folded stats) instead. */
    std::vector<std::pair<uint64_t, LiveValue>> exports;

    /** Exact placed-op count per segment-relative level, dense over
     *  [0, relDeepest]. The segment's own BucketedProfile may have folded
     *  (bucket width > 1 once relDeepest reaches the bin count), which
     *  loses in-bin placement; the stitch rebuilds the solo profile from
     *  these counts instead, bit-identical at any trace length. */
    std::vector<uint64_t> levelOps;

    /** Max segment-relative well size after the last first touch. */
    uint64_t trailingPeak = 0;

    /** Firewall floor at segment end (== relDeepest + 1 at a stall cut):
     *  the next segment's level offset delta. */
    int64_t relHighest = 0;

    /** Deepest segment-relative level (-1 when nothing placed). */
    int64_t relDeepest = -1;

    void
    clear()
    {
        imports.clear();
        index.clear();
        exports.clear();
        levelOps.clear();
        trailingPeak = 0;
        relHighest = 0;
        relDeepest = -1;
    }
};

} // namespace core
} // namespace paragraph

#endif // PARAGRAPH_CORE_SEGMENT_LOG_HPP
