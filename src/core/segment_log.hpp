/**
 * @file
 * SegmentLog: what a trace segment must export for split-and-patch.
 *
 * A segment analyzed from scratch ("fresh") reproduces the solo run's
 * placements shifted down by the true firewall floor F at its cut whenever
 * the carried state cannot reach above that shift. At a total-firewall cut
 * (immediately after a stalling syscall, where the floor sits one past the
 * deepest level) this holds unconditionally; at an arbitrary cut it holds
 * exactly when a small set of per-boundary-event conditions is met, and
 * every datum those conditions need is recorded here by the fresh run:
 *
 *  - For every storage location, only the FIRST touch in a segment can
 *    differ from the solo run: a first read enters a pre-existing value
 *    where solo would have read the carried one (divergence impossible iff
 *    the carried level never binds: carried.level + 1 <= floorAtTouch + F),
 *    and the episode's closing overwrite faces the carried value's storage
 *    dependency solo-side (never binds iff carried.deepestAccess + 1 <=
 *    closeIssue + F). Every later episode of the location is
 *    shift-identical by induction.
 *  - For finite windows, the first min(W, n) records displace pre-cut
 *    window entries solo-side while the fresh window is still filling;
 *    headFloors/headLevels let the patch verify each displacement raise is
 *    a no-op, and windowTail seeds the next boundary's true ring.
 *  - The first stalling syscall re-anchors the floor at deepest + 1 in
 *    both runs; firstStallDeepest lets the patch verify the two anchors
 *    coincide (after which alignment is unconditional).
 *
 * The log also keeps the final live well (exports), exact per-level op
 * counts, and the well-size watermarks between touches that let the patch
 * reconstruct the solo live-well peak exactly (core/shard.hpp).
 */

#ifndef PARAGRAPH_CORE_SEGMENT_LOG_HPP
#define PARAGRAPH_CORE_SEGMENT_LOG_HPP

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "core/live_well.hpp"
#include "support/flat_hash_map.hpp"

namespace paragraph {
namespace core {

/** Boundary episode of one storage location within a segment. */
struct SegmentImport
{
    /** closeIssue value meaning "no storage dependency solo-side": the
     *  destination class is renamed, the episode died by last-use
     *  eviction, or the first-touch value survived the segment. */
    static constexpr int64_t unconstrained =
        std::numeric_limits<int64_t>::max();

    uint64_t key = 0; ///< location key (LiveWell encoding)

    /** Reads of the first-touch value within the segment (solo: reads the
     *  carried value would have received). */
    uint32_t useCount = 0;

    /** Deepest segment-relative read level; meaningful iff useCount > 0. */
    int64_t maxReadRel = -1;

    /** First touch was a read (the segment entered a fresh pre-existing
     *  value; solo would have read the carried one instead). A first write
     *  kills the carried value with no reads. */
    bool viaRead = false;

    /** The first-touch episode ended inside the segment (overwrite or
     *  last-use eviction). When false the value survived to segment end
     *  and its fate belongs to a later segment or the final retire. */
    bool died = false;

    /** Bookkeeping: read stats captured (close happened or write-first). */
    bool closed = false;

    /** Max segment-relative well size since the previous first touch,
     *  excluding this touch's own insert. */
    uint64_t peakBefore = 0;

    /** Segment-relative well size just after this touch's insert. */
    uint64_t sizeAfter = 0;

    /** Fresh firewall floor when the location was first touched. The
     *  carried value's read never binds solo-side iff
     *  carried.level + 1 <= floorAtTouch + F. */
    int64_t floorAtTouch = 0;

    /** Post-data-dependency, pre-storage/FU issue level of the operation
     *  that overwrote the first-touch value (the op that faces the carried
     *  value's storage dependency solo-side), or unconstrained. The
     *  carried storage dependency never binds iff
     *  carried.deepestAccess + 1 <= closeIssue + F. */
    int64_t closeIssue = unconstrained;
};

/** Everything one segment run exports to the patch. */
struct SegmentLog
{
    /** firstStallDeepest value meaning "no stalling syscall in segment". */
    static constexpr int64_t noStall = std::numeric_limits<int64_t>::min();

    /** Boundary episodes, in first-touch order. */
    std::vector<SegmentImport> imports;

    /** key -> position in imports (touched-location set). */
    FlatHashMap<uint64_t, uint32_t> index;

    /** The segment's final live well, segment-relative levels. Carried
     *  locations whose first-touch value is still open appear here with
     *  the preExisting bit set; the patch keeps the carried entry (with
     *  the import's folded stats) instead. */
    std::vector<std::pair<uint64_t, LiveValue>> exports;

    /** Exact placed-op count per segment-relative level, dense over
     *  [0, relDeepest]. The segment's own BucketedProfile may have folded
     *  (bucket width > 1 once relDeepest reaches the bin count), which
     *  loses in-bin placement; the patch rebuilds the solo profile from
     *  these counts instead, bit-identical at any trace length. */
    std::vector<uint64_t> levelOps;

    /** Fresh floor immediately before each of the first min(W, n) records
     *  (finite-window configs only): while the fresh window is still
     *  filling, the solo run may displace pre-cut entries, and each such
     *  raise must be a no-op for the shift to hold. */
    std::vector<int64_t> headFloors;

    /** Fresh level (SlidingWindow::notPlaced for unplaced records) of the
     *  first min(W, n) records: when the cut sits less than W records into
     *  the trace, the solo run displaces these segment-own entries while
     *  the fresh window is still filling. */
    std::vector<int64_t> headLevels;

    /** Fresh levels of the last min(W, n) records, oldest first: seeds the
     *  true window ring carried to the next boundary. */
    std::vector<int64_t> windowTail;

    /** Fresh deepest level immediately before the first stalling-syscall
     *  floor raise (noStall when the segment has none): the raise anchors
     *  at deepest + 1 in both runs, and the anchors coincide iff
     *  F + firstStallDeepest >= trueDeepest at the cut. */
    int64_t firstStallDeepest = noStall;

    /** FU-limited configs only: final throttle occupancy rows for fresh
     *  levels [relHighest, relDeepest] (FuThrottle::snapshotSpan layout;
     *  empty when the segment ends at a total firewall). A sequential
     *  replay resuming at the next boundary seeds its throttle from these
     *  rows: an FU-limited splice requires its cut be a total firewall, so
     *  every level at or above the next boundary's floor was occupied by
     *  this segment alone, and issue levels never probe below the floor. */
    std::vector<uint32_t> fuTail;

    /** Max segment-relative well size after the last first touch. */
    uint64_t trailingPeak = 0;

    /** Fresh firewall floor at segment end: the next boundary's floor
     *  delta (== relDeepest + 1 at a stall cut). */
    int64_t relHighest = 0;

    /** Deepest segment-relative level (-1 when nothing placed). */
    int64_t relDeepest = -1;

    void
    clear()
    {
        imports.clear();
        index.clear();
        exports.clear();
        levelOps.clear();
        headFloors.clear();
        headLevels.clear();
        windowTail.clear();
        firstStallDeepest = noStall;
        fuTail.clear();
        trailingPeak = 0;
        relHighest = 0;
        relDeepest = -1;
    }

    /**
     * Preallocate for a segment of @p records records (the cut plan knows
     * every span size up front): the import set and per-level counts then
     * grow without reallocation on the segment hot path.
     */
    void
    reserve(size_t records)
    {
        size_t cap = records < 4096 ? records : 4096;
        imports.reserve(cap);
        levelOps.reserve(records < 65536 ? records : 65536);
    }
};

} // namespace core
} // namespace paragraph

#endif // PARAGRAPH_CORE_SEGMENT_LOG_HPP
