#include "core/ddg_builder.hpp"

#include <algorithm>
#include <sstream>

#include "core/branch_predictor.hpp"
#include "core/fu_throttle.hpp"
#include "support/flat_hash_map.hpp"
#include "support/panic.hpp"

namespace paragraph {
namespace core {

using trace::Operand;
using trace::Segment;
using trace::TraceRecord;

const char *
depKindName(DepKind kind)
{
    switch (kind) {
      case DepKind::True:    return "true";
      case DepKind::Storage: return "storage";
      case DepKind::Control: return "control";
      default:               return "?";
    }
}

size_t
Ddg::countEdges(DepKind kind) const
{
    return static_cast<size_t>(
        std::count_if(edges.begin(), edges.end(),
                      [kind](const Edge &e) { return e.kind == kind; }));
}

std::vector<uint64_t>
Ddg::levelHistogram() const
{
    int64_t deepest = -1;
    for (const Node &n : nodes)
        deepest = std::max(deepest, n.level);
    std::vector<uint64_t> hist(static_cast<size_t>(deepest + 1), 0);
    for (const Node &n : nodes)
        ++hist[static_cast<size_t>(n.level)];
    return hist;
}

std::string
Ddg::toDot() const
{
    std::ostringstream oss;
    oss << "digraph ddg {\n"
        << "  rankdir=TB;\n"
        << "  node [shape=box, fontname=\"monospace\", fontsize=10];\n";

    int64_t deepest = -1;
    for (const Node &n : nodes)
        deepest = std::max(deepest, n.level);

    for (size_t i = 0; i < nodes.size(); ++i) {
        oss << "  n" << i << " [label=\"" << nodes[i].label << "\\nL"
            << nodes[i].level << "\"];\n";
    }
    // Bucket nodes per level once instead of rescanning every node for
    // every level (deep graphs made that quadratic).
    std::vector<std::vector<size_t>> by_level(
        static_cast<size_t>(deepest + 1));
    for (size_t i = 0; i < nodes.size(); ++i)
        by_level[static_cast<size_t>(nodes[i].level)].push_back(i);
    for (const std::vector<size_t> &members : by_level) {
        if (members.empty())
            continue;
        oss << "  { rank=same;";
        for (size_t i : members)
            oss << " n" << i << ";";
        oss << " }\n";
    }
    for (const Edge &e : edges) {
        oss << "  n" << e.from << " -> n" << e.to;
        switch (e.kind) {
          case DepKind::Storage:
            oss << " [color=gray, style=solid, arrowhead=odot]";
            break;
          case DepKind::Control:
            oss << " [style=dashed]";
            break;
          default:
            break;
        }
        oss << ";\n";
    }
    oss << "}\n";
    return oss.str();
}

namespace {

/** Per-location bookkeeping: the live value plus its producing node and the
 *  nodes that have read it (for storage-dependence edges). */
struct BuilderSlot
{
    int64_t level = 0;
    int64_t deepestAccess = 0;
    int32_t producer = -1; ///< node index, -1 for pre-existing values
    std::vector<uint32_t> readers;
};

} // namespace

Ddg
buildDdg(const trace::TraceBuffer &buffer, const AnalysisConfig &cfg)
{
    Ddg ddg;
    FlatHashMap<uint64_t, uint32_t> slot_index; // location -> slots idx
    std::vector<BuilderSlot> slots;
    FuThrottle throttle(cfg);
    BranchPredictor predictor(cfg.branchPredictor, cfg.predictorTableBits);
    SlidingWindow window(cfg.windowSize ? cfg.windowSize : 1);
    const bool windowed = cfg.windowSize > 0;

    int64_t highest_level = 0;
    int64_t deepest_level = -1;
    int32_t firewall_node = -1; // node that caused the current floor

    // Single-probe find-or-create (same scheme as Paragraph::placeRecord):
    // findOrInsert resolves the location in one hash walk instead of a
    // find() miss followed by a second full probe in insertOrAssign().
    auto slot_id_for = [&](uint64_t key, bool &fresh) -> uint32_t {
        auto [idx, inserted] = slot_index.findOrInsert(
            key, static_cast<uint32_t>(slots.size()));
        fresh = inserted;
        if (inserted)
            slots.emplace_back();
        return *idx;
    };
    auto slot_for = [&](uint64_t key, bool &fresh) -> BuilderSlot & {
        return slots[slot_id_for(key, fresh)];
    };

    for (size_t ri = 0; ri < buffer.size(); ++ri) {
        const TraceRecord &rec = buffer[ri];

        if (windowed) {
            int64_t displaced = window.willEnter();
            if (displaced != SlidingWindow::notPlaced &&
                displaced + 1 > highest_level) {
                highest_level = displaced + 1;
                // Control constraint now comes from the displaced op; node
                // identity is not tracked per displacement, so edges for
                // window firewalls are attributed to no node.
                firewall_node = -1;
            }
        }

        if (rec.isCondBranch &&
            predictor.kind() != PredictorKind::Perfect &&
            !predictor.predictAndUpdate(rec.pc, rec.branchTaken)) {
            int64_t resolve = highest_level;
            for (int s = 0; s < rec.numSrcs; ++s) {
                bool fresh = false;
                BuilderSlot &slot = slot_for(locationKey(rec.srcs[s]), fresh);
                if (fresh) {
                    slot.level = highest_level - 1;
                    slot.deepestAccess = highest_level - 1;
                    slot.producer = -1;
                }
                if (slot.level + 1 > resolve)
                    resolve = slot.level + 1;
            }
            if (resolve > highest_level) {
                highest_level = resolve;
                firewall_node = -1; // branch records are not DDG nodes
            }
        }

        bool place = rec.createsValue;
        if (rec.isSysCall && !cfg.sysCallsStall)
            place = false;

        int64_t placed_level = SlidingWindow::notPlaced;
        if (place) {
            uint32_t node_id = static_cast<uint32_t>(ddg.nodes.size());

            // True data dependencies. Slot indices are remembered so the
            // edge-emission and reader-update passes below reuse them
            // instead of re-probing the hash table per source.
            uint32_t src_slot[trace::maxSrcs] = {};
            int64_t issue = highest_level;
            bool floor_binding = true;
            for (int s = 0; s < rec.numSrcs; ++s) {
                bool fresh = false;
                uint32_t si = slot_id_for(locationKey(rec.srcs[s]), fresh);
                src_slot[s] = si;
                BuilderSlot &slot = slots[si];
                if (fresh) {
                    slot.level = highest_level - 1;
                    slot.deepestAccess = highest_level - 1;
                    slot.producer = -1;
                }
                if (slot.level + 1 > issue) {
                    issue = slot.level + 1;
                    floor_binding = false;
                }
            }

            // Storage dependency on the destination.
            const bool has_dest = rec.dest.valid();
            const uint64_t dkey = has_dest ? locationKey(rec.dest) : 0;
            bool renamed = true;
            if (has_dest) {
                switch (rec.dest.kind) {
                  case Operand::Kind::IntReg:
                  case Operand::Kind::FpReg:
                    renamed = cfg.renameRegisters;
                    break;
                  case Operand::Kind::Mem:
                    renamed = rec.dest.seg == Segment::Stack
                                  ? cfg.renameStack
                                  : cfg.renameData;
                    break;
                  default:
                    break;
                }
            }
            bool storage_edges = false;
            uint32_t dest_slot = 0;
            if (has_dest && !renamed) {
                if (uint32_t *idx = slot_index.find(dkey)) {
                    dest_slot = *idx;
                    BuilderSlot &prev = slots[dest_slot];
                    if (prev.deepestAccess + 1 > issue) {
                        issue = prev.deepestAccess + 1;
                        floor_binding = false;
                    }
                    storage_edges = true;
                }
            }

            // Resource dependencies.
            const uint32_t top = cfg.latency[static_cast<size_t>(rec.cls)];
            if (throttle.enabled())
                issue = throttle.place(rec.cls, issue, top);
            const int64_t ldest = issue + static_cast<int64_t>(top) - 1;

            // Emit edges: one true edge per distinct producing node. Only
            // this record's sources can duplicate a producer, so checking
            // against the handful already emitted for node_id replaces the
            // old scan over every edge in the graph (O(edges) per record).
            int32_t emitted[trace::maxSrcs];
            int num_emitted = 0;
            for (int s = 0; s < rec.numSrcs; ++s) {
                const BuilderSlot &slot = slots[src_slot[s]];
                if (slot.producer < 0)
                    continue;
                bool dup = false;
                for (int e = 0; e < num_emitted; ++e) {
                    if (emitted[e] == slot.producer) {
                        dup = true;
                        break;
                    }
                }
                if (!dup) {
                    emitted[num_emitted++] = slot.producer;
                    ddg.edges.push_back(
                        Ddg::Edge{static_cast<uint32_t>(slot.producer),
                             node_id, DepKind::True});
                }
            }

            if (storage_edges) {
                BuilderSlot &prev = slots[dest_slot];
                if (prev.producer >= 0) {
                    ddg.edges.push_back(
                        Ddg::Edge{static_cast<uint32_t>(prev.producer), node_id,
                             DepKind::Storage});
                }
                for (uint32_t reader : prev.readers) {
                    if (reader != node_id) {
                        ddg.edges.push_back(
                            Ddg::Edge{reader, node_id, DepKind::Storage});
                    }
                }
            }

            if (floor_binding && highest_level > 0 && firewall_node >= 0) {
                ddg.edges.push_back(
                    Ddg::Edge{static_cast<uint32_t>(firewall_node), node_id,
                         DepKind::Control});
            }

            // Readers update.
            for (int s = 0; s < rec.numSrcs; ++s) {
                BuilderSlot &slot = slots[src_slot[s]];
                if (ldest > slot.deepestAccess)
                    slot.deepestAccess = ldest;
                slot.readers.push_back(node_id);
            }

            // Destination defines a new value.
            if (has_dest) {
                bool fresh = false;
                BuilderSlot &slot = slot_for(dkey, fresh);
                slot.level = ldest;
                slot.deepestAccess = ldest;
                slot.producer = static_cast<int32_t>(node_id);
                slot.readers.clear();
            }

            ddg.nodes.push_back(Ddg::Node{
                ri, ldest, issue, rec.cls, trace::toString(rec)});
            placed_level = ldest;
            if (ldest > deepest_level)
                deepest_level = ldest;

            if (rec.isSysCall && cfg.sysCallsStall) {
                if (deepest_level + 1 > highest_level) {
                    highest_level = deepest_level + 1;
                    firewall_node = static_cast<int32_t>(node_id);
                }
            }
        }

        if (windowed)
            window.entered(placed_level);
    }

    ddg.criticalPathLength =
        deepest_level >= 0 ? static_cast<uint64_t>(deepest_level) + 1 : 0;
    return ddg;
}

} // namespace core
} // namespace paragraph
