#include "core/ddg_builder.hpp"

#include <algorithm>
#include <sstream>

#include "core/branch_predictor.hpp"
#include "core/fu_throttle.hpp"
#include "support/flat_hash_map.hpp"
#include "support/panic.hpp"

namespace paragraph {
namespace core {

using trace::Operand;
using trace::Segment;
using trace::TraceRecord;

const char *
depKindName(DepKind kind)
{
    switch (kind) {
      case DepKind::True:    return "true";
      case DepKind::Storage: return "storage";
      case DepKind::Control: return "control";
      default:               return "?";
    }
}

size_t
Ddg::countEdges(DepKind kind) const
{
    return static_cast<size_t>(
        std::count_if(edges.begin(), edges.end(),
                      [kind](const Edge &e) { return e.kind == kind; }));
}

std::vector<uint64_t>
Ddg::levelHistogram() const
{
    int64_t deepest = -1;
    for (const Node &n : nodes)
        deepest = std::max(deepest, n.level);
    std::vector<uint64_t> hist(static_cast<size_t>(deepest + 1), 0);
    for (const Node &n : nodes)
        ++hist[static_cast<size_t>(n.level)];
    return hist;
}

std::string
Ddg::toDot() const
{
    std::ostringstream oss;
    oss << "digraph ddg {\n"
        << "  rankdir=TB;\n"
        << "  node [shape=box, fontname=\"monospace\", fontsize=10];\n";

    int64_t deepest = -1;
    for (const Node &n : nodes)
        deepest = std::max(deepest, n.level);

    for (size_t i = 0; i < nodes.size(); ++i) {
        oss << "  n" << i << " [label=\"" << nodes[i].label << "\\nL"
            << nodes[i].level << "\"];\n";
    }
    for (int64_t level = 0; level <= deepest; ++level) {
        bool any = false;
        for (size_t i = 0; i < nodes.size(); ++i) {
            if (nodes[i].level == level) {
                if (!any)
                    oss << "  { rank=same;";
                any = true;
                oss << " n" << i << ";";
            }
        }
        if (any)
            oss << " }\n";
    }
    for (const Edge &e : edges) {
        oss << "  n" << e.from << " -> n" << e.to;
        switch (e.kind) {
          case DepKind::Storage:
            oss << " [color=gray, style=solid, arrowhead=odot]";
            break;
          case DepKind::Control:
            oss << " [style=dashed]";
            break;
          default:
            break;
        }
        oss << ";\n";
    }
    oss << "}\n";
    return oss.str();
}

namespace {

/** Per-location bookkeeping: the live value plus its producing node and the
 *  nodes that have read it (for storage-dependence edges). */
struct BuilderSlot
{
    int64_t level = 0;
    int64_t deepestAccess = 0;
    int32_t producer = -1; ///< node index, -1 for pre-existing values
    std::vector<uint32_t> readers;
};

} // namespace

Ddg
buildDdg(const trace::TraceBuffer &buffer, const AnalysisConfig &cfg)
{
    Ddg ddg;
    FlatHashMap<uint64_t, uint32_t> slot_index; // location -> slots idx
    std::vector<BuilderSlot> slots;
    FuThrottle throttle(cfg);
    BranchPredictor predictor(cfg.branchPredictor, cfg.predictorTableBits);
    SlidingWindow window(cfg.windowSize ? cfg.windowSize : 1);
    const bool windowed = cfg.windowSize > 0;

    int64_t highest_level = 0;
    int64_t deepest_level = -1;
    int32_t firewall_node = -1; // node that caused the current floor

    auto slot_for = [&](uint64_t key, bool &fresh) -> BuilderSlot & {
        uint32_t *idx = slot_index.find(key);
        if (idx) {
            fresh = false;
            return slots[*idx];
        }
        fresh = true;
        slots.emplace_back();
        slot_index.insertOrAssign(key,
                                  static_cast<uint32_t>(slots.size() - 1));
        return slots.back();
    };

    for (size_t ri = 0; ri < buffer.size(); ++ri) {
        const TraceRecord &rec = buffer[ri];

        if (windowed) {
            int64_t displaced = window.willEnter();
            if (displaced != SlidingWindow::notPlaced &&
                displaced + 1 > highest_level) {
                highest_level = displaced + 1;
                // Control constraint now comes from the displaced op; node
                // identity is not tracked per displacement, so edges for
                // window firewalls are attributed to no node.
                firewall_node = -1;
            }
        }

        if (rec.isCondBranch &&
            predictor.kind() != PredictorKind::Perfect &&
            !predictor.predictAndUpdate(rec.pc, rec.branchTaken)) {
            int64_t resolve = highest_level;
            for (int s = 0; s < rec.numSrcs; ++s) {
                bool fresh = false;
                BuilderSlot &slot = slot_for(locationKey(rec.srcs[s]), fresh);
                if (fresh) {
                    slot.level = highest_level - 1;
                    slot.deepestAccess = highest_level - 1;
                    slot.producer = -1;
                }
                if (slot.level + 1 > resolve)
                    resolve = slot.level + 1;
            }
            if (resolve > highest_level) {
                highest_level = resolve;
                firewall_node = -1; // branch records are not DDG nodes
            }
        }

        bool place = rec.createsValue;
        if (rec.isSysCall && !cfg.sysCallsStall)
            place = false;

        int64_t placed_level = SlidingWindow::notPlaced;
        if (place) {
            uint32_t node_id = static_cast<uint32_t>(ddg.nodes.size());

            // True data dependencies.
            int64_t issue = highest_level;
            bool floor_binding = true;
            for (int s = 0; s < rec.numSrcs; ++s) {
                bool fresh = false;
                BuilderSlot &slot = slot_for(locationKey(rec.srcs[s]), fresh);
                if (fresh) {
                    slot.level = highest_level - 1;
                    slot.deepestAccess = highest_level - 1;
                    slot.producer = -1;
                }
                if (slot.level + 1 > issue) {
                    issue = slot.level + 1;
                    floor_binding = false;
                }
            }

            // Storage dependency on the destination.
            const bool has_dest = rec.dest.valid();
            const uint64_t dkey = has_dest ? locationKey(rec.dest) : 0;
            bool renamed = true;
            if (has_dest) {
                switch (rec.dest.kind) {
                  case Operand::Kind::IntReg:
                  case Operand::Kind::FpReg:
                    renamed = cfg.renameRegisters;
                    break;
                  case Operand::Kind::Mem:
                    renamed = rec.dest.seg == Segment::Stack
                                  ? cfg.renameStack
                                  : cfg.renameData;
                    break;
                  default:
                    break;
                }
            }
            bool storage_edges = false;
            if (has_dest && !renamed) {
                if (uint32_t *idx = slot_index.find(dkey)) {
                    BuilderSlot &prev = slots[*idx];
                    if (prev.deepestAccess + 1 > issue) {
                        issue = prev.deepestAccess + 1;
                        floor_binding = false;
                    }
                    storage_edges = true;
                }
            }

            // Resource dependencies.
            const uint32_t top = cfg.latency[static_cast<size_t>(rec.cls)];
            if (throttle.enabled())
                issue = throttle.place(rec.cls, issue, top);
            const int64_t ldest = issue + static_cast<int64_t>(top) - 1;

            // Emit edges: one true edge per distinct producing node.
            for (int s = 0; s < rec.numSrcs; ++s) {
                uint32_t *idx = slot_index.find(locationKey(rec.srcs[s]));
                PARA_ASSERT(idx != nullptr);
                BuilderSlot &slot = slots[*idx];
                if (slot.producer >= 0) {
                    bool dup = false;
                    for (const auto &e : ddg.edges) {
                        if (e.to == node_id &&
                            e.from == static_cast<uint32_t>(slot.producer) &&
                            e.kind == DepKind::True) {
                            dup = true;
                            break;
                        }
                    }
                    if (!dup) {
                        ddg.edges.push_back(
                            Ddg::Edge{static_cast<uint32_t>(slot.producer),
                                 node_id, DepKind::True});
                    }
                }
            }

            if (storage_edges) {
                BuilderSlot &prev = slots[*slot_index.find(dkey)];
                if (prev.producer >= 0) {
                    ddg.edges.push_back(
                        Ddg::Edge{static_cast<uint32_t>(prev.producer), node_id,
                             DepKind::Storage});
                }
                for (uint32_t reader : prev.readers) {
                    if (reader != node_id) {
                        ddg.edges.push_back(
                            Ddg::Edge{reader, node_id, DepKind::Storage});
                    }
                }
            }

            if (floor_binding && highest_level > 0 && firewall_node >= 0) {
                ddg.edges.push_back(
                    Ddg::Edge{static_cast<uint32_t>(firewall_node), node_id,
                         DepKind::Control});
            }

            // Readers update.
            for (int s = 0; s < rec.numSrcs; ++s) {
                BuilderSlot &slot = slots[*slot_index.find(
                    locationKey(rec.srcs[s]))];
                if (ldest > slot.deepestAccess)
                    slot.deepestAccess = ldest;
                slot.readers.push_back(node_id);
            }

            // Destination defines a new value.
            if (has_dest) {
                bool fresh = false;
                BuilderSlot &slot = slot_for(dkey, fresh);
                slot.level = ldest;
                slot.deepestAccess = ldest;
                slot.producer = static_cast<int32_t>(node_id);
                slot.readers.clear();
            }

            ddg.nodes.push_back(Ddg::Node{
                ri, ldest, issue, rec.cls, trace::toString(rec)});
            placed_level = ldest;
            if (ldest > deepest_level)
                deepest_level = ldest;

            if (rec.isSysCall && cfg.sysCallsStall) {
                if (deepest_level + 1 > highest_level) {
                    highest_level = deepest_level + 1;
                    firewall_node = static_cast<int32_t>(node_id);
                }
            }
        }

        if (windowed)
            window.entered(placed_level);
    }

    ddg.criticalPathLength =
        deepest_level >= 0 ? static_cast<uint64_t>(deepest_level) + 1 : 0;
    return ddg;
}

} // namespace core
} // namespace paragraph
