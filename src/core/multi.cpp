#include "core/multi.hpp"

#include <chrono>
#include <memory>

namespace paragraph {
namespace core {

namespace {
/// Records fetched per TraceSource::nextBatch call.
constexpr size_t batchSize = 256;
} // namespace

std::vector<AnalysisResult>
analyzeMany(trace::TraceSource &src,
            const std::vector<AnalysisConfig> &configs)
{
    std::vector<std::unique_ptr<Paragraph>> engines;
    engines.reserve(configs.size());
    for (const AnalysisConfig &cfg : configs)
        engines.push_back(std::make_unique<Paragraph>(cfg));

    // When every config has an instruction cap, the pass needs exactly
    // max(cap) records — don't drain the (shared) source past that.
    uint64_t capRecords = 0;
    bool bounded = !configs.empty();
    for (const AnalysisConfig &cfg : configs) {
        if (cfg.maxInstructions == 0)
            bounded = false;
        else if (cfg.maxInstructions > capRecords)
            capRecords = cfg.maxInstructions;
    }

    auto start = std::chrono::steady_clock::now();
    trace::TraceRecord batch[batchSize];
    uint64_t fed = 0;
    size_t live = engines.size();
    while (live > 0) {
        size_t want = batchSize;
        if (bounded && capRecords - fed < want)
            want = static_cast<size_t>(capRecords - fed);
        if (want == 0)
            break;
        size_t n = src.nextBatch(batch, want);
        if (n == 0)
            break;
        fed += n;
        for (size_t i = 0; i < n && live > 0; ++i) {
            live = 0;
            for (auto &engine : engines) {
                if (!engine->done()) {
                    engine->process(batch[i]);
                    if (!engine->done())
                        ++live;
                }
            }
        }
    }
    auto end = std::chrono::steady_clock::now();
    double seconds = std::chrono::duration<double>(end - start).count();

    std::vector<AnalysisResult> results;
    results.reserve(engines.size());
    for (auto &engine : engines) {
        AnalysisResult res = engine->finish();
        res.analysisSeconds = seconds; // shared pass
        results.push_back(std::move(res));
    }
    return results;
}

} // namespace core
} // namespace paragraph
