#include "core/multi.hpp"

#include <chrono>
#include <memory>

namespace paragraph {
namespace core {

std::vector<AnalysisResult>
analyzeMany(trace::TraceSource &src,
            const std::vector<AnalysisConfig> &configs)
{
    std::vector<std::unique_ptr<Paragraph>> engines;
    engines.reserve(configs.size());
    for (const AnalysisConfig &cfg : configs)
        engines.push_back(std::make_unique<Paragraph>(cfg));

    auto start = std::chrono::steady_clock::now();
    trace::TraceRecord rec;
    size_t live = engines.size();
    while (live > 0 && src.next(rec)) {
        live = 0;
        for (auto &engine : engines) {
            if (!engine->done()) {
                engine->process(rec);
                if (!engine->done())
                    ++live;
            }
        }
    }
    auto end = std::chrono::steady_clock::now();
    double seconds = std::chrono::duration<double>(end - start).count();

    std::vector<AnalysisResult> results;
    results.reserve(engines.size());
    for (auto &engine : engines) {
        AnalysisResult res = engine->finish();
        res.analysisSeconds = seconds; // shared pass
        results.push_back(std::move(res));
    }
    return results;
}

} // namespace core
} // namespace paragraph
