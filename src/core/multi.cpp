#include "core/multi.hpp"

#include <chrono>
#include <memory>
#include <utility>

#include "trace/block_pipeline.hpp"

namespace paragraph {
namespace core {

namespace {

/// Records per shared block. Big enough that each engine's bulk loop
/// amortizes its live-well re-warm across tens of thousands of records;
/// small enough (a few MB) that the block itself stays in cache while
/// several engines walk it.
constexpr size_t fusedBlockRecords = 65536;

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

/**
 * The fused pass: one engine per config, fed block-major. The live list
 * holds the indices of engines still consuming; an engine leaves it when
 * it hits its instruction cap or throws. With stopOnEngineError the first
 * engine exception (e.g. CancelledError from a polled token) abandons the
 * pass; without it the exception is parked in the engine's outcome slot
 * and the siblings keep running.
 */
struct FusedPass
{
    std::vector<std::unique_ptr<Paragraph>> engines;
    std::vector<MultiOutcome> outcomes;
    std::vector<size_t> live;
    bool stopOnEngineError;

    FusedPass(const std::vector<AnalysisConfig> &configs, bool stop_on_error)
        : outcomes(configs.size()), stopOnEngineError(stop_on_error)
    {
        engines.reserve(configs.size());
        live.reserve(configs.size());
        for (size_t i = 0; i < configs.size(); ++i) {
            engines.push_back(std::make_unique<Paragraph>(configs[i]));
            live.push_back(i);
        }
    }

    /** Run every live engine's bulk loop over one shared block
     *  (engine-major: each live well stays cache-hot for the whole
     *  block). Cancel tokens are polled inside processAll. */
    void
    feed(const trace::TraceRecord *block, size_t n)
    {
        size_t k = 0;
        while (k < live.size()) {
            size_t i = live[k];
            auto t0 = std::chrono::steady_clock::now();
            try {
                engines[i]->processAll(block, n);
            } catch (...) {
                outcomes[i].error = std::current_exception();
                outcomes[i].engineSeconds += secondsSince(t0);
                live.erase(live.begin() + k);
                if (stopOnEngineError)
                    std::rethrow_exception(outcomes[i].error);
                continue;
            }
            outcomes[i].engineSeconds += secondsSince(t0);
            if (engines[i]->done())
                live.erase(live.begin() + k);
            else
                ++k;
        }
    }

    /** finish() every engine that didn't fail. */
    void
    finishAll()
    {
        for (size_t i = 0; i < engines.size(); ++i) {
            if (outcomes[i].error)
                continue;
            auto t0 = std::chrono::steady_clock::now();
            try {
                outcomes[i].result = engines[i]->finish();
            } catch (...) {
                outcomes[i].error = std::current_exception();
            }
            outcomes[i].engineSeconds += secondsSince(t0);
        }
    }
};

std::vector<MultiOutcome>
runFusedBlocks(trace::BlockSource &blocks,
               const std::vector<AnalysisConfig> &configs,
               bool stop_on_engine_error)
{
    FusedPass pass(configs, stop_on_engine_error);
    double decodeSeconds = 0.0;
    const trace::TraceRecord *block = nullptr;
    while (!pass.live.empty()) {
        auto t0 = std::chrono::steady_clock::now();
        size_t n = blocks.next(&block); // rethrows source errors
        decodeSeconds += secondsSince(t0);
        if (n == 0)
            break;
        pass.feed(block, n);
    }
    pass.finishAll();
    for (MultiOutcome &o : pass.outcomes)
        o.decodeSeconds = decodeSeconds;
    return std::move(pass.outcomes);
}

std::vector<MultiOutcome>
runFusedSource(trace::TraceSource &src,
               const std::vector<AnalysisConfig> &configs,
               bool stop_on_engine_error)
{
    // When every config has an instruction cap, the pass needs exactly
    // max(cap) records — don't drain the (shared) source past that.
    uint64_t capRecords = 0;
    bool bounded = !configs.empty();
    for (const AnalysisConfig &cfg : configs) {
        if (cfg.maxInstructions == 0)
            bounded = false;
        else if (cfg.maxInstructions > capRecords)
            capRecords = cfg.maxInstructions;
    }

    if (configs.empty())
        return {};

    // Pipelined decode: the producer thread unpacks the next block
    // while the engines consume the current one.
    trace::BlockPipeline::Options popt;
    popt.blockRecords = fusedBlockRecords;
    popt.maxRecords = bounded ? capRecords : 0;
    trace::BlockPipeline pipe(src, popt);
    return runFusedBlocks(pipe, configs, stop_on_engine_error);
}

} // namespace

std::vector<AnalysisResult>
analyzeMany(trace::TraceSource &src,
            const std::vector<AnalysisConfig> &configs)
{
    auto start = std::chrono::steady_clock::now();
    std::vector<MultiOutcome> outcomes =
        runFusedSource(src, configs, /*stop_on_engine_error=*/true);
    double seconds = secondsSince(start);

    std::vector<AnalysisResult> results;
    results.reserve(outcomes.size());
    for (MultiOutcome &o : outcomes) {
        o.result.analysisSeconds = seconds; // shared pass
        results.push_back(std::move(o.result));
    }
    return results;
}

std::vector<MultiOutcome>
analyzeManyGuarded(trace::TraceSource &src,
                   const std::vector<AnalysisConfig> &configs)
{
    return runFusedSource(src, configs, /*stop_on_engine_error=*/false);
}

std::vector<MultiOutcome>
analyzeManyGuarded(trace::BlockSource &blocks,
                   const std::vector<AnalysisConfig> &configs)
{
    return runFusedBlocks(blocks, configs, /*stop_on_engine_error=*/false);
}

std::vector<MultiOutcome>
analyzeManyGuarded(const trace::TraceBuffer &buffer,
                   const std::vector<AnalysisConfig> &configs)
{
    FusedPass pass(configs, /*stop_on_error=*/false);
    const trace::TraceRecord *data = buffer.records().data();
    const size_t total = buffer.records().size();
    for (size_t off = 0; off < total && !pass.live.empty();
         off += fusedBlockRecords) {
        pass.feed(data + off, std::min(fusedBlockRecords, total - off));
    }
    pass.finishAll();
    return std::move(pass.outcomes);
}

} // namespace core
} // namespace paragraph
