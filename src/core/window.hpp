/**
 * @file
 * SlidingWindow: the instruction window of paper Section 3.2 / Figure 6.
 *
 * "The instruction window passes along the entire trace allowing at most W
 * instructions to be viewed at any one time. ... As the instruction window
 * moves along the trace, instructions displaced from the window can no
 * longer affect the placement of other instructions. This is implemented by
 * including a firewall with the operations displaced from the instruction
 * window."
 *
 * A ring buffer holds the DDG level of the last W trace instructions
 * (a sentinel for instructions that were not placed, e.g. branches). When a
 * new instruction enters a full window, the displaced instruction's level is
 * returned so the analyzer can raise its firewall floor above it — which
 * guarantees no DDG level ever holds more than W operations.
 */

#ifndef PARAGRAPH_CORE_WINDOW_HPP
#define PARAGRAPH_CORE_WINDOW_HPP

#include <cstdint>
#include <limits>
#include <vector>

#include "support/panic.hpp"

namespace paragraph {
namespace core {

class SlidingWindow
{
  public:
    /** Level marker for trace records that were not placed in the DDG. */
    static constexpr int64_t notPlaced = std::numeric_limits<int64_t>::min();

    /** @param size window capacity W (>= 1). */
    explicit SlidingWindow(uint64_t size) : ring_(size, notPlaced)
    {
        PARA_ASSERT(size >= 1, "window size must be >= 1");
    }

    /**
     * Report that the next trace instruction is entering the window, before
     * it is placed.
     * @return the level of the displaced instruction, or notPlaced when the
     *         window is not yet full or the displaced record had no level.
     */
    int64_t
    willEnter() const
    {
        return count_ >= ring_.size() ? ring_[head_] : notPlaced;
    }

    /**
     * Record the level of the instruction that just entered (the analyzer
     * calls this after placement; @p level is notPlaced for control
     * instructions and skipped syscalls).
     */
    void
    entered(int64_t level)
    {
        ring_[head_] = level;
        head_ = (head_ + 1) % ring_.size();
        if (count_ < ring_.size())
            ++count_;
    }

    /** Window capacity W. */
    uint64_t capacity() const { return ring_.size(); }

    /** Reset for a fresh analysis. */
    void
    reset()
    {
        std::fill(ring_.begin(), ring_.end(), notPlaced);
        head_ = 0;
        count_ = 0;
    }

    /**
     * The levels of the last min(W, records seen) entries, oldest first —
     * the window state a split-and-patch boundary must carry.
     */
    std::vector<int64_t>
    snapshot() const
    {
        std::vector<int64_t> out;
        out.reserve(count_);
        size_t start =
            count_ < ring_.size() ? 0 : head_; // head_ is oldest when full
        for (size_t i = 0; i < count_; ++i)
            out.push_back(ring_[(start + i) % ring_.size()]);
        return out;
    }

    /**
     * Restore the state captured by snapshot(): the window behaves as if
     * exactly @p levels.size() records (at those levels, oldest first) had
     * entered since reset. @p levels must hold at most W entries.
     */
    void
    seed(const std::vector<int64_t> &levels)
    {
        PARA_ASSERT(levels.size() <= ring_.size(),
                    "window seed larger than capacity");
        reset();
        for (int64_t lvl : levels)
            entered(lvl);
    }

  private:
    std::vector<int64_t> ring_;
    size_t head_ = 0;
    size_t count_ = 0;
};

} // namespace core
} // namespace paragraph

#endif // PARAGRAPH_CORE_WINDOW_HPP
