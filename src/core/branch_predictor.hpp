/**
 * @file
 * Branch predictor models for control-dependency firewalls.
 *
 * Paper Section 3.2: "The firewall can also be used to represent the effect
 * of a mispredicted conditional branch, resulting in all operations after
 * the conditional branch being placed into the DDG with a control
 * dependency to the firewall." And Section 4 argues that "the branch
 * predictors currently available are not accurate enough to expose even
 * hundreds of instructions."
 *
 * This extension provides the predictor models that argument needs: every
 * conditional branch in the trace is predicted; a misprediction raises the
 * firewall floor to the branch's resolution level, so no later operation
 * can start before the branch outcome is known.
 */

#ifndef PARAGRAPH_CORE_BRANCH_PREDICTOR_HPP
#define PARAGRAPH_CORE_BRANCH_PREDICTOR_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace paragraph {
namespace core {

/** Predictor models, from oracle to adversary. */
enum class PredictorKind : uint8_t
{
    Perfect,     ///< never mispredicts (the paper's default assumption)
    Bimodal,     ///< per-branch 2-bit saturating counters
    AlwaysTaken, ///< static predict-taken
    NeverTaken,  ///< static predict-not-taken
    AlwaysWrong, ///< adversarial lower bound: every branch mispredicts
};

/** Human-readable model name. */
const char *predictorKindName(PredictorKind kind);

class BranchPredictor
{
  public:
    /**
     * @param kind       model to simulate
     * @param table_bits log2 of the bimodal counter-table size
     */
    explicit BranchPredictor(PredictorKind kind = PredictorKind::Perfect,
                             uint32_t table_bits = 12);

    /**
     * Predict the branch at static address @p pc, then update with the
     * actual outcome.
     * @return true when the prediction was correct.
     */
    bool predictAndUpdate(uint64_t pc, bool taken);

    /** Reset all predictor state (fresh analysis). */
    void reset();

    PredictorKind kind() const { return kind_; }

    uint64_t predictions() const { return predictions_; }
    uint64_t mispredictions() const { return mispredictions_; }

    /** Fraction of branches predicted correctly (1.0 when none seen). */
    double
    accuracy() const
    {
        return predictions_
                   ? 1.0 - static_cast<double>(mispredictions_) /
                               static_cast<double>(predictions_)
                   : 1.0;
    }

  private:
    PredictorKind kind_;
    std::vector<uint8_t> counters_; ///< 2-bit saturating, bimodal only
    uint64_t mask_ = 0;
    uint64_t predictions_ = 0;
    uint64_t mispredictions_ = 0;
};

} // namespace core
} // namespace paragraph

#endif // PARAGRAPH_CORE_BRANCH_PREDICTOR_HPP
