/**
 * @file
 * AnalysisResult: everything one Paragraph run produces.
 *
 * "Every trace analysis produces two metrics: the parallelism profile, and
 * the critical path length" — plus the distributions Section 2.3 describes
 * (value lifetimes, degree of sharing) and bookkeeping counters used by the
 * experiment harnesses.
 */

#ifndef PARAGRAPH_CORE_RESULT_HPP
#define PARAGRAPH_CORE_RESULT_HPP

#include <cstdint>

#include "support/bucketed_profile.hpp"
#include "support/histogram.hpp"
#include "support/interval_profile.hpp"

namespace paragraph {
namespace core {

struct AnalysisResult
{
    /** Trace records consumed (including control instructions). */
    uint64_t instructions = 0;

    /** Value-creating operations placed in the DDG. */
    uint64_t placedOps = 0;

    /** System calls encountered. */
    uint64_t sysCalls = 0;

    /** Firewalls inserted (conservative syscalls + window displacements
     *  that actually raised the floor). */
    uint64_t firewalls = 0;

    /** Pre-existing values entered into the live well. */
    uint64_t preExistingValues = 0;

    /** Ops whose placement was deepened by a storage dependency. */
    uint64_t storageDelayedOps = 0;

    /** Ops whose placement was deepened by a functional-unit limit. */
    uint64_t fuDelayedOps = 0;

    /** Conditional branches seen, and how many the predictor missed. */
    uint64_t condBranches = 0;
    uint64_t branchMispredictions = 0;

    /**
     * Critical path length: the minimum number of abstract machine steps to
     * execute the trace = deepest used DDG level + 1.
     */
    uint64_t criticalPathLength = 0;

    /** placedOps / criticalPathLength — the available parallelism. */
    double availableParallelism = 0.0;

    /** Ops per DDG level (paper Figure 7). */
    BucketedProfile profile;

    /** Value lifetime in DDG levels (creation to deepest use). */
    Histogram lifetimes{4096};

    /** Number of readers per created value (degree of sharing). */
    Histogram sharing{256};

    /** Values live per DDG level (the storage / waiting-token profile). */
    IntervalProfile storageProfile;

    /** Peak live-well population (temporary-storage requirement). */
    uint64_t liveWellPeak = 0;

    /** Live values remaining at end of trace. */
    uint64_t liveWellFinal = 0;

    /** Peak bytes used by the live-well hash table. */
    uint64_t liveWellPeakBytes = 0;

    /** Wall-clock seconds spent analyzing. */
    double analysisSeconds = 0.0;
};

} // namespace core
} // namespace paragraph

#endif // PARAGRAPH_CORE_RESULT_HPP
