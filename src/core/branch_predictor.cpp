#include "core/branch_predictor.hpp"

#include "support/flat_hash_map.hpp"
#include "support/panic.hpp"

namespace paragraph {
namespace core {

const char *
predictorKindName(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::Perfect:     return "perfect";
      case PredictorKind::Bimodal:     return "bimodal";
      case PredictorKind::AlwaysTaken: return "always-taken";
      case PredictorKind::NeverTaken:  return "never-taken";
      case PredictorKind::AlwaysWrong: return "always-wrong";
      default:                         return "?";
    }
}

BranchPredictor::BranchPredictor(PredictorKind kind, uint32_t table_bits)
    : kind_(kind)
{
    PARA_ASSERT(table_bits >= 1 && table_bits <= 24);
    if (kind_ == PredictorKind::Bimodal) {
        counters_.assign(size_t{1} << table_bits, 1); // weakly not-taken
        mask_ = (uint64_t{1} << table_bits) - 1;
    }
}

bool
BranchPredictor::predictAndUpdate(uint64_t pc, bool taken)
{
    ++predictions_;
    bool predicted_taken;
    switch (kind_) {
      case PredictorKind::Perfect:
        predicted_taken = taken;
        break;
      case PredictorKind::AlwaysTaken:
        predicted_taken = true;
        break;
      case PredictorKind::NeverTaken:
        predicted_taken = false;
        break;
      case PredictorKind::AlwaysWrong:
        predicted_taken = !taken;
        break;
      case PredictorKind::Bimodal: {
        uint8_t &counter = counters_[(mixHash64(pc) & mask_)];
        predicted_taken = counter >= 2;
        if (taken && counter < 3)
            ++counter;
        if (!taken && counter > 0)
            --counter;
        break;
      }
      default:
        PARA_PANIC("bad predictor kind");
    }
    bool correct = predicted_taken == taken;
    if (!correct)
        ++mispredictions_;
    return correct;
}

void
BranchPredictor::reset()
{
    if (kind_ == PredictorKind::Bimodal)
        counters_.assign(counters_.size(), 1);
    predictions_ = 0;
    mispredictions_ = 0;
}

} // namespace core
} // namespace paragraph
