/**
 * @file
 * Firewall-point trace sharding: split one trace at syscall stalls, analyze
 * the segments independently, and stitch an exact solo-equivalent result.
 *
 * Under the paper's conservative syscall assumption a stalling syscall
 * raises the firewall floor to deepestLevel + 1: at the cut immediately
 * after the syscall record, every live value sits strictly below the floor
 * and nothing placed later can issue above it. A segment analyzed from
 * scratch therefore reproduces the solo run's placements shifted down by a
 * fixed per-segment offset (the sum of preceding segments' final floors):
 *
 *  - data dependencies on carried values never bind (their level + 1 is at
 *    most the floor, and a standalone segment's fresh pre-existing entry at
 *    floor - 1 never binds either);
 *  - storage dependencies on carried values never bind (their deepest
 *    access is below the floor);
 *  - the functional-unit throttle is empty at and above the floor on both
 *    sides (first-fit placement is shift-invariant);
 *  - window displacements of pre-cut entries only ever raise to levels at
 *    or below the floor (no-ops), and the displacement streams coincide
 *    once the window refills.
 *
 * The only divergences are per-location boundary episodes — the first
 * touch of each storage location in each segment — which Paragraph records
 * in segment mode (core/segment_log.hpp). stitchSegments() replays those
 * episodes against the carried live well to reproduce the solo counters,
 * histograms, live-well peak, critical path and ops-per-level profile
 * exactly (the profile from the log's per-level counts, immune to bucket
 * folding); the storage profile is re-based bin-accurately (exact at unit
 * bucket width).
 *
 * Applicability: shardableConfig() — the conservative syscall assumption
 * must hold and branch prediction must be Perfect (a modeled predictor
 * carries table state across the cut). Any window size qualifies.
 */

#ifndef PARAGRAPH_CORE_SHARD_HPP
#define PARAGRAPH_CORE_SHARD_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/paragraph.hpp"
#include "core/result.hpp"
#include "core/segment_log.hpp"
#include "trace/record.hpp"

namespace paragraph {
namespace core {

/** True when @p cfg admits exact firewall-point sharding. */
bool shardableConfig(const AnalysisConfig &cfg);

/**
 * Choose up to @p shards - 1 cut positions over @p records[0, n): each cut
 * is a record index immediately after a stalling-syscall record, picked
 * nearest to the equal-spacing targets k * n / shards. Returns a sorted,
 * deduplicated list of interior cut positions (empty when the trace has no
 * interior syscall — the caller falls back to a solo run).
 */
std::vector<size_t> planShardCuts(const trace::TraceRecord *records,
                                  size_t n, unsigned shards);

/**
 * The selection half of planShardCuts() for callers that gather candidate
 * positions themselves (e.g. scanning decoded blocks instead of one
 * contiguous record array): pick up to @p shards - 1 cuts from the sorted
 * @p candidates, nearest to the equal-spacing targets over @p n records.
 */
std::vector<size_t> selectShardCuts(const std::vector<size_t> &candidates,
                                    size_t n, unsigned shards);

/** One analyzed segment: its standalone result plus the boundary log. */
struct SegmentRun
{
    AnalysisResult result;
    SegmentLog log;
};

/**
 * Analyze @p records[0, n) as one shard segment under @p cfg (segment
 * instruction caps are ignored: the caller slices exact spans). Runs on
 * the calling thread; segments are independent, so callers parallelize by
 * invoking this from one thread per segment.
 */
void runSegment(const AnalysisConfig &cfg, const trace::TraceRecord *records,
                size_t n, SegmentRun &out);

/**
 * Stitch segment results (in trace order) into the solo-equivalent
 * AnalysisResult. All counters, the lifetime/sharing histograms, the
 * live-well peak/final population, the critical path and the ops-per-level
 * profile are exact; the storage profile is folded at each segment's
 * bucket resolution. analysisSeconds is left 0 (the caller owns
 * wall-clock attribution).
 */
AnalysisResult stitchSegments(const AnalysisConfig &cfg,
                              std::vector<SegmentRun> &segments);

/**
 * Exact-equivalence check between a solo result and a stitched result:
 * every counter and histogram must match exactly, and the ops-per-level
 * profile must match bin-for-bin; the storage profile is compared on its
 * exact scalar invariants (interval count, levels-lived, deepest level).
 * On mismatch, appends a description to @p diff (when non-null) and
 * returns false. Timing and live-well byte fields are excluded
 * (machine-dependent).
 */
bool shardedResultsEqual(const AnalysisResult &solo,
                         const AnalysisResult &stitched, std::string *diff);

} // namespace core
} // namespace paragraph

#endif // PARAGRAPH_CORE_SHARD_HPP
