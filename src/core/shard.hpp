/**
 * @file
 * Split-and-patch trace sharding: split one trace at arbitrary boundaries,
 * analyze the segments independently, and patch an exact solo-equivalent
 * result — for every configuration.
 *
 * A segment analyzed from scratch reproduces the solo run's placements
 * shifted down by the true firewall floor F at its cut whenever nothing
 * carried across the boundary can reach the shifted placements:
 *
 *  - data dependencies on carried values never bind
 *    (carried.level + 1 <= floor-at-first-touch + F);
 *  - storage dependencies on carried values never bind
 *    (carried.deepestAccess + 1 <= close-issue + F);
 *  - window displacements of pre-cut entries are no-op floor raises while
 *    the fresh window fills, and the displacement streams coincide after;
 *  - the first stalling syscall re-anchors both floors at the same level;
 *  - with functional-unit limits, the boundary is a total firewall
 *    (floor == deepest + 1), so pre-cut throttle occupancy — which never
 *    extends past the deepest level — is never probed again.
 *
 * At a total-firewall cut (immediately after a stalling syscall under the
 * paper's conservative assumption) every condition holds unconditionally —
 * that is PR 7's firewall-point theorem as a special case. At an arbitrary
 * cut the conditions are checked per segment against the carried state
 * (patchSegments): segments that pass are spliced in O(boundary episodes);
 * segments that fail are replayed sequentially through a resumable
 * Paragraph seeded with the exact true state, which is byte-exact by
 * construction. Modeled branch predictors are made cut-invariant by a
 * sequential predictor pre-pass that precomputes a per-branch mispredict
 * bitvector (predictors consume only the branch-record stream).
 *
 * The boundary data a segment exports — first-touch import episodes, head
 * floors/levels, window tail, per-level op counts, well watermarks — is
 * described in core/segment_log.hpp. The patch reproduces every counter,
 * the lifetime/sharing histograms, the live-well peak, the critical path
 * and the ops-per-level profile exactly; the storage profile is re-based
 * bin-accurately (exact at unit bucket width).
 */

#ifndef PARAGRAPH_CORE_SHARD_HPP
#define PARAGRAPH_CORE_SHARD_HPP

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/paragraph.hpp"
#include "core/result.hpp"
#include "core/segment_log.hpp"
#include "trace/record.hpp"

namespace paragraph {
namespace core {

/**
 * True when @p cfg admits the firewall-point fast path: every cut after a
 * stalling syscall is a total firewall, so all splices validate and the
 * predictor pre-pass is unnecessary. Sharding itself no longer requires
 * this — patchSegments handles every config.
 */
bool shardableConfig(const AnalysisConfig &cfg);

/** True when @p cfg enables any functional-unit limit. */
bool fuLimitedConfig(const AnalysisConfig &cfg);

/**
 * Per-branch mispredict bits from the sequential predictor pre-pass:
 * bit i (LSB-first within each word) is 1 when conditional branch i of the
 * trace mispredicts under the modeled predictor.
 */
struct MispredictBits
{
    std::vector<uint64_t> words;
    uint64_t count = 0; ///< conditional branches recorded

    void
    push(bool mispredicted)
    {
        if ((count & 63) == 0)
            words.push_back(0);
        if (mispredicted)
            words.back() |= 1ULL << (count & 63);
        ++count;
    }

    bool bit(uint64_t i) const { return (words[i >> 6] >> (i & 63)) & 1; }
};

/**
 * Sequential predictor pre-pass: run the modeled predictor once over the
 * branch-record stream (no live well, no placement — cheap) to make
 * predictor state cut-invariant. Feed records in trace order, possibly in
 * chunks (e.g. decoded blocks); collects the mispredict bitvector and the
 * record positions immediately after mispredicted branches, which are
 * natural cut candidates (the firewall raise at a mispredict tends to
 * clear the live well the same way a syscall stall does).
 */
class PredictorPrepass
{
  public:
    explicit PredictorPrepass(const AnalysisConfig &cfg);

    /** Consume @p n records continuing the global trace order. */
    void feed(const trace::TraceRecord *records, size_t n);

    /** Conditional branches seen so far. */
    uint64_t branches() const { return bits.count; }

    /** Records consumed so far. */
    size_t recordsSeen() const { return offset_; }

    MispredictBits bits;
    std::vector<size_t> mispredictCuts; ///< record index after each miss

  private:
    BranchPredictor predictor_;
    size_t offset_ = 0;
};

/**
 * A full split plan over one trace: interior cut positions plus the
 * predictor pre-pass products segments need (empty bits when the predictor
 * is Perfect).
 */
struct PatchPlan
{
    /** Sorted interior cut positions; empty means run solo. */
    std::vector<size_t> cuts;

    /** Mispredict bitvector (modeled predictors only). */
    MispredictBits bits;

    /** Per segment: conditional branches preceding its first record. */
    std::vector<uint64_t> branchBase;

    size_t segments() const { return cuts.size() + 1; }
};

/**
 * Plan up to @p shards segments over @p records[0, n) under @p cfg. Cut
 * candidates are the positions immediately after stalling syscalls (when
 * the config stalls) and after mispredicted branches (modeled predictors,
 * discovered by the pre-pass run here); with no candidates at all the plan
 * falls back to plain equal-spacing cuts — the patch validates every
 * splice and replays on failure, so correctness never depends on the cut
 * choice, only speed does. Returns an empty-cut plan when shards < 2 or
 * n < 2 (solo).
 */
PatchPlan planPatchPlan(const AnalysisConfig &cfg,
                        const trace::TraceRecord *records, size_t n,
                        unsigned shards);

/**
 * Choose up to @p shards - 1 cut positions over @p records[0, n): each cut
 * is a record index immediately after a stalling-syscall record, picked
 * nearest to the equal-spacing targets k * n / shards. Returns a sorted,
 * deduplicated list of interior cut positions (empty when the trace has no
 * interior syscall — the caller falls back to a solo run).
 */
std::vector<size_t> planShardCuts(const trace::TraceRecord *records,
                                  size_t n, unsigned shards);

/**
 * The selection half of planShardCuts() for callers that gather candidate
 * positions themselves (e.g. scanning decoded blocks instead of one
 * contiguous record array): pick up to @p shards - 1 cuts from the sorted
 * @p candidates, nearest to the equal-spacing targets over @p n records.
 */
std::vector<size_t> selectShardCuts(const std::vector<size_t> &candidates,
                                    size_t n, unsigned shards);

/** One analyzed segment: its standalone result plus the boundary log. */
struct SegmentRun
{
    AnalysisResult result;
    SegmentLog log;
};

/**
 * Analyze @p records[0, n) as one shard segment under @p cfg (segment
 * instruction caps are ignored: the caller slices exact spans). Runs on
 * the calling thread; segments are independent, so callers parallelize by
 * invoking this from one thread per segment. For modeled predictors pass
 * the plan's bitvector and the segment's branchBase so the segment
 * consumes the precomputed, cut-invariant outcomes.
 */
void runSegment(const AnalysisConfig &cfg, const trace::TraceRecord *records,
                size_t n, SegmentRun &out,
                const MispredictBits *bits = nullptr,
                uint64_t branch_base = 0);

/**
 * Stitch segment results (in trace order) into the solo-equivalent
 * AnalysisResult, assuming every boundary is a valid splice point (the
 * firewall fast path: shardableConfig() with stall cuts). All counters,
 * the lifetime/sharing histograms, the live-well peak/final population,
 * the critical path and the ops-per-level profile are exact; the storage
 * profile is folded at each segment's bucket resolution. analysisSeconds
 * is left 0 (the caller owns wall-clock attribution).
 */
AnalysisResult stitchSegments(const AnalysisConfig &cfg,
                              std::vector<SegmentRun> &segments);

/** How patchSegments resolved each boundary. */
struct PatchOutcome
{
    unsigned spliced = 0;  ///< segments merged via the O(episodes) splice
    unsigned replayed = 0; ///< segments re-run sequentially
};

/**
 * Re-feed segment @p seg's records into @p engine (which is mid-run via
 * resumeSpan): processAll() over the segment's exact record span(s).
 */
using SegmentFeed = std::function<void(Paragraph &engine, size_t seg)>;

/**
 * Validate-or-replay patch: walk @p segments in trace order carrying the
 * true live well, floor, deepest level and window ring. Each segment whose
 * splice conditions hold (see file header) is merged exactly like
 * stitchSegments; each segment that fails is replayed sequentially through
 * a resumable Paragraph seeded with the true boundary state — consecutive
 * failing segments share one engine session, preserving functional-unit
 * and window continuity. The result is byte-exact against a solo run for
 * every configuration. @p replay may be null only when every boundary is
 * guaranteed to splice (e.g. shardableConfig() stall cuts); @p bits (with
 * @p branch_base, both from the plan) is required for modeled predictors.
 */
AnalysisResult patchSegments(const AnalysisConfig &cfg,
                             std::vector<SegmentRun> &segments,
                             const SegmentFeed &replay,
                             const MispredictBits *bits = nullptr,
                             const std::vector<uint64_t> *branch_base =
                                 nullptr,
                             PatchOutcome *outcome = nullptr);

/**
 * Exact-equivalence check between a solo result and a patched result:
 * every counter and histogram must match exactly, and the ops-per-level
 * profile must match bin-for-bin; the storage profile is compared on its
 * exact scalar invariants (interval count, levels-lived, deepest level).
 * On mismatch, appends a description to @p diff (when non-null) and
 * returns false. Timing and live-well byte fields are excluded
 * (machine-dependent).
 */
bool shardedResultsEqual(const AnalysisResult &solo,
                         const AnalysisResult &stitched, std::string *diff);

} // namespace core
} // namespace paragraph

#endif // PARAGRAPH_CORE_SHARD_HPP
