/**
 * @file
 * AnalysisConfig: every Paragraph switch from paper Section 3.2.
 *
 * "Paragraph is fully parameterizable. The following parameters can be
 * combined in any combination to see their effects on the parallelism
 * profiles and critical paths": system calls stall, rename registers,
 * rename data, rename stack, window size — plus the functional-unit
 * resource throttle of Figure 4 and the latency model of Table 1.
 */

#ifndef PARAGRAPH_CORE_CONFIG_HPP
#define PARAGRAPH_CORE_CONFIG_HPP

#include <array>
#include <cstdint>
#include <string>

#include "core/branch_predictor.hpp"
#include "isa/op_class.hpp"

namespace paragraph {
namespace core {

class CancelToken;

struct AnalysisConfig
{
    // --- Paper switches -------------------------------------------------

    /**
     * Conservative system-call assumption: a syscall is assumed to modify
     * every live value, implemented as a firewall in the DDG. When false
     * (optimistic), syscalls are assumed to modify nothing.
     */
    bool sysCallsStall = true;

    /** Remove register storage dependencies (unlimited physical registers). */
    bool renameRegisters = true;

    /** Remove storage dependencies in the non-stack memory segments. */
    bool renameData = true;

    /** Remove storage dependencies in the stack segment. */
    bool renameStack = true;

    /**
     * Number of contiguous trace instructions viewable at once. Instructions
     * displaced from the window leave a firewall behind, so no DDG level can
     * hold more than this many operations. 0 means unlimited (whole trace).
     */
    uint64_t windowSize = 0;

    // --- Control dependencies (paper Figure 3 / Section 3.2 extension) ----

    /**
     * Branch-prediction model. With anything other than Perfect, every
     * mispredicted conditional branch raises a firewall at the branch's
     * resolution level: no later operation may start before the branch
     * outcome is known.
     */
    PredictorKind branchPredictor = PredictorKind::Perfect;

    /** log2 of the bimodal predictor's counter table. */
    uint32_t predictorTableBits = 12;

    // --- Resource dependencies (paper Figure 4) --------------------------

    /** Per-class functional-unit count; 0 entries are unlimited. */
    std::array<uint32_t, isa::numOpClasses> fuLimit = {};

    /** Generic functional units shared by all classes; 0 = unlimited. */
    uint32_t totalFuLimit = 0;

    /**
     * When true an operation occupies a unit only in its issue level
     * (pipelined FUs); when false it occupies all levels it spans, matching
     * Figure 4's "at most two operations can coexist in any single level".
     */
    bool pipelinedFus = false;

    // --- Latency model (paper Table 1) ------------------------------------

    /** DDG levels per operation class; defaults to the Table 1 values. */
    std::array<uint32_t, isa::numOpClasses> latency = defaultLatencies();

    // --- Analysis bounds and metric collection ---------------------------

    /** Stop after this many trace instructions; 0 = whole trace. */
    uint64_t maxInstructions = 0;

    /**
     * Optional cooperative cancellation: the bulk record loops poll this
     * token every few tens of thousands of records and abort the analysis
     * with CancelledError once it is cancelled or past its deadline. Not
     * owned; must outlive the analysis. nullptr = never cancelled.
     */
    const CancelToken *cancel = nullptr;

    /** Number of parallelism-profile bins (power of two). */
    size_t profileBins = 4096;

    /** Collect the value-lifetime distribution. */
    bool collectLifetimes = true;

    /** Collect the degree-of-sharing distribution. */
    bool collectSharing = true;

    /** Collect the storage (waiting-token) profile: values live per level. */
    bool collectStorageProfile = true;

    /**
     * Evict live-well entries at their annotated last use (two-pass method;
     * requires a trace with lastUseMask filled in). When false, entries are
     * evicted when their location is overwritten (one-pass method).
     */
    bool useLastUseEviction = false;

    /** Table 1 latencies. */
    static constexpr std::array<uint32_t, isa::numOpClasses>
    defaultLatencies()
    {
        std::array<uint32_t, isa::numOpClasses> lat = {};
        for (size_t i = 0; i < isa::numOpClasses; ++i)
            lat[i] = isa::opLatency(static_cast<isa::OpClass>(i));
        return lat;
    }

    /** One-line description of the switch settings, for reports. */
    std::string describe() const;

    // --- Named presets used throughout the paper's evaluation ------------

    /** Table 3 "Conservative": all renaming, unlimited window, firewalls. */
    static AnalysisConfig dataflowConservative();

    /** Table 3 "Optimistic": as above, syscalls ignored. */
    static AnalysisConfig dataflowOptimistic();

    /** Table 4 columns: the four renaming conditions. */
    static AnalysisConfig noRenaming();
    static AnalysisConfig regsRenamed();
    static AnalysisConfig regsStackRenamed();
    static AnalysisConfig regsMemRenamed();

    /** Figure 8: all renaming, firewalls, fixed window size. */
    static AnalysisConfig windowed(uint64_t window_size);
};

} // namespace core
} // namespace paragraph

#endif // PARAGRAPH_CORE_CONFIG_HPP
