#include "core/paragraph.hpp"

#include <chrono>

#include "support/panic.hpp"

namespace paragraph {
namespace core {

using trace::Operand;
using trace::Segment;
using trace::TraceRecord;

Paragraph::Paragraph(AnalysisConfig cfg)
    : cfg_(cfg),
      throttle_(cfg),
      predictor_(cfg.branchPredictor, cfg.predictorTableBits),
      result_()
{
    if (cfg_.windowSize > 0)
        window_ = std::make_unique<SlidingWindow>(cfg_.windowSize);
    begin();
}

void
Paragraph::begin()
{
    liveWell_.clear();
    throttle_.reset();
    predictor_.reset();
    if (window_)
        window_->reset();
    result_ = AnalysisResult();
    result_.profile = BucketedProfile(cfg_.profileBins);
    result_.storageProfile = IntervalProfile(cfg_.profileBins);
    highestLevel_ = 0;
    deepestLevel_ = -1;
    lastPlacedLevel_ = -1;
    done_ = false;
    finished_ = false;
}

bool
Paragraph::destRenamed(const Operand &op) const
{
    switch (op.kind) {
      case Operand::Kind::IntReg:
      case Operand::Kind::FpReg:
        return cfg_.renameRegisters;
      case Operand::Kind::Mem:
        return op.seg == Segment::Stack ? cfg_.renameStack : cfg_.renameData;
      default:
        return true;
    }
}

void
Paragraph::retire(const LiveValue &lv)
{
    if (lv.preExisting)
        return;
    if (cfg_.collectLifetimes) {
        result_.lifetimes.add(
            static_cast<uint64_t>(lv.deepestAccess - lv.level));
    }
    if (cfg_.collectSharing)
        result_.sharing.add(lv.useCount);
    if (cfg_.collectStorageProfile && lv.level >= 0) {
        result_.storageProfile.add(
            static_cast<uint64_t>(lv.level),
            static_cast<uint64_t>(lv.deepestAccess));
    }
}

void
Paragraph::raiseFloor(int64_t level)
{
    if (level > highestLevel_) {
        highestLevel_ = level;
        ++result_.firewalls;
    }
}

void
Paragraph::process(const TraceRecord &rec)
{
    if (done_)
        return;
    ++result_.instructions;
    if (cfg_.maxInstructions && result_.instructions >= cfg_.maxInstructions)
        done_ = true;

    // The incoming record displaces the oldest window entry before it is
    // placed; the displaced operation's level becomes a firewall.
    if (window_) {
        int64_t displaced = window_->willEnter();
        if (displaced != SlidingWindow::notPlaced)
            raiseFloor(displaced + 1);
    }

    if (rec.isSysCall)
        ++result_.sysCalls;
    if (rec.isCondBranch)
        handleCondBranch(rec);

    bool place = rec.createsValue;
    if (rec.isSysCall && !cfg_.sysCallsStall) {
        // Optimistic assumption: the syscall modifies nothing and is
        // ignored entirely.
        place = false;
    }

    int64_t level = SlidingWindow::notPlaced;
    if (place)
        level = placeRecord(rec);
    lastPlacedLevel_ = place ? level : -1;

    // Conservative assumption: the syscall modified every live value. A
    // firewall goes immediately after the deepest computation so far; no
    // later operation may be placed above it.
    if (rec.isSysCall && cfg_.sysCallsStall)
        raiseFloor(deepestLevel_ + 1);

    if (window_)
        window_->entered(level);
}

void
Paragraph::handleCondBranch(const TraceRecord &rec)
{
    ++result_.condBranches;
    if (predictor_.kind() == PredictorKind::Perfect) {
        // Fast path: the paper's default assumption — perfect control flow.
        return;
    }
    bool correct = predictor_.predictAndUpdate(rec.pc, rec.branchTaken);
    if (correct)
        return;
    ++result_.branchMispredictions;
    // The branch resolves once its sources are available; nothing after a
    // mispredicted branch may start earlier than that.
    int64_t resolve = highestLevel_;
    for (int s = 0; s < rec.numSrcs; ++s) {
        uint64_t key = locationKey(rec.srcs[s]);
        const LiveValue *lv = liveWell_.find(key);
        if (!lv) {
            lv = &liveWell_.definePreExisting(key, highestLevel_);
            ++result_.preExistingValues;
        }
        if (lv->level + 1 > resolve)
            resolve = lv->level + 1;
    }
    raiseFloor(resolve);
}

int64_t
Paragraph::placeRecord(const TraceRecord &rec)
{
    // Phase 1: true data dependencies. Sources missing from the live well
    // are pre-existing values (registers or DATA words untouched so far);
    // they enter at highestLevel - 1 so they never delay computation.
    int64_t issue = highestLevel_;
    for (int s = 0; s < rec.numSrcs; ++s) {
        uint64_t key = locationKey(rec.srcs[s]);
        const LiveValue *lv = liveWell_.find(key);
        if (!lv) {
            lv = &liveWell_.definePreExisting(key, highestLevel_);
            ++result_.preExistingValues;
        }
        if (lv->level + 1 > issue)
            issue = lv->level + 1;
    }

    // Phase 2: storage dependency on the destination location, when its
    // storage class is not renamed.
    const bool has_dest = rec.dest.valid();
    const uint64_t dkey = has_dest ? locationKey(rec.dest) : 0;
    if (has_dest && !destRenamed(rec.dest)) {
        const LiveValue *prev = liveWell_.find(dkey);
        if (prev && prev->deepestAccess + 1 > issue) {
            issue = prev->deepestAccess + 1;
            ++result_.storageDelayedOps;
        }
    }

    // Phase 3: resource dependencies.
    const uint32_t top = cfg_.latency[static_cast<size_t>(rec.cls)];
    if (throttle_.enabled()) {
        int64_t adjusted = throttle_.place(rec.cls, issue, top);
        if (adjusted > issue)
            ++result_.fuDelayedOps;
        issue = adjusted;
    }

    const int64_t ldest = issue + static_cast<int64_t>(top) - 1;

    // Phase 4: the operation reads its sources; record the access depth
    // (for future storage dependencies) and the degree of sharing.
    for (int s = 0; s < rec.numSrcs; ++s) {
        LiveValue *lv = liveWell_.find(locationKey(rec.srcs[s]));
        if (!lv)
            continue; // duplicate source already evicted
        ++lv->useCount;
        if (ldest > lv->deepestAccess)
            lv->deepestAccess = ldest;
    }

    // Phase 5: two-pass deadness — evict values whose last use this is.
    if (cfg_.useLastUseEviction && rec.lastUseMask) {
        for (int s = 0; s < rec.numSrcs; ++s) {
            if (!(rec.lastUseMask & (1u << s)))
                continue;
            uint64_t key = locationKey(rec.srcs[s]);
            LiveValue *lv = liveWell_.find(key);
            if (lv) {
                retire(*lv);
                liveWell_.kill(key);
            }
        }
    }

    // Phase 6: the created value enters the live well; the previous
    // occupant of the location dies (one-pass deadness).
    if (has_dest) {
        if (const LiveValue *prev = liveWell_.find(dkey))
            retire(*prev);
        liveWell_.define(dkey, ldest);
    }

    ++result_.placedOps;
    result_.profile.add(static_cast<uint64_t>(ldest));
    if (ldest > deepestLevel_)
        deepestLevel_ = ldest;
    if (liveWell_.memoryBytes() > result_.liveWellPeakBytes)
        result_.liveWellPeakBytes = liveWell_.memoryBytes();
    return ldest;
}

AnalysisResult
Paragraph::finish()
{
    PARA_ASSERT(!finished_, "finish() called twice");
    finished_ = true;

    liveWell_.forEach(
        [this](uint64_t, const LiveValue &lv) { retire(lv); });

    result_.liveWellFinal = liveWell_.size();
    result_.liveWellPeak = liveWell_.peakSize();
    result_.criticalPathLength =
        deepestLevel_ >= 0 ? static_cast<uint64_t>(deepestLevel_) + 1 : 0;
    result_.availableParallelism =
        result_.criticalPathLength
            ? static_cast<double>(result_.placedOps) /
                  static_cast<double>(result_.criticalPathLength)
            : 0.0;
    return result_;
}

AnalysisResult
Paragraph::analyze(trace::TraceSource &src)
{
    begin();
    auto start = std::chrono::steady_clock::now();
    trace::TraceRecord rec;
    while (!done_ && src.next(rec))
        process(rec);
    AnalysisResult res = finish();
    auto end = std::chrono::steady_clock::now();
    res.analysisSeconds =
        std::chrono::duration<double>(end - start).count();
    return res;
}

} // namespace core
} // namespace paragraph
