#include "core/paragraph.hpp"

#include <algorithm>
#include <chrono>

#include "core/cancel_token.hpp"
#include "support/panic.hpp"

namespace paragraph {
namespace core {

using trace::Operand;
using trace::Segment;
using trace::TraceRecord;

namespace {
/// Records fetched per TraceSource::nextBatch call in streaming analyze().
constexpr size_t streamBatchSize = 256;
/// How many records ahead live-well slots are prefetched.
constexpr size_t prefetchDistance = 8;
/// Records between CancelToken polls in the bulk loop (keeps the clock
/// read off the per-record path).
constexpr size_t cancelCheckInterval = 32768;
} // namespace

Paragraph::Paragraph(AnalysisConfig cfg)
    : cfg_(cfg),
      throttle_(cfg),
      predictor_(cfg.branchPredictor, cfg.predictorTableBits),
      result_()
{
    if (cfg_.windowSize > 0)
        window_ = std::make_unique<SlidingWindow>(cfg_.windowSize);
    begin();
}

void
Paragraph::begin()
{
    for (size_t seg = 0; seg < numSegments; ++seg) {
        renamedByKind_[static_cast<size_t>(Operand::Kind::None)][seg] = true;
        renamedByKind_[static_cast<size_t>(Operand::Kind::IntReg)][seg] =
            cfg_.renameRegisters;
        renamedByKind_[static_cast<size_t>(Operand::Kind::FpReg)][seg] =
            cfg_.renameRegisters;
        renamedByKind_[static_cast<size_t>(Operand::Kind::Mem)][seg] =
            seg == static_cast<size_t>(Segment::Stack) ? cfg_.renameStack
                                                       : cfg_.renameData;
    }
    liveWell_.clear();
    throttle_.reset();
    predictor_.reset();
    if (window_)
        window_->reset();
    result_ = AnalysisResult();
    result_.profile = BucketedProfile(cfg_.profileBins);
    result_.storageProfile = IntervalProfile(cfg_.profileBins);
    highestLevel_ = 0;
    deepestLevel_ = -1;
    lastPlacedLevel_ = -1;
    done_ = false;
    finished_ = false;
    segLog_ = nullptr;
    segPeakWindow_ = 0;
    segSeen_ = 0;
    misBits_ = nullptr;
    misCursor_ = 0;
}

void
Paragraph::resumeSpan(AnalysisResult &&acc, PatchCarry &&carry)
{
    begin();
    if (throttle_.enabled() && carry.floor <= carry.deepest) {
        PARA_ASSERT(carry.fuRows.size() ==
                        static_cast<size_t>(carry.deepest - carry.floor + 1) *
                            FuThrottle::rowWidth,
                    "FU-limited replay below the deepest level needs the "
                    "throttle rows for [floor, deepest]");
        throttle_.seedSpan(carry.floor, carry.fuRows);
    }
    result_ = std::move(acc);
    liveWell_ = std::move(carry.well);
    highestLevel_ = carry.floor;
    deepestLevel_ = carry.deepest;
    if (window_)
        window_->seed(carry.windowRing);
}

void
Paragraph::suspendSpan(AnalysisResult &acc, PatchCarry &carry)
{
    PARA_ASSERT(!finished_, "suspendSpan on a hollow engine");
    carry.floor = highestLevel_;
    carry.deepest = deepestLevel_;
    carry.windowRing =
        window_ ? window_->snapshot() : std::vector<int64_t>();
    carry.well = std::move(liveWell_);
    acc = std::move(result_);
    // Leave a usable (empty) well behind: the moved-from map has no slot
    // storage until the next rehash.
    liveWell_ = LiveWell();
    finished_ = true; // hollow until the next begin()/resumeSpan()
}

std::vector<int64_t>
Paragraph::windowRing() const
{
    return window_ ? window_->snapshot() : std::vector<int64_t>();
}

void
Paragraph::beginSegment(SegmentLog *log)
{
    begin();
    log->clear();
    segLog_ = log;
}

void
Paragraph::noteWellInsert(uint64_t key, bool via_read, int64_t close_issue)
{
    auto [pos, fresh] = segLog_->index.findOrInsert(
        key, static_cast<uint32_t>(segLog_->imports.size()));
    uint64_t size = liveWell_.size();
    if (!fresh) {
        // A later episode of an already-touched location: shift-identical
        // to the solo run, so only the peak watermark advances.
        if (size > segPeakWindow_)
            segPeakWindow_ = size;
        return;
    }
    (void)pos;
    SegmentImport im;
    im.key = key;
    im.viaRead = via_read;
    im.floorAtTouch = highestLevel_;
    // peakBefore deliberately excludes this touch's own insert: the stitch
    // re-bases the two sides of a first touch with different carried-well
    // corrections (the touch may consume one carried slot).
    im.peakBefore = segPeakWindow_;
    im.sizeAfter = size;
    if (!via_read) {
        // Write-first touch: if the location carried a value across the
        // cut, solo overwrites it here with zero segment-local reads — and
        // this op faces the carried value's storage dependency.
        im.died = true;
        im.closed = true;
        im.closeIssue = close_issue;
    }
    segLog_->imports.push_back(im);
    segPeakWindow_ = size;
}

void
Paragraph::closeImport(uint64_t key, const LiveValue &lv, int64_t close_issue)
{
    uint32_t *pos = segLog_->index.find(key);
    if (!pos)
        return;
    SegmentImport &im = segLog_->imports[*pos];
    if (im.closed)
        return; // episode >= 2: symmetric with solo, nothing to record
    im.useCount = lv.useCount;
    im.maxReadRel = lv.deepestAccess;
    im.died = true;
    im.closed = true;
    im.closeIssue = close_issue;
}

bool
Paragraph::destRenamed(const Operand &op) const
{
    // Table lookup: destination kinds alternate between registers and
    // memory, so a switch here mispredicts on the placement hot path. The
    // table is filled from the renaming switches in begin().
    return renamedByKind_[static_cast<size_t>(op.kind)]
                         [static_cast<size_t>(op.seg)];
}

void
Paragraph::raiseFloor(int64_t level)
{
    if (level > highestLevel_) {
        highestLevel_ = level;
        ++result_.firewalls;
    }
}

void
Paragraph::process(const TraceRecord &rec)
{
    if (done_)
        return;
    ++result_.instructions;
    if (cfg_.maxInstructions && result_.instructions >= cfg_.maxInstructions)
        done_ = true;
    processBody(rec);
}

void
Paragraph::processBody(const TraceRecord &rec)
{
    // Segment mode, finite window: while the fresh window is still
    // filling, the solo run displaces pre-cut entries this run cannot see.
    // Log the floor before each head record (and its level below) so the
    // patch can verify those displacement raises are no-ops.
    const bool logHead =
        segLog_ && window_ && segSeen_ < window_->capacity();
    if (logHead)
        segLog_->headFloors.push_back(highestLevel_);

    // The incoming record displaces the oldest window entry before it is
    // placed; the displaced operation's level becomes a firewall.
    if (window_) {
        int64_t displaced = window_->willEnter();
        if (displaced != SlidingWindow::notPlaced)
            raiseFloor(displaced + 1);
    }

    if (rec.isSysCall)
        ++result_.sysCalls;
    if (rec.isCondBranch)
        handleCondBranch(rec);

    bool place = rec.createsValue;
    if (rec.isSysCall && !cfg_.sysCallsStall) {
        // Optimistic assumption: the syscall modifies nothing and is
        // ignored entirely.
        place = false;
    }

    int64_t level = SlidingWindow::notPlaced;
    if (place)
        level = placeRecord(rec);
    lastPlacedLevel_ = place ? level : -1;

    // Conservative assumption: the syscall modified every live value. A
    // firewall goes immediately after the deepest computation so far; no
    // later operation may be placed above it.
    if (rec.isSysCall && cfg_.sysCallsStall) {
        if (segLog_ && segLog_->firstStallDeepest == SegmentLog::noStall)
            segLog_->firstStallDeepest = deepestLevel_;
        raiseFloor(deepestLevel_ + 1);
    }

    if (window_)
        window_->entered(level);
    if (logHead)
        segLog_->headLevels.push_back(level);
    if (segLog_)
        ++segSeen_;
}

void
Paragraph::handleCondBranch(const TraceRecord &rec)
{
    ++result_.condBranches;
    if (predictor_.kind() == PredictorKind::Perfect) {
        // Fast path: the paper's default assumption — perfect control flow.
        return;
    }
    bool correct;
    if (misBits_) {
        // Split-and-patch feed: the sequential predictor pre-pass already
        // decided every branch; consume the precomputed bit.
        correct = !((misBits_[misCursor_ >> 6] >> (misCursor_ & 63)) & 1);
        ++misCursor_;
    } else {
        correct = predictor_.predictAndUpdate(rec.pc, rec.branchTaken);
    }
    if (correct)
        return;
    ++result_.branchMispredictions;
    // The branch resolves once its sources are available; nothing after a
    // mispredicted branch may start earlier than that. Sources missing from
    // the live well are pre-existing values, entered with a single probe.
    int64_t resolve = highestLevel_;
    for (int s = 0; s < rec.numSrcs; ++s) {
        const uint64_t key = locationKey(rec.srcs[s]);
        auto [lv, fresh] =
            liveWell_.findOrCreatePreExisting(key, highestLevel_);
        if (fresh) {
            ++result_.preExistingValues;
            if (segLog_) {
                noteWellInsert(key, /*via_read=*/true,
                               SegmentImport::unconstrained);
            }
        }
        if (lv->level + 1 > resolve)
            resolve = lv->level + 1;
    }
    raiseFloor(resolve);
}

int64_t
Paragraph::placeRecord(const TraceRecord &rec)
{
    // Phase 1: true data dependencies — and the only resolution of each
    // source. Sources missing from the live well are pre-existing values
    // (registers or DATA words untouched so far); they enter at
    // highestLevel - 1 so they never delay computation, with a single
    // find-or-create probe. The handle (pointer + key) is kept for the
    // read-access bookkeeping below.
    struct SrcRef
    {
        LiveValue *lv;
        uint64_t key;
    };
    SrcRef srcs[trace::maxSrcs];
    const int nsrcs = rec.numSrcs;
    const uint64_t epoch0 = liveWell_.memEpoch();
    int64_t issue = highestLevel_;
    for (int s = 0; s < nsrcs; ++s) {
        const uint64_t key = locationKey(rec.srcs[s]);
        auto [lv, fresh] =
            liveWell_.findOrCreatePreExisting(key, highestLevel_);
        if (fresh) {
            ++result_.preExistingValues;
            if (segLog_) {
                noteWellInsert(key, /*via_read=*/true,
                               SegmentImport::unconstrained);
            }
        }
        if (lv->level + 1 > issue)
            issue = lv->level + 1;
        srcs[s] = SrcRef{lv, key};
    }
    // A later source's insertion can move earlier handles that point into
    // the memory map (rehash or robin-hood displacement); register-file
    // handles are immune. Rare: re-resolve only when the epoch moved.
    if (liveWell_.memEpoch() != epoch0) {
        for (int s = 0; s < nsrcs; ++s) {
            if (!LiveWell::isDirect(srcs[s].key))
                srcs[s].lv = liveWell_.find(srcs[s].key);
        }
    }

    // The post-data-dependency issue level: if a first-touch value is
    // overwritten by this op, the carried value's storage dependency
    // applies against exactly this level solo-side (segment mode).
    const int64_t dataIssue = issue;

    // Phase 2: the destination is resolved once, here — its previous
    // occupant both bounds the issue level (storage dependency, when the
    // storage class is not renamed) and dies in phase 6. No inserts happen
    // between here and the phase-5 evictions, so the handle stays valid.
    const bool has_dest = rec.dest.valid();
    const uint64_t dkey = has_dest ? locationKey(rec.dest) : 0;
    LiveValue *destPrev = has_dest ? liveWell_.find(dkey) : nullptr;
    if (destPrev && !destRenamed(rec.dest) &&
        destPrev->deepestAccess + 1 > issue) {
        issue = destPrev->deepestAccess + 1;
        ++result_.storageDelayedOps;
    }

    // Phase 3: resource dependencies.
    const uint32_t top = cfg_.latency[static_cast<size_t>(rec.cls)];
    if (throttle_.enabled()) {
        int64_t adjusted = throttle_.place(rec.cls, issue, top);
        if (adjusted > issue)
            ++result_.fuDelayedOps;
        issue = adjusted;
    }

    const int64_t ldest = issue + static_cast<int64_t>(top) - 1;

    // Phase 4: the operation reads its sources; record the access depth
    // (for future storage dependencies) and the degree of sharing — through
    // the handles resolved in phase 1, no further probes.
    for (int s = 0; s < nsrcs; ++s) {
        LiveValue *lv = srcs[s].lv;
        ++lv->useCount;
        if (ldest > lv->deepestAccess)
            lv->deepestAccess = ldest;
    }

    // Phase 5: two-pass deadness — evict values whose last use this is.
    // The first eviction can shift memory-map entries (and a duplicate
    // last-use source may already be gone), so handles are re-resolved by
    // key once anything was killed.
    bool killedAny = false;
    if (cfg_.useLastUseEviction && rec.lastUseMask) {
        for (int s = 0; s < nsrcs; ++s) {
            if (!(rec.lastUseMask & (1u << s)))
                continue;
            LiveValue *lv =
                killedAny ? liveWell_.find(srcs[s].key) : srcs[s].lv;
            if (!lv)
                continue; // duplicate source already evicted
            retire(*lv);
            if (segLog_ && lv->preExisting) {
                closeImport(srcs[s].key, *lv,
                            SegmentImport::unconstrained);
            }
            liveWell_.kill(srcs[s].key);
            killedAny = true;
        }
    }

    // Phase 6: the created value enters the live well; the previous
    // occupant of the location dies (one-pass deadness). The occupant was
    // already resolved in phase 2 — overwrite it in place (the key does not
    // change, so the map structure is untouched) unless a phase-5 eviction
    // moved or removed it.
    if (has_dest) {
        const int64_t overwriteIssue = destRenamed(rec.dest)
                                           ? SegmentImport::unconstrained
                                           : dataIssue;
        LiveValue *prev = killedAny ? liveWell_.find(dkey) : destPrev;
        if (prev) {
            retire(*prev);
            if (segLog_ && prev->preExisting)
                closeImport(dkey, *prev, overwriteIssue);
            *prev = LiveValue{ldest, ldest, 0, false};
        } else {
            liveWell_.define(dkey, ldest);
            if (segLog_)
                noteWellInsert(dkey, /*via_read=*/false, overwriteIssue);
        }
    }

    ++result_.placedOps;
    result_.profile.add(static_cast<uint64_t>(ldest));
    if (segLog_) {
        // Exact per-level counts for the stitch: the profile above folds
        // its buckets once levels outgrow the bin count, which would make
        // the stitched profile approximate (see SegmentLog::levelOps).
        const size_t lvl = static_cast<size_t>(ldest);
        if (lvl >= segLog_->levelOps.size())
            segLog_->levelOps.resize(lvl + 1, 0);
        ++segLog_->levelOps[lvl];
    }
    if (ldest > deepestLevel_)
        deepestLevel_ = ldest;
    return ldest;
}

AnalysisResult
Paragraph::finish()
{
    PARA_ASSERT(!finished_, "finish() called twice");
    finished_ = true;

    if (segLog_) {
        // Segment mode: survivors are exported, not retired — whether a
        // value dies later (and its lifetime/sharing entry) is decided by
        // the stitch across segments. Surviving first-touch episodes close
        // here with their read stats but no death.
        liveWell_.forEach([this](uint64_t key, const LiveValue &lv) {
            if (lv.preExisting) {
                if (uint32_t *pos = segLog_->index.find(key)) {
                    SegmentImport &im = segLog_->imports[*pos];
                    if (!im.closed) {
                        im.useCount = lv.useCount;
                        im.maxReadRel = lv.deepestAccess;
                        im.closed = true; // died stays false: it survived
                    }
                }
            }
            segLog_->exports.emplace_back(key, lv);
        });
        segLog_->trailingPeak =
            std::max(segPeakWindow_,
                     static_cast<uint64_t>(liveWell_.size()));
        segLog_->relHighest = highestLevel_;
        segLog_->relDeepest = deepestLevel_;
        if (window_)
            segLog_->windowTail = window_->snapshot();
        if (throttle_.enabled() && deepestLevel_ >= highestLevel_) {
            segLog_->fuTail = throttle_.snapshotSpan(
                highestLevel_, deepestLevel_ - highestLevel_ + 1);
        }
    } else {
        liveWell_.forEach(
            [this](uint64_t, const LiveValue &lv) { retire(lv); });
    }

    result_.liveWellFinal = liveWell_.size();
    result_.liveWellPeak = liveWell_.peakSize();
    // The live well's footprint only grows within a run (the map never
    // shrinks its slot array), so the final size is the peak — no need to
    // sample it on every placed record.
    result_.liveWellPeakBytes = liveWell_.memoryBytes();
    result_.criticalPathLength =
        deepestLevel_ >= 0 ? static_cast<uint64_t>(deepestLevel_) + 1 : 0;
    result_.availableParallelism =
        result_.criticalPathLength
            ? static_cast<double>(result_.placedOps) /
                  static_cast<double>(result_.criticalPathLength)
            : 0.0;
    return result_;
}

void
Paragraph::prefetchRecord(const TraceRecord &rec) const
{
    for (int s = 0; s < rec.numSrcs; ++s) {
        if (rec.srcs[s].isMem())
            liveWell_.prefetch(locationKey(rec.srcs[s]));
    }
    if (rec.dest.isMem())
        liveWell_.prefetch(locationKey(rec.dest));
}

void
Paragraph::processAll(const trace::TraceBuffer &buffer)
{
    processAll(buffer.records().data(), buffer.records().size());
}

void
Paragraph::processAll(const TraceRecord *records, size_t n)
{
    if (done_)
        return;
    // The instruction cap is the only thing that stops mid-span, so the
    // record count is known up front: count and check once, not per record.
    if (cfg_.maxInstructions) {
        uint64_t remaining = cfg_.maxInstructions - result_.instructions;
        if (remaining < n)
            n = static_cast<size_t>(remaining);
    }
    size_t i = 0;
    while (i < n) {
        // Cooperative cancellation: poll the token between chunks so a
        // runaway cell becomes a diagnosed CancelledError, not a hang.
        size_t chunkEnd = n;
        if (cfg_.cancel) {
            cfg_.cancel->checkpoint();
            chunkEnd = std::min(n, i + cancelCheckInterval);
        }
        for (; i < chunkEnd; ++i) {
            // Memory operands probe a large randomly-indexed table; start
            // the loads for a record a few iterations before it is
            // processed.
            if (i + prefetchDistance < n)
                prefetchRecord(records[i + prefetchDistance]);
            processBody(records[i]);
        }
    }
    result_.instructions += n;
    if (cfg_.maxInstructions && result_.instructions >= cfg_.maxInstructions)
        done_ = true;
}

AnalysisResult
Paragraph::analyze(trace::TraceSource &src)
{
    begin();
    auto start = std::chrono::steady_clock::now();
    // Drain in batches: one virtual call refills a whole block, so the
    // per-record cost is a plain loop over stack storage.
    trace::TraceRecord batch[streamBatchSize];
    while (!done_) {
        if (cfg_.cancel)
            cfg_.cancel->checkpoint();
        // Never request past the instruction cap: a shared source must not
        // be drained further than record-at-a-time consumption would.
        size_t want = streamBatchSize;
        if (cfg_.maxInstructions) {
            uint64_t remaining =
                cfg_.maxInstructions - result_.instructions;
            if (remaining < want)
                want = static_cast<size_t>(remaining);
        }
        size_t n = src.nextBatch(batch, want);
        if (n == 0)
            break;
        for (size_t i = 0; i < n; ++i) {
            if (i + prefetchDistance < n)
                prefetchRecord(batch[i + prefetchDistance]);
            processBody(batch[i]);
        }
        result_.instructions += n;
        if (cfg_.maxInstructions &&
            result_.instructions >= cfg_.maxInstructions)
            done_ = true;
    }
    AnalysisResult res = finish();
    auto end = std::chrono::steady_clock::now();
    res.analysisSeconds =
        std::chrono::duration<double>(end - start).count();
    return res;
}

AnalysisResult
Paragraph::analyze(const trace::TraceBuffer &buffer)
{
    begin();
    auto start = std::chrono::steady_clock::now();
    processAll(buffer);
    AnalysisResult res = finish();
    auto end = std::chrono::steady_clock::now();
    res.analysisSeconds =
        std::chrono::duration<double>(end - start).count();
    return res;
}

} // namespace core
} // namespace paragraph
