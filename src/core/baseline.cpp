#include "core/baseline.hpp"

namespace paragraph {
namespace core {

using trace::Operand;
using trace::Segment;
using trace::TraceRecord;

CriticalPathAnalyzer::CriticalPathAnalyzer(AnalysisConfig cfg)
    : cfg_(cfg), predictor_(cfg.branchPredictor, cfg.predictorTableBits)
{
    begin();
}

void
CriticalPathAnalyzer::begin()
{
    predictor_.reset();
    levels_.clear();
    result_ = BaselineResult{};
    highestLevel_ = 0;
    deepestLevel_ = -1;
    done_ = false;
}

bool
CriticalPathAnalyzer::destRenamed(const Operand &op) const
{
    switch (op.kind) {
      case Operand::Kind::IntReg:
      case Operand::Kind::FpReg:
        return cfg_.renameRegisters;
      case Operand::Kind::Mem:
        return op.seg == Segment::Stack ? cfg_.renameStack : cfg_.renameData;
      default:
        return true;
    }
}

void
CriticalPathAnalyzer::process(const TraceRecord &rec)
{
    if (done_)
        return;
    ++result_.instructions;
    if (cfg_.maxInstructions && result_.instructions >= cfg_.maxInstructions)
        done_ = true;

    if (rec.isCondBranch &&
        predictor_.kind() != PredictorKind::Perfect &&
        !predictor_.predictAndUpdate(rec.pc, rec.branchTaken)) {
        int64_t resolve = highestLevel_;
        for (int s = 0; s < rec.numSrcs; ++s) {
            uint64_t key = locationKey(rec.srcs[s]);
            Slot *slot = levels_.find(key);
            if (!slot) {
                slot = &levels_.insertOrAssign(
                    key, Slot{highestLevel_ - 1, highestLevel_ - 1});
            }
            if (slot->level + 1 > resolve)
                resolve = slot->level + 1;
        }
        if (resolve > highestLevel_)
            highestLevel_ = resolve;
    }

    bool place = rec.createsValue;
    if (rec.isSysCall && !cfg_.sysCallsStall)
        place = false;

    if (place) {
        int64_t issue = highestLevel_;
        for (int s = 0; s < rec.numSrcs; ++s) {
            uint64_t key = locationKey(rec.srcs[s]);
            Slot *slot = levels_.find(key);
            if (!slot) {
                slot = &levels_.insertOrAssign(
                    key, Slot{highestLevel_ - 1, highestLevel_ - 1});
            }
            if (slot->level + 1 > issue)
                issue = slot->level + 1;
        }

        const bool has_dest = rec.dest.valid();
        const uint64_t dkey = has_dest ? locationKey(rec.dest) : 0;
        if (has_dest && !destRenamed(rec.dest)) {
            if (Slot *prev = levels_.find(dkey)) {
                if (prev->deepestAccess + 1 > issue)
                    issue = prev->deepestAccess + 1;
            }
        }

        const uint32_t top = cfg_.latency[static_cast<size_t>(rec.cls)];
        const int64_t ldest = issue + static_cast<int64_t>(top) - 1;

        for (int s = 0; s < rec.numSrcs; ++s) {
            if (Slot *slot = levels_.find(locationKey(rec.srcs[s]))) {
                if (ldest > slot->deepestAccess)
                    slot->deepestAccess = ldest;
            }
        }
        if (has_dest)
            levels_.insertOrAssign(dkey, Slot{ldest, ldest});

        ++result_.placedOps;
        if (ldest > deepestLevel_)
            deepestLevel_ = ldest;
    }

    if (rec.isSysCall && cfg_.sysCallsStall && deepestLevel_ + 1 > highestLevel_)
        highestLevel_ = deepestLevel_ + 1;
}

BaselineResult
CriticalPathAnalyzer::finish()
{
    result_.criticalPathLength =
        deepestLevel_ >= 0 ? static_cast<uint64_t>(deepestLevel_) + 1 : 0;
    result_.availableParallelism =
        result_.criticalPathLength
            ? static_cast<double>(result_.placedOps) /
                  static_cast<double>(result_.criticalPathLength)
            : 0.0;
    return result_;
}

BaselineResult
CriticalPathAnalyzer::analyze(trace::TraceSource &src)
{
    begin();
    TraceRecord rec;
    while (!done_ && src.next(rec))
        process(rec);
    return finish();
}

} // namespace core
} // namespace paragraph
