/**
 * @file
 * Single-pass multi-configuration analysis.
 *
 * The paper's Figure 8 re-extracted the DDG once per window size — "each
 * point in the graph represents a full DDG extraction and analysis of up to
 * 100,000,000 instructions (and requires approximately 10 hours on a
 * DECstation 3100)". The analyses are independent, so one pass over the
 * trace can feed any number of differently-configured engines: trace
 * generation (simulation, file decompression) is paid once instead of once
 * per configuration.
 */

#ifndef PARAGRAPH_CORE_MULTI_HPP
#define PARAGRAPH_CORE_MULTI_HPP

#include <vector>

#include "core/paragraph.hpp"
#include "trace/source.hpp"

namespace paragraph {
namespace core {

/**
 * Analyze one trace under several configurations in a single pass.
 *
 * Equivalent to running Paragraph::analyze once per configuration over a
 * reset source (a tested invariant), but the trace is produced only once.
 * Engines that hit their own maxInstructions simply stop consuming.
 *
 * @return one AnalysisResult per configuration, in order.
 */
std::vector<AnalysisResult>
analyzeMany(trace::TraceSource &src,
            const std::vector<AnalysisConfig> &configs);

} // namespace core
} // namespace paragraph

#endif // PARAGRAPH_CORE_MULTI_HPP
