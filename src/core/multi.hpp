/**
 * @file
 * Single-pass multi-configuration analysis (trace-major, block-major).
 *
 * The paper's Figure 8 re-extracted the DDG once per window size — "each
 * point in the graph represents a full DDG extraction and analysis of up to
 * 100,000,000 instructions (and requires approximately 10 hours on a
 * DECstation 3100)". The analyses are independent, so one pass over the
 * trace can feed any number of differently-configured engines: trace
 * generation (simulation, file decompression) is paid once instead of once
 * per configuration.
 *
 * Execution is block-major: large shared blocks (tens of thousands of
 * records) are fetched once, then each engine's bulk inner loop runs over
 * the whole block — engine-major within a block, so every live well stays
 * cache-hot instead of being re-warmed per record. Engines that hit their
 * own maxInstructions leave a compact live-engine list and stop costing
 * anything. For streaming sources the next block is decoded on a background
 * thread (trace::BlockPipeline) while the engines consume the current one.
 *
 * Cancellation is honored: each engine's AnalysisConfig::cancel is polled
 * from its bulk loop at the same cadence as Paragraph::processAll, and
 * analyzeMany() propagates the resulting CancelledError (abandoning the
 * pass). analyzeManyGuarded() instead contains any engine's exception to
 * its own slot so sibling configurations still complete — the sweep
 * engine's fused groups are built on it.
 */

#ifndef PARAGRAPH_CORE_MULTI_HPP
#define PARAGRAPH_CORE_MULTI_HPP

#include <exception>
#include <vector>

#include "core/paragraph.hpp"
#include "trace/block_source.hpp"
#include "trace/buffer.hpp"
#include "trace/source.hpp"

namespace paragraph {
namespace core {

/**
 * Analyze one trace under several configurations in a single pass.
 *
 * Equivalent to running Paragraph::analyze once per configuration over a
 * reset source (a tested invariant), but the trace is produced only once.
 * Engines that hit their own maxInstructions simply stop consuming; when
 * every config is capped, the source is never drained past the largest cap.
 *
 * Throws on the first engine or source error — including CancelledError
 * when any config's AnalysisConfig::cancel fires — abandoning the pass.
 *
 * @return one AnalysisResult per configuration, in order.
 */
std::vector<AnalysisResult>
analyzeMany(trace::TraceSource &src,
            const std::vector<AnalysisConfig> &configs);

/** Per-config outcome of a guarded fused pass. */
struct MultiOutcome
{
    /** Valid only when error is empty. */
    AnalysisResult result;

    /** The engine's exception (CancelledError included); null when ok. */
    std::exception_ptr error;

    /** Seconds spent inside this engine's bulk loop and finish() — the
     *  per-config share of the fused pass (block decode overlaps and is
     *  not attributed). */
    double engineSeconds = 0.0;

    /** Seconds the fused pass spent waiting on block decode — shared
     *  across the whole pass, so every outcome carries the same value. */
    double decodeSeconds = 0.0;
};

/**
 * Like analyzeMany(), but an engine's exception is contained to its own
 * MultiOutcome slot: the failing engine is dropped from the pass and every
 * sibling configuration still completes. Source errors (a corrupt trace
 * file, for instance) affect all engines equally and are still thrown.
 */
std::vector<MultiOutcome>
analyzeManyGuarded(trace::TraceSource &src,
                   const std::vector<AnalysisConfig> &configs);

/**
 * Guarded fused pass over an in-memory capture: the engines' bulk loops
 * walk the buffer's contiguous storage in shared blocks directly — no
 * copies, no producer thread. Results are identical to the source overload.
 */
std::vector<MultiOutcome>
analyzeManyGuarded(const trace::TraceBuffer &buffer,
                   const std::vector<AnalysisConfig> &configs);

/**
 * Guarded fused pass fed straight from a BlockSource (a shared decode
 * cursor or any block producer). Each handed-out block is consumed by
 * every live engine before the next is requested; results are identical
 * to the other overloads over the same records.
 */
std::vector<MultiOutcome>
analyzeManyGuarded(trace::BlockSource &blocks,
                   const std::vector<AnalysisConfig> &configs);

} // namespace core
} // namespace paragraph

#endif // PARAGRAPH_CORE_MULTI_HPP
