#include "core/report.hpp"

#include <algorithm>

#include "support/ascii_table.hpp"
#include "support/string_utils.hpp"

namespace paragraph {
namespace core {

void
printSummary(std::ostream &os, const std::string &name,
             const AnalysisConfig &cfg, const AnalysisResult &res)
{
    os << "=== " << name << " [" << cfg.describe() << "]\n";
    os << strFormat("  instructions        %20s\n",
                    AsciiTable::withCommas(res.instructions).c_str());
    os << strFormat("  placed operations   %20s\n",
                    AsciiTable::withCommas(res.placedOps).c_str());
    os << strFormat("  system calls        %20s\n",
                    AsciiTable::withCommas(res.sysCalls).c_str());
    os << strFormat("  critical path       %20s\n",
                    AsciiTable::withCommas(res.criticalPathLength).c_str());
    os << strFormat("  avail. parallelism  %20s\n",
                    AsciiTable::withCommas(res.availableParallelism, 2)
                        .c_str());
    os << strFormat("  live-well peak      %20s values\n",
                    AsciiTable::withCommas(res.liveWellPeak).c_str());
    os << strFormat("  pre-existing values %20s\n",
                    AsciiTable::withCommas(res.preExistingValues).c_str());
    os << strFormat("  firewalls           %20s\n",
                    AsciiTable::withCommas(res.firewalls).c_str());
    if (res.storageDelayedOps) {
        os << strFormat("  storage-delayed ops %20s\n",
                        AsciiTable::withCommas(res.storageDelayedOps).c_str());
    }
    if (res.fuDelayedOps) {
        os << strFormat("  FU-delayed ops      %20s\n",
                        AsciiTable::withCommas(res.fuDelayedOps).c_str());
    }
}

void
printProfile(std::ostream &os, const AnalysisResult &res, size_t max_rows)
{
    auto series = res.profile.series();
    AsciiTable table;
    table.addColumn("Level range", AsciiTable::Align::Left);
    table.addColumn("Ops/level");
    size_t step = series.size() > max_rows
                      ? (series.size() + max_rows - 1) / max_rows
                      : 1;
    for (size_t i = 0; i < series.size(); i += step) {
        const auto &p = series[i];
        table.beginRow();
        table.cell(strFormat("%s .. %s",
                             AsciiTable::withCommas(p.firstLevel).c_str(),
                             AsciiTable::withCommas(p.lastLevel).c_str()));
        table.cell(p.opsPerLevel, 2);
    }
    table.print(os);
}

void
printProfilePlot(std::ostream &os, const AnalysisResult &res, size_t rows,
                 size_t width)
{
    auto series = res.profile.series();
    if (series.empty()) {
        os << "(empty profile)\n";
        return;
    }
    // Re-bucket the series into `rows` rows.
    std::vector<double> row_vals(rows, 0.0);
    std::vector<std::pair<uint64_t, uint64_t>> row_ranges(rows, {0, 0});
    uint64_t max_level = res.profile.maxLevel();
    uint64_t per_row = max_level / rows + 1;
    std::vector<uint64_t> row_levels(rows, 0);
    for (const auto &p : series) {
        for (uint64_t lvl = p.firstLevel; lvl <= p.lastLevel; ++lvl) {
            size_t r = static_cast<size_t>(lvl / per_row);
            if (r >= rows)
                r = rows - 1;
            row_vals[r] += p.opsPerLevel;
            ++row_levels[r];
        }
    }
    double peak = 0.0;
    for (size_t r = 0; r < rows; ++r) {
        if (row_levels[r])
            row_vals[r] /= static_cast<double>(row_levels[r]);
        row_ranges[r] = {r * per_row,
                         std::min<uint64_t>((r + 1) * per_row - 1, max_level)};
        peak = std::max(peak, row_vals[r]);
    }
    if (peak <= 0.0)
        peak = 1.0;
    for (size_t r = 0; r < rows; ++r) {
        if (row_ranges[r].first > max_level)
            break;
        size_t bar = static_cast<size_t>(row_vals[r] / peak *
                                         static_cast<double>(width));
        os << strFormat("%12s |", AsciiTable::withCommas(
                                      row_ranges[r].first).c_str())
           << std::string(bar, '#') << std::string(width - bar, ' ')
           << strFormat("| %s\n",
                        AsciiTable::withCommas(row_vals[r], 1).c_str());
    }
    os << strFormat("(level | ops-per-level, peak %s)\n",
                    AsciiTable::withCommas(peak, 1).c_str());
}

void
printStorageProfile(std::ostream &os, const AnalysisResult &res, size_t rows,
                    size_t width)
{
    auto series = res.storageProfile.series();
    if (series.empty()) {
        os << "(empty storage profile)\n";
        return;
    }
    double peak = res.storageProfile.peakLive();
    if (peak <= 0.0)
        peak = 1.0;
    size_t step = series.size() > rows ? (series.size() + rows - 1) / rows : 1;
    for (size_t i = 0; i < series.size(); i += step) {
        // Average the step's buckets so coarse rows stay representative.
        double value = 0.0;
        size_t count = 0;
        for (size_t j = i; j < series.size() && j < i + step; ++j) {
            value += series[j].liveValues;
            ++count;
        }
        value /= static_cast<double>(count);
        size_t bar = static_cast<size_t>(value / peak *
                                         static_cast<double>(width));
        if (bar > width)
            bar = width;
        os << strFormat("%12s |",
                        AsciiTable::withCommas(series[i].firstLevel).c_str())
           << std::string(bar, '*') << std::string(width - bar, ' ')
           << strFormat("| %s\n", AsciiTable::withCommas(value, 1).c_str());
    }
    os << strFormat("(level | live values; peak %s, mean %s)\n",
                    AsciiTable::withCommas(peak, 1).c_str(),
                    AsciiTable::withCommas(res.storageProfile.meanLive(), 1)
                        .c_str());
}

void
printDistributions(std::ostream &os, const AnalysisResult &res)
{
    os << strFormat(
        "value lifetimes:   mean %.2f levels, p50 %llu, p90 %llu, p99 %llu, "
        "max %llu\n",
        res.lifetimes.mean(),
        static_cast<unsigned long long>(res.lifetimes.percentile(0.50)),
        static_cast<unsigned long long>(res.lifetimes.percentile(0.90)),
        static_cast<unsigned long long>(res.lifetimes.percentile(0.99)),
        static_cast<unsigned long long>(res.lifetimes.maxSample()));
    os << strFormat(
        "degree of sharing: mean %.2f uses, p50 %llu, p90 %llu, p99 %llu, "
        "max %llu, unused %llu\n",
        res.sharing.mean(),
        static_cast<unsigned long long>(res.sharing.percentile(0.50)),
        static_cast<unsigned long long>(res.sharing.percentile(0.90)),
        static_cast<unsigned long long>(res.sharing.percentile(0.99)),
        static_cast<unsigned long long>(res.sharing.maxSample()),
        static_cast<unsigned long long>(res.sharing.count(0)));
}

} // namespace core
} // namespace paragraph
