/**
 * @file
 * FuThrottle: functional-unit resource dependencies (paper Figure 4).
 *
 * "Resource dependencies (sometimes called structural hazards) occur when
 * operations must delay because some required physical resource has become
 * exhausted." With k units, at most k operations can coexist in any single
 * DDG level; an operation that does not fit at its dependence-determined
 * level slides down to the first level range with free units.
 */

#ifndef PARAGRAPH_CORE_FU_THROTTLE_HPP
#define PARAGRAPH_CORE_FU_THROTTLE_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "isa/op_class.hpp"

namespace paragraph {
namespace core {

class FuThrottle
{
  public:
    explicit FuThrottle(const AnalysisConfig &cfg);

    /** True when any limit is configured; otherwise place() is identity. */
    bool enabled() const { return enabled_; }

    /**
     * Reserve units for an operation of class @p cls that is ready to issue
     * at level @p min_issue and spans @p span levels.
     *
     * @return the actual issue level (>= min_issue): the first level where
     *         the class limit and the total limit both have a free unit in
     *         every occupied level (all span levels, or only the issue level
     *         when FUs are pipelined).
     */
    int64_t place(isa::OpClass cls, int64_t min_issue, uint32_t span);

    /** Reset occupancy for a fresh analysis. */
    void reset();

    /** Row stride of snapshotSpan()/seedSpan(): per-class counts + total. */
    static constexpr size_t rowWidth = isa::numOpClasses + 1;

    /**
     * Export occupancy rows for levels [@p from, @p from + @p count): one
     * rowWidth-wide row per level (class counts then the total count).
     * Split-and-patch carries these across a segment boundary so a
     * sequential replay resuming below the deepest level sees the exact
     * solo occupancy (core/shard.hpp).
     */
    std::vector<uint32_t> snapshotSpan(int64_t from, int64_t count) const;

    /**
     * Restore occupancy from snapshotSpan() rows, re-based so the first
     * row lands at level @p from. All other levels become empty — exact
     * when every level outside the seeded span is either fully drained
     * (below the resume floor, never probed again) or untouched.
     */
    void seedSpan(int64_t from, const std::vector<uint32_t> &rows);

  private:
    bool enabled_ = false;
    bool pipelined_ = false;
    uint32_t totalLimit_ = 0;
    std::array<uint32_t, isa::numOpClasses> classLimit_ = {};

    /** usage_[cls][level] = units of class cls busy in that level. */
    std::array<std::vector<uint32_t>, isa::numOpClasses> usage_;
    std::vector<uint32_t> totalUsage_;

    /**
     * Saturation frontiers: every level below the frontier is completely
     * full for that limit, so searches may start there.
     */
    int64_t totalFrontier_ = 0;
    std::array<int64_t, isa::numOpClasses> classFrontier_ = {};

    /**
     * Skip pointers past saturated runs: skip[l] (when set) is a level such
     * that every level in [l, skip[l]) is full for that limit. Fullness is
     * monotone — usage only ever grows — so a recorded skip stays a valid
     * lower bound forever. Walks path-compress, making the first-fit search
     * amortized near-O(1) even when ops land above the frontier in a densely
     * saturated region (the old linear re-scan was the analyzer's worst
     * pathology: O(run length) per op under tight total limits).
     */
    std::vector<int64_t> totalSkip_;
    std::array<std::vector<int64_t>, isa::numOpClasses> classSkip_;

    void reserve(isa::OpClass cls, int64_t issue, uint32_t span);
    static uint32_t at(const std::vector<uint32_t> &v, int64_t level);
    static int64_t nextFree(const std::vector<uint32_t> &usage,
                            uint32_t limit, std::vector<int64_t> &skip,
                            int64_t level);
};

} // namespace core
} // namespace paragraph

#endif // PARAGRAPH_CORE_FU_THROTTLE_HPP
