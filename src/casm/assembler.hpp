/**
 * @file
 * Two-pass assembler for the MIPS-like target.
 *
 * Syntax (one statement per line, '#' comments):
 *
 *     .data                        # switch to the data segment
 *     vec:   .space 800            # 800 zero bytes
 *     tbl:   .word 1, 2, 3         # 32-bit little-endian words
 *     pi:    .double 3.14159       # 64-bit doubles
 *            .align 3              # align to 2^3 bytes
 *     .text                        # switch to the text segment
 *     main:  li   t0, 100
 *     loop:  addi t0, t0, -1
 *            bgtz t0, loop
 *            li   v0, 5            # exit service
 *            syscall
 *
 * Registers accept ABI names (t0, sp), raw names (r8, f2), and an optional
 * leading '$'. Branches/jumps take label operands; `lw t0, sym` addresses a
 * data symbol absolutely, `lw t0, 8(sp)` uses base+offset form.
 *
 * Pseudo-instructions: la (load address), b (branch always), and the
 * compare-and-branch family bge/bgt/ble/blt (expands to slt + beq/bne via
 * the assembler temporary register at).
 */

#ifndef PARAGRAPH_CASM_ASSEMBLER_HPP
#define PARAGRAPH_CASM_ASSEMBLER_HPP

#include <string>
#include <string_view>

#include "casm/program.hpp"

namespace paragraph {
namespace casm {

/**
 * Assemble @p source into a Program.
 * @throws FatalError with file:line context on any syntax error,
 *         unknown mnemonic, bad register, or undefined/duplicate label.
 */
Program assemble(std::string_view source);

} // namespace casm
} // namespace paragraph

#endif // PARAGRAPH_CASM_ASSEMBLER_HPP
