/**
 * @file
 * Program: an assembled executable image for the MIPS-like target.
 *
 * Holds the decoded text segment (a vector of instructions; branch targets
 * are absolute instruction indices), the initialized data segment image, the
 * symbol table, and the memory-layout constants the simulator loads it with.
 */

#ifndef PARAGRAPH_CASM_PROGRAM_HPP
#define PARAGRAPH_CASM_PROGRAM_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/instruction.hpp"

namespace paragraph {
namespace casm {

/** Fixed memory layout (word-addressed little-endian flat space). */
struct MemoryLayout
{
    static constexpr uint64_t dataBase = 0x10000000;  ///< globals
    static constexpr uint64_t stackTop = 0x7fffff00;  ///< grows downward
    /** Heap begins at the first 4 KiB boundary after the data image. */
    static constexpr uint64_t heapAlign = 0x1000;
};

struct Program
{
    /** Decoded text segment. */
    std::vector<isa::Instruction> text;

    /** Initialized data image, loaded at MemoryLayout::dataBase. */
    std::vector<uint8_t> data;

    /** Label -> value (text labels: instruction index; data labels: address). */
    std::map<std::string, uint64_t> symbols;

    /** Entry instruction index (label "main" when present, else 0). */
    uint64_t entry = 0;

    /** First heap address (past the data image, page aligned). */
    uint64_t
    heapBase() const
    {
        uint64_t end = MemoryLayout::dataBase + data.size();
        return (end + MemoryLayout::heapAlign - 1) &
               ~(MemoryLayout::heapAlign - 1);
    }

    /** Look up a symbol; throws FatalError when missing. */
    uint64_t symbol(const std::string &name) const;

    /** Render the whole text segment as assembly (round-trip debugging). */
    std::string disassemble() const;
};

} // namespace casm
} // namespace paragraph

#endif // PARAGRAPH_CASM_PROGRAM_HPP
