#include "casm/assembler.hpp"

#include <cstring>
#include <optional>
#include <sstream>

#include "isa/registers.hpp"
#include "support/panic.hpp"
#include "support/string_utils.hpp"

namespace paragraph {
namespace casm {

using isa::Instruction;
using isa::Opcode;
using isa::OperandPattern;

namespace {

/** One parsed statement (post label-stripping). */
struct Statement
{
    int lineNo;
    std::string label;             // possibly empty
    std::string mnemonic;          // possibly empty (label-only line)
    std::vector<std::string> args; // comma-separated operand texts
};

[[noreturn]] void
syntaxError(int line_no, const std::string &msg)
{
    PARA_FATAL("asm line %d: %s", line_no, msg.c_str());
}

/** Pseudo-instruction expansion sizes (instructions emitted). */
int
statementSize(const Statement &st)
{
    if (st.mnemonic.empty())
        return 0;
    if (st.mnemonic == "bge" || st.mnemonic == "blt" ||
        st.mnemonic == "ble" || st.mnemonic == "bgt") {
        return 2;
    }
    return 1; // real opcodes, la, b
}

class Assembler
{
  public:
    Program
    run(std::string_view source)
    {
        parseLines(source);
        layoutPass();
        encodePass();
        if (auto it = program_.symbols.find("main");
            it != program_.symbols.end()) {
            program_.entry = it->second;
        }
        return std::move(program_);
    }

  private:
    Program program_;
    std::vector<Statement> textStmts_;

    void
    defineSymbol(const std::string &name, uint64_t value, int line_no)
    {
        auto [it, inserted] = program_.symbols.emplace(name, value);
        if (!inserted)
            syntaxError(line_no, "duplicate label '" + name + "'");
    }

    /** Split a raw line into statements, handling labels and directives.
     *  Data directives are applied immediately during parseLines (pass 1
     *  assigns data addresses on the fly); text statements are queued. */
    void
    parseLines(std::string_view source)
    {
        bool in_text = true;
        int line_no = 0;
        size_t pos = 0;
        while (pos <= source.size()) {
            size_t eol = source.find('\n', pos);
            std::string_view raw =
                eol == std::string_view::npos
                    ? source.substr(pos)
                    : source.substr(pos, eol - pos);
            pos = eol == std::string_view::npos ? source.size() + 1 : eol + 1;
            ++line_no;

            if (size_t hash = raw.find('#'); hash != std::string_view::npos)
                raw = raw.substr(0, hash);
            std::string_view line = trim(raw);
            if (line.empty())
                continue;

            // Labels (possibly several on one line).
            while (true) {
                size_t colon = line.find(':');
                if (colon == std::string_view::npos)
                    break;
                std::string_view head = trim(line.substr(0, colon));
                if (head.empty() || head.find(' ') != std::string_view::npos)
                    syntaxError(line_no, "malformed label");
                if (in_text) {
                    defineSymbol(std::string(head), textSize_, line_no);
                } else {
                    defineSymbol(std::string(head),
                                 MemoryLayout::dataBase +
                                     program_.data.size(),
                                 line_no);
                }
                line = trim(line.substr(colon + 1));
            }
            if (line.empty())
                continue;

            // Mnemonic / directive and operands.
            size_t sp = line.find_first_of(" \t");
            std::string mnemonic(
                sp == std::string_view::npos ? line : line.substr(0, sp));
            std::string_view rest =
                sp == std::string_view::npos ? std::string_view{}
                                             : trim(line.substr(sp));

            if (mnemonic == ".text") {
                in_text = true;
                continue;
            }
            if (mnemonic == ".data") {
                in_text = false;
                continue;
            }
            if (mnemonic[0] == '.') {
                if (in_text)
                    syntaxError(line_no, "data directive in .text");
                applyDataDirective(mnemonic, rest, line_no);
                continue;
            }

            if (!in_text)
                syntaxError(line_no, "instruction in .data");
            Statement st;
            st.lineNo = line_no;
            st.mnemonic = mnemonic;
            if (!rest.empty())
                st.args = splitAndTrim(rest, ',');
            textSize_ += static_cast<uint64_t>(statementSize(st));
            textStmts_.push_back(std::move(st));
        }
    }

    void
    applyDataDirective(const std::string &dir, std::string_view args,
                       int line_no)
    {
        if (dir == ".space") {
            int64_t n = 0;
            if (!parseInt(args, n) || n < 0)
                syntaxError(line_no, ".space needs a non-negative size");
            program_.data.insert(program_.data.end(),
                                 static_cast<size_t>(n), 0);
        } else if (dir == ".word") {
            for (const std::string &piece : splitAndTrim(args, ',')) {
                int64_t v = 0;
                if (!parseInt(piece, v))
                    syntaxError(line_no, "bad .word value '" + piece + "'");
                uint32_t w = static_cast<uint32_t>(v);
                for (int b = 0; b < 4; ++b)
                    program_.data.push_back(
                        static_cast<uint8_t>(w >> (8 * b)));
            }
        } else if (dir == ".double") {
            for (const std::string &piece : splitAndTrim(args, ',')) {
                double v = 0;
                if (!parseDouble(piece, v))
                    syntaxError(line_no, "bad .double value '" + piece + "'");
                uint64_t bits;
                std::memcpy(&bits, &v, sizeof(bits));
                for (int b = 0; b < 8; ++b)
                    program_.data.push_back(
                        static_cast<uint8_t>(bits >> (8 * b)));
            }
        } else if (dir == ".align") {
            int64_t k = 0;
            if (!parseInt(args, k) || k < 0 || k > 12)
                syntaxError(line_no, ".align needs 0..12");
            uint64_t mask = (1ULL << k) - 1;
            while ((MemoryLayout::dataBase + program_.data.size()) & mask)
                program_.data.push_back(0);
        } else {
            syntaxError(line_no, "unknown directive '" + dir + "'");
        }
    }

    /** Nothing else to lay out: text indices and data addresses were
     *  assigned during parsing. */
    void layoutPass() {}

    uint8_t
    parseIntReg(const std::string &text, int line_no) const
    {
        uint8_t idx = 0;
        bool is_fp = false;
        if (!isa::parseRegName(text, idx, is_fp) || is_fp)
            syntaxError(line_no, "bad integer register '" + text + "'");
        return idx;
    }

    uint8_t
    parseFpReg(const std::string &text, int line_no) const
    {
        uint8_t idx = 0;
        bool is_fp = false;
        if (!isa::parseRegName(text, idx, is_fp) || !is_fp)
            syntaxError(line_no, "bad FP register '" + text + "'");
        return idx;
    }

    int32_t
    parseImmediate(const std::string &text, int line_no) const
    {
        int64_t v = 0;
        if (parseInt(text, v)) {
            if (v < INT32_MIN || v > INT32_MAX)
                syntaxError(line_no, "immediate out of range");
            return static_cast<int32_t>(v);
        }
        auto it = program_.symbols.find(text);
        if (it == program_.symbols.end())
            syntaxError(line_no, "undefined symbol '" + text + "'");
        return static_cast<int32_t>(it->second);
    }

    /** Parse "off(reg)" / "sym" / "imm" memory operand forms. */
    void
    parseMemOperand(const std::string &text, int line_no, uint8_t &base,
                    int32_t &offset) const
    {
        size_t open = text.find('(');
        if (open == std::string_view::npos) {
            base = isa::regZero;
            offset = parseImmediate(text, line_no);
            return;
        }
        size_t close = text.find(')', open);
        if (close == std::string::npos)
            syntaxError(line_no, "unterminated memory operand");
        std::string off_text(trim(std::string_view(text).substr(0, open)));
        std::string reg_text(trim(
            std::string_view(text).substr(open + 1, close - open - 1)));
        base = parseIntReg(reg_text, line_no);
        offset = off_text.empty() ? 0 : parseImmediate(off_text, line_no);
    }

    int32_t
    parseTarget(const std::string &text, int line_no) const
    {
        return parseImmediate(text, line_no);
    }

    void
    expectArgs(const Statement &st, size_t n) const
    {
        if (st.args.size() != n) {
            syntaxError(st.lineNo,
                        strFormat("'%s' expects %zu operands, got %zu",
                                  st.mnemonic.c_str(), n, st.args.size()));
        }
    }

    void
    encodePass()
    {
        for (const Statement &st : textStmts_)
            encodeStatement(st);
        PARA_ASSERT(program_.text.size() == textSize_,
                    "pass-1/pass-2 size mismatch");
    }

    void
    emit(const Instruction &inst)
    {
        program_.text.push_back(inst);
    }

    void
    encodeStatement(const Statement &st)
    {
        // Pseudo-instructions first.
        if (st.mnemonic == "la" || st.mnemonic == "b" ||
            st.mnemonic == "bge" || st.mnemonic == "blt" ||
            st.mnemonic == "ble" || st.mnemonic == "bgt") {
            encodePseudo(st);
            return;
        }

        Opcode op;
        if (!isa::parseOpcodeName(st.mnemonic, op))
            syntaxError(st.lineNo, "unknown mnemonic '" + st.mnemonic + "'");

        Instruction inst;
        inst.op = op;
        int line = st.lineNo;
        switch (isa::opcodePattern(op)) {
          case OperandPattern::None:
            expectArgs(st, 0);
            break;
          case OperandPattern::R3:
            expectArgs(st, 3);
            inst.rd = parseIntReg(st.args[0], line);
            inst.rs = parseIntReg(st.args[1], line);
            inst.rt = parseIntReg(st.args[2], line);
            break;
          case OperandPattern::R2Imm:
            expectArgs(st, 3);
            inst.rd = parseIntReg(st.args[0], line);
            inst.rs = parseIntReg(st.args[1], line);
            inst.imm = parseImmediate(st.args[2], line);
            break;
          case OperandPattern::R1Imm:
            expectArgs(st, 2);
            inst.rd = parseIntReg(st.args[0], line);
            inst.imm = parseImmediate(st.args[1], line);
            break;
          case OperandPattern::R2:
            expectArgs(st, 2);
            inst.rd = parseIntReg(st.args[0], line);
            inst.rs = parseIntReg(st.args[1], line);
            break;
          case OperandPattern::MemLoad:
            expectArgs(st, 2);
            inst.rd = parseIntReg(st.args[0], line);
            parseMemOperand(st.args[1], line, inst.rs, inst.imm);
            break;
          case OperandPattern::MemStore:
            expectArgs(st, 2);
            inst.rt = parseIntReg(st.args[0], line);
            parseMemOperand(st.args[1], line, inst.rs, inst.imm);
            break;
          case OperandPattern::FMemLoad:
            expectArgs(st, 2);
            inst.rd = parseFpReg(st.args[0], line);
            parseMemOperand(st.args[1], line, inst.rs, inst.imm);
            break;
          case OperandPattern::FMemStore:
            expectArgs(st, 2);
            inst.rt = parseFpReg(st.args[0], line);
            parseMemOperand(st.args[1], line, inst.rs, inst.imm);
            break;
          case OperandPattern::F3:
            expectArgs(st, 3);
            inst.rd = parseFpReg(st.args[0], line);
            inst.rs = parseFpReg(st.args[1], line);
            inst.rt = parseFpReg(st.args[2], line);
            break;
          case OperandPattern::F2:
            expectArgs(st, 2);
            inst.rd = parseFpReg(st.args[0], line);
            inst.rs = parseFpReg(st.args[1], line);
            break;
          case OperandPattern::FCmp:
            expectArgs(st, 3);
            inst.rd = parseIntReg(st.args[0], line);
            inst.rs = parseFpReg(st.args[1], line);
            inst.rt = parseFpReg(st.args[2], line);
            break;
          case OperandPattern::CvtToFp:
            expectArgs(st, 2);
            inst.rd = parseFpReg(st.args[0], line);
            inst.rs = parseIntReg(st.args[1], line);
            break;
          case OperandPattern::CvtToInt:
            expectArgs(st, 2);
            inst.rd = parseIntReg(st.args[0], line);
            inst.rs = parseFpReg(st.args[1], line);
            break;
          case OperandPattern::Branch2:
            expectArgs(st, 3);
            inst.rs = parseIntReg(st.args[0], line);
            inst.rt = parseIntReg(st.args[1], line);
            inst.imm = parseTarget(st.args[2], line);
            break;
          case OperandPattern::Branch1:
            expectArgs(st, 2);
            inst.rs = parseIntReg(st.args[0], line);
            inst.imm = parseTarget(st.args[1], line);
            break;
          case OperandPattern::Jump:
          case OperandPattern::JumpLink:
            expectArgs(st, 1);
            inst.imm = parseTarget(st.args[0], line);
            break;
          case OperandPattern::JumpReg:
            expectArgs(st, 1);
            inst.rs = parseIntReg(st.args[0], line);
            break;
          case OperandPattern::JumpLinkReg:
            expectArgs(st, 2);
            inst.rd = parseIntReg(st.args[0], line);
            inst.rs = parseIntReg(st.args[1], line);
            break;
          case OperandPattern::SysCallOp:
            expectArgs(st, 0);
            break;
          default:
            syntaxError(line, "unsupported pattern");
        }
        emit(inst);
    }

    void
    encodePseudo(const Statement &st)
    {
        int line = st.lineNo;
        if (st.mnemonic == "la") {
            expectArgs(st, 2);
            Instruction inst;
            inst.op = Opcode::Li;
            inst.rd = parseIntReg(st.args[0], line);
            inst.imm = parseImmediate(st.args[1], line);
            emit(inst);
            return;
        }
        if (st.mnemonic == "b") {
            expectArgs(st, 1);
            Instruction inst;
            inst.op = Opcode::J;
            inst.imm = parseTarget(st.args[0], line);
            emit(inst);
            return;
        }
        // bge/blt/ble/bgt rs, rt, target  ->  slt at, ...; beq/bne at, ...
        expectArgs(st, 3);
        uint8_t rs = parseIntReg(st.args[0], line);
        uint8_t rt = parseIntReg(st.args[1], line);
        int32_t target = parseTarget(st.args[2], line);

        Instruction slt;
        slt.op = Opcode::Slt;
        slt.rd = isa::regAt;
        Instruction br;
        br.rs = isa::regAt;
        br.rt = isa::regZero;
        br.imm = target;

        if (st.mnemonic == "bge") {
            slt.rs = rs;
            slt.rt = rt;
            br.op = Opcode::Beq; // !(rs < rt)
        } else if (st.mnemonic == "blt") {
            slt.rs = rs;
            slt.rt = rt;
            br.op = Opcode::Bne; // rs < rt
        } else if (st.mnemonic == "ble") {
            slt.rs = rt;
            slt.rt = rs;
            br.op = Opcode::Beq; // !(rt < rs)
        } else { // bgt
            slt.rs = rt;
            slt.rt = rs;
            br.op = Opcode::Bne; // rt < rs
        }
        emit(slt);
        emit(br);
    }

    uint64_t textSize_ = 0;
};

} // namespace

Program
assemble(std::string_view source)
{
    Assembler assembler;
    return assembler.run(source);
}

uint64_t
Program::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        PARA_FATAL("undefined symbol '%s'", name.c_str());
    return it->second;
}

std::string
Program::disassemble() const
{
    std::ostringstream oss;
    for (size_t i = 0; i < text.size(); ++i)
        oss << i << ":\t" << isa::disassemble(text[i]) << '\n';
    return oss.str();
}

} // namespace casm
} // namespace paragraph
