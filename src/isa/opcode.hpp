/**
 * @file
 * Opcode set of the MIPS-like target ISA.
 *
 * The set is a compact R3000-flavoured subset: enough for an optimizing
 * compiler to produce ordinary integer and floating-point code (loads,
 * stores, three-address arithmetic, compares, branches, calls, syscalls),
 * while every opcode maps onto one of the paper's Table 1 operation classes.
 */

#ifndef PARAGRAPH_ISA_OPCODE_HPP
#define PARAGRAPH_ISA_OPCODE_HPP

#include <cstdint>
#include <string_view>

#include "isa/op_class.hpp"

namespace paragraph {
namespace isa {

enum class Opcode : uint8_t
{
    // Integer three-address register ops.
    Add, Sub, Mul, Div, Rem,
    And, Or, Xor, Nor,
    Sllv, Srlv, Srav,
    Slt, Sltu,
    // Integer register-immediate ops.
    Addi, Andi, Ori, Xori, Slti,
    Sll, Srl, Sra,
    // Immediates and moves.
    Li, Lui, Move,
    // Integer memory.
    Lw, Sw,
    // FP memory (doubles).
    Ld, Sd,
    // FP arithmetic.
    FAdd, FSub, FMul, FDiv, FSqrt, FNeg, FMov,
    // Conversions and FP compares (compare result lands in an int reg).
    CvtDW, CvtWD, FCLt, FCLe, FCEq,
    // Control transfer.
    Beq, Bne, Blez, Bgtz, Bltz, Bgez,
    J, Jal, Jr, Jalr,
    // Miscellaneous.
    SysCall, Nop,
    NumOpcodes
};

constexpr size_t numOpcodes = static_cast<size_t>(Opcode::NumOpcodes);

/**
 * Operand shape of an opcode: which fields are read/written and how the
 * simulator and trace generator should interpret rd/rs/rt/imm.
 */
enum class OperandPattern : uint8_t
{
    None,        ///< nop
    R3,          ///< rd <- rs (op) rt          [int]
    R2Imm,       ///< rd <- rs (op) imm         [int]
    R1Imm,       ///< rd <- imm                 [li / lui]
    R2,          ///< rd <- (op) rs             [move]
    MemLoad,     ///< rd <- mem32[rs + imm]
    MemStore,    ///< mem32[rs + imm] <- rt
    FMemLoad,    ///< fd <- mem64[rs + imm]
    FMemStore,   ///< mem64[rs + imm] <- ft
    F3,          ///< fd <- fs (op) ft
    F2,          ///< fd <- (op) fs
    FCmp,        ///< rd(int) <- fs (cmp) ft
    CvtToFp,     ///< fd <- double(rs)
    CvtToInt,    ///< rd <- int(fs)
    Branch2,     ///< if (rs cmp rt) goto imm   [instruction index]
    Branch1,     ///< if (rs cmp 0)  goto imm
    Jump,        ///< goto imm
    JumpLink,    ///< ra <- return addr; goto imm
    JumpReg,     ///< goto rs
    JumpLinkReg, ///< rd <- return addr; goto rs
    SysCallOp,   ///< OS call; service number in v0, args in a0..a3
};

/** Static description of an opcode. */
struct OpcodeInfo
{
    const char *name;       ///< assembler mnemonic
    OpClass cls;            ///< Table 1 operation class
    OperandPattern pattern; ///< operand shape
};

/** Metadata for @p op. */
const OpcodeInfo &opcodeInfo(Opcode op);

/** Assembler mnemonic for @p op. */
inline std::string_view opcodeName(Opcode op) { return opcodeInfo(op).name; }

/** Table 1 class of @p op. */
inline OpClass opcodeClass(Opcode op) { return opcodeInfo(op).cls; }

/** Operand shape of @p op. */
inline OperandPattern
opcodePattern(Opcode op)
{
    return opcodeInfo(op).pattern;
}

/** True for branch/jump opcodes (OpClass::Control). */
inline bool
isControl(Opcode op)
{
    return opcodeClass(op) == OpClass::Control;
}

/**
 * Look up an opcode by mnemonic.
 * @return true when @p name names a valid opcode.
 */
bool parseOpcodeName(std::string_view name, Opcode &out);

} // namespace isa
} // namespace paragraph

#endif // PARAGRAPH_ISA_OPCODE_HPP
