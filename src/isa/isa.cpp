#include "isa/instruction.hpp"
#include "isa/op_class.hpp"
#include "isa/opcode.hpp"
#include "isa/registers.hpp"

#include <array>
#include <cctype>

#include "support/panic.hpp"
#include "support/string_utils.hpp"

namespace paragraph {
namespace isa {

const char *
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu:   return "Integer ALU";
      case OpClass::IntMul:   return "Integer Multiply";
      case OpClass::IntDiv:   return "Integer Division";
      case OpClass::FpAddSub: return "Floating Point Add/Sub";
      case OpClass::FpMul:    return "Floating Point Multiply";
      case OpClass::FpDiv:    return "Floating Point Division";
      case OpClass::Load:     return "Load";
      case OpClass::Store:    return "Store";
      case OpClass::SysCall:  return "System Calls";
      case OpClass::Control:  return "Control";
      default:                return "Unknown";
    }
}

namespace {

constexpr std::array<OpcodeInfo, numOpcodes> opcodeTable = {{
    // name      class              pattern
    {"add",     OpClass::IntAlu,   OperandPattern::R3},      // Add
    {"sub",     OpClass::IntAlu,   OperandPattern::R3},      // Sub
    {"mul",     OpClass::IntMul,   OperandPattern::R3},      // Mul
    {"div",     OpClass::IntDiv,   OperandPattern::R3},      // Div
    {"rem",     OpClass::IntDiv,   OperandPattern::R3},      // Rem
    {"and",     OpClass::IntAlu,   OperandPattern::R3},      // And
    {"or",      OpClass::IntAlu,   OperandPattern::R3},      // Or
    {"xor",     OpClass::IntAlu,   OperandPattern::R3},      // Xor
    {"nor",     OpClass::IntAlu,   OperandPattern::R3},      // Nor
    {"sllv",    OpClass::IntAlu,   OperandPattern::R3},      // Sllv
    {"srlv",    OpClass::IntAlu,   OperandPattern::R3},      // Srlv
    {"srav",    OpClass::IntAlu,   OperandPattern::R3},      // Srav
    {"slt",     OpClass::IntAlu,   OperandPattern::R3},      // Slt
    {"sltu",    OpClass::IntAlu,   OperandPattern::R3},      // Sltu
    {"addi",    OpClass::IntAlu,   OperandPattern::R2Imm},   // Addi
    {"andi",    OpClass::IntAlu,   OperandPattern::R2Imm},   // Andi
    {"ori",     OpClass::IntAlu,   OperandPattern::R2Imm},   // Ori
    {"xori",    OpClass::IntAlu,   OperandPattern::R2Imm},   // Xori
    {"slti",    OpClass::IntAlu,   OperandPattern::R2Imm},   // Slti
    {"sll",     OpClass::IntAlu,   OperandPattern::R2Imm},   // Sll
    {"srl",     OpClass::IntAlu,   OperandPattern::R2Imm},   // Srl
    {"sra",     OpClass::IntAlu,   OperandPattern::R2Imm},   // Sra
    {"li",      OpClass::IntAlu,   OperandPattern::R1Imm},   // Li
    {"lui",     OpClass::IntAlu,   OperandPattern::R1Imm},   // Lui
    {"move",    OpClass::IntAlu,   OperandPattern::R2},      // Move
    {"lw",      OpClass::Load,     OperandPattern::MemLoad}, // Lw
    {"sw",      OpClass::Store,    OperandPattern::MemStore},// Sw
    {"l.d",     OpClass::Load,     OperandPattern::FMemLoad},// Ld
    {"s.d",     OpClass::Store,    OperandPattern::FMemStore},// Sd
    {"add.d",   OpClass::FpAddSub, OperandPattern::F3},      // FAdd
    {"sub.d",   OpClass::FpAddSub, OperandPattern::F3},      // FSub
    {"mul.d",   OpClass::FpMul,    OperandPattern::F3},      // FMul
    {"div.d",   OpClass::FpDiv,    OperandPattern::F3},      // FDiv
    {"sqrt.d",  OpClass::FpDiv,    OperandPattern::F2},      // FSqrt
    {"neg.d",   OpClass::FpAddSub, OperandPattern::F2},      // FNeg
    {"mov.d",   OpClass::FpAddSub, OperandPattern::F2},      // FMov
    {"cvt.d.w", OpClass::FpAddSub, OperandPattern::CvtToFp}, // CvtDW
    {"cvt.w.d", OpClass::FpAddSub, OperandPattern::CvtToInt},// CvtWD
    {"c.lt.d",  OpClass::FpAddSub, OperandPattern::FCmp},    // FCLt
    {"c.le.d",  OpClass::FpAddSub, OperandPattern::FCmp},    // FCLe
    {"c.eq.d",  OpClass::FpAddSub, OperandPattern::FCmp},    // FCEq
    {"beq",     OpClass::Control,  OperandPattern::Branch2}, // Beq
    {"bne",     OpClass::Control,  OperandPattern::Branch2}, // Bne
    {"blez",    OpClass::Control,  OperandPattern::Branch1}, // Blez
    {"bgtz",    OpClass::Control,  OperandPattern::Branch1}, // Bgtz
    {"bltz",    OpClass::Control,  OperandPattern::Branch1}, // Bltz
    {"bgez",    OpClass::Control,  OperandPattern::Branch1}, // Bgez
    {"j",       OpClass::Control,  OperandPattern::Jump},    // J
    {"jal",     OpClass::Control,  OperandPattern::JumpLink},// Jal
    {"jr",      OpClass::Control,  OperandPattern::JumpReg}, // Jr
    {"jalr",    OpClass::Control,  OperandPattern::JumpLinkReg}, // Jalr
    {"syscall", OpClass::SysCall,  OperandPattern::SysCallOp},   // SysCall
    {"nop",     OpClass::IntAlu,   OperandPattern::None},    // Nop
}};

const char *const intRegNames[numIntRegs] = {
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
};

} // namespace

const OpcodeInfo &
opcodeInfo(Opcode op)
{
    PARA_ASSERT(static_cast<size_t>(op) < numOpcodes);
    return opcodeTable[static_cast<size_t>(op)];
}

bool
parseOpcodeName(std::string_view name, Opcode &out)
{
    for (size_t i = 0; i < numOpcodes; ++i) {
        if (name == opcodeTable[i].name) {
            out = static_cast<Opcode>(i);
            return true;
        }
    }
    return false;
}

std::string
intRegName(uint8_t idx)
{
    PARA_ASSERT(idx < numIntRegs);
    return intRegNames[idx];
}

std::string
fpRegName(uint8_t idx)
{
    PARA_ASSERT(idx < numFpRegs);
    return "f" + std::to_string(idx);
}

bool
parseRegName(std::string_view name, uint8_t &idx, bool &is_fp)
{
    if (!name.empty() && name.front() == '$')
        name.remove_prefix(1);
    if (name.empty())
        return false;

    // ABI integer names.
    for (uint8_t i = 0; i < numIntRegs; ++i) {
        if (name == intRegNames[i]) {
            idx = i;
            is_fp = false;
            return true;
        }
    }

    // "rN" and "fN" raw names.
    if ((name.front() == 'r' || name.front() == 'f') && name.size() >= 2) {
        int64_t n = 0;
        if (parseInt(name.substr(1), n) && n >= 0 && n < numIntRegs) {
            idx = static_cast<uint8_t>(n);
            is_fp = name.front() == 'f';
            return true;
        }
    }
    return false;
}

std::string
disassemble(const Instruction &inst)
{
    const OpcodeInfo &info = opcodeInfo(inst.op);
    std::string name(info.name);
    auto ir = [](uint8_t r) { return intRegName(r); };
    auto fr = [](uint8_t r) { return fpRegName(r); };
    switch (info.pattern) {
      case OperandPattern::None:
        return name;
      case OperandPattern::R3:
        return name + " " + ir(inst.rd) + ", " + ir(inst.rs) + ", " +
               ir(inst.rt);
      case OperandPattern::R2Imm:
        return name + " " + ir(inst.rd) + ", " + ir(inst.rs) + ", " +
               std::to_string(inst.imm);
      case OperandPattern::R1Imm:
        return name + " " + ir(inst.rd) + ", " + std::to_string(inst.imm);
      case OperandPattern::R2:
        return name + " " + ir(inst.rd) + ", " + ir(inst.rs);
      case OperandPattern::MemLoad:
        return name + " " + ir(inst.rd) + ", " + std::to_string(inst.imm) +
               "(" + ir(inst.rs) + ")";
      case OperandPattern::MemStore:
        return name + " " + ir(inst.rt) + ", " + std::to_string(inst.imm) +
               "(" + ir(inst.rs) + ")";
      case OperandPattern::FMemLoad:
        return name + " " + fr(inst.rd) + ", " + std::to_string(inst.imm) +
               "(" + ir(inst.rs) + ")";
      case OperandPattern::FMemStore:
        return name + " " + fr(inst.rt) + ", " + std::to_string(inst.imm) +
               "(" + ir(inst.rs) + ")";
      case OperandPattern::F3:
        return name + " " + fr(inst.rd) + ", " + fr(inst.rs) + ", " +
               fr(inst.rt);
      case OperandPattern::F2:
        return name + " " + fr(inst.rd) + ", " + fr(inst.rs);
      case OperandPattern::FCmp:
        return name + " " + ir(inst.rd) + ", " + fr(inst.rs) + ", " +
               fr(inst.rt);
      case OperandPattern::CvtToFp:
        return name + " " + fr(inst.rd) + ", " + ir(inst.rs);
      case OperandPattern::CvtToInt:
        return name + " " + ir(inst.rd) + ", " + fr(inst.rs);
      case OperandPattern::Branch2:
        return name + " " + ir(inst.rs) + ", " + ir(inst.rt) + ", @" +
               std::to_string(inst.imm);
      case OperandPattern::Branch1:
        return name + " " + ir(inst.rs) + ", @" + std::to_string(inst.imm);
      case OperandPattern::Jump:
      case OperandPattern::JumpLink:
        return name + " @" + std::to_string(inst.imm);
      case OperandPattern::JumpReg:
        return name + " " + ir(inst.rs);
      case OperandPattern::JumpLinkReg:
        return name + " " + ir(inst.rd) + ", " + ir(inst.rs);
      case OperandPattern::SysCallOp:
        return name;
      default:
        return name;
    }
}

} // namespace isa
} // namespace paragraph
