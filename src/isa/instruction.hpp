/**
 * @file
 * Decoded instruction representation and disassembly.
 *
 * Instructions are stored pre-decoded (no binary encoding step): programs in
 * this repository are produced by our own assembler, so the natural program
 * image is a vector<Instruction>. Branch and jump targets hold absolute
 * instruction indices, resolved by the assembler.
 */

#ifndef PARAGRAPH_ISA_INSTRUCTION_HPP
#define PARAGRAPH_ISA_INSTRUCTION_HPP

#include <cstdint>
#include <string>

#include "isa/opcode.hpp"

namespace paragraph {
namespace isa {

struct Instruction
{
    Opcode op = Opcode::Nop;
    uint8_t rd = 0;  ///< destination register (int or FP per pattern)
    uint8_t rs = 0;  ///< first source register
    uint8_t rt = 0;  ///< second source register
    int32_t imm = 0; ///< immediate / shift amount / offset / target index

    bool operator==(const Instruction &other) const = default;
};

/** Render @p inst as assembler text ("add t0, t1, t2"). */
std::string disassemble(const Instruction &inst);

} // namespace isa
} // namespace paragraph

#endif // PARAGRAPH_ISA_INSTRUCTION_HPP
