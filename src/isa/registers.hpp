/**
 * @file
 * Register-file layout and ABI names of the MIPS-like target.
 *
 * 32 integer registers (r0 hardwired to zero) and 32 floating-point
 * registers, each FP register holding a full double (a simplification of the
 * R3000's even/odd pairing that does not affect dependence structure: one
 * architectural name per FP value either way).
 */

#ifndef PARAGRAPH_ISA_REGISTERS_HPP
#define PARAGRAPH_ISA_REGISTERS_HPP

#include <cstdint>
#include <string>
#include <string_view>

namespace paragraph {
namespace isa {

constexpr uint8_t numIntRegs = 32;
constexpr uint8_t numFpRegs = 32;

/** ABI aliases for the integer registers. */
enum IntReg : uint8_t
{
    regZero = 0, regAt = 1, regV0 = 2, regV1 = 3,
    regA0 = 4, regA1 = 5, regA2 = 6, regA3 = 7,
    regT0 = 8, regT1 = 9, regT2 = 10, regT3 = 11,
    regT4 = 12, regT5 = 13, regT6 = 14, regT7 = 15,
    regS0 = 16, regS1 = 17, regS2 = 18, regS3 = 19,
    regS4 = 20, regS5 = 21, regS6 = 22, regS7 = 23,
    regT8 = 24, regT9 = 25, regK0 = 26, regK1 = 27,
    regGp = 28, regSp = 29, regFp = 30, regRa = 31,
};

/** ABI name of integer register @p idx ("zero", "t0", "sp", ...). */
std::string intRegName(uint8_t idx);

/** Name of FP register @p idx ("f0".."f31"). */
std::string fpRegName(uint8_t idx);

/**
 * Parse a register name into an index. Accepts ABI names ("t0"), raw names
 * ("r5"), and an optional leading '$'.
 * @param is_fp set to true when the name denotes an FP register.
 * @return true on success.
 */
bool parseRegName(std::string_view name, uint8_t &idx, bool &is_fp);

} // namespace isa
} // namespace paragraph

#endif // PARAGRAPH_ISA_REGISTERS_HPP
