/**
 * @file
 * Operation classes and their DDG latencies (paper Table 1).
 *
 * "Table 1 shows the instruction latencies (in DDG levels) for each
 * operation class in the MIPS processor. These values are used to determine
 * how many levels an operation will span in the DDG before the value it
 * creates is available for use by subsequent operations."
 */

#ifndef PARAGRAPH_ISA_OP_CLASS_HPP
#define PARAGRAPH_ISA_OP_CLASS_HPP

#include <cstdint>

namespace paragraph {
namespace isa {

/** Instruction classes distinguished by the DDG latency model. */
enum class OpClass : uint8_t
{
    IntAlu,     ///< integer add/sub/logical/shift/compare, moves, immediates
    IntMul,     ///< integer multiply
    IntDiv,     ///< integer divide / remainder
    FpAddSub,   ///< FP add/subtract (also converts and FP compares)
    FpMul,      ///< FP multiply
    FpDiv,      ///< FP divide (also sqrt)
    Load,       ///< memory read
    Store,      ///< memory write
    SysCall,    ///< operating-system call
    Control,    ///< branches and jumps — never placed in the DDG
    NumClasses
};

/** Number of distinct operation classes. */
constexpr size_t numOpClasses = static_cast<size_t>(OpClass::NumClasses);

/**
 * DDG levels spanned by an operation of class @p cls before its value is
 * available (paper Table 1). Control instructions return 1 but create no
 * value, so the latency is only used for bookkeeping.
 */
constexpr uint32_t
opLatency(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu:   return 1;
      case OpClass::IntMul:   return 6;
      case OpClass::IntDiv:   return 12;
      case OpClass::FpAddSub: return 6;
      case OpClass::FpMul:    return 6;
      case OpClass::FpDiv:    return 12;
      case OpClass::Load:     return 1;
      case OpClass::Store:    return 1;
      case OpClass::SysCall:  return 1;
      case OpClass::Control:  return 1;
      default:                return 1;
    }
}

/** Human-readable class name (as printed in the Table 1 bench). */
const char *opClassName(OpClass cls);

} // namespace isa
} // namespace paragraph

#endif // PARAGRAPH_ISA_OP_CLASS_HPP
