
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/compressed_io.cpp" "src/trace/CMakeFiles/para_trace.dir/compressed_io.cpp.o" "gcc" "src/trace/CMakeFiles/para_trace.dir/compressed_io.cpp.o.d"
  "/root/repo/src/trace/file_io.cpp" "src/trace/CMakeFiles/para_trace.dir/file_io.cpp.o" "gcc" "src/trace/CMakeFiles/para_trace.dir/file_io.cpp.o.d"
  "/root/repo/src/trace/last_use.cpp" "src/trace/CMakeFiles/para_trace.dir/last_use.cpp.o" "gcc" "src/trace/CMakeFiles/para_trace.dir/last_use.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/trace/CMakeFiles/para_trace.dir/trace.cpp.o" "gcc" "src/trace/CMakeFiles/para_trace.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/isa/CMakeFiles/para_isa.dir/DependInfo.cmake"
  "/root/repo/build2/src/support/CMakeFiles/para_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
