file(REMOVE_RECURSE
  "CMakeFiles/para_trace.dir/compressed_io.cpp.o"
  "CMakeFiles/para_trace.dir/compressed_io.cpp.o.d"
  "CMakeFiles/para_trace.dir/file_io.cpp.o"
  "CMakeFiles/para_trace.dir/file_io.cpp.o.d"
  "CMakeFiles/para_trace.dir/last_use.cpp.o"
  "CMakeFiles/para_trace.dir/last_use.cpp.o.d"
  "CMakeFiles/para_trace.dir/trace.cpp.o"
  "CMakeFiles/para_trace.dir/trace.cpp.o.d"
  "libpara_trace.a"
  "libpara_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/para_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
