file(REMOVE_RECURSE
  "libpara_trace.a"
)
