# Empty compiler generated dependencies file for para_trace.
# This may be replaced when dependencies are built.
