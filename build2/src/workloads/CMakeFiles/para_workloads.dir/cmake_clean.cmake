file(REMOVE_RECURSE
  "CMakeFiles/para_workloads.dir/sources_fp.cpp.o"
  "CMakeFiles/para_workloads.dir/sources_fp.cpp.o.d"
  "CMakeFiles/para_workloads.dir/sources_int.cpp.o"
  "CMakeFiles/para_workloads.dir/sources_int.cpp.o.d"
  "CMakeFiles/para_workloads.dir/sources_mixed.cpp.o"
  "CMakeFiles/para_workloads.dir/sources_mixed.cpp.o.d"
  "CMakeFiles/para_workloads.dir/workload.cpp.o"
  "CMakeFiles/para_workloads.dir/workload.cpp.o.d"
  "libpara_workloads.a"
  "libpara_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/para_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
