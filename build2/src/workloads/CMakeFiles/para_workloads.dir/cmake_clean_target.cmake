file(REMOVE_RECURSE
  "libpara_workloads.a"
)
