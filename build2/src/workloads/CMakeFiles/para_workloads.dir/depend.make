# Empty dependencies file for para_workloads.
# This may be replaced when dependencies are built.
