# Empty compiler generated dependencies file for para_casm.
# This may be replaced when dependencies are built.
