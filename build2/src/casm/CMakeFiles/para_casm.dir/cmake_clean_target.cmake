file(REMOVE_RECURSE
  "libpara_casm.a"
)
