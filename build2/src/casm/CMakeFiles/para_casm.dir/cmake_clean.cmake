file(REMOVE_RECURSE
  "CMakeFiles/para_casm.dir/assembler.cpp.o"
  "CMakeFiles/para_casm.dir/assembler.cpp.o.d"
  "libpara_casm.a"
  "libpara_casm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/para_casm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
