
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baseline.cpp" "src/core/CMakeFiles/para_core.dir/baseline.cpp.o" "gcc" "src/core/CMakeFiles/para_core.dir/baseline.cpp.o.d"
  "/root/repo/src/core/branch_predictor.cpp" "src/core/CMakeFiles/para_core.dir/branch_predictor.cpp.o" "gcc" "src/core/CMakeFiles/para_core.dir/branch_predictor.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/para_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/para_core.dir/config.cpp.o.d"
  "/root/repo/src/core/ddg_builder.cpp" "src/core/CMakeFiles/para_core.dir/ddg_builder.cpp.o" "gcc" "src/core/CMakeFiles/para_core.dir/ddg_builder.cpp.o.d"
  "/root/repo/src/core/fu_throttle.cpp" "src/core/CMakeFiles/para_core.dir/fu_throttle.cpp.o" "gcc" "src/core/CMakeFiles/para_core.dir/fu_throttle.cpp.o.d"
  "/root/repo/src/core/multi.cpp" "src/core/CMakeFiles/para_core.dir/multi.cpp.o" "gcc" "src/core/CMakeFiles/para_core.dir/multi.cpp.o.d"
  "/root/repo/src/core/paragraph.cpp" "src/core/CMakeFiles/para_core.dir/paragraph.cpp.o" "gcc" "src/core/CMakeFiles/para_core.dir/paragraph.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/para_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/para_core.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/trace/CMakeFiles/para_trace.dir/DependInfo.cmake"
  "/root/repo/build2/src/isa/CMakeFiles/para_isa.dir/DependInfo.cmake"
  "/root/repo/build2/src/support/CMakeFiles/para_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
