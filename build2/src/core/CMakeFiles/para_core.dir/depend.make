# Empty dependencies file for para_core.
# This may be replaced when dependencies are built.
