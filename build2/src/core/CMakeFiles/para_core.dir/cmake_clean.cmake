file(REMOVE_RECURSE
  "CMakeFiles/para_core.dir/baseline.cpp.o"
  "CMakeFiles/para_core.dir/baseline.cpp.o.d"
  "CMakeFiles/para_core.dir/branch_predictor.cpp.o"
  "CMakeFiles/para_core.dir/branch_predictor.cpp.o.d"
  "CMakeFiles/para_core.dir/config.cpp.o"
  "CMakeFiles/para_core.dir/config.cpp.o.d"
  "CMakeFiles/para_core.dir/ddg_builder.cpp.o"
  "CMakeFiles/para_core.dir/ddg_builder.cpp.o.d"
  "CMakeFiles/para_core.dir/fu_throttle.cpp.o"
  "CMakeFiles/para_core.dir/fu_throttle.cpp.o.d"
  "CMakeFiles/para_core.dir/multi.cpp.o"
  "CMakeFiles/para_core.dir/multi.cpp.o.d"
  "CMakeFiles/para_core.dir/paragraph.cpp.o"
  "CMakeFiles/para_core.dir/paragraph.cpp.o.d"
  "CMakeFiles/para_core.dir/report.cpp.o"
  "CMakeFiles/para_core.dir/report.cpp.o.d"
  "libpara_core.a"
  "libpara_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/para_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
