file(REMOVE_RECURSE
  "libpara_core.a"
)
