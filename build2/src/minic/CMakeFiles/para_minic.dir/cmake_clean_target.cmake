file(REMOVE_RECURSE
  "libpara_minic.a"
)
