file(REMOVE_RECURSE
  "CMakeFiles/para_minic.dir/compiler.cpp.o"
  "CMakeFiles/para_minic.dir/compiler.cpp.o.d"
  "CMakeFiles/para_minic.dir/interpreter.cpp.o"
  "CMakeFiles/para_minic.dir/interpreter.cpp.o.d"
  "CMakeFiles/para_minic.dir/lexer.cpp.o"
  "CMakeFiles/para_minic.dir/lexer.cpp.o.d"
  "CMakeFiles/para_minic.dir/parser.cpp.o"
  "CMakeFiles/para_minic.dir/parser.cpp.o.d"
  "libpara_minic.a"
  "libpara_minic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/para_minic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
