# Empty dependencies file for para_minic.
# This may be replaced when dependencies are built.
