# Empty compiler generated dependencies file for para_engine.
# This may be replaced when dependencies are built.
