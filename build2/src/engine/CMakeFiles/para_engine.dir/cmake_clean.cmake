file(REMOVE_RECURSE
  "CMakeFiles/para_engine.dir/sweep.cpp.o"
  "CMakeFiles/para_engine.dir/sweep.cpp.o.d"
  "CMakeFiles/para_engine.dir/sweep_json.cpp.o"
  "CMakeFiles/para_engine.dir/sweep_json.cpp.o.d"
  "CMakeFiles/para_engine.dir/trace_repository.cpp.o"
  "CMakeFiles/para_engine.dir/trace_repository.cpp.o.d"
  "libpara_engine.a"
  "libpara_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/para_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
